//! ML input pipeline + training, after Cachew.
//!
//! Table 3's AI/ML row: "model training state" in **private scratch**,
//! "metadata, worker state" in **global state**, "input data, cached
//! transformed data" in **global scratch**. The pipeline mirrors Cachew:
//! ingest raw samples, preprocess them once into a shared cache, then run
//! several training epochs on an accelerator that stream the cache
//! asynchronously while the tensor work overlaps the fetches.

use disagg_core::prelude::*;
use disagg_hwsim::compute::WorkClass;
use disagg_hwsim::rng::SimRng;

use crate::util::{read_counted_input, write_counted_output};

/// Parameters for the ML pipeline.
#[derive(Debug, Clone, Copy)]
pub struct MlConfig {
    /// Training samples.
    pub samples: usize,
    /// Features (bytes) per sample.
    pub features: usize,
    /// Training epochs.
    pub epochs: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MlConfig {
    fn default() -> Self {
        MlConfig {
            samples: 4_096,
            features: 64,
            epochs: 3,
            seed: 7,
        }
    }
}

impl MlConfig {
    /// Bytes of the raw / transformed data set.
    pub fn dataset_bytes(&self) -> u64 {
        (self.samples * self.features) as u64
    }
}

/// The feature transform: a toy normalization every byte goes through.
/// Deterministic so the final model checksum is verifiable.
fn transform(b: u8) -> u8 {
    b.rotate_left(3) ^ 0x5A
}

/// Reference "model": per-epoch checksum folding of the transformed data.
pub fn expected_model(cfg: &MlConfig) -> u64 {
    let mut rng = SimRng::new(cfg.seed);
    let mut raw = vec![0u8; cfg.dataset_bytes() as usize];
    rng.fill_bytes(&mut raw);
    let cache: Vec<u8> = raw.iter().map(|&b| transform(b)).collect();
    let mut model = 0u64;
    for _ in 0..cfg.epochs {
        for chunk in cache.chunks(8) {
            let mut w = [0u8; 8];
            w[..chunk.len()].copy_from_slice(chunk);
            model = model
                .rotate_left(1)
                .wrapping_add(u64::from_le_bytes(w));
        }
    }
    model
}

/// Builds the Cachew-style pipeline:
/// `ingest → preprocess (fills the cache) → train (epochs over the cache)`.
///
/// The train task requires an accelerator and produces a persistent,
/// count-prefixed 8-byte model checksum.
pub fn training_job(cfg: MlConfig) -> JobSpec {
    let mut job = JobBuilder::new("ml-training").global_state(4096);
    let data_bytes = cfg.dataset_bytes();

    let ingest = job.task(
        TaskSpec::new("ingest")
            .work(WorkClass::Scalar, cfg.samples as u64)
            .output_bytes(data_bytes + 8)
            .body(move |ctx| {
                let mut rng = SimRng::new(cfg.seed);
                let mut raw = vec![0u8; data_bytes as usize];
                rng.fill_bytes(&mut raw);
                ctx.compute(WorkClass::Scalar, cfg.samples as u64);
                write_counted_output(ctx, &raw)
            }),
    );

    let preprocess = job.task(
        TaskSpec::new("preprocess")
            .work(WorkClass::Vector, data_bytes)
            .global_scratch(data_bytes)
            .output_bytes(64)
            .body(move |ctx| {
                // Worker-state heartbeat in global state (the dispatcher's
                // view in Cachew).
                ctx.state_write(0, &1u64.to_le_bytes())?;
                let raw = read_counted_input(ctx)?;
                ctx.compute(WorkClass::Vector, raw.len() as u64);
                let cache: Vec<u8> = raw.iter().map(|&b| transform(b)).collect();
                let cache_region = ctx.global_scratch()?;
                ctx.async_write(cache_region, 0, &cache)?;
                ctx.wait_async();
                ctx.publish("cache", cache_region);
                write_counted_output(ctx, &(cache.len() as u64).to_le_bytes())
            }),
    );

    let train = job.task(
        TaskSpec::new("train")
            .on(ComputeKind::Gpu)
            .mem_latency(LatencyClass::Low)
            .work(
                WorkClass::Tensor,
                (cfg.epochs as u64) * (cfg.samples * cfg.features) as u64,
            )
            .private_scratch(data_bytes.max(4096))
            .persistent(true)
            .output_bytes(64)
            .body(move |ctx| {
                let cache = ctx
                    .lookup("cache")
                    .ok_or_else(|| TaskError::new("cache not published"))?;
                let len = ctx.region_len(cache) as usize;
                let mut model = 0u64;
                for epoch in 0..cfg.epochs {
                    // Stream the cache asynchronously, overlapping the
                    // epoch's tensor work (the async-interface pattern).
                    let mut data = vec![0u8; len];
                    ctx.async_read(cache, 0, &mut data)?;
                    ctx.overlap_compute(
                        WorkClass::Tensor,
                        (cfg.samples * cfg.features) as u64,
                    );
                    ctx.wait_async();
                    for chunk in data.chunks(8) {
                        let mut w = [0u8; 8];
                        w[..chunk.len()].copy_from_slice(chunk);
                        model = model.rotate_left(1).wrapping_add(u64::from_le_bytes(w));
                    }
                    // Publish epoch progress to the job's worker state.
                    ctx.state_write(8, &(epoch as u64 + 1).to_le_bytes())?;
                }
                write_counted_output(ctx, &model.to_le_bytes())
            }),
    );

    job.edge(ingest, preprocess);
    job.edge(preprocess, train);
    job.build().expect("ml job is a valid DAG")
}

/// Decodes the trained model checksum from the train task's output bytes.
pub fn decode_model(out: &[u8]) -> u64 {
    let payload = crate::util::decode_counted(out);
    u64::from_le_bytes(payload[..8].try_into().expect("8-byte model"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::final_output;
    use disagg_hwsim::presets::single_server;

    #[test]
    fn training_reproduces_the_reference_model() {
        let cfg = MlConfig::default();
        let (topo, _) = single_server();
        let mut rt = Runtime::new(topo, RuntimeConfig::traced());
        let report = rt.execute(training_job(cfg)).unwrap();
        let out = final_output(&rt, &report, JobId(0), "train");
        assert_eq!(decode_model(&out), expected_model(&cfg));
        assert!(report.placements_clean());
    }

    #[test]
    fn training_runs_on_the_gpu_and_overlaps_io() {
        let cfg = MlConfig::default();
        let (topo, _) = single_server();
        let mut rt = Runtime::new(topo, RuntimeConfig::traced());
        let report = rt.execute(training_job(cfg)).unwrap();
        let train = report.task_by_name(JobId(0), "train").unwrap();
        assert_eq!(rt.topology().compute(train.compute).kind, ComputeKind::Gpu);
        assert_eq!(train.stats.async_ops as usize, cfg.epochs);
    }

    #[test]
    fn more_epochs_cost_more_virtual_time() {
        let (topo, _) = single_server();
        let mut rt = Runtime::new(topo, RuntimeConfig::traced());
        let short = rt
            .execute(training_job(MlConfig { epochs: 1, ..MlConfig::default() }))
            .unwrap();
        let long = rt
            .execute(training_job(MlConfig { epochs: 6, ..MlConfig::default() }))
            .unwrap();
        assert!(long.makespan > short.makespan);
    }
}
