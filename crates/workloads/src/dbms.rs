//! DBMS workload: scan → hash aggregation → hash join.
//!
//! Table 3's database row: "operator state (hashtables, …)" lives in
//! **private scratch**, "synchronization (latches, …)" in **global
//! state**, and "(temp) indexes, caches" in **global scratch**. This
//! module builds a query pipeline that uses all three exactly that way,
//! on real bytes — the aggregate hash table is a linear-probing table
//! stored *inside* the scratch region, and the join reuses the aggregate's
//! published index from global scratch (the paper's "a hash join might
//! re-use a hash index created by an aggregation operator").

use disagg_core::prelude::*;
use disagg_hwsim::compute::WorkClass;

use crate::gen::{decode_tuples, encode_tuples, relation, Tuple, TUPLE_BYTES};
use crate::util::{read_counted_input, write_counted_output};

/// Parameters for the DBMS pipeline.
#[derive(Debug, Clone, Copy)]
pub struct DbmsConfig {
    /// Tuples in the scanned relation R.
    pub tuples: usize,
    /// Tuples in the probe relation S.
    pub probe_tuples: usize,
    /// Distinct keys.
    pub key_space: usize,
    /// Key skew.
    pub theta: f64,
    /// Filter predicate: keep tuples with `val < filter_below`.
    pub filter_below: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DbmsConfig {
    fn default() -> Self {
        DbmsConfig {
            tuples: 20_000,
            probe_tuples: 10_000,
            key_space: 256,
            theta: 0.8,
            filter_below: 500,
            seed: 42,
        }
    }
}

/// Ground truth computed the boring way.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DbmsExpected {
    /// Tuples surviving the filter.
    pub filtered: usize,
    /// Distinct groups among survivors.
    pub groups: usize,
    /// Sum of all aggregated values.
    pub total_sum: u64,
    /// Probe tuples whose key appears in the aggregate.
    pub join_matches: u64,
}

/// Reference implementation of the whole query.
pub fn expected(cfg: &DbmsConfig) -> DbmsExpected {
    let r = relation(cfg.tuples, cfg.key_space, cfg.theta, cfg.seed);
    let filtered: Vec<Tuple> = r.into_iter().filter(|t| t.val < cfg.filter_below).collect();
    let mut sums = std::collections::BTreeMap::new();
    for t in &filtered {
        *sums.entry(t.key).or_insert(0u64) += t.val;
    }
    let s = relation(cfg.probe_tuples, cfg.key_space, cfg.theta, cfg.seed + 1);
    let join_matches = s.iter().filter(|t| sums.contains_key(&t.key)).count() as u64;
    DbmsExpected {
        filtered: filtered.len(),
        groups: sums.len(),
        total_sum: sums.values().sum(),
        join_matches,
    }
}

/// Hash-table geometry for the in-scratch aggregate table. Each slot is
/// 24 bytes: `key+1` (0 = empty), `sum`, `count`.
const SLOT_BYTES: u64 = 24;

fn table_slots(key_space: usize) -> u64 {
    (2 * key_space.max(1)).next_power_of_two() as u64
}

/// Bytes of private scratch the aggregate table needs.
pub fn agg_table_bytes(cfg: &DbmsConfig) -> u64 {
    table_slots(cfg.key_space) * SLOT_BYTES
}

fn slot_of(key: u64, slots: u64) -> u64 {
    // Fibonacci hashing; good spread for sequential keys.
    (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) & (slots - 1)
}

/// Builds the three-operator query job.
///
/// `scan-filter → hash-aggregate → hash-join`, with the aggregate
/// publishing its table into global scratch under `"agg-index"` and the
/// join reusing it. The join's final output (count-prefixed) contains the
/// little-endian `join_matches`, `groups`, and `total_sum`.
pub fn query_job(cfg: DbmsConfig) -> JobSpec {
    let mut job = JobBuilder::new("dbms-query").global_state(4096);

    let scan_out = (cfg.tuples * TUPLE_BYTES + 8) as u64;
    let scan = job.task(
        TaskSpec::new("scan-filter")
            .work(WorkClass::Scalar, cfg.tuples as u64)
            .output_bytes(scan_out)
            .body(move |ctx| {
                // "Latch": register the operator in global state.
                ctx.state_write(0, &1u64.to_le_bytes())?;
                let r = relation(cfg.tuples, cfg.key_space, cfg.theta, cfg.seed);
                ctx.compute(WorkClass::Scalar, cfg.tuples as u64);
                let filtered: Vec<Tuple> =
                    r.into_iter().filter(|t| t.val < cfg.filter_below).collect();
                write_counted_output(ctx, &encode_tuples(&filtered))
            }),
    );

    let agg_out = (cfg.key_space * TUPLE_BYTES + 8) as u64;
    let agg_scratch = agg_table_bytes(&cfg);
    let agg = job.task(
        TaskSpec::new("hash-aggregate")
            .work(WorkClass::Scalar, cfg.tuples as u64)
            .mem_latency(LatencyClass::Low)
            .private_scratch(agg_scratch)
            .global_scratch(agg_scratch + 8)
            .output_bytes(agg_out)
            .body(move |ctx| {
                ctx.state_write(8, &1u64.to_le_bytes())?;
                let input = read_counted_input(ctx)?;
                let tuples = decode_tuples(&input);
                let slots = table_slots(cfg.key_space);

                // Build the linear-probing table inside private scratch.
                for t in &tuples {
                    ctx.compute(WorkClass::Scalar, 1);
                    let mut slot = slot_of(t.key, slots);
                    loop {
                        let mut cur = [0u8; 24];
                        ctx.scratch_read(slot * SLOT_BYTES, &mut cur)?;
                        let tag = u64::from_le_bytes(cur[..8].try_into().expect("8"));
                        if tag == 0 || tag == t.key + 1 {
                            let sum = u64::from_le_bytes(cur[8..16].try_into().expect("8")) + t.val;
                            let cnt = u64::from_le_bytes(cur[16..24].try_into().expect("8")) + 1;
                            let mut new = [0u8; 24];
                            new[..8].copy_from_slice(&(t.key + 1).to_le_bytes());
                            new[8..16].copy_from_slice(&sum.to_le_bytes());
                            new[16..24].copy_from_slice(&cnt.to_le_bytes());
                            ctx.scratch_write(slot * SLOT_BYTES, &new)?;
                            break;
                        }
                        slot = (slot + 1) & (slots - 1);
                    }
                }

                // Publish the table into global scratch for reuse by the
                // join, then emit (key, sum) pairs as the operator output.
                let scratch = ctx.private_scratch()?;
                let mut table = vec![0u8; (slots * SLOT_BYTES) as usize];
                ctx.acc.read(
                    scratch,
                    0,
                    &mut table,
                    AccessPattern::Sequential,
                )?;
                let index = ctx.global_scratch()?;
                ctx.async_write(index, 0, &(slots).to_le_bytes())?;
                ctx.async_write(index, 8, &table)?;
                ctx.wait_async();
                ctx.publish("agg-index", index);

                let mut groups = Vec::new();
                for s in 0..slots {
                    let base = (s * SLOT_BYTES) as usize;
                    let tag = u64::from_le_bytes(table[base..base + 8].try_into().expect("8"));
                    if tag != 0 {
                        let sum =
                            u64::from_le_bytes(table[base + 8..base + 16].try_into().expect("8"));
                        groups.push(Tuple { key: tag - 1, val: sum });
                    }
                }
                groups.sort_by_key(|t| t.key);
                write_counted_output(ctx, &encode_tuples(&groups))
            }),
    );

    let join = job.task(
        TaskSpec::new("hash-join")
            .work(WorkClass::Scalar, cfg.probe_tuples as u64)
            .persistent(true)
            .output_bytes(64)
            .body(move |ctx| {
                ctx.state_write(16, &1u64.to_le_bytes())?;
                // Reuse the published index instead of rebuilding it — the
                // paper's global-scratch pattern.
                let index = ctx
                    .lookup("agg-index")
                    .ok_or_else(|| TaskError::new("agg-index not published"))?;
                let mut hdr = [0u8; 8];
                ctx.async_read(index, 0, &mut hdr)?;
                ctx.wait_async();
                let slots = u64::from_le_bytes(hdr);
                let mut table = vec![0u8; (slots * SLOT_BYTES) as usize];
                ctx.async_read(index, 8, &mut table)?;
                ctx.overlap_compute(WorkClass::Scalar, cfg.probe_tuples as u64 / 4);
                ctx.wait_async();

                // Aggregate output (group count / total sum) arrives as
                // this task's input.
                let groups = decode_tuples(&read_counted_input(ctx)?);
                let total_sum: u64 = groups.iter().map(|t| t.val).sum();

                let s_rel = relation(cfg.probe_tuples, cfg.key_space, cfg.theta, cfg.seed + 1);
                ctx.compute(WorkClass::Scalar, cfg.probe_tuples as u64);
                let mut matches = 0u64;
                for t in &s_rel {
                    let mut slot = slot_of(t.key, slots);
                    loop {
                        let base = (slot * SLOT_BYTES) as usize;
                        let tag =
                            u64::from_le_bytes(table[base..base + 8].try_into().expect("8"));
                        if tag == 0 {
                            break;
                        }
                        if tag == t.key + 1 {
                            matches += 1;
                            break;
                        }
                        slot = (slot + 1) & (slots - 1);
                    }
                }

                let mut out = Vec::with_capacity(24);
                out.extend_from_slice(&matches.to_le_bytes());
                out.extend_from_slice(&(groups.len() as u64).to_le_bytes());
                out.extend_from_slice(&total_sum.to_le_bytes());
                write_counted_output(ctx, &out)
            }),
    );

    job.edge(scan, agg);
    job.edge(agg, join);
    job.build().expect("dbms query job is a valid DAG")
}

/// Decodes the join task's final output into
/// `(join_matches, groups, total_sum)`.
pub fn decode_result(out: &[u8]) -> (u64, u64, u64) {
    let payload = crate::util::decode_counted(out);
    (
        u64::from_le_bytes(payload[..8].try_into().expect("8")),
        u64::from_le_bytes(payload[8..16].try_into().expect("8")),
        u64::from_le_bytes(payload[16..24].try_into().expect("8")),
    )
}



/// Parameters for the external-sort top-k query.
#[derive(Debug, Clone, Copy)]
pub struct TopkConfig {
    /// Tuples in the scanned relation.
    pub tuples: usize,
    /// Distinct keys.
    pub key_space: usize,
    /// Key skew.
    pub theta: f64,
    /// Tuples per in-memory sort run.
    pub run_tuples: usize,
    /// Results to keep.
    pub k: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TopkConfig {
    fn default() -> Self {
        TopkConfig {
            tuples: 10_000,
            key_space: 512,
            theta: 0.6,
            run_tuples: 1_024,
            k: 32,
            seed: 99,
        }
    }
}

fn topk_order(a: &Tuple, b: &Tuple) -> std::cmp::Ordering {
    b.val.cmp(&a.val).then(a.key.cmp(&b.key))
}

/// Reference answer: the top-k tuples by value (ties by key).
pub fn expected_topk(cfg: &TopkConfig) -> Vec<Tuple> {
    let mut r = relation(cfg.tuples, cfg.key_space, cfg.theta, cfg.seed);
    r.sort_by(topk_order);
    r.truncate(cfg.k);
    r
}

/// Builds the external-sort top-k query:
/// `scan → sort-runs (private scratch + spill to global scratch) →
/// merge-topk (persistent output)`.
pub fn topk_job(cfg: TopkConfig) -> JobSpec {
    let mut job = JobBuilder::new("dbms-topk").global_state(4096);
    let rel_bytes = (cfg.tuples * TUPLE_BYTES + 8) as u64;

    let scan = job.task(
        TaskSpec::new("scan")
            .work(WorkClass::Scalar, cfg.tuples as u64)
            .output_bytes(rel_bytes)
            .body(move |ctx| {
                let r = relation(cfg.tuples, cfg.key_space, cfg.theta, cfg.seed);
                ctx.compute(WorkClass::Scalar, cfg.tuples as u64);
                write_counted_output(ctx, &encode_tuples(&r))
            }),
    );

    let run_bytes = (cfg.run_tuples * TUPLE_BYTES) as u64;
    let sort = job.task(
        TaskSpec::new("sort-runs")
            .work(WorkClass::Scalar, (cfg.tuples * 12) as u64)
            .mem_latency(LatencyClass::Low)
            .private_scratch(run_bytes)
            .global_scratch(rel_bytes)
            .output_bytes(64)
            .body(move |ctx| {
                let input = read_counted_input(ctx)?;
                let tuples = decode_tuples(&input);
                let spill = ctx.global_scratch()?;
                let mut spilled = 0u64;
                let mut runs = 0u64;
                for run in tuples.chunks(cfg.run_tuples) {
                    // Stage the run in private scratch (real traffic), sort
                    // it, spill the sorted run to the shared scratch.
                    let mut sorted = run.to_vec();
                    ctx.scratch_write(0, &encode_tuples(&sorted))?;
                    // n log n comparison work.
                    let n = sorted.len() as u64;
                    ctx.compute(WorkClass::Scalar, n * (64 - n.leading_zeros() as u64));
                    sorted.sort_by(topk_order);
                    let bytes = encode_tuples(&sorted);
                    ctx.async_write(spill, spilled, &bytes)?;
                    spilled += bytes.len() as u64;
                    runs += 1;
                }
                ctx.wait_async();
                ctx.publish("sorted-runs", spill);
                ctx.state_write(0, &runs.to_le_bytes())?;
                let mut manifest = Vec::new();
                manifest.extend_from_slice(&runs.to_le_bytes());
                manifest.extend_from_slice(&spilled.to_le_bytes());
                write_counted_output(ctx, &manifest)
            }),
    );

    let merge = job.task(
        TaskSpec::new("merge-topk")
            .work(WorkClass::Scalar, cfg.tuples as u64)
            .persistent(true)
            .output_bytes((cfg.k * TUPLE_BYTES + 8) as u64)
            .body(move |ctx| {
                let manifest = read_counted_input(ctx)?;
                let spilled =
                    u64::from_le_bytes(manifest[8..16].try_into().expect("8"));
                let runs_region = ctx
                    .lookup("sorted-runs")
                    .ok_or_else(|| TaskError::new("sorted runs not published"))?;
                let mut raw = vec![0u8; spilled as usize];
                ctx.async_read(runs_region, 0, &mut raw)?;
                ctx.overlap_compute(WorkClass::Scalar, cfg.tuples as u64);
                ctx.wait_async();
                // K-way merge over sorted runs, keeping only the top k.
                let run_len = cfg.run_tuples * TUPLE_BYTES;
                let mut heads: Vec<Vec<Tuple>> = raw
                    .chunks(run_len)
                    .map(decode_tuples)
                    .collect();
                let mut top: Vec<Tuple> = Vec::with_capacity(cfg.k);
                while top.len() < cfg.k {
                    let best = heads
                        .iter()
                        .enumerate()
                        .filter(|(_, r)| !r.is_empty())
                        .min_by(|a, b| topk_order(&a.1[0], &b.1[0]))
                        .map(|(i, _)| i);
                    match best {
                        Some(i) => top.push(heads[i].remove(0)),
                        None => break,
                    }
                }
                write_counted_output(ctx, &encode_tuples(&top))
            }),
    );

    job.edge(scan, sort);
    job.edge(sort, merge);
    job.build().expect("topk job is a valid DAG")
}

/// Decodes the merge task's output tuples.
pub fn decode_topk(out: &[u8]) -> Vec<Tuple> {
    decode_tuples(&crate::util::decode_counted(out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::final_output;
    use disagg_hwsim::presets::single_server;

    #[test]
    fn query_produces_the_reference_answer() {
        let cfg = DbmsConfig {
            tuples: 5_000,
            probe_tuples: 2_000,
            ..DbmsConfig::default()
        };
        let exp = expected(&cfg);
        let (topo, _) = single_server();
        let mut rt = Runtime::new(topo, RuntimeConfig::traced());
        let report = rt.execute(query_job(cfg)).unwrap();
        let out = final_output(&rt, &report, JobId(0), "hash-join");
        let (matches, groups, total) = decode_result(&out);
        assert_eq!(matches, exp.join_matches);
        assert_eq!(groups as usize, exp.groups);
        assert_eq!(total, exp.total_sum);
        assert!(report.placements_clean());
    }

    #[test]
    fn pipeline_uses_all_three_region_types() {
        let cfg = DbmsConfig {
            tuples: 1_000,
            probe_tuples: 500,
            ..DbmsConfig::default()
        };
        let (topo, _) = single_server();
        let mut rt = Runtime::new(topo, RuntimeConfig::traced());
        let report = rt.execute(query_job(cfg)).unwrap();
        let agg = report.task_by_name(JobId(0), "hash-aggregate").unwrap();
        let kinds: Vec<&str> = agg.placements.iter().map(|(k, _, _)| *k).collect();
        assert!(kinds.contains(&"private_scratch"));
        assert!(kinds.contains(&"global_scratch"));
        assert!(kinds.contains(&"output"));
    }

    #[test]
    fn expected_is_self_consistent() {
        let cfg = DbmsConfig::default();
        let e = expected(&cfg);
        assert!(e.filtered > 0 && e.filtered <= cfg.tuples);
        assert!(e.groups <= cfg.key_space);
        assert!(e.join_matches <= cfg.probe_tuples as u64);
        // With heavy skew and enough tuples most probe keys should match.
        assert!(e.join_matches > 0);
    }

    #[test]
    fn topk_query_matches_the_reference() {
        let cfg = TopkConfig::default();
        let exp = expected_topk(&cfg);
        let (topo, _) = single_server();
        let mut rt = Runtime::new(topo, RuntimeConfig::traced());
        let report = rt.execute(topk_job(cfg)).unwrap();
        let got = decode_topk(&final_output(&rt, &report, JobId(0), "merge-topk"));
        assert_eq!(got, exp);
        assert!(report.placements_clean());
    }

    #[test]
    fn topk_handles_k_larger_than_relation() {
        let cfg = TopkConfig {
            tuples: 10,
            k: 50,
            run_tuples: 4,
            ..TopkConfig::default()
        };
        let exp = expected_topk(&cfg);
        assert_eq!(exp.len(), 10);
        let (topo, _) = single_server();
        let mut rt = Runtime::new(topo, RuntimeConfig::traced());
        let report = rt.execute(topk_job(cfg)).unwrap();
        let got = decode_topk(&final_output(&rt, &report, JobId(0), "merge-topk"));
        assert_eq!(got, exp);
    }
}
