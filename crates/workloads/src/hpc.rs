//! HPC workload: an iterative 1-D stencil (heat diffusion).
//!
//! Table 3's HPC row: "node-local working mem." in **private scratch**,
//! "job metadata, node states" in **global state**, "object/blob storage"
//! in **global scratch**. The solver keeps its working grid in private
//! scratch, checkpoints snapshots into global scratch (the blob store),
//! and reduces to a verifiable sum at the end. Values are fixed-point
//! integers so the reference computation matches bit-for-bit.

use disagg_core::prelude::*;
use disagg_hwsim::compute::WorkClass;
use disagg_hwsim::rng::SimRng;

use crate::util::{read_counted_input, write_counted_output};

/// Parameters for the stencil job.
#[derive(Debug, Clone, Copy)]
pub struct HpcConfig {
    /// Grid cells.
    pub cells: usize,
    /// Smoothing sweeps.
    pub sweeps: usize,
    /// Checkpoint every `checkpoint_every` sweeps (0 = never).
    pub checkpoint_every: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for HpcConfig {
    fn default() -> Self {
        HpcConfig {
            cells: 8_192,
            sweeps: 10,
            checkpoint_every: 4,
            seed: 11,
        }
    }
}

fn initial_grid(cfg: &HpcConfig) -> Vec<i64> {
    let mut rng = SimRng::new(cfg.seed);
    (0..cfg.cells).map(|_| rng.next_below(1_000) as i64).collect()
}

fn sweep(grid: &[i64]) -> Vec<i64> {
    let n = grid.len();
    (0..n)
        .map(|i| {
            let l = grid[if i == 0 { n - 1 } else { i - 1 }];
            let r = grid[(i + 1) % n];
            // Integer diffusion: new = (l + 2*mid + r) / 4.
            (l + 2 * grid[i] + r) / 4
        })
        .collect()
}

/// Reference result: the grid sum after all sweeps.
pub fn expected_sum(cfg: &HpcConfig) -> i64 {
    let mut grid = initial_grid(cfg);
    for _ in 0..cfg.sweeps {
        grid = sweep(&grid);
    }
    grid.iter().sum()
}

fn encode_grid(grid: &[i64]) -> Vec<u8> {
    grid.iter().flat_map(|v| v.to_le_bytes()).collect()
}

fn decode_grid(bytes: &[u8]) -> Vec<i64> {
    bytes
        .chunks_exact(8)
        .map(|c| i64::from_le_bytes(c.try_into().expect("8")))
        .collect()
}

/// Builds the stencil job: `init → sweep ×N (with checkpoints) → reduce`.
pub fn stencil_job(cfg: HpcConfig) -> JobSpec {
    let mut job = JobBuilder::new("hpc-stencil").global_state(4096);
    let grid_bytes = (cfg.cells * 8) as u64;

    let init = job.task(
        TaskSpec::new("init")
            .work(WorkClass::Vector, cfg.cells as u64)
            .output_bytes(grid_bytes + 8)
            .body(move |ctx| {
                let grid = initial_grid(&cfg);
                ctx.compute(WorkClass::Vector, cfg.cells as u64);
                write_counted_output(ctx, &encode_grid(&grid))
            }),
    );

    let solve = job.task(
        TaskSpec::new("solve")
            .work(WorkClass::Vector, (cfg.cells * cfg.sweeps) as u64)
            .mem_latency(LatencyClass::Low)
            .private_scratch(2 * grid_bytes)
            .global_scratch(grid_bytes * 4)
            .output_bytes(grid_bytes + 8)
            .body(move |ctx| {
                let mut grid = decode_grid(&read_counted_input(ctx)?);
                // Load the working set into node-local scratch (charged).
                ctx.scratch_write(0, &encode_grid(&grid))?;
                let blob = ctx.global_scratch()?;
                let mut checkpoints = 0u64;
                for s in 0..cfg.sweeps {
                    grid = sweep(&grid);
                    ctx.compute(WorkClass::Vector, cfg.cells as u64);
                    // The working buffer ping-pongs in private scratch.
                    let half = (s % 2) as u64 * (cfg.cells as u64 * 8);
                    ctx.scratch_write(half, &encode_grid(&grid))?;
                    // Node-state heartbeat.
                    ctx.state_write(0, &(s as u64 + 1).to_le_bytes())?;
                    if cfg.checkpoint_every > 0 && (s + 1) % cfg.checkpoint_every == 0 {
                        // Checkpoint asynchronously into the blob store;
                        // the next sweep overlaps the flush.
                        ctx.async_write(
                            blob,
                            (checkpoints % 4) * (cfg.cells as u64 * 8),
                            &encode_grid(&grid),
                        )?;
                        checkpoints += 1;
                    }
                }
                ctx.wait_async();
                write_counted_output(ctx, &encode_grid(&grid))
            }),
    );

    let reduce = job.task(
        TaskSpec::new("reduce")
            .work(WorkClass::Scalar, cfg.cells as u64)
            .persistent(true)
            .output_bytes(64)
            .body(move |ctx| {
                let grid = decode_grid(&read_counted_input(ctx)?);
                ctx.compute(WorkClass::Scalar, grid.len() as u64);
                let sum: i64 = grid.iter().sum();
                write_counted_output(ctx, &sum.to_le_bytes())
            }),
    );

    job.edge(init, solve);
    job.edge(solve, reduce);
    job.build().expect("hpc job is a valid DAG")
}

/// Decodes the reduce task's output sum.
pub fn decode_sum(out: &[u8]) -> i64 {
    let payload = crate::util::decode_counted(out);
    i64::from_le_bytes(payload[..8].try_into().expect("8-byte sum"))
}



/// Parameters for the domain-decomposed stencil.
#[derive(Debug, Clone, Copy)]
pub struct DistributedConfig {
    /// Grid cells (split evenly across partitions).
    pub cells: usize,
    /// Partitions (parallel workers per sweep).
    pub partitions: usize,
    /// Smoothing sweeps (task layers).
    pub sweeps: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DistributedConfig {
    fn default() -> Self {
        DistributedConfig {
            cells: 4_096,
            partitions: 4,
            sweeps: 4,
            seed: 11,
        }
    }
}

/// Reflective-boundary sweep (used by the distributed variant so the
/// domain decomposition has well-defined edges).
fn sweep_reflective(grid: &[i64]) -> Vec<i64> {
    let n = grid.len();
    (0..n)
        .map(|i| {
            let l = grid[if i == 0 { 0 } else { i - 1 }];
            let r = grid[if i + 1 == n { n - 1 } else { i + 1 }];
            (l + 2 * grid[i] + r) / 4
        })
        .collect()
}

/// Reference result for the distributed stencil.
pub fn expected_distributed_sum(cfg: &DistributedConfig) -> i64 {
    let hcfg = HpcConfig {
        cells: cfg.cells,
        sweeps: 0,
        checkpoint_every: 0,
        seed: cfg.seed,
    };
    let mut grid = initial_grid(&hcfg);
    for _ in 0..cfg.sweeps {
        grid = sweep_reflective(&grid);
    }
    grid.iter().sum()
}

/// Serialized partition: 8-byte partition index, then the cells.
fn encode_part(part: usize, cells: &[i64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + cells.len() * 8);
    out.extend_from_slice(&(part as u64).to_le_bytes());
    out.extend(cells.iter().flat_map(|v| v.to_le_bytes()));
    out
}

fn decode_part(bytes: &[u8]) -> (usize, Vec<i64>) {
    let part = u64::from_le_bytes(bytes[..8].try_into().expect("8")) as usize;
    (part, decode_grid(&bytes[8..]))
}

/// Builds the domain-decomposed stencil: `init → (sweep layer x S of P
/// partition tasks, exchanging halos through the dataflow) → reduce`.
///
/// Each sweep task consumes its own partition plus its neighbours'
/// partitions from the previous layer (inputs are identified by an
/// embedded partition tag — fan-in order is a runtime detail), computes
/// the new interior using one halo cell from each side, and emits its
/// partition for the next layer.
pub fn distributed_stencil_job(cfg: DistributedConfig) -> JobSpec {
    assert!(cfg.partitions >= 2, "decomposition needs >= 2 partitions");
    assert!(cfg.cells.is_multiple_of(cfg.partitions), "cells must split evenly");
    let part_cells = cfg.cells / cfg.partitions;
    assert!(part_cells >= 2, "partitions need at least 2 cells");

    let mut job = JobBuilder::new("hpc-distributed").global_state(4096);
    let part_bytes = (8 + part_cells * 8 + 8) as u64;

    // Layer 0: per-partition init tasks.
    let mut prev: Vec<TaskId> = (0..cfg.partitions)
        .map(|p| {
            job.task(
                TaskSpec::new(format!("init-p{p}"))
                    .work(WorkClass::Vector, part_cells as u64)
                    .output_bytes(part_bytes)
                    .body(move |ctx| {
                        let hcfg = HpcConfig {
                            cells: cfg.cells,
                            sweeps: 0,
                            checkpoint_every: 0,
                            seed: cfg.seed,
                        };
                        let grid = initial_grid(&hcfg);
                        let mine = &grid[p * part_cells..(p + 1) * part_cells];
                        ctx.compute(WorkClass::Vector, part_cells as u64);
                        write_counted_output(ctx, &encode_part(p, mine))
                    }),
            )
        })
        .collect();

    // Sweep layers: each partition task reads itself + neighbours.
    for s in 0..cfg.sweeps {
        let layer: Vec<TaskId> = (0..cfg.partitions)
            .map(|p| {
                job.task(
                    TaskSpec::new(format!("sweep{s}-p{p}"))
                        .work(WorkClass::Vector, part_cells as u64)
                        .mem_latency(LatencyClass::Low)
                        .private_scratch((part_cells * 8) as u64)
                        .output_bytes(part_bytes)
                        .body(move |ctx| {
                            // Gather this partition and its halos from the
                            // tagged inputs.
                            let mut mine: Option<Vec<i64>> = None;
                            let mut left_halo: Option<i64> = None;
                            let mut right_halo: Option<i64> = None;
                            let inputs = ctx.inputs().to_vec();
                            for region in inputs {
                                let len = ctx.region_len(region);
                                let mut raw = vec![0u8; len as usize];
                                ctx.acc.read(
                                    region,
                                    0,
                                    &mut raw,
                                    AccessPattern::Sequential,
                                )?;
                                let payload = crate::util::decode_counted(&raw);
                                let (tag, cells) = decode_part(&payload);
                                if tag == p {
                                    mine = Some(cells);
                                } else if tag + 1 == p {
                                    left_halo = cells.last().copied();
                                } else if tag == p + 1 {
                                    right_halo = cells.first().copied();
                                }
                            }
                            let mine = mine
                                .ok_or_else(|| TaskError::new("own partition missing"))?;
                            // Reflective domain boundary when no neighbour.
                            let l = left_halo.unwrap_or(mine[0]);
                            let r = right_halo.unwrap_or(*mine.last().expect("nonempty"));
                            let n = mine.len();
                            let new: Vec<i64> = (0..n)
                                .map(|i| {
                                    let lv = if i == 0 { l } else { mine[i - 1] };
                                    let rv = if i + 1 == n { r } else { mine[i + 1] };
                                    (lv + 2 * mine[i] + rv) / 4
                                })
                                .collect();
                            ctx.scratch_write(0, &encode_grid(&new))?;
                            ctx.compute(WorkClass::Vector, n as u64);
                            ctx.state_write((p * 8) as u64, &(s as u64 + 1).to_le_bytes())?;
                            write_counted_output(ctx, &encode_part(p, &new))
                        }),
                )
            })
            .collect();
        for p in 0..cfg.partitions {
            // Halo edges: previous layer's p-1, p, p+1 feed this task.
            if p > 0 {
                job.edge(prev[p - 1], layer[p]);
            }
            job.edge(prev[p], layer[p]);
            if p + 1 < cfg.partitions {
                job.edge(prev[p + 1], layer[p]);
            }
        }
        prev = layer;
    }

    // Reduce: fan-in of all final partitions.
    let reduce = job.task(
        TaskSpec::new("reduce")
            .work(WorkClass::Scalar, cfg.cells as u64)
            .persistent(true)
            .output_bytes(64)
            .body(move |ctx| {
                let mut sum = 0i64;
                let inputs = ctx.inputs().to_vec();
                for region in inputs {
                    let len = ctx.region_len(region);
                    let mut raw = vec![0u8; len as usize];
                    ctx.acc
                        .read(region, 0, &mut raw, AccessPattern::Sequential)?;
                    let payload = crate::util::decode_counted(&raw);
                    let (_, cells) = decode_part(&payload);
                    sum += cells.iter().sum::<i64>();
                }
                ctx.compute(WorkClass::Scalar, cfg.cells as u64);
                write_counted_output(ctx, &sum.to_le_bytes())
            }),
    );
    for &t in &prev {
        job.edge(t, reduce);
    }
    job.build().expect("distributed stencil is a valid DAG")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::final_output;
    use disagg_hwsim::presets::single_server;

    #[test]
    fn stencil_matches_the_reference_sum() {
        let cfg = HpcConfig::default();
        let (topo, _) = single_server();
        let mut rt = Runtime::new(topo, RuntimeConfig::traced());
        let report = rt.execute(stencil_job(cfg)).unwrap();
        let out = final_output(&rt, &report, JobId(0), "reduce");
        assert_eq!(decode_sum(&out), expected_sum(&cfg));
        assert!(report.placements_clean());
    }

    #[test]
    fn checkpoints_flow_to_the_blob_store() {
        let cfg = HpcConfig {
            sweeps: 8,
            checkpoint_every: 2,
            ..HpcConfig::default()
        };
        let (topo, _) = single_server();
        let mut rt = Runtime::new(topo, RuntimeConfig::traced());
        let report = rt.execute(stencil_job(cfg)).unwrap();
        let solve = report.task_by_name(JobId(0), "solve").unwrap();
        assert_eq!(solve.stats.async_ops, 4, "8 sweeps / every 2 = 4 checkpoints");
    }

    #[test]
    fn sweeps_conserve_mass_approximately() {
        // The integer stencil only loses mass to rounding; the sum must
        // never grow.
        let cfg = HpcConfig::default();
        let start: i64 = initial_grid(&cfg).iter().sum();
        assert!(expected_sum(&cfg) <= start);
        assert!(expected_sum(&cfg) > 0);
    }

    #[test]
    fn distributed_stencil_matches_the_sequential_reference() {
        let cfg = DistributedConfig::default();
        let (topo, _) = single_server();
        let mut rt = Runtime::new(topo, RuntimeConfig::traced());
        let report = rt.execute(distributed_stencil_job(cfg)).unwrap();
        let got = decode_sum(&final_output(&rt, &report, JobId(0), "reduce"));
        assert_eq!(got, expected_distributed_sum(&cfg));
        assert!(report.placements_clean());
        // P inits + P x S sweeps + reduce.
        assert_eq!(
            report.tasks.len(),
            cfg.partitions * (cfg.sweeps + 1) + 1
        );
    }

    #[test]
    fn distributed_stencil_parallelizes_across_partitions() {
        // Sweep tasks of the same layer overlap in virtual time.
        let cfg = DistributedConfig {
            cells: 8_192,
            partitions: 4,
            sweeps: 2,
            ..DistributedConfig::default()
        };
        let (topo, _) = single_server();
        let mut rt = Runtime::new(topo, RuntimeConfig::traced());
        let report = rt.execute(distributed_stencil_job(cfg)).unwrap();
        let layer: Vec<_> = report
            .tasks
            .iter()
            .filter(|t| t.name.starts_with("sweep0-"))
            .collect();
        assert_eq!(layer.len(), 4);
        let earliest_finish = layer.iter().map(|t| t.finish).min().unwrap();
        let latest_start = layer.iter().map(|t| t.start).max().unwrap();
        assert!(
            latest_start < earliest_finish,
            "layer tasks should overlap: starts {:?} finishes {:?}",
            layer.iter().map(|t| t.start).collect::<Vec<_>>(),
            layer.iter().map(|t| t.finish).collect::<Vec<_>>()
        );
    }

    #[test]
    fn distributed_stencil_works_on_a_rack() {
        let cfg = DistributedConfig {
            cells: 2_048,
            partitions: 4,
            sweeps: 3,
            ..DistributedConfig::default()
        };
        let (topo, _) = disagg_hwsim::presets::disaggregated_rack(3, 16, 2, 64);
        let mut rt = Runtime::new(topo, RuntimeConfig::traced());
        let report = rt.execute(distributed_stencil_job(cfg)).unwrap();
        let got = decode_sum(&final_output(&rt, &report, JobId(0), "reduce"));
        assert_eq!(got, expected_distributed_sum(&cfg));
    }
}
