//! Deterministic workload generators.
//!
//! Every experiment input — relations, key distributions, video frames,
//! event streams, job arrival offsets — comes from seeded generators so
//! runs are reproducible bit-for-bit. The Zipf sampler matters because
//! pooling economics (experiment E4/E11) depend on *skewed* per-job
//! memory demand, which is what makes static provisioning wasteful.

use disagg_hwsim::rng::SimRng;

/// A tuple of the synthetic relations: a key and a payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tuple {
    /// Join/group key.
    pub key: u64,
    /// Payload value.
    pub val: u64,
}

/// Fixed serialized width of a [`Tuple`] (two little-endian u64s).
pub const TUPLE_BYTES: usize = 16;

impl Tuple {
    /// Serializes into 16 bytes.
    pub fn encode(&self) -> [u8; TUPLE_BYTES] {
        let mut out = [0u8; TUPLE_BYTES];
        out[..8].copy_from_slice(&self.key.to_le_bytes());
        out[8..].copy_from_slice(&self.val.to_le_bytes());
        out
    }

    /// Deserializes from 16 bytes.
    pub fn decode(buf: &[u8]) -> Tuple {
        Tuple {
            key: u64::from_le_bytes(buf[..8].try_into().expect("8 bytes")),
            val: u64::from_le_bytes(buf[8..16].try_into().expect("8 bytes")),
        }
    }
}

/// Encodes a whole slice of tuples.
pub fn encode_tuples(tuples: &[Tuple]) -> Vec<u8> {
    let mut out = Vec::with_capacity(tuples.len() * TUPLE_BYTES);
    for t in tuples {
        out.extend_from_slice(&t.encode());
    }
    out
}

/// Decodes a byte buffer into tuples (truncating any partial trailer).
pub fn decode_tuples(buf: &[u8]) -> Vec<Tuple> {
    buf.chunks_exact(TUPLE_BYTES).map(Tuple::decode).collect()
}

/// A Zipf(θ) sampler over `[0, n)` using the classic CDF-inversion with
/// precomputed harmonic normalization (exact, not approximate).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler over `n` items with skew `theta` (0 = uniform,
    /// ~1 = classic Zipf, >1 heavily skewed).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `theta` is negative/non-finite.
    pub fn new(n: usize, theta: f64) -> Zipf {
        assert!(n > 0, "Zipf needs at least one item");
        assert!(theta >= 0.0 && theta.is_finite(), "bad skew {theta}");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 1..=n {
            acc += 1.0 / (i as f64).powf(theta);
            cdf.push(acc);
        }
        let norm = acc;
        for v in &mut cdf {
            *v /= norm;
        }
        Zipf { cdf }
    }

    /// Samples one rank (0 = most popular).
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let u = rng.next_f64();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// Generates a relation of `n` tuples with Zipf-distributed keys over
/// `key_space` and uniform payloads in `[0, 1000)`.
pub fn relation(n: usize, key_space: usize, theta: f64, seed: u64) -> Vec<Tuple> {
    let mut rng = SimRng::new(seed);
    let zipf = Zipf::new(key_space, theta);
    (0..n)
        .map(|_| Tuple {
            key: zipf.sample(&mut rng) as u64,
            val: rng.next_below(1000),
        })
        .collect()
}

/// A synthetic CCTV-style frame: a seeded byte pattern with a small
/// number of embedded "faces" (marker bytes) the pipeline can count.
pub fn frame(width: usize, height: usize, faces: usize, seed: u64) -> Vec<u8> {
    let mut rng = SimRng::new(seed);
    let mut buf = vec![0u8; width * height];
    rng.fill_bytes(&mut buf);
    // Clear marker value everywhere, then stamp exactly `faces` markers.
    for b in buf.iter_mut() {
        if *b == 0xFA {
            *b = 0;
        }
    }
    for _ in 0..faces {
        let pos = rng.next_below((width * height) as u64) as usize;
        buf[pos] = 0xFA;
    }
    buf
}

/// Counts the face markers in a frame (the "recognition" ground truth).
pub fn count_faces(frame: &[u8]) -> usize {
    frame.iter().filter(|&&b| b == 0xFA).count()
}

/// Deterministic event stream for the streaming workload: `(timestamp_ms,
/// key, value)` triples with monotone timestamps.
pub fn event_stream(n: usize, keys: usize, seed: u64) -> Vec<(u64, u64, u64)> {
    let mut rng = SimRng::new(seed);
    let mut t = 0u64;
    (0..n)
        .map(|_| {
            t += rng.next_below(10);
            (t, rng.next_below(keys as u64), rng.next_below(100))
        })
        .collect()
}

/// Per-job memory demands (bytes) drawn from a skewed distribution, for
/// the pooling-economics experiments: most jobs are small, a few are
/// huge — the shape that makes peak provisioning wasteful.
pub fn skewed_demands(jobs: usize, min: u64, max: u64, theta: f64, seed: u64) -> Vec<u64> {
    let mut rng = SimRng::new(seed);
    let zipf = Zipf::new(64, theta);
    (0..jobs)
        .map(|_| {
            let rank = zipf.sample(&mut rng) as u64;
            // Rank 0 → max demand, deep ranks → near min (quadratic
            // falloff keeps the tail genuinely small).
            let frac = 1.0 / ((rank + 1) * (rank + 1)) as f64;
            min + ((max - min) as f64 * frac) as u64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuples_round_trip() {
        let t = Tuple { key: 0xDEAD, val: 42 };
        assert_eq!(Tuple::decode(&t.encode()), t);
        let batch = vec![t, Tuple { key: 1, val: 2 }];
        assert_eq!(decode_tuples(&encode_tuples(&batch)), batch);
    }

    #[test]
    fn decode_ignores_partial_trailer() {
        let mut bytes = encode_tuples(&[Tuple { key: 1, val: 2 }]);
        bytes.extend_from_slice(&[0u8; 5]);
        assert_eq!(decode_tuples(&bytes).len(), 1);
    }

    #[test]
    fn zipf_zero_theta_is_roughly_uniform() {
        let z = Zipf::new(10, 0.0);
        let mut rng = SimRng::new(1);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 800.0, "counts {counts:?}");
        }
    }

    #[test]
    fn zipf_high_theta_concentrates_on_rank_zero() {
        let z = Zipf::new(1000, 1.2);
        let mut rng = SimRng::new(2);
        let hits = (0..10_000).filter(|_| z.sample(&mut rng) == 0).count();
        assert!(hits > 1_000, "rank 0 got only {hits}/10000");
    }

    #[test]
    fn zipf_samples_stay_in_range() {
        let z = Zipf::new(7, 0.9);
        let mut rng = SimRng::new(3);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 7);
        }
    }

    #[test]
    fn relation_is_deterministic_per_seed() {
        let a = relation(1000, 100, 0.8, 42);
        let b = relation(1000, 100, 0.8, 42);
        let c = relation(1000, 100, 0.8, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.iter().all(|t| t.key < 100 && t.val < 1000));
    }

    #[test]
    fn frames_embed_exactly_the_requested_faces() {
        for faces in [0usize, 1, 5, 20] {
            let f = frame(320, 240, faces, 7);
            // Markers can collide on the same position, so ≤; with a
            // 76 800-pixel frame collisions are vanishingly rare.
            assert_eq!(count_faces(&f), faces, "faces={faces}");
        }
    }

    #[test]
    fn event_stream_timestamps_are_monotone() {
        let ev = event_stream(10_000, 16, 5);
        assert!(ev.windows(2).all(|w| w[0].0 <= w[1].0));
        assert!(ev.iter().all(|&(_, k, v)| k < 16 && v < 100));
    }

    #[test]
    fn skewed_demands_are_skewed_and_bounded() {
        let d = skewed_demands(200, 1 << 20, 1 << 30, 1.1, 9);
        assert!(d.iter().all(|&x| (1 << 20..=1 << 30).contains(&x)));
        let max = *d.iter().max().unwrap();
        let mean = d.iter().sum::<u64>() / d.len() as u64;
        assert!(max > 3 * mean, "max {max} vs mean {mean}: not skewed");
    }
}
