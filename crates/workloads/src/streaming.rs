//! Streaming workload: tumbling-window aggregation.
//!
//! Table 3's streaming row: "cache/buffer (send, recv.)" in **private
//! scratch**, "cluster/worker state" in **global state**, "result/data
//! cache" in **global scratch**. The job ingests a deterministic event
//! stream, aggregates per-key sums over tumbling windows using an
//! in-scratch receive buffer, appends window results to the result cache,
//! and persists a final summary.

use disagg_core::prelude::*;
use disagg_hwsim::compute::WorkClass;

use crate::gen::event_stream;
use crate::util::{read_counted_input, write_counted_output};

/// Parameters for the streaming job.
#[derive(Debug, Clone, Copy)]
pub struct StreamConfig {
    /// Events in the stream.
    pub events: usize,
    /// Distinct keys.
    pub keys: usize,
    /// Tumbling window width in stream-time milliseconds.
    pub window_ms: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            events: 20_000,
            keys: 32,
            window_ms: 1_000,
            seed: 13,
        }
    }
}

/// A closed window's aggregate: `(window_index, events, value_sum)`.
pub type WindowAgg = (u64, u64, u64);

/// Reference implementation of the window aggregation.
pub fn expected_windows(cfg: &StreamConfig) -> Vec<WindowAgg> {
    let mut out: Vec<WindowAgg> = Vec::new();
    for (ts, _key, val) in event_stream(cfg.events, cfg.keys, cfg.seed) {
        let w = ts / cfg.window_ms;
        match out.last_mut() {
            Some(last) if last.0 == w => {
                last.1 += 1;
                last.2 += val;
            }
            _ => out.push((w, 1, val)),
        }
    }
    out
}

const EVENT_BYTES: usize = 24;

fn encode_events(ev: &[(u64, u64, u64)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(ev.len() * EVENT_BYTES);
    for &(a, b, c) in ev {
        out.extend_from_slice(&a.to_le_bytes());
        out.extend_from_slice(&b.to_le_bytes());
        out.extend_from_slice(&c.to_le_bytes());
    }
    out
}

fn decode_events(bytes: &[u8]) -> Vec<(u64, u64, u64)> {
    bytes
        .chunks_exact(EVENT_BYTES)
        .map(|c| {
            (
                u64::from_le_bytes(c[..8].try_into().expect("8")),
                u64::from_le_bytes(c[8..16].try_into().expect("8")),
                u64::from_le_bytes(c[16..24].try_into().expect("8")),
            )
        })
        .collect()
}

/// Builds the streaming job: `source → window-aggregate → sink`.
pub fn windowed_job(cfg: StreamConfig) -> JobSpec {
    let mut job = JobBuilder::new("stream-windows")
        .defaults(TaskProps {
            streaming: Some(true),
            ..TaskProps::default()
        })
        .global_state(4096);
    let stream_bytes = (cfg.events * EVENT_BYTES) as u64;

    let source = job.task(
        TaskSpec::new("source")
            .work(WorkClass::Scalar, cfg.events as u64)
            .output_bytes(stream_bytes + 8)
            .body(move |ctx| {
                let ev = event_stream(cfg.events, cfg.keys, cfg.seed);
                ctx.compute(WorkClass::Scalar, cfg.events as u64);
                write_counted_output(ctx, &encode_events(&ev))
            }),
    );

    let recv_buf = 64 * EVENT_BYTES as u64;
    let agg = job.task(
        TaskSpec::new("window-aggregate")
            .work(WorkClass::Scalar, cfg.events as u64)
            .mem_latency(LatencyClass::Low)
            .private_scratch(recv_buf)
            .global_scratch(stream_bytes.max(4096))
            .output_bytes(stream_bytes + 8)
            .body(move |ctx| {
                let events = decode_events(&read_counted_input(ctx)?);
                let results = ctx.global_scratch()?;
                let mut windows: Vec<WindowAgg> = Vec::new();
                let mut appended = 0u64;
                for batch in events.chunks(64) {
                    // Stage the batch through the receive buffer (charged
                    // as real scratch traffic).
                    ctx.scratch_write(0, &encode_events(batch))?;
                    ctx.compute(WorkClass::Scalar, batch.len() as u64);
                    for &(ts, _key, val) in batch {
                        let w = ts / cfg.window_ms;
                        match windows.last_mut() {
                            Some(last) if last.0 == w => {
                                last.1 += 1;
                                last.2 += val;
                            }
                            _ => {
                                // A window closed: append it to the result
                                // cache asynchronously.
                                if let Some(&closed) = windows.last() {
                                    ctx.async_write(
                                        results,
                                        appended * EVENT_BYTES as u64,
                                        &encode_events(&[closed]),
                                    )?;
                                    appended += 1;
                                }
                                windows.push((w, 1, val));
                            }
                        }
                    }
                    // Cluster/worker heartbeat.
                    ctx.state_write(0, &appended.to_le_bytes())?;
                }
                ctx.wait_async();
                ctx.publish("results", results);
                write_counted_output(ctx, &encode_events(&windows))
            }),
    );

    let sink = job.task(
        TaskSpec::new("sink")
            .work(WorkClass::Scalar, 1_000)
            .persistent(true)
            .output_bytes(stream_bytes + 8)
            .body(move |ctx| {
                let windows = decode_events(&read_counted_input(ctx)?);
                ctx.compute(WorkClass::Scalar, windows.len() as u64);
                write_counted_output(ctx, &encode_events(&windows))
            }),
    );

    job.edge(source, agg);
    job.edge(agg, sink);
    job.build().expect("streaming job is a valid DAG")
}

/// Decodes the sink's persistent output into window aggregates.
pub fn decode_result(out: &[u8]) -> Vec<WindowAgg> {
    decode_events(&crate::util::decode_counted(out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::final_output;
    use disagg_hwsim::presets::single_server;

    #[test]
    fn windows_match_the_reference() {
        let cfg = StreamConfig {
            events: 5_000,
            ..StreamConfig::default()
        };
        let (topo, _) = single_server();
        let mut rt = Runtime::new(topo, RuntimeConfig::traced());
        let report = rt.execute(windowed_job(cfg)).unwrap();
        let got = decode_result(&final_output(&rt, &report, JobId(0), "sink"));
        assert_eq!(got, expected_windows(&cfg));
        assert!(report.placements_clean());
    }

    #[test]
    fn event_totals_are_conserved() {
        let cfg = StreamConfig::default();
        let windows = expected_windows(&cfg);
        let total_events: u64 = windows.iter().map(|w| w.1).sum();
        assert_eq!(total_events, cfg.events as u64);
        let raw_sum: u64 = event_stream(cfg.events, cfg.keys, cfg.seed)
            .iter()
            .map(|e| e.2)
            .sum();
        let win_sum: u64 = windows.iter().map(|w| w.2).sum();
        assert_eq!(raw_sum, win_sum);
    }

    #[test]
    fn smaller_windows_produce_more_aggregates() {
        let coarse = expected_windows(&StreamConfig {
            window_ms: 5_000,
            ..StreamConfig::default()
        });
        let fine = expected_windows(&StreamConfig {
            window_ms: 100,
            ..StreamConfig::default()
        });
        assert!(fine.len() > coarse.len());
    }
}
