//! The paper's running example: the hospital CCTV dataflow (Figure 2).
//!
//! One job, five tasks:
//!
//! - `T1` **Preprocessing** (GPU, confidential, low-latency memory):
//!   decodes CCTV frames.
//! - `T2` **Face Recognition** (GPU, confidential, low-latency memory):
//!   finds faces and cross-references the employee/patient database.
//! - `T3` **Track Hours** (CPU, confidential): updates employee hours.
//! - `T4` **Compute Utilization** (CPU, *not* confidential): feeds the
//!   public emergency-ward dashboard.
//! - `T5` **Alert Caregivers** (CPU, confidential, *persistent*): missing
//!   patients must survive a crash.
//!
//! The face markers planted by the generator make every stage's output
//! verifiable against [`expected`].

use disagg_core::prelude::*;
use disagg_hwsim::compute::WorkClass;

use crate::gen::{count_faces, frame};
use crate::util::{read_counted_input, write_counted_output};

/// Parameters for the hospital job.
#[derive(Debug, Clone, Copy)]
pub struct HospitalConfig {
    /// Frames in the CCTV batch.
    pub frames: usize,
    /// Frame width in pixels (1 byte per pixel).
    pub width: usize,
    /// Frame height in pixels.
    pub height: usize,
    /// Faces per frame (ground truth for recognition).
    pub faces_per_frame: usize,
    /// Fraction of recognized faces that are employees (in 1/256 units).
    pub employee_ratio: u8,
    /// RNG seed.
    pub seed: u64,
    /// Declare the CCTV front of the pipeline (T1→T2) streaming, so the
    /// recognizer starts on the first decoded frames instead of the full
    /// batch — Figure 2's video feed is the paper's own streaming case.
    pub streaming: bool,
}

impl Default for HospitalConfig {
    fn default() -> Self {
        HospitalConfig {
            frames: 8,
            width: 320,
            height: 240,
            faces_per_frame: 6,
            employee_ratio: 128,
            seed: 2023,
            streaming: false,
        }
    }
}

impl HospitalConfig {
    /// Bytes per frame.
    pub fn frame_bytes(&self) -> usize {
        self.width * self.height
    }
}

/// Ground truth for the whole dataflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HospitalExpected {
    /// Total faces recognized across all frames.
    pub faces: u64,
    /// Faces classified as employees (tracked hours).
    pub employees: u64,
    /// Faces classified as patients.
    pub patients: u64,
}

/// Deterministic employee/patient classification: hash of (frame, index).
fn is_employee(cfg: &HospitalConfig, frame_idx: usize, face_idx: usize) -> bool {
    let h = (frame_idx as u64)
        .wrapping_mul(0x9E37_79B9)
        .wrapping_add(face_idx as u64)
        .wrapping_mul(0x85EB_CA6B);
    (h >> 32) as u8 <= cfg.employee_ratio
}

/// Reference computation of the pipeline's results.
pub fn expected(cfg: &HospitalConfig) -> HospitalExpected {
    let mut faces = 0u64;
    let mut employees = 0u64;
    for f in 0..cfg.frames {
        let n = count_faces(&frame(cfg.width, cfg.height, cfg.faces_per_frame, cfg.seed + f as u64));
        for i in 0..n {
            if is_employee(cfg, f, i) {
                employees += 1;
            }
        }
        faces += n as u64;
    }
    HospitalExpected {
        faces,
        employees,
        patients: faces - employees,
    }
}

/// Builds the Figure 2 job.
pub fn hospital_job(cfg: HospitalConfig) -> JobSpec {
    let mut job = JobBuilder::new("hospital")
        .defaults(TaskProps {
            confidential: Some(true),
            ..TaskProps::default()
        })
        .global_state(4096);

    let frame_bytes = cfg.frame_bytes();
    let batch_bytes = (cfg.frames * frame_bytes) as u64;

    let t1 = job.task(
        TaskSpec::new("preprocessing")
            .on(ComputeKind::Gpu)
            .streaming(cfg.streaming)
            .mem_latency(LatencyClass::Low)
            .work(WorkClass::Vector, batch_bytes)
            .private_scratch(frame_bytes as u64)
            .output_bytes(batch_bytes + 8)
            .body(move |ctx| {
                // "Decode" each frame into scratch, then emit the batch.
                let mut batch = Vec::with_capacity(batch_bytes as usize);
                for f in 0..cfg.frames {
                    let img = frame(cfg.width, cfg.height, cfg.faces_per_frame, cfg.seed + f as u64);
                    ctx.scratch_write(0, &img[..64.min(img.len())])?;
                    ctx.compute(WorkClass::Vector, frame_bytes as u64);
                    batch.extend_from_slice(&img);
                }
                write_counted_output(ctx, &batch)
            }),
    );

    let t2 = job.task(
        TaskSpec::new("face-recognition")
            .on(ComputeKind::Gpu)
            .streaming(cfg.streaming)
            .mem_latency(LatencyClass::Low)
            .work(WorkClass::Tensor, batch_bytes)
            .private_scratch((frame_bytes as u64) * 2)
            .output_bytes((cfg.frames * cfg.faces_per_frame * 16 + 16) as u64)
            .body(move |ctx| {
                let batch = read_counted_input(ctx)?;
                // Recognize: scan each frame for markers (tensor work),
                // cross-reference the (confidential) directory.
                let mut records = Vec::new();
                for (f, img) in batch.chunks(frame_bytes).enumerate() {
                    ctx.compute(WorkClass::Tensor, frame_bytes as u64);
                    let n = count_faces(img);
                    for i in 0..n {
                        let employee = is_employee(&cfg, f, i);
                        records.extend_from_slice(&(f as u64).to_le_bytes());
                        records.extend_from_slice(&(u64::from(employee)).to_le_bytes());
                    }
                }
                write_counted_output(ctx, &records)
            }),
    );

    let t3 = job.task(
        TaskSpec::new("track-hours")
            .on(ComputeKind::Cpu)
            .work(WorkClass::Scalar, (cfg.frames * cfg.faces_per_frame) as u64)
            .private_scratch(4096)
            .output_bytes(64)
            .body(move |ctx| {
                let records = read_counted_input(ctx)?;
                let mut hours = 0u64;
                for rec in records.chunks_exact(16) {
                    let employee = u64::from_le_bytes(rec[8..16].try_into().expect("8"));
                    ctx.compute(WorkClass::Scalar, 1);
                    hours += employee;
                }
                // Working-hours ledger update in the (confidential) state.
                ctx.state_write(0, &hours.to_le_bytes())?;
                write_counted_output(ctx, &hours.to_le_bytes())
            }),
    );

    let t4 = job.task(
        TaskSpec::new("compute-utilization")
            .on(ComputeKind::Cpu)
            .confidential(false)
            .work(WorkClass::Scalar, (cfg.frames * cfg.faces_per_frame) as u64)
            .output_bytes(64)
            .body(move |ctx| {
                let records = read_counted_input(ctx)?;
                // The public dashboard only sees a count, not identities.
                let total = (records.len() / 16) as u64;
                write_counted_output(ctx, &total.to_le_bytes())
            }),
    );

    let t5 = job.task(
        TaskSpec::new("alert-caregivers")
            .on(ComputeKind::Cpu)
            .persistent(true)
            .work(WorkClass::Scalar, (cfg.frames * cfg.faces_per_frame) as u64)
            .output_bytes(4096)
            .body(move |ctx| {
                let records = read_counted_input(ctx)?;
                let mut patients = 0u64;
                for rec in records.chunks_exact(16) {
                    let employee = u64::from_le_bytes(rec[8..16].try_into().expect("8"));
                    patients += 1 - employee;
                }
                // Missing-patient list must survive a crash — the output
                // region was declared persistent.
                write_counted_output(ctx, &patients.to_le_bytes())
            }),
    );

    job.edge(t1, t2);
    job.edge(t2, t3);
    job.edge(t2, t4);
    job.edge(t2, t5);
    job.build().expect("hospital job is a valid DAG")
}

/// Decodes a task's single-u64 counted output.
pub fn decode_count(out: &[u8]) -> u64 {
    let payload = crate::util::decode_counted(out);
    u64::from_le_bytes(payload[..8].try_into().expect("8-byte count"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::final_output;
    use disagg_hwsim::presets::single_server;

    #[test]
    fn hospital_pipeline_matches_ground_truth() {
        let cfg = HospitalConfig::default();
        let exp = expected(&cfg);
        let (topo, _) = single_server();
        let mut rt = Runtime::new(topo, RuntimeConfig::traced());
        let report = rt.execute(hospital_job(cfg)).unwrap();
        assert!(report.placements_clean(), "{:?}", report.violations);

        let patients = decode_count(&final_output(&rt, &report, JobId(0), "alert-caregivers"));
        assert_eq!(patients, exp.patients);
    }

    #[test]
    fn gpu_stages_run_on_the_gpu_with_gddr_scratch() {
        let cfg = HospitalConfig::default();
        let (topo, ids) = single_server();
        let mut rt = Runtime::new(topo, RuntimeConfig::traced());
        let report = rt.execute(hospital_job(cfg)).unwrap();
        for name in ["preprocessing", "face-recognition"] {
            let t = report.task_by_name(JobId(0), name).unwrap();
            assert_eq!(rt.topology().compute(t.compute).kind, ComputeKind::Gpu);
            let (_, _, dev) = t
                .placements
                .iter()
                .find(|(k, _, _)| *k == "private_scratch")
                .expect("scratch placed");
            assert_eq!(*dev, ids.gddr, "{name} scratch should be GDDR");
        }
    }

    #[test]
    fn persistent_alert_output_lands_on_persistent_memory_and_survives() {
        let cfg = HospitalConfig::default();
        let (topo, _) = single_server();
        let mut rt = Runtime::new(topo, RuntimeConfig::traced());
        let report = rt.execute(hospital_job(cfg)).unwrap();
        let t5 = report.task_by_name(JobId(0), "alert-caregivers").unwrap();
        let (_, region, dev) = t5
            .placements
            .iter()
            .find(|(k, _, _)| *k == "output")
            .expect("alert output placed");
        assert!(rt.topology().mem(*dev).persistent);
        assert!(rt.manager().is_live(*region), "alerts survive job completion");
    }

    #[test]
    fn expected_counts_are_consistent() {
        let cfg = HospitalConfig::default();
        let e = expected(&cfg);
        assert_eq!(e.faces, e.employees + e.patients);
        assert!(e.faces as usize <= cfg.frames * cfg.faces_per_frame);
        assert!(e.faces > 0);
    }

    #[test]
    fn streaming_cctv_pipelines_the_gpu_stages() {
        let batch_cfg = HospitalConfig { frames: 16, ..HospitalConfig::default() };
        let stream_cfg = HospitalConfig { streaming: true, ..batch_cfg };
        let exp = expected(&batch_cfg);
        let run = |cfg: HospitalConfig| {
            let (topo, _) = single_server();
            let mut rt = Runtime::new(topo, RuntimeConfig::traced());
            let report = rt.execute(hospital_job(cfg)).unwrap();
            let patients =
                decode_count(&final_output(&rt, &report, JobId(0), "alert-caregivers"));
            (report.makespan, patients)
        };
        let (batch, p1) = run(batch_cfg);
        let (streamed, p2) = run(stream_cfg);
        assert_eq!(p1, exp.patients);
        assert_eq!(p2, exp.patients, "streaming must not change answers");
        assert!(
            streamed < batch,
            "streaming T1→T2 should overlap: {streamed} vs {batch}"
        );
    }
}
