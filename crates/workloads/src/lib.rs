//! Application workloads: the four rows of the paper's Table 3.
//!
//! Each module maps one application class onto the three predefined
//! Memory Regions exactly as Table 3 prescribes, with real, verifiable
//! computation (reference implementations compute the expected answers):
//!
//! | Module        | Private Scratch      | Global State       | Global Scratch        |
//! |---------------|----------------------|--------------------|-----------------------|
//! | [`dbms`]      | operator hash tables | latches            | reusable agg index    |
//! | [`ml`]        | training state       | worker state       | cached transformed data |
//! | [`hpc`]       | working grid         | node heartbeats    | checkpoint blob store |
//! | [`streaming`] | recv buffers         | cluster state      | result cache          |
//!
//! [`gen`] provides the deterministic generators (Zipf keys, relations,
//! frames, event streams, skewed per-job demands) every experiment is
//! seeded from.

pub mod dbms;
pub mod gen;
pub mod hospital;
pub mod hpc;
pub mod ml;
pub mod streaming;
pub mod util;
