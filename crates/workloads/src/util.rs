//! Small helpers shared by the application workloads.

use disagg_core::prelude::*;
use disagg_region::region::OwnerId;

/// Writes a `count`-prefixed payload into the task's output region:
/// 8 bytes of little-endian length, then the payload.
pub fn write_counted_output(
    ctx: &mut TaskCtx<'_, '_>,
    payload: &[u8],
) -> Result<(), TaskError> {
    ctx.write_output(0, &(payload.len() as u64).to_le_bytes())?;
    if !payload.is_empty() {
        ctx.write_output(8, payload)?;
    }
    Ok(())
}

/// Reads a `count`-prefixed payload from the task's (first) input region.
pub fn read_counted_input(ctx: &mut TaskCtx<'_, '_>) -> Result<Vec<u8>, TaskError> {
    let mut hdr = [0u8; 8];
    ctx.read_input(0, &mut hdr)?;
    let len = u64::from_le_bytes(hdr) as usize;
    let mut payload = vec![0u8; len];
    if len > 0 {
        ctx.read_input(8, &mut payload)?;
    }
    Ok(payload)
}

/// Fetches the bytes of a finished task's (persistent, App-scoped) output
/// region. Panics with a clear message when the task or region is gone —
/// this is a test/experiment helper, not production API.
pub fn final_output(rt: &Runtime, report: &RunReport, job: JobId, task_name: &str) -> Vec<u8> {
    let task = report
        .task_by_name(job, task_name)
        .unwrap_or_else(|| panic!("no task '{task_name}' in report"));
    let (_, region, _) = task
        .placements
        .iter()
        .find(|(k, _, _)| *k == "output")
        .unwrap_or_else(|| panic!("task '{task_name}' has no output placement"));
    rt.manager()
        .bytes(*region, OwnerId::App)
        .unwrap_or_else(|e| panic!("output of '{task_name}' unreadable: {e}"))
        .to_vec()
}

/// Decodes a count-prefixed payload from raw region bytes.
pub fn decode_counted(bytes: &[u8]) -> Vec<u8> {
    let len = u64::from_le_bytes(bytes[..8].try_into().expect("8-byte header")) as usize;
    bytes[8..8 + len].to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counted_round_trip_through_a_real_job() {
        let (topo, _) = disagg_hwsim::presets::single_server();
        let mut rt = Runtime::new(topo, RuntimeConfig::traced());
        let mut job = JobBuilder::new("counted");
        let a = job.task(
            TaskSpec::new("produce")
                .output_bytes(1024)
                .body(|ctx| write_counted_output(ctx, b"hello counted world")),
        );
        let b = job.task(
            TaskSpec::new("check")
                .persistent(true)
                .output_bytes(64)
                .body(|ctx| {
                    let payload = read_counted_input(ctx)?;
                    if payload != b"hello counted world" {
                        return Err(TaskError::new("payload mismatch"));
                    }
                    write_counted_output(ctx, &payload[..5])
                }),
        );
        job.edge(a, b);
        let report = rt.execute(job.build().unwrap()).unwrap();
        let out = final_output(&rt, &report, JobId(0), "check");
        assert_eq!(decode_counted(&out), b"hello");
    }
}
