//! Resource-aware DAG scheduling over heterogeneous compute devices.
//!
//! The RTS "must also schedule and map tasks to different types of devices
//! using cost models that consider topology and access paths ... to
//! optimize for concurrently running jobs". The [`Scheduler`] implements
//! HEFT-style list scheduling: tasks are ranked by their upward rank
//! (critical path to a sink, including estimated communication), then
//! greedily assigned to the compute device minimizing their earliest
//! finish time, honoring per-device parallelism (`slots`) and hard
//! compute-class requirements. A round-robin baseline is included for the
//! ablation experiments.

use disagg_hwsim::ids::ComputeId;
use disagg_hwsim::time::{SimDuration, SimTime};
use disagg_hwsim::topology::Topology;

use disagg_dataflow::job::{JobId, JobSpec};
use disagg_dataflow::task::{ComputePref, TaskId};

/// Scheduling strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedPolicy {
    /// HEFT-style list scheduling (the real scheduler).
    #[default]
    Heft,
    /// Round-robin over eligible devices in topological order (baseline).
    RoundRobin,
}

/// How a per-device ready queue admits tasks into free lanes.
///
/// The schedule's device *assignment* stays authoritative, but under
/// out-of-order execution several assigned tasks can be ready on the
/// same device at once; the queue policy decides which one a freed
/// lane dispatches next.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueuePolicy {
    /// Highest upward rank first: the cost model's critical-path
    /// estimate orders dispatch, so list-scheduling priorities carry
    /// through to execution (the HEFT-consistent default).
    #[default]
    CostRank,
    /// Queue-arrival order (breaks ties by job then task id).
    Fifo,
    /// Shortest estimated duration first (maximizes lane turnover,
    /// risks starving long tasks).
    ShortestFirst,
}

/// One scheduled task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduleEntry {
    /// The job.
    pub job: JobId,
    /// The task within the job.
    pub task: TaskId,
    /// Assigned compute device.
    pub compute: ComputeId,
    /// Estimated start time.
    pub est_start: SimTime,
    /// Estimated finish time.
    pub est_finish: SimTime,
    /// Upward rank (estimated critical path to a sink, ns). Feeds
    /// [`QueuePolicy::CostRank`] dispatch ordering; 0 under policies
    /// that do not rank (round-robin).
    pub rank: f64,
}

impl ScheduleEntry {
    /// The cost model's estimated duration for this placement.
    pub fn est_duration(&self) -> SimDuration {
        self.est_finish - self.est_start
    }
}

/// Sentinel for "no entry" in the dense lookup table.
const NO_ENTRY: u32 = u32::MAX;

/// A complete schedule for a set of jobs.
///
/// Lookups are hot — the executor resolves every dispatch decision
/// through [`Schedule::entry`] — so instead of a `(JobId, TaskId)` hash
/// map the schedule keeps an indexed slice: job ids within one plan are
/// clustered (the runtime issues them consecutively per wave), so
/// `index[job - base_job][task]` resolves a rank/assignment lookup with
/// two array indexes.
#[derive(Debug, Clone, Default)]
pub struct Schedule {
    /// Entries in estimated execution order.
    pub entries: Vec<ScheduleEntry>,
    /// Lowest job id in the plan; row 0 of `index` belongs to it.
    base_job: u64,
    /// `index[job - base_job][task]` → entry position ([`NO_ENTRY`] if absent).
    index: Vec<Vec<u32>>,
}

impl Schedule {
    fn slot(&self, job: JobId, task: TaskId) -> Option<usize> {
        let row = job.0.checked_sub(self.base_job)? as usize;
        let &i = self.index.get(row)?.get(task.index())?;
        (i != NO_ENTRY).then_some(i as usize)
    }

    /// The compute device assigned to a task.
    pub fn assignment(&self, job: JobId, task: TaskId) -> Option<ComputeId> {
        self.slot(job, task).map(|i| self.entries[i].compute)
    }

    /// The entry for a task.
    pub fn entry(&self, job: JobId, task: TaskId) -> Option<&ScheduleEntry> {
        self.slot(job, task).map(|i| &self.entries[i])
    }

    /// The estimated makespan across all entries.
    pub fn est_makespan(&self) -> SimDuration {
        self.entries
            .iter()
            .map(|e| e.est_finish)
            .fold(SimTime::ZERO, SimTime::max)
            - SimTime::ZERO
    }

    fn set_slot(&mut self, job: JobId, task: TaskId, i: u32) {
        if self.index.is_empty() {
            self.base_job = job.0;
        } else if job.0 < self.base_job {
            // A lower job id arrived after the base was fixed: shift the
            // table down (rare — plans are built from one job list).
            let shift = (self.base_job - job.0) as usize;
            let mut rows = vec![Vec::new(); shift];
            rows.append(&mut self.index);
            self.index = rows;
            self.base_job = job.0;
        }
        let row = (job.0 - self.base_job) as usize;
        if row >= self.index.len() {
            self.index.resize(row + 1, Vec::new());
        }
        let cols = &mut self.index[row];
        if task.index() >= cols.len() {
            cols.resize(task.index() + 1, NO_ENTRY);
        }
        cols[task.index()] = i;
    }

    fn push(&mut self, entry: ScheduleEntry) {
        let i = self.entries.len() as u32;
        self.set_slot(entry.job, entry.task, i);
        self.entries.push(entry);
    }

    fn sort_by_start(&mut self) {
        self.entries.sort_by_key(|e| (e.est_start, e.job, e.task));
        for (i, (job, task)) in self
            .entries
            .iter()
            .map(|e| (e.job, e.task))
            .collect::<Vec<_>>()
            .into_iter()
            .enumerate()
        {
            self.set_slot(job, task, i as u32);
        }
    }
}

/// Scheduling failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchedError {
    /// A task requires a compute class the topology does not provide.
    NoEligibleDevice {
        /// The job.
        job: JobId,
        /// The task.
        task: TaskId,
    },
}

impl std::fmt::Display for SchedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedError::NoEligibleDevice { job, task } => {
                write!(f, "no eligible compute device for {job}/{task}")
            }
        }
    }
}

impl std::error::Error for SchedError {}

/// Average fabric bandwidth used for cross-device communication estimates
/// (bytes/ns). A constant keeps ranking cheap; the executor charges real
/// path costs later.
const AVG_COMM_BW: f64 = 20.0;

/// Penalty multiplier applied to estimated durations on devices the task
/// merely *prefers* not to use (soft preference).
const NON_PREFERRED_PENALTY: f64 = 2.0;

/// The DAG scheduler.
#[derive(Debug, Clone, Default)]
pub struct Scheduler {
    /// Active policy.
    pub policy: SchedPolicy,
}

impl Scheduler {
    /// A scheduler with the given policy.
    pub fn new(policy: SchedPolicy) -> Self {
        Scheduler { policy }
    }

    /// Devices eligible for a task under its compute preference.
    fn eligible(topo: &Topology, pref: ComputePref) -> Vec<ComputeId> {
        topo.compute_ids()
            .filter(|&c| pref.allows(topo.compute(c).kind))
            .collect()
    }

    /// Best reachable memory bandwidth per compute device (bytes/ns),
    /// indexed by `ComputeId`. The topology is immutable during a plan,
    /// so this `O(computes × mems)` scan runs once instead of once per
    /// `(task, device)` estimate.
    fn best_bws(topo: &Topology) -> Vec<f64> {
        topo.compute_ids()
            .map(|c| {
                topo.mem_ids()
                    .filter_map(|m| {
                        topo.path(c, m).map(|p| topo.mem(m).read_bw_bpns.min(p.bandwidth_bpns))
                    })
                    .fold(1.0f64, f64::max)
            })
            .collect()
    }

    /// Estimated duration of a task on a device: launch + compute +
    /// optimistic memory traffic at the device's best reachable bandwidth
    /// (precomputed in `bw`, see [`Scheduler::best_bws`]).
    fn estimate_with(
        topo: &Topology,
        bw: &[f64],
        spec: &JobSpec,
        task: TaskId,
        c: ComputeId,
    ) -> f64 {
        let t = &spec.tasks[task.index()];
        let model = topo.compute(c);
        let exec = model.exec_cost(t.work.class, t.work.elems).as_nanos_f64();
        let input_bytes: u64 = spec
            .dag
            .predecessors(task)
            .iter()
            .map(|p| spec.tasks[p.index()].output_bytes)
            .sum();
        // Traffic estimate: dataflow in/out plus created scratch streams.
        // The private-scratch *footprint* is capacity, not traffic — a job
        // with a large working set does not necessarily stream all of it.
        let bytes = input_bytes + t.output_bytes + t.global_scratch;
        let mem = bytes as f64 / bw[c.index()];
        let base = exec + mem;
        match t.compute {
            ComputePref::Prefer(k) if k != model.kind => base * NON_PREFERRED_PENALTY,
            _ => base,
        }
    }

    /// Eligible devices for a task, ranked cheapest-first by the same
    /// cost model `plan` uses (estimated duration, ties broken by
    /// device id). The recovery layer re-places interrupted tasks with
    /// this: instead of grabbing the first surviving device, it walks
    /// the ranking and takes the best candidate that is still alive.
    pub fn ranked_candidates(
        topo: &Topology,
        spec: &JobSpec,
        task: TaskId,
    ) -> Vec<(ComputeId, f64)> {
        Self::ranked_candidates_where(topo, spec, task, |_| true)
    }

    /// [`ranked_candidates`](Self::ranked_candidates) restricted to
    /// devices passing `pred` — the fault-aware control plane filters
    /// out nodes whose circuit breaker is open *before* ranking, so an
    /// excluded device never shadows a healthy one in the ordering.
    pub fn ranked_candidates_where(
        topo: &Topology,
        spec: &JobSpec,
        task: TaskId,
        pred: impl Fn(ComputeId) -> bool,
    ) -> Vec<(ComputeId, f64)> {
        let bw = Self::best_bws(topo);
        let mut ranked: Vec<(ComputeId, f64)> =
            Self::eligible(topo, spec.tasks[task.index()].compute)
                .into_iter()
                .filter(|&c| pred(c))
                .map(|c| (c, Self::estimate_with(topo, &bw, spec, task, c)))
                .collect();
        ranked.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        ranked
    }

    /// Plans a schedule for the given jobs.
    pub fn plan(
        &self,
        topo: &Topology,
        jobs: &[(JobId, &JobSpec)],
    ) -> Result<Schedule, SchedError> {
        // Flatten all tasks into one item arena; `base[si] + task` is a
        // job-local task's global item index (no per-task hashing).
        struct Item {
            job: JobId,
            spec_idx: usize,
            task: TaskId,
            /// Index into `elig_sets`: tasks sharing a compute
            /// preference share one eligible-device list.
            elig: u32,
            /// Estimated duration per eligible device (parallel to the
            /// item's eligible list).
            est: Vec<f64>,
            avg: f64,
        }
        let bw = Self::best_bws(topo);
        // Distinct compute preferences per batch are few (Any plus a
        // handful of Prefer/Require kinds): dedup the eligible lists
        // instead of collecting one Vec per task.
        let mut elig_sets: Vec<(ComputePref, Vec<ComputeId>)> = Vec::new();
        let mut base: Vec<usize> = Vec::with_capacity(jobs.len());
        let mut items: Vec<Item> = Vec::new();
        for (si, &(job, spec)) in jobs.iter().enumerate() {
            base.push(items.len());
            for ti in 0..spec.tasks.len() {
                let task = TaskId(ti as u32);
                let pref = spec.tasks[ti].compute;
                let elig = match elig_sets.iter().position(|(p, _)| *p == pref) {
                    Some(i) => i,
                    None => {
                        elig_sets.push((pref, Self::eligible(topo, pref)));
                        elig_sets.len() - 1
                    }
                };
                let eligible = &elig_sets[elig].1;
                if eligible.is_empty() {
                    return Err(SchedError::NoEligibleDevice { job, task });
                }
                let est: Vec<f64> = eligible
                    .iter()
                    .map(|&c| Self::estimate_with(topo, &bw, spec, task, c))
                    .collect();
                let avg = est.iter().sum::<f64>() / est.len() as f64;
                items.push(Item { job, spec_idx: si, task, elig: elig as u32, est, avg });
            }
        }

        // Upward ranks (per job; jobs are independent DAGs).
        let mut rank = vec![0.0f64; items.len()];
        for (si, &(_, spec)) in jobs.iter().enumerate() {
            for &task in spec.dag.topo_order().iter().rev() {
                let i = base[si] + task.index();
                let mut best_succ = 0.0f64;
                for &s in spec.dag.successors(task) {
                    let succ = base[si] + s.index();
                    let comm = spec.tasks[task.index()].output_bytes as f64 / AVG_COMM_BW;
                    best_succ = best_succ.max(comm + rank[succ]);
                }
                rank[i] = items[i].avg + best_succ;
            }
        }

        // Processing order: HEFT = rank descending; round-robin = job
        // submission then topological order.
        let mut order: Vec<usize> = (0..items.len()).collect();
        match self.policy {
            SchedPolicy::Heft => {
                order.sort_by(|&a, &b| {
                    rank[b]
                        .total_cmp(&rank[a])
                        .then(items[a].job.cmp(&items[b].job))
                        .then(items[a].task.cmp(&items[b].task))
                });
            }
            SchedPolicy::RoundRobin => {
                // Topological order is already how items were pushed.
            }
        }

        // Per-device lanes (slots) with free times.
        let mut lanes: Vec<Vec<SimTime>> = topo
            .compute_devices()
            .iter()
            .map(|m| vec![SimTime::ZERO; m.slots as usize])
            .collect();
        // Finish time + device per item, indexed like `items`.
        let mut finish: Vec<Option<(SimTime, ComputeId)>> = vec![None; items.len()];
        let mut schedule = Schedule::default();
        let mut rr_cursor = 0usize;
        // Tasks assigned per device: breaks exact EFT ties toward the
        // least-loaded device so equal work spreads across equal hardware
        // (and with it, memory pressure across nodes).
        let mut assigned: Vec<usize> = vec![0; topo.compute_devices().len()];

        // Dependencies must be scheduled before dependents for the ready
        // time to be known. HEFT's rank order guarantees that within a
        // job; enforce it by deferring items whose predecessors are not
        // yet placed.
        let mut pending: std::collections::VecDeque<usize> = order.into();
        let mut guard = 0usize;
        // Reusable per-item scratch for HEFT's finish-time evaluation.
        let mut fins: Vec<SimTime> = Vec::new();
        while let Some(i) = pending.pop_front() {
            let item = &items[i];
            let (job, spec) = jobs[item.spec_idx];
            let preds = spec.dag.predecessors(item.task);
            let pred_idx = |p: TaskId| base[item.spec_idx] + p.index();
            if !preds.iter().all(|&p| finish[pred_idx(p)].is_some()) {
                pending.push_back(i);
                guard += 1;
                assert!(
                    guard < items.len() * items.len() + 16,
                    "scheduler made no progress; DAG validation should prevent this"
                );
                continue;
            }
            guard = 0;
            let eligible: &[ComputeId] = &elig_sets[item.elig as usize].1;

            let choose_on = |ei: usize, lanes: &[Vec<SimTime>]| -> (usize, SimTime, SimTime) {
                let c = eligible[ei];
                let ready = preds
                    .iter()
                    .map(|&p| {
                        let (f, pc) = finish[pred_idx(p)].expect("preds checked above");
                        if pc == c {
                            f
                        } else {
                            let comm = spec.tasks[p.index()].output_bytes as f64 / AVG_COMM_BW;
                            f + SimDuration::from_nanos_f64(comm)
                        }
                    })
                    .fold(SimTime::ZERO, SimTime::max);
                let lane_times = &lanes[c.index()];
                let (lane, &free) = lane_times
                    .iter()
                    .enumerate()
                    .min_by_key(|&(_, t)| *t)
                    .expect("devices have at least one slot");
                let start = ready.max(free);
                let dur = SimDuration::from_nanos_f64(items[i].est[ei]);
                (lane, start, start + dur)
            };

            let ei = match self.policy {
                SchedPolicy::Heft => {
                    // Evaluate each eligible device once (min_by would
                    // recompute per comparison), then min with the same
                    // EFT → least-assigned → id tie-break.
                    fins.clear();
                    fins.extend((0..eligible.len()).map(|ei| choose_on(ei, &lanes).2));
                    (0..eligible.len())
                        .min_by(|&a, &b| {
                            let (ca, cb) = (eligible[a], eligible[b]);
                            fins[a]
                                .cmp(&fins[b])
                                .then(assigned[ca.index()].cmp(&assigned[cb.index()]))
                                .then(ca.cmp(&cb))
                        })
                        .expect("eligibility checked at collection")
                }
                SchedPolicy::RoundRobin => {
                    let ei = rr_cursor % eligible.len();
                    rr_cursor += 1;
                    ei
                }
            };
            let c = eligible[ei];
            let (lane, start, fin) = choose_on(ei, &lanes);
            assigned[c.index()] += 1;
            lanes[c.index()][lane] = fin;
            finish[base[item.spec_idx] + items[i].task.index()] = Some((fin, c));
            schedule.push(ScheduleEntry {
                job,
                task: items[i].task,
                compute: c,
                est_start: start,
                est_finish: fin,
                rank: rank[i],
            });
        }
        schedule.sort_by_start();
        Ok(schedule)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disagg_dataflow::job::JobBuilder;
    use disagg_dataflow::task::TaskSpec;
    use disagg_hwsim::compute::{ComputeKind, WorkClass};
    use disagg_hwsim::presets::single_server;

    fn pipeline(n: usize, class: WorkClass, elems: u64) -> JobSpec {
        let mut job = JobBuilder::new("pipe");
        let ids: Vec<_> = (0..n)
            .map(|i| {
                job.task(
                    TaskSpec::new(format!("t{i}"))
                        .work(class, elems)
                        .output_bytes(1 << 20),
                )
            })
            .collect();
        job.chain(&ids);
        job.build().unwrap()
    }

    #[test]
    fn precedence_is_respected() {
        let (topo, _) = single_server();
        let spec = pipeline(5, WorkClass::Scalar, 100_000);
        let sched = Scheduler::new(SchedPolicy::Heft)
            .plan(&topo, &[(JobId(0), &spec)])
            .unwrap();
        for w in 0..4u32 {
            let a = sched.entry(JobId(0), TaskId(w)).unwrap();
            let b = sched.entry(JobId(0), TaskId(w + 1)).unwrap();
            assert!(a.est_finish <= b.est_start, "task {w} must finish first");
        }
    }

    #[test]
    fn tensor_work_lands_on_an_accelerator() {
        let (topo, ids) = single_server();
        let mut job = JobBuilder::new("ml");
        job.task(TaskSpec::new("train").work(WorkClass::Tensor, 100_000_000));
        let spec = job.build().unwrap();
        let sched = Scheduler::new(SchedPolicy::Heft)
            .plan(&topo, &[(JobId(0), &spec)])
            .unwrap();
        let c = sched.assignment(JobId(0), TaskId(0)).unwrap();
        assert_eq!(c, ids.gpu, "tensor work should pick the GPU");
    }

    #[test]
    fn scalar_work_stays_on_the_cpu() {
        let (topo, ids) = single_server();
        let mut job = JobBuilder::new("db");
        job.task(TaskSpec::new("probe").work(WorkClass::Scalar, 10_000_000));
        let spec = job.build().unwrap();
        let sched = Scheduler::new(SchedPolicy::Heft)
            .plan(&topo, &[(JobId(0), &spec)])
            .unwrap();
        assert_eq!(sched.assignment(JobId(0), TaskId(0)).unwrap(), ids.cpu);
    }

    #[test]
    fn require_is_a_hard_constraint() {
        let (topo, ids) = single_server();
        let mut job = JobBuilder::new("gpu-only");
        // Scalar work that would prefer the CPU, but the developer pinned it.
        job.task(
            TaskSpec::new("kernel")
                .require(ComputeKind::Gpu)
                .work(WorkClass::Scalar, 1_000_000),
        );
        let spec = job.build().unwrap();
        let sched = Scheduler::new(SchedPolicy::Heft)
            .plan(&topo, &[(JobId(0), &spec)])
            .unwrap();
        assert_eq!(sched.assignment(JobId(0), TaskId(0)).unwrap(), ids.gpu);
    }

    #[test]
    fn missing_required_device_errors() {
        let (topo, _) = single_server();
        let mut job = JobBuilder::new("tpu-only");
        job.task(TaskSpec::new("x").require(ComputeKind::Tpu));
        let spec = job.build().unwrap();
        assert_eq!(
            Scheduler::new(SchedPolicy::Heft)
                .plan(&topo, &[(JobId(3), &spec)])
                .unwrap_err(),
            SchedError::NoEligibleDevice {
                job: JobId(3),
                task: TaskId(0)
            }
        );
    }

    #[test]
    fn independent_tasks_run_in_parallel_lanes() {
        let (topo, _) = single_server();
        let mut job = JobBuilder::new("fan");
        for i in 0..8 {
            job.task(TaskSpec::new(format!("t{i}")).work(WorkClass::Scalar, 1_000_000));
        }
        let spec = job.build().unwrap();
        let sched = Scheduler::new(SchedPolicy::Heft)
            .plan(&topo, &[(JobId(0), &spec)])
            .unwrap();
        // With 32 CPU slots, all 8 independent tasks start at time zero.
        assert!(sched.entries.iter().all(|e| e.est_start == SimTime::ZERO));
    }

    #[test]
    fn slots_serialize_oversubscribed_devices() {
        let (topo, _) = single_server();
        // 40 independent CPU-required tasks on a 32-slot CPU: at least 8
        // must start after the first wave.
        let mut job = JobBuilder::new("wave");
        for i in 0..40 {
            job.task(
                TaskSpec::new(format!("t{i}"))
                    .require(ComputeKind::Cpu)
                    .work(WorkClass::Scalar, 1_000_000),
            );
        }
        let spec = job.build().unwrap();
        let sched = Scheduler::new(SchedPolicy::Heft)
            .plan(&topo, &[(JobId(0), &spec)])
            .unwrap();
        let delayed = sched
            .entries
            .iter()
            .filter(|e| e.est_start > SimTime::ZERO)
            .count();
        assert_eq!(delayed, 8);
    }

    #[test]
    fn heft_beats_round_robin_on_heterogeneous_work() {
        let (topo, _) = single_server();
        // A mix of scalar and tensor tasks: HEFT routes each to its best
        // device; round-robin scatters them (all scalars first, so its
        // alternation puts half the scalar work on the GPU).
        let mut job = JobBuilder::new("mix");
        for i in 0..6 {
            job.task(TaskSpec::new(format!("s{i}")).work(WorkClass::Scalar, 50_000_000));
        }
        for i in 0..6 {
            job.task(TaskSpec::new(format!("t{i}")).work(WorkClass::Tensor, 50_000_000));
        }
        let spec = job.build().unwrap();
        let heft = Scheduler::new(SchedPolicy::Heft)
            .plan(&topo, &[(JobId(0), &spec)])
            .unwrap();
        let rr = Scheduler::new(SchedPolicy::RoundRobin)
            .plan(&topo, &[(JobId(0), &spec)])
            .unwrap();
        assert!(
            heft.est_makespan() < rr.est_makespan(),
            "HEFT {:?} vs RR {:?}",
            heft.est_makespan(),
            rr.est_makespan()
        );
    }

    #[test]
    fn multiple_jobs_schedule_together() {
        let (topo, _) = single_server();
        let a = pipeline(3, WorkClass::Scalar, 1_000_000);
        let b = pipeline(3, WorkClass::Vector, 1_000_000);
        let sched = Scheduler::new(SchedPolicy::Heft)
            .plan(&topo, &[(JobId(0), &a), (JobId(1), &b)])
            .unwrap();
        assert_eq!(sched.entries.len(), 6);
        assert!(sched.assignment(JobId(1), TaskId(2)).is_some());
        assert!(sched.est_makespan() > SimDuration::ZERO);
    }

    #[test]
    fn ranked_candidates_orders_by_cost_model() {
        let (topo, ids) = single_server();
        let mut job = JobBuilder::new("rank");
        job.task(TaskSpec::new("train").work(WorkClass::Tensor, 100_000_000));
        let spec = job.build().unwrap();
        let ranked = Scheduler::ranked_candidates(&topo, &spec, TaskId(0));
        assert!(!ranked.is_empty());
        assert_eq!(ranked[0].0, ids.gpu, "tensor work ranks the GPU first");
        for w in ranked.windows(2) {
            assert!(w[0].1 <= w[1].1, "cheapest-first order");
        }
    }

    #[test]
    fn accelerator_zoo_routes_each_work_class_to_its_device() {
        use disagg_hwsim::presets::accelerator_server;
        let (topo, _h) = accelerator_server();
        let mut job = JobBuilder::new("zoo");
        let scalar = job.task(TaskSpec::new("scalar").work(WorkClass::Scalar, 50_000_000));
        let vector = job.task(TaskSpec::new("vector").work(WorkClass::Vector, 500_000_000));
        let tensor = job.task(TaskSpec::new("tensor").work(WorkClass::Tensor, 500_000_000));
        let crypto = job.task(TaskSpec::new("crypto").work(WorkClass::Crypto, 500_000_000));
        let spec = job.build().unwrap();
        let sched = Scheduler::new(SchedPolicy::Heft)
            .plan(&topo, &[(JobId(0), &spec)])
            .unwrap();
        let kind = |t| topo.compute(sched.assignment(JobId(0), t).unwrap()).kind;
        assert_eq!(kind(scalar), ComputeKind::Cpu);
        assert_eq!(kind(vector), ComputeKind::Gpu);
        assert_eq!(kind(tensor), ComputeKind::Tpu);
        assert_eq!(kind(crypto), ComputeKind::Fpga);
    }
}
