//! The runtime system (RTS): cost model, placement, scheduling,
//! lifetimes, and enforcement.
//!
//! This crate is the paper's envisioned runtime underneath the
//! declarative programming model. Its responsibilities, straight from
//! §2.3: "(1) determining at runtime which physical memory device best
//! fits each task's declared requirements, (2) allocating the Memory
//! Regions that tasks have requested, (3) de-allocating Memory Regions
//! after the last owning task finishes, (4) and resource-aware task
//! scheduling."
//!
//! - [`cost`]: the topology-aware cost model (Challenge 2).
//! - [`placement`]: the optimizer plus the compute-centric and
//!   worst-feasible baselines the experiments compare against.
//! - [`schedule`]: HEFT-style list scheduling over heterogeneous compute
//!   devices with per-device parallelism.
//! - [`lifetime`]: output→input handover (ownership transfer vs copy) and
//!   release-on-last-owner cleanup (Challenge 3; Figure 4).
//! - [`enforce`]: placement auditing, confidential-access denial
//!   accounting, and the trust-boundary encryption rule.

pub mod cost;
pub mod enforce;
pub mod lifetime;
pub mod placement;
pub mod schedule;
pub mod shard;

pub use cost::{CostModel, CostWeights, TopologyAwareness};
pub use enforce::{needs_encryption, xor_cipher, Auditor, Violation};
pub use lifetime::{HandoverOutcome, HandoverPolicy, LifetimeManager, TRANSFER_OVERHEAD};
pub use placement::{PlacementDecision, PlacementEngine, PlacementPolicy};
pub use schedule::{QueuePolicy, SchedError, SchedPolicy, Schedule, ScheduleEntry, Scheduler};
pub use shard::ShardTables;
