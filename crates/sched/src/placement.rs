//! The placement optimizer — and the baselines the paper argues against.
//!
//! Placement turns a declarative memory request into a physical device:
//! filter the devices that satisfy the hard properties *as seen from the
//! executing compute device*, then take the cost-model argmin. For
//! dataflow outputs the optimizer also considers the consumers' compute
//! devices ([`PlacementEngine::choose_shared`]) so that handover can be a
//! pure ownership transfer instead of a copy.
//!
//! Three strategies are provided because the paper's Figure 1 is a
//! comparison: the **declarative** memory-centric optimizer (our vision),
//! the **compute-centric** strategy (always use the executing device's
//! local memory — today's default), and a **worst-feasible** adversary
//! used to bound how bad naïve placement can get (experiment E9).

use disagg_hwsim::ids::{ComputeId, MemDeviceId};
use disagg_hwsim::topology::Topology;
use disagg_region::pool::MemoryPool;
use disagg_region::props::PropertySet;

use crate::cost::CostModel;

/// Placement strategy selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacementPolicy {
    /// The memory-centric optimizer: hard-property filter + cost argmin.
    #[default]
    Declarative,
    /// Compute-centric: always the executing device's local memory (fall
    /// back to the cheapest feasible device only when locals are full or
    /// infeasible). Models today's explicit placement.
    ComputeCentric,
    /// Adversarial: the *worst* feasible device. Bounds naïve placement.
    WorstFeasible,
    /// First feasible device in id order, ignoring cost entirely. Models
    /// a naive allocator with no cost model.
    FirstFit,
}

/// A placement decision trace entry (for the audit log).
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementDecision {
    /// The executing compute device the request was resolved against.
    pub compute: ComputeId,
    /// Requested size.
    pub size: u64,
    /// Chosen device.
    pub dev: MemDeviceId,
    /// The cost-model score of the chosen device.
    pub score: f64,
    /// How many devices were feasible.
    pub feasible: usize,
}

/// Resolves declarative requests to devices under a chosen policy.
#[derive(Debug, Default)]
pub struct PlacementEngine {
    /// The cost model used for ranking.
    pub model: CostModel,
    /// Active policy.
    pub policy: PlacementPolicy,
    /// Decision log (cleared by the caller between runs as needed).
    pub decisions: Vec<PlacementDecision>,
}

impl PlacementEngine {
    /// An engine with the given policy and a default cost model.
    pub fn new(policy: PlacementPolicy) -> Self {
        PlacementEngine {
            model: CostModel::new(),
            policy,
            decisions: Vec::new(),
        }
    }

    /// Chooses a device for a request from a single compute device.
    ///
    /// One streaming pass over the devices instead of building and
    /// sorting a ranked `Vec` per call (this sits under every region
    /// allocation): each policy's pick is a running extremum over the
    /// feasible set, reproducing exactly what the former
    /// rank-then-select computed. Devices are visited in id order, so
    /// "keep the earlier on ties" selects the smaller id (the sort's
    /// tie-break) and "replace on ties" the larger.
    pub fn choose(
        &mut self,
        topo: &Topology,
        pool: &MemoryPool,
        compute: ComputeId,
        props: &PropertySet,
        size: u64,
    ) -> Option<MemDeviceId> {
        use std::cmp::Ordering;

        let locals = match self.policy {
            PlacementPolicy::ComputeCentric => Some(&topo.compute(compute).local_mem),
            _ => None,
        };
        let mut feasible = 0usize;
        // Minimum (score, id): Declarative's pick and everyone's fallback.
        let mut best: Option<(MemDeviceId, f64)> = None;
        // Maximum (score, id): WorstFeasible's pick.
        let mut worst: Option<(MemDeviceId, f64)> = None;
        // First feasible in id order: FirstFit's pick.
        let mut first: Option<(MemDeviceId, f64)> = None;
        // Minimum (score, id) among the executor's local devices.
        let mut best_local: Option<(MemDeviceId, f64)> = None;
        for dev in topo.mem_ids() {
            if pool.capacity(dev) - pool.allocated(dev) < size {
                continue;
            }
            let Some(score) = self
                .model
                .score(topo, compute, dev, props, size, pool.utilization(dev))
            else {
                continue;
            };
            feasible += 1;
            if first.is_none() {
                first = Some((dev, score));
            }
            if best.is_none_or(|(_, b)| score.total_cmp(&b) == Ordering::Less) {
                best = Some((dev, score));
            }
            if worst.is_none_or(|(_, w)| score.total_cmp(&w) != Ordering::Less) {
                worst = Some((dev, score));
            }
            if locals.is_some_and(|l| l.contains(&dev))
                && best_local.is_none_or(|(_, b)| score.total_cmp(&b) == Ordering::Less)
            {
                best_local = Some((dev, score));
            }
        }
        let (dev, score) = match self.policy {
            PlacementPolicy::Declarative => best?,
            PlacementPolicy::WorstFeasible => worst?,
            PlacementPolicy::FirstFit => first?,
            PlacementPolicy::ComputeCentric => best_local.or(best)?,
        };
        self.decisions.push(PlacementDecision {
            compute,
            size,
            dev,
            score,
            feasible,
        });
        Some(dev)
    }

    /// Chooses a device for a region that several compute devices will
    /// touch (a producer's output and its consumers): every listed device
    /// must be able to address it, and the summed cost is minimized. This
    /// is what makes output→input handover an ownership transfer.
    pub fn choose_shared(
        &mut self,
        topo: &Topology,
        pool: &MemoryPool,
        computes: &[ComputeId],
        props: &PropertySet,
        size: u64,
    ) -> Option<MemDeviceId> {
        assert!(!computes.is_empty(), "choose_shared needs at least one accessor");
        let mut best: Option<(MemDeviceId, f64)> = None;
        let mut feasible = 0usize;
        for dev in topo.mem_ids() {
            if pool.capacity(dev) - pool.allocated(dev) < size {
                continue;
            }
            let mut total = 0.0;
            let mut ok = true;
            for &c in computes {
                match self
                    .model
                    .score(topo, c, dev, props, size, pool.utilization(dev))
                {
                    Some(s) => total += s,
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if !ok {
                continue;
            }
            feasible += 1;
            let better = match (self.policy, best) {
                (_, None) => true,
                (PlacementPolicy::WorstFeasible, Some((_, b))) => total > b,
                (_, Some((_, b))) => total < b,
            };
            if better {
                best = Some((dev, total));
            }
        }
        let (dev, score) = best?;
        self.decisions.push(PlacementDecision {
            compute: computes[0],
            size,
            dev,
            score,
            feasible,
        });
        Some(dev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disagg_hwsim::presets::single_server;
    use disagg_region::props::{AccessHint, LatencyClass};

    #[test]
    fn declarative_places_fast_local_scratch_per_device() {
        // The Figure 3 experiment in miniature: the same logical request
        // resolves to DRAM under the CPU and GDDR under the GPU.
        let (topo, ids) = single_server();
        let pool = MemoryPool::new(&topo);
        let mut eng = PlacementEngine::new(PlacementPolicy::Declarative);
        let props = PropertySet::new()
            .with_latency(LatencyClass::Low)
            .with_hint(AccessHint::mixed_random());
        // Big enough that the tiny cache scratchpad cannot hold it.
        let size = 1 << 30;
        let from_cpu = eng.choose(&topo, &pool, ids.cpu, &props, size).unwrap();
        let from_gpu = eng.choose(&topo, &pool, ids.gpu, &props, size).unwrap();
        assert_eq!(from_cpu, ids.dram);
        assert_eq!(from_gpu, ids.gddr);
    }

    #[test]
    fn worst_feasible_picks_the_most_expensive_device() {
        let (topo, ids) = single_server();
        let pool = MemoryPool::new(&topo);
        let mut best = PlacementEngine::new(PlacementPolicy::Declarative);
        let mut worst = PlacementEngine::new(PlacementPolicy::WorstFeasible);
        let props = PropertySet::new().with_hint(AccessHint::random_reads());
        let b = best.choose(&topo, &pool, ids.cpu, &props, 1 << 20).unwrap();
        let w = worst.choose(&topo, &pool, ids.cpu, &props, 1 << 20).unwrap();
        assert_ne!(b, w);
        assert_eq!(
            best.decisions[0].feasible, worst.decisions[0].feasible,
            "same feasibility set, different pick"
        );
        assert!(worst.decisions[0].score > best.decisions[0].score);
    }

    #[test]
    fn compute_centric_pins_to_local_memory() {
        let (topo, ids) = single_server();
        let pool = MemoryPool::new(&topo);
        let mut eng = PlacementEngine::new(PlacementPolicy::ComputeCentric);
        // A streaming request the declarative optimizer would send to HBM;
        // compute-centric still picks a CPU-local device.
        let props = PropertySet::new().with_hint(AccessHint::streaming());
        let dev = eng.choose(&topo, &pool, ids.cpu, &props, 1 << 20).unwrap();
        assert!(topo.compute(ids.cpu).local_mem.contains(&dev));
    }

    #[test]
    fn persistent_requests_only_land_on_persistent_devices() {
        let (topo, ids) = single_server();
        let pool = MemoryPool::new(&topo);
        for policy in [
            PlacementPolicy::Declarative,
            PlacementPolicy::ComputeCentric,
            PlacementPolicy::WorstFeasible,
            PlacementPolicy::FirstFit,
        ] {
            let mut eng = PlacementEngine::new(policy);
            let props = PropertySet::new().persistent(true);
            let dev = eng.choose(&topo, &pool, ids.cpu, &props, 1 << 20).unwrap();
            assert!(
                topo.mem(dev).persistent,
                "{policy:?} placed persistent data on volatile {dev}"
            );
        }
        let _ = ids;
    }

    #[test]
    fn impossible_requests_return_none() {
        let (topo, ids) = single_server();
        let pool = MemoryPool::new(&topo);
        let mut eng = PlacementEngine::new(PlacementPolicy::Declarative);
        // Persistent + low-latency is unsatisfiable in this topology
        // (PMem's 300 ns read latency exceeds the Low bound).
        let props = PropertySet::new()
            .persistent(true)
            .with_latency(LatencyClass::Low);
        assert!(eng.choose(&topo, &pool, ids.cpu, &props, 64).is_none());
        assert!(eng.decisions.is_empty());
    }

    #[test]
    fn choose_shared_lands_where_all_parties_can_reach() {
        let (topo, ids) = single_server();
        let pool = MemoryPool::new(&topo);
        let mut eng = PlacementEngine::new(PlacementPolicy::Declarative);
        let props = PropertySet::new().with_hint(AccessHint::streaming());
        let dev = eng
            .choose_shared(&topo, &pool, &[ids.cpu, ids.gpu], &props, 1 << 20)
            .unwrap();
        assert!(topo.reachable(ids.cpu, dev));
        assert!(topo.reachable(ids.gpu, dev));
    }

    #[test]
    fn choose_shared_balances_both_accessors() {
        let (topo, ids) = single_server();
        let pool = MemoryPool::new(&topo);
        let mut eng = PlacementEngine::new(PlacementPolicy::Declarative);
        // Latency-sensitive shared data between CPU and GPU: GDDR is great
        // for the GPU but poor for the CPU; the optimizer should pick a
        // device neither party hates (in this topology, a CPU-side or
        // hub-attached device both can reach with moderate cost).
        let props = PropertySet::new().with_hint(AccessHint::mixed_random());
        let shared = eng
            .choose_shared(&topo, &pool, &[ids.cpu, ids.gpu], &props, 1 << 26)
            .unwrap();
        let m = CostModel::new();
        let total = |d| {
            m.score(&topo, ids.cpu, d, &props, 1 << 26, 0.0).unwrap()
                + m.score(&topo, ids.gpu, d, &props, 1 << 26, 0.0).unwrap()
        };
        // The chosen device must be no worse than either party's favourite.
        assert!(total(shared) <= total(ids.dram) + 1e-9);
        assert!(total(shared) <= total(ids.gddr) + 1e-9);
    }

    #[test]
    fn first_fit_ignores_cost() {
        let (topo, ids) = single_server();
        let pool = MemoryPool::new(&topo);
        let mut eng = PlacementEngine::new(PlacementPolicy::FirstFit);
        let props = PropertySet::new();
        let dev = eng.choose(&topo, &pool, ids.cpu, &props, 1 << 20).unwrap();
        // First feasible by id order: the cache (mem0) qualifies for a
        // property-free 1 MiB request.
        assert_eq!(dev, ids.cache);
    }

    #[test]
    fn decision_log_captures_context() {
        let (topo, ids) = single_server();
        let pool = MemoryPool::new(&topo);
        let mut eng = PlacementEngine::new(PlacementPolicy::Declarative);
        eng.choose(&topo, &pool, ids.cpu, &PropertySet::new(), 4096).unwrap();
        assert_eq!(eng.decisions.len(), 1);
        let d = &eng.decisions[0];
        assert_eq!(d.compute, ids.cpu);
        assert_eq!(d.size, 4096);
        assert!(d.feasible >= 1);
    }
}
