//! The topology-aware cost model.
//!
//! The paper's RTS "must schedule and map tasks to different types of
//! devices using cost models that consider topology and access paths". The
//! [`CostModel`] estimates, for a declarative memory request, how expensive
//! it would be to serve that request from each candidate device *as seen
//! from the executing compute device* — the quantity the placement
//! optimizer minimizes. It blends:
//!
//! - the achieved per-access latency (device + interconnect path), weighted
//!   by how latency-bound the declared access hint is;
//! - the achieved bandwidth for the streaming share of the traffic;
//! - a contention estimate from the device's current utilization; and
//! - a small capacity-pressure and dollar-cost tiebreaker, so equal
//!   candidates prefer the cheaper, emptier device.

use disagg_hwsim::device::AccessPattern;
use disagg_hwsim::ids::{ComputeId, MemDeviceId};
use disagg_hwsim::topology::Topology;
use disagg_region::pool::MemoryPool;
use disagg_region::props::PropertySet;

/// Tunable weights for the cost blend.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostWeights {
    /// Weight of the latency term.
    pub latency: f64,
    /// Weight of the bandwidth (transfer-time) term.
    pub bandwidth: f64,
    /// Multiplier applied per unit of current device utilization.
    pub contention: f64,
    /// Weight of the capacity-pressure tiebreaker.
    pub pressure: f64,
    /// Weight of the dollar-cost tiebreaker.
    pub dollars: f64,
}

impl Default for CostWeights {
    fn default() -> Self {
        CostWeights {
            latency: 1.0,
            bandwidth: 1.0,
            contention: 1.0,
            pressure: 0.05,
            dollars: 0.01,
        }
    }
}

/// Ablation switch: ignore the interconnect path entirely (treat every
/// device as if it were local). Used by experiment E13 to show what
/// topology awareness buys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TopologyAwareness {
    /// Full path costs (the real model).
    #[default]
    Aware,
    /// Pretend all devices are directly attached.
    Blind,
}

/// The cost model.
#[derive(Debug, Clone, Default)]
pub struct CostModel {
    /// Blend weights.
    pub weights: CostWeights,
    /// Topology awareness (ablation switch).
    pub awareness: TopologyAwareness,
}

impl CostModel {
    /// A model with default weights.
    pub fn new() -> Self {
        CostModel::default()
    }

    /// Estimated cost (virtual nanoseconds, lower is better) of serving a
    /// region with `props` of `size` bytes from `dev`, accessed by a task
    /// on `compute`. Returns `None` when the device is unreachable or the
    /// hard properties are unsatisfiable there.
    ///
    /// `utilization` is the device's current memory-capacity utilization
    /// in `[0, 1]`, used as the contention proxy.
    pub fn score(
        &self,
        topo: &Topology,
        compute: ComputeId,
        dev: MemDeviceId,
        props: &PropertySet,
        size: u64,
        utilization: f64,
    ) -> Option<f64> {
        let real_path = topo.path(compute, dev)?;
        let path = match self.awareness {
            TopologyAwareness::Aware => real_path,
            TopologyAwareness::Blind => disagg_hwsim::topology::PathCost::LOCAL,
        };
        if !props.satisfied_by(topo.mem(dev), path) {
            return None;
        }
        let model = topo.mem(dev);
        let op = props.hint.dominant_op();
        let lat = model.latency(op) + path.latency_ns;
        let bw = model.bandwidth(op).min(path.bandwidth_bpns);

        // Expected time to push `size` bytes through in `typical_bytes`
        // chunks under the declared pattern.
        let chunk = props.hint.typical_bytes.max(1).min(size.max(1));
        let chunks = (size.max(1) as f64 / chunk as f64).ceil();
        let per_chunk_lat = match props.hint.pattern {
            AccessPattern::Random => lat,
            // Streaming amortizes latency across the whole volume.
            AccessPattern::Sequential => lat / chunks.max(1.0),
        };
        let latency_term = chunks * per_chunk_lat;
        let transfer_term = size as f64 / bw;

        let base = self.weights.latency * latency_term + self.weights.bandwidth * transfer_term;
        let contended = base * (1.0 + self.weights.contention * utilization.clamp(0.0, 1.0));
        let pressure = self.weights.pressure * base * utilization.clamp(0.0, 1.0);
        let dollars = self.weights.dollars * model.cost_per_gib;
        Some(contended + pressure + dollars)
    }

    /// Scores every feasible device, cheapest first.
    pub fn rank(
        &self,
        topo: &Topology,
        pool: &MemoryPool,
        compute: ComputeId,
        props: &PropertySet,
        size: u64,
    ) -> Vec<(MemDeviceId, f64)> {
        let mut out: Vec<(MemDeviceId, f64)> = topo
            .mem_ids()
            .filter(|&d| pool.capacity(d) - pool.allocated(d) >= size)
            .filter_map(|d| {
                self.score(topo, compute, d, props, size, pool.utilization(d))
                    .map(|s| (d, s))
            })
            .collect();
        out.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disagg_hwsim::presets::single_server;
    use disagg_region::props::{AccessHint, AccessMode, LatencyClass};

    #[test]
    fn dram_beats_cxl_for_random_low_latency_from_cpu() {
        let (topo, ids) = single_server();
        let m = CostModel::new();
        let props = PropertySet::new().with_hint(AccessHint::random_reads());
        let dram = m.score(&topo, ids.cpu, ids.dram, &props, 1 << 20, 0.0).unwrap();
        let cxl = m.score(&topo, ids.cpu, ids.cxl, &props, 1 << 20, 0.0).unwrap();
        assert!(dram < cxl);
    }

    #[test]
    fn gddr_beats_dram_from_the_gpu() {
        let (topo, ids) = single_server();
        let m = CostModel::new();
        let props = PropertySet::new().with_hint(AccessHint::mixed_random());
        let gddr = m.score(&topo, ids.gpu, ids.gddr, &props, 1 << 20, 0.0).unwrap();
        let dram = m.score(&topo, ids.gpu, ids.dram, &props, 1 << 20, 0.0).unwrap();
        assert!(gddr < dram, "GDDR {gddr} should beat DRAM {dram} from GPU");
    }

    #[test]
    fn dram_beats_gddr_from_the_cpu() {
        let (topo, ids) = single_server();
        let m = CostModel::new();
        let props = PropertySet::new().with_hint(AccessHint::mixed_random());
        let dram = m.score(&topo, ids.cpu, ids.dram, &props, 1 << 20, 0.0).unwrap();
        let gddr = m.score(&topo, ids.cpu, ids.gddr, &props, 1 << 20, 0.0).unwrap();
        assert!(dram < gddr, "DRAM {dram} should beat GDDR {gddr} from CPU");
    }

    #[test]
    fn infeasible_properties_score_none() {
        let (topo, ids) = single_server();
        let m = CostModel::new();
        let persistent = PropertySet::new().persistent(true);
        assert!(m.score(&topo, ids.cpu, ids.dram, &persistent, 64, 0.0).is_none());
        assert!(m.score(&topo, ids.cpu, ids.pmem, &persistent, 64, 0.0).is_some());
        let low_lat = PropertySet::new().with_latency(LatencyClass::Low);
        assert!(m.score(&topo, ids.cpu, ids.far, &low_lat, 64, 0.0).is_none());
    }

    #[test]
    fn utilization_inflates_cost() {
        let (topo, ids) = single_server();
        let m = CostModel::new();
        let props = PropertySet::new();
        let idle = m.score(&topo, ids.cpu, ids.dram, &props, 1 << 20, 0.0).unwrap();
        let busy = m.score(&topo, ids.cpu, ids.dram, &props, 1 << 20, 0.9).unwrap();
        assert!(busy > idle);
    }

    #[test]
    fn rank_orders_feasible_devices_cheapest_first() {
        let (topo, ids) = single_server();
        let pool = MemoryPool::new(&topo);
        let m = CostModel::new();
        let props = PropertySet::new().with_hint(AccessHint::random_reads());
        let ranked = m.rank(&topo, &pool, ids.cpu, &props, 1 << 20);
        assert!(!ranked.is_empty());
        // Cache is the fastest feasible device for small random reads.
        assert_eq!(ranked[0].0, ids.cache);
        for w in ranked.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn rank_respects_free_capacity() {
        let (topo, ids) = single_server();
        let mut pool = MemoryPool::new(&topo);
        // Fill the cache completely.
        let cache_cap = pool.capacity(ids.cache);
        pool.alloc(ids.cache, cache_cap).unwrap();
        let m = CostModel::new();
        let ranked = m.rank(&topo, &pool, ids.cpu, &PropertySet::new(), 1 << 20);
        assert!(ranked.iter().all(|&(d, _)| d != ids.cache));
    }

    #[test]
    fn blind_model_cannot_tell_local_from_remote() {
        let (topo, ids) = single_server();
        let blind = CostModel {
            awareness: TopologyAwareness::Blind,
            ..CostModel::new()
        };
        let props = PropertySet::new()
            .with_mode(AccessMode::Async)
            .with_hint(AccessHint::streaming());
        // Blind to the NIC hop, far memory's rated bandwidth looks fine.
        let far_blind = blind.score(&topo, ids.cpu, ids.far, &props, 1 << 20, 0.0).unwrap();
        let aware = CostModel::new();
        let far_aware = aware.score(&topo, ids.cpu, ids.far, &props, 1 << 20, 0.0).unwrap();
        assert!(far_blind <= far_aware);
    }

    #[test]
    fn streaming_hint_tolerates_latency_random_does_not() {
        let (topo, ids) = single_server();
        let m = CostModel::new();
        // Far memory: 25x the latency of DRAM but only 8x less bandwidth.
        // Random access should therefore hate it much more than streaming.
        let streaming = PropertySet::new()
            .with_mode(AccessMode::Async)
            .with_hint(AccessHint::streaming());
        let random = PropertySet::new()
            .with_mode(AccessMode::Async)
            .with_hint(AccessHint::random_reads());
        let ratio = |p: &PropertySet| {
            let d = m.score(&topo, ids.cpu, ids.dram, p, 64 << 20, 0.0).unwrap();
            let f = m.score(&topo, ids.cpu, ids.far, p, 64 << 20, 0.0).unwrap();
            f / d
        };
        assert!(ratio(&random) > ratio(&streaming));
    }

    #[test]
    fn async_mode_unlocks_storage_devices() {
        let (topo, ids) = single_server();
        let m = CostModel::new();
        let sync = PropertySet::new();
        let async_ = PropertySet::new().with_mode(AccessMode::Async);
        assert!(m.score(&topo, ids.cpu, ids.ssd, &sync, 64, 0.0).is_none());
        assert!(m.score(&topo, ids.cpu, ids.ssd, &async_, 64, 0.0).is_some());
    }
}
