//! Shard-aware placement tables.
//!
//! The sharded executor routes every task event — `Ready`, `EdgeDone`,
//! retry re-dispatch — to the event loop that owns the task's *planned*
//! compute device. That routing sits on the hottest path in the
//! simulator, so instead of resolving `schedule.entry(job, task)` and
//! then `shard_map.shard_of_compute(...)` per event, [`ShardTables`]
//! fuses the two lookups at plan time into one dense
//! `table[job - base][task] → shard` array, mirroring the layout of
//! [`Schedule`]'s own index.
//!
//! The table is a pure function of the (deterministic) schedule and the
//! (deterministic) topology partition, so routing itself can never
//! introduce run-to-run divergence.

use disagg_dataflow::job::JobId;
use disagg_dataflow::task::TaskId;
use disagg_hwsim::shard::ShardMap;

use crate::schedule::Schedule;

/// Sentinel for "task not in the schedule".
const NO_SHARD: u32 = u32::MAX;

/// Dense task → shard routing table derived from a planned
/// [`Schedule`] and a topology [`ShardMap`].
#[derive(Debug, Clone, Default)]
pub struct ShardTables {
    base_job: u64,
    /// `rows[job - base_job][task]` → owning shard ([`NO_SHARD`] if the
    /// task was not planned).
    rows: Vec<Vec<u32>>,
    shards: usize,
}

impl ShardTables {
    /// Builds the routing table for one planned wave.
    pub fn build(schedule: &Schedule, map: &ShardMap) -> ShardTables {
        let base_job = schedule.entries.iter().map(|e| e.job.0).min().unwrap_or(0);
        let mut rows: Vec<Vec<u32>> = Vec::new();
        for e in &schedule.entries {
            let row = (e.job.0 - base_job) as usize;
            if row >= rows.len() {
                rows.resize(row + 1, Vec::new());
            }
            let cols = &mut rows[row];
            if e.task.index() >= cols.len() {
                cols.resize(e.task.index() + 1, NO_SHARD);
            }
            cols[e.task.index()] = map.shard_of_compute(e.compute) as u32;
        }
        ShardTables { base_job, rows, shards: map.shards() }
    }

    /// Number of shards the table routes to.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning a task's planned compute device.
    pub fn shard_of(&self, job: JobId, task: TaskId) -> Option<usize> {
        let row = job.0.checked_sub(self.base_job)? as usize;
        let &s = self.rows.get(row)?.get(task.index())?;
        (s != NO_SHARD).then_some(s as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{SchedPolicy, Scheduler};
    use disagg_dataflow::job::JobBuilder;
    use disagg_dataflow::task::TaskSpec;
    use disagg_hwsim::compute::WorkClass;
    use disagg_hwsim::presets::disaggregated_rack;

    #[test]
    fn table_agrees_with_schedule_and_partition() {
        let (topo, _) = disaggregated_rack(3, 16, 3, 128);
        let map = ShardMap::partition(&topo, 4);
        let mut job = JobBuilder::new("route");
        let ids: Vec<_> = (0..6)
            .map(|i| {
                job.task(
                    TaskSpec::new(format!("t{i}"))
                        .work(WorkClass::Scalar, 1_000_000)
                        .output_bytes(4096),
                )
            })
            .collect();
        job.chain(&ids);
        let spec = job.build().unwrap();
        let sched = Scheduler::new(SchedPolicy::Heft)
            .plan(&topo, &[(JobId(7), &spec)])
            .unwrap();
        let tables = ShardTables::build(&sched, &map);
        assert_eq!(tables.shards(), map.shards());
        for e in &sched.entries {
            assert_eq!(
                tables.shard_of(e.job, e.task),
                Some(map.shard_of_compute(e.compute)),
            );
        }
        assert_eq!(tables.shard_of(JobId(6), TaskId(0)), None, "below base job");
        assert_eq!(tables.shard_of(JobId(7), TaskId(99)), None, "unplanned task");
    }
}
