//! Runtime property enforcement and auditing.
//!
//! Declaring properties is only half the story; the runtime must *enforce*
//! them (Challenge 3: "How to enforce deployment policies at runtime?").
//! The [`Auditor`] checks every placement decision against the declared
//! properties and records violations; confidential data leaving the
//! platform's trust boundary must be encrypted, for which this module
//! supplies the (cost-modelled) cipher.

use disagg_hwsim::device::Attachment;
use disagg_hwsim::ids::{ComputeId, MemDeviceId};
use disagg_hwsim::topology::Topology;
use disagg_region::pool::RegionId;
use disagg_region::props::PropertySet;

/// A detected property violation.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// Persistent data placed on a volatile device.
    Persistence {
        /// The region.
        region: RegionId,
        /// The offending device.
        dev: MemDeviceId,
    },
    /// Achieved latency exceeds the declared class.
    Latency {
        /// The region.
        region: RegionId,
        /// The offending device.
        dev: MemDeviceId,
        /// Declared bound, ns.
        required_ns: f64,
        /// Achieved value, ns.
        achieved_ns: f64,
    },
    /// Achieved bandwidth below the declared class.
    Bandwidth {
        /// The region.
        region: RegionId,
        /// The offending device.
        dev: MemDeviceId,
        /// Declared bound, bytes/ns.
        required_bpns: f64,
        /// Achieved value, bytes/ns.
        achieved_bpns: f64,
    },
    /// A coherent (shareable) region placed outside the coherence domain.
    Coherence {
        /// The region.
        region: RegionId,
        /// The offending device.
        dev: MemDeviceId,
    },
    /// A cross-job access to confidential data was attempted (and denied).
    ConfidentialAccessDenied {
        /// The region.
        region: RegionId,
        /// The job owning the secret.
        owner_job: Option<u64>,
        /// The job that tried.
        accessor_job: Option<u64>,
    },
}

/// Audits placements and records enforcement events.
#[derive(Debug, Default)]
pub struct Auditor {
    /// Violations found (empty after a clean run).
    pub violations: Vec<Violation>,
    /// Count of placements checked.
    pub checked: u64,
    /// Count of denied confidential accesses (enforcement *working*).
    pub denials: u64,
}

impl Auditor {
    /// A fresh auditor.
    pub fn new() -> Self {
        Auditor::default()
    }

    /// Verifies that `region`'s placement on `dev` honors `props` as seen
    /// from `compute`. Any breach is recorded.
    pub fn check_placement(
        &mut self,
        topo: &Topology,
        compute: ComputeId,
        region: RegionId,
        dev: MemDeviceId,
        props: &PropertySet,
    ) {
        self.checked += 1;
        let model = topo.mem(dev);
        if props.persistent && !model.persistent {
            self.violations.push(Violation::Persistence { region, dev });
        }
        if props.coherent && !model.coherent {
            self.violations.push(Violation::Coherence { region, dev });
        }
        if let Some(path) = topo.path(compute, dev) {
            if let Some(max) = props.latency.max_ns() {
                let achieved = props.achieved_latency_ns(model, path);
                if achieved > max {
                    self.violations.push(Violation::Latency {
                        region,
                        dev,
                        required_ns: max,
                        achieved_ns: achieved,
                    });
                }
            }
            if let Some(min) = props.bandwidth.min_bpns() {
                let achieved = props.achieved_bandwidth_bpns(model, path);
                if achieved < min {
                    self.violations.push(Violation::Bandwidth {
                        region,
                        dev,
                        required_bpns: min,
                        achieved_bpns: achieved,
                    });
                }
            }
        }
    }

    /// Records a *denied* cross-job access to a confidential region. A
    /// denial is enforcement working as intended — it increments
    /// `denials`, and also lands in `violations` so reports can show the
    /// attempted breach.
    pub fn record_denial(
        &mut self,
        region: RegionId,
        owner_job: Option<u64>,
        accessor_job: Option<u64>,
    ) {
        self.denials += 1;
        self.violations.push(Violation::ConfidentialAccessDenied {
            region,
            owner_job,
            accessor_job,
        });
    }

    /// True if no placement violated its declared properties. (Denied
    /// confidential accesses do not count: the denial *is* enforcement.)
    pub fn placements_clean(&self) -> bool {
        self.violations
            .iter()
            .all(|v| matches!(v, Violation::ConfidentialAccessDenied { .. }))
    }
}

/// Whether confidential data on this device leaves the platform's trust
/// boundary and must therefore be encrypted at rest. We draw the boundary
/// at the chassis: anything behind the NIC or SATA (shared far memory,
/// cold storage) is outside; CPU-, GPU-, and PCIe/CXL-attached devices are
/// within the coherent/secured enclosure.
pub fn needs_encryption(topo: &Topology, dev: MemDeviceId) -> bool {
    matches!(topo.mem(dev).attachment, Attachment::Nic | Attachment::Sata)
}

/// A simple stream cipher (xorshift keystream) standing in for AES-class
/// memory encryption. It is *not* cryptographically strong — the
/// simulation needs a real, invertible byte transform with modelled cost,
/// not security. Applying it twice with the same key round-trips.
pub fn xor_cipher(data: &mut [u8], key: u64) {
    let mut state = key | 1;
    for chunk in data.chunks_mut(8) {
        // xorshift64.
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let ks = state.to_le_bytes();
        for (b, k) in chunk.iter_mut().zip(ks.iter()) {
            *b ^= k;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disagg_hwsim::presets::single_server;
    use disagg_region::props::{BandwidthClass, LatencyClass};

    #[test]
    fn clean_placement_passes() {
        let (topo, ids) = single_server();
        let mut a = Auditor::new();
        let props = PropertySet::new().with_latency(LatencyClass::Low);
        a.check_placement(&topo, ids.cpu, RegionId(1), ids.dram, &props);
        assert!(a.placements_clean());
        assert_eq!(a.checked, 1);
    }

    #[test]
    fn persistent_on_volatile_is_flagged() {
        let (topo, ids) = single_server();
        let mut a = Auditor::new();
        let props = PropertySet::new().persistent(true);
        a.check_placement(&topo, ids.cpu, RegionId(1), ids.dram, &props);
        assert!(!a.placements_clean());
        assert!(matches!(a.violations[0], Violation::Persistence { .. }));
    }

    #[test]
    fn latency_breach_reports_required_and_achieved() {
        let (topo, ids) = single_server();
        let mut a = Auditor::new();
        let props = PropertySet::new().with_latency(LatencyClass::Low);
        a.check_placement(&topo, ids.cpu, RegionId(2), ids.far, &props);
        match &a.violations[0] {
            Violation::Latency { required_ns, achieved_ns, .. } => {
                assert_eq!(*required_ns, 200.0);
                assert!(*achieved_ns > 2_000.0);
            }
            other => panic!("expected latency violation, got {other:?}"),
        }
    }

    #[test]
    fn bandwidth_breach_is_flagged() {
        let (topo, ids) = single_server();
        let mut a = Auditor::new();
        let props = PropertySet::new().with_bandwidth(BandwidthClass::High);
        a.check_placement(&topo, ids.cpu, RegionId(3), ids.pmem, &props);
        assert!(a
            .violations
            .iter()
            .any(|v| matches!(v, Violation::Bandwidth { .. })));
    }

    #[test]
    fn coherent_outside_domain_is_flagged() {
        let (topo, ids) = single_server();
        let mut a = Auditor::new();
        let props = PropertySet::new()
            .coherent(true)
            .with_mode(disagg_region::props::AccessMode::Async);
        a.check_placement(&topo, ids.cpu, RegionId(4), ids.far, &props);
        assert!(a
            .violations
            .iter()
            .any(|v| matches!(v, Violation::Coherence { .. })));
    }

    #[test]
    fn denials_count_as_enforcement_not_breach() {
        let mut a = Auditor::new();
        a.record_denial(RegionId(5), Some(1), Some(2));
        assert_eq!(a.denials, 1);
        assert!(a.placements_clean(), "a denial means enforcement worked");
        assert_eq!(a.violations.len(), 1, "but it is still reported");
    }

    #[test]
    fn trust_boundary_is_the_chassis() {
        let (topo, ids) = single_server();
        assert!(!needs_encryption(&topo, ids.dram));
        assert!(!needs_encryption(&topo, ids.cxl));
        assert!(!needs_encryption(&topo, ids.gddr));
        assert!(needs_encryption(&topo, ids.far));
        assert!(needs_encryption(&topo, ids.hdd));
    }

    #[test]
    fn cipher_round_trips_and_actually_scrambles() {
        let mut data = *b"patient record: confidential!!!!";
        let original = data;
        xor_cipher(&mut data, 0xDEAD_BEEF);
        assert_ne!(data, original, "ciphertext must differ");
        let differing = data
            .iter()
            .zip(original.iter())
            .filter(|(a, b)| a != b)
            .count();
        assert!(differing > data.len() / 2, "most bytes should change");
        xor_cipher(&mut data, 0xDEAD_BEEF);
        assert_eq!(data, original, "decryption restores plaintext");
    }

    #[test]
    fn cipher_keys_matter() {
        let mut data = *b"secret";
        xor_cipher(&mut data, 1);
        xor_cipher(&mut data, 2);
        assert_ne!(&data, b"secret", "wrong key must not decrypt");
    }
}
