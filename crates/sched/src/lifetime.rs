//! Lifetime management: ownership handover between dataflow tasks.
//!
//! §2.3: "The runtime system allocates input and output memory so that
//! handover is just a memory ownership transfer, and physical data
//! movement is minimized." When a task finishes, its output region must
//! reach the successor. Two mechanisms exist:
//!
//! - **Ownership transfer** (Figure 4): if the consumer's compute device
//!   can address the region where it lies, the handle moves — O(1)
//!   bookkeeping, zero bytes on any wire.
//! - **Physical copy**: otherwise (or under the `AlwaysCopy` baseline of
//!   experiment E7), a new region is allocated near the consumer and the
//!   bytes are copied at full transfer cost.
//!
//! The manager also implements release-on-last-owner cleanup for task
//! exit.

use disagg_hwsim::contention::{BandwidthLedger, ResourceKey};
use disagg_hwsim::ids::ComputeId;
use disagg_hwsim::time::{SimDuration, SimTime};
use disagg_hwsim::topology::Topology;
use disagg_hwsim::trace::{Trace, TraceEvent};
use disagg_region::pool::RegionId;
use disagg_region::region::{OwnerId, RegionError, RegionManager};
use disagg_region::typed::RegionType;

use crate::placement::PlacementEngine;

/// Handover strategy (the E7 ablation switch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HandoverPolicy {
    /// Transfer ownership whenever the consumer can address the memory.
    #[default]
    TransferWhenPossible,
    /// Always copy (models systems without a shared address space).
    AlwaysCopy,
}

/// Bookkeeping cost of a pure ownership transfer (metadata update).
pub const TRANSFER_OVERHEAD: SimDuration = SimDuration::from_nanos(150);

/// The result of a handover.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HandoverOutcome {
    /// The region the consumer now owns (may differ from the producer's
    /// region id if a copy was made).
    pub region: RegionId,
    /// True if ownership moved without copying.
    pub transferred: bool,
    /// Bytes physically copied (0 on transfer).
    pub bytes_copied: u64,
    /// Virtual time the handover took.
    pub took: SimDuration,
}

/// Manages handover and end-of-task cleanup.
#[derive(Debug, Clone, Copy, Default)]
pub struct LifetimeManager {
    /// Active handover policy.
    pub policy: HandoverPolicy,
}

impl LifetimeManager {
    /// A manager with the given policy.
    pub fn new(policy: HandoverPolicy) -> Self {
        LifetimeManager { policy }
    }

    /// Hands a producer's output region to a consumer task.
    ///
    /// Under [`HandoverPolicy::TransferWhenPossible`], if the consumer's
    /// compute device can address the region in place, ownership moves and
    /// no bytes are copied. Otherwise the bytes are physically copied to a
    /// device chosen (by the placement engine) for the consumer, and the
    /// producer's region is released.
    #[allow(clippy::too_many_arguments)]
    pub fn handover(
        &self,
        mgr: &mut RegionManager,
        topo: &Topology,
        ledger: &mut BandwidthLedger,
        trace: &mut Trace,
        engine: &mut PlacementEngine,
        region: RegionId,
        from: OwnerId,
        to: OwnerId,
        consumer_compute: ComputeId,
        now: SimTime,
    ) -> Result<HandoverOutcome, RegionError> {
        let placement = mgr.placement(region)?;
        let addressable = topo.reachable(consumer_compute, placement.dev);
        let transferable = mgr.meta(region)?.rtype.transferable();

        if self.policy == HandoverPolicy::TransferWhenPossible && addressable && transferable {
            mgr.transfer(region, from, to)?;
            let (from_task, to_task) = owner_task_ids(from, to);
            trace.push(TraceEvent::OwnershipTransfer {
                region: region.0,
                from_task,
                to_task,
                bytes: placement.size,
                at: now,
            });
            return Ok(HandoverOutcome {
                region,
                transferred: true,
                bytes_copied: 0,
                took: TRANSFER_OVERHEAD,
            });
        }
        self.copy_to(
            mgr,
            topo,
            ledger,
            trace,
            engine,
            region,
            Some(from),
            to,
            consumer_compute,
            now,
        )
    }

    /// Copies a region's contents into a fresh region placed for
    /// `consumer_compute` and owned by `to`. If `release_from` is set, the
    /// source region is released by that owner afterwards. Used for the
    /// copy path of handover and for fan-out edges beyond the first
    /// consumer (who got the transfer).
    #[allow(clippy::too_many_arguments)]
    pub fn copy_to(
        &self,
        mgr: &mut RegionManager,
        topo: &Topology,
        ledger: &mut BandwidthLedger,
        trace: &mut Trace,
        engine: &mut PlacementEngine,
        region: RegionId,
        release_from: Option<OwnerId>,
        to: OwnerId,
        consumer_compute: ComputeId,
        now: SimTime,
    ) -> Result<HandoverOutcome, RegionError> {
        let placement = mgr.placement(region)?;
        let meta = mgr.meta(region)?;
        let props = meta.props.clone();
        let src_owner = meta.ownership.owners()[0];

        let dst_dev = engine
            .choose(topo, mgr.pool(), consumer_compute, &props, placement.size)
            .ok_or(RegionError::Alloc(disagg_region::pool::AllocError::OutOfMemory {
                dev: placement.dev,
                requested: placement.size,
                free: 0,
            }))?;
        let new = mgr.alloc(dst_dev, placement.size, RegionType::Input, props, to, now)?;

        // Real byte copy, streamed so arbitrarily large regions work.
        let _ = src_owner;
        mgr.copy_contents(region, new)?;

        // Charge the physical movement on both devices and trace it.
        let base = topo
            .transfer_cost(placement.dev, dst_dev, placement.size)
            .unwrap_or(SimDuration::ZERO);
        let f1 = ledger.reserve(
            ResourceKey::Mem(placement.dev),
            now,
            placement.size as f64,
            topo.mem(placement.dev).read_bw_bpns,
        );
        let f2 = ledger.reserve(
            ResourceKey::Mem(dst_dev),
            now,
            placement.size as f64,
            topo.mem(dst_dev).write_bw_bpns,
        );
        let mut took = base.max(f1.max(f2) - now);
        if let Some(path) = topo.mem_path(placement.dev, dst_dev) {
            if let Some(link) = path.bottleneck_link {
                let f3 = ledger.reserve(
                    ResourceKey::Link(link),
                    now,
                    placement.size as f64,
                    path.bandwidth_bpns,
                );
                took = took.max(f3 - now);
            }
        }
        trace.push(TraceEvent::Migrate {
            region: region.0,
            from: placement.dev,
            to: dst_dev,
            bytes: placement.size,
            at: now,
            took,
        });

        if let Some(from) = release_from {
            mgr.release(region, from)?;
        }
        Ok(HandoverOutcome {
            region: new,
            transferred: false,
            bytes_copied: placement.size,
            took,
        })
    }

    /// End-of-task cleanup: releases everything the task still owns.
    pub fn task_exit(&self, mgr: &mut RegionManager, trace: &mut Trace, who: OwnerId, now: SimTime) {
        for id in mgr.owned_by(who) {
            if let Ok(p) = mgr.placement(id) {
                if mgr.release(id, who).unwrap_or(false) {
                    trace.push(TraceEvent::Free {
                        region: id.0,
                        dev: p.dev,
                        bytes: p.size,
                        at: now,
                    });
                }
            }
        }
    }
}

fn owner_task_ids(from: OwnerId, to: OwnerId) -> (u64, u64) {
    let idx = |o: OwnerId| match o {
        OwnerId::Task { task, .. } => task,
        OwnerId::Job(j) => j,
        OwnerId::App => u64::MAX,
    };
    (idx(from), idx(to))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::PlacementPolicy;
    use disagg_hwsim::presets::{disaggregated_rack, single_server};
    use disagg_region::props::PropertySet;

    const P: OwnerId = OwnerId::Task { job: 0, task: 0 };
    const C: OwnerId = OwnerId::Task { job: 0, task: 1 };

    #[test]
    fn addressable_handover_is_a_pure_transfer() {
        let (topo, ids) = single_server();
        let mut mgr = RegionManager::new(&topo);
        let mut ledger = BandwidthLedger::default_buckets();
        let mut trace = Trace::enabled();
        let mut engine = PlacementEngine::new(PlacementPolicy::Declarative);
        let lm = LifetimeManager::default();

        let out = mgr
            .alloc(ids.dram, 1 << 20, RegionType::Output, PropertySet::new(), P, SimTime::ZERO)
            .unwrap();
        mgr.write(out, P, 0, &[0xEE; 64]).unwrap();

        let o = lm
            .handover(&mut mgr, &topo, &mut ledger, &mut trace, &mut engine, out, P, C, ids.gpu, SimTime::ZERO)
            .unwrap();
        assert!(o.transferred);
        assert_eq!(o.bytes_copied, 0);
        assert_eq!(o.region, out);
        assert_eq!(o.took, TRANSFER_OVERHEAD);
        assert_eq!(&mgr.bytes(out, C).unwrap()[..64], &[0xEE; 64]);
        assert_eq!(trace.bytes_transferred_by_ownership(), 1 << 20);
        assert_eq!(trace.bytes_moved(), 0);
    }

    #[test]
    fn always_copy_policy_moves_bytes() {
        let (topo, ids) = single_server();
        let mut mgr = RegionManager::new(&topo);
        let mut ledger = BandwidthLedger::default_buckets();
        let mut trace = Trace::enabled();
        let mut engine = PlacementEngine::new(PlacementPolicy::Declarative);
        let lm = LifetimeManager::new(HandoverPolicy::AlwaysCopy);

        let out = mgr
            .alloc(ids.dram, 1 << 20, RegionType::Output, PropertySet::new(), P, SimTime::ZERO)
            .unwrap();
        mgr.write(out, P, 0, &[0xAB; 32]).unwrap();

        let o = lm
            .handover(&mut mgr, &topo, &mut ledger, &mut trace, &mut engine, out, P, C, ids.cpu, SimTime::ZERO)
            .unwrap();
        assert!(!o.transferred);
        assert_eq!(o.bytes_copied, 1 << 20);
        assert_ne!(o.region, out);
        assert!(o.took > TRANSFER_OVERHEAD);
        assert_eq!(&mgr.bytes(o.region, C).unwrap()[..32], &[0xAB; 32]);
        // Producer's region was released.
        assert!(!mgr.is_live(out));
        assert_eq!(trace.bytes_moved(), 1 << 20);
    }

    #[test]
    fn unaddressable_region_falls_back_to_copy() {
        // Two fully disjoint islands: the consumer's CPU has no route to
        // the producer's DRAM (think: another host's private memory with
        // no RDMA window). Handover must fall back to a physical copy.
        use disagg_hwsim::compute::{ComputeKind, ComputeModel};
        use disagg_hwsim::device::{MemDeviceKind, MemDeviceModel};
        use disagg_hwsim::topology::{LinkKind, Topology};

        let mut b = Topology::builder();
        let n0 = b.node("a");
        let n1 = b.node("b");
        let cpu0 = b.compute(n0, ComputeModel::preset(ComputeKind::Cpu));
        let cpu1 = b.compute(n1, ComputeModel::preset(ComputeKind::Cpu));
        let d0 = b.mem(n0, MemDeviceModel::preset_with_capacity(MemDeviceKind::Dram, 1 << 24));
        let d1 = b.mem(n1, MemDeviceModel::preset_with_capacity(MemDeviceKind::Dram, 1 << 24));
        b.link(cpu0, d0, LinkKind::MemBus);
        b.link(cpu1, d1, LinkKind::MemBus);
        let topo = b.build().unwrap();
        let _ = cpu0;

        let mut mgr = RegionManager::new(&topo);
        let mut ledger = BandwidthLedger::default_buckets();
        let mut trace = Trace::enabled();
        let mut engine = PlacementEngine::new(PlacementPolicy::Declarative);
        let lm = LifetimeManager::default();

        let out = mgr
            .alloc(d0, 4096, RegionType::Output, PropertySet::new(), P, SimTime::ZERO)
            .unwrap();
        mgr.write(out, P, 0, &[7; 8]).unwrap();
        let o = lm
            .handover(&mut mgr, &topo, &mut ledger, &mut trace, &mut engine, out, P, C, cpu1, SimTime::ZERO)
            .unwrap();
        assert!(!o.transferred, "cpu1 cannot address d0; must copy");
        assert_eq!(mgr.placement(o.region).unwrap().dev, d1);
        assert_eq!(&mgr.bytes(o.region, C).unwrap()[..8], &[7; 8]);
    }

    #[test]
    fn fan_out_copies_for_secondary_consumers() {
        let (topo, rack) = disaggregated_rack(2, 32, 2, 512);
        let mut mgr = RegionManager::new(&topo);
        let mut ledger = BandwidthLedger::default_buckets();
        let mut trace = Trace::enabled();
        let mut engine = PlacementEngine::new(PlacementPolicy::Declarative);
        let lm = LifetimeManager::default();

        let out = mgr
            .alloc(rack.pool[0], 8192, RegionType::Output, PropertySet::new(), P, SimTime::ZERO)
            .unwrap();
        mgr.write(out, P, 0, &[3; 16]).unwrap();

        // First consumer gets the transfer…
        let c2 = OwnerId::Task { job: 0, task: 2 };
        let o1 = lm
            .handover(&mut mgr, &topo, &mut ledger, &mut trace, &mut engine, out, P, C, rack.cpus[0], SimTime::ZERO)
            .unwrap();
        assert!(o1.transferred);
        // …the second gets an independent copy (no release of the source).
        let o2 = lm
            .copy_to(&mut mgr, &topo, &mut ledger, &mut trace, &mut engine, out, None, c2, rack.cpus[1], SimTime::ZERO)
            .unwrap();
        assert!(!o2.transferred);
        assert!(mgr.is_live(out));
        assert!(mgr.is_live(o2.region));
        assert_eq!(&mgr.bytes(o2.region, c2).unwrap()[..16], &[3; 16]);
    }

    #[test]
    fn task_exit_releases_everything() {
        let (topo, ids) = single_server();
        let mut mgr = RegionManager::new(&topo);
        let mut trace = Trace::enabled();
        let lm = LifetimeManager::default();
        for _ in 0..3 {
            mgr.alloc(ids.dram, 4096, RegionType::PrivateScratch, PropertySet::new(), P, SimTime::ZERO)
                .unwrap();
        }
        assert_eq!(mgr.live_count(), 3);
        lm.task_exit(&mut mgr, &mut trace, P, SimTime(100));
        assert_eq!(mgr.live_count(), 0);
        assert_eq!(trace.count(|e| matches!(e, TraceEvent::Free { .. })), 3);
    }
}
