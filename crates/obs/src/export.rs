//! Trace exporters: Chrome trace-event JSON (Perfetto-loadable) and
//! folded flamegraph stacks.
//!
//! The Chrome trace gives every compute and memory device its own lane:
//! task executions become complete (`ph:"X"`) spans on compute lanes,
//! memory accesses and migrations become spans on memory lanes, and
//! alloc/free/ownership-transfer become instants. Timestamps are the
//! run's *virtual* nanoseconds rendered as microseconds (the trace-event
//! unit), formatted from integers so the output is bit-for-bit
//! deterministic. Load the file at `ui.perfetto.dev` or
//! `chrome://tracing`.
//!
//! Serving runs get a third process: [`serving_chrome_trace`] adds one
//! lane per *tenant* carrying that tenant's request spans (arrival →
//! last finish, with the five-way latency attribution in `args`), and
//! [`exemplar_chrome_trace`] exports only each tenant's p99 exemplar
//! requests with their per-segment breakdown — the "open the three
//! worst requests in Perfetto" workflow.
//!
//! [`validate_chrome_trace`] is the matching reader: it re-parses an
//! emitted document with [`crate::json`] and checks the structural
//! invariants (non-empty, named lanes, well-formed spans), so tests and
//! `exp_driver --trace-out` never write a file Perfetto would reject.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

use disagg_hwsim::device::AccessOp;
use disagg_hwsim::topology::Topology;
use disagg_hwsim::trace::TraceEvent;

use crate::analyze::TaskSpan;
use crate::json::{self, Value};
use crate::request::{tail_attribution, RequestSpan};

/// Perfetto "process" grouping the compute-device lanes.
const PID_COMPUTE: u32 = 1;
/// Perfetto "process" grouping the memory-device lanes.
const PID_MEM: u32 = 2;
/// Perfetto "process" grouping the per-tenant request lanes.
const PID_TENANT: u32 = 3;

/// Renders virtual nanoseconds as a microsecond literal with three
/// fractional digits — integer math, so deterministic.
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

fn meta(out: &mut String, pid: u32, tid: u32, key: &str, name: &str) {
    let _ = write!(
        out,
        "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"{key}\",\"args\":{{\"name\":\"{}\"}}}}",
        json::escape(name)
    );
}

fn span(out: &mut String, pid: u32, tid: u32, name: &str, ts: u64, dur: u64, args: &str) {
    let _ = write!(
        out,
        "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"name\":\"{}\",\"ts\":{},\"dur\":{},\"args\":{{{args}}}}}",
        json::escape(name),
        us(ts),
        us(dur)
    );
}

fn instant(out: &mut String, pid: u32, tid: u32, name: &str, ts: u64, args: &str) {
    let _ = write!(
        out,
        "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":{pid},\"tid\":{tid},\"name\":\"{}\",\"ts\":{},\"args\":{{{args}}}}}",
        json::escape(name),
        us(ts)
    );
}

fn wrap(parts: Vec<String>) -> String {
    format!(
        "{{\"displayTimeUnit\":\"ns\",\"traceEvents\":[{}]}}",
        parts.join(",\n")
    )
}

/// Renders an event stream as a Chrome trace-event JSON document with
/// one lane per device of `topo`.
pub fn chrome_trace(events: &[TraceEvent], topo: &Topology) -> String {
    wrap(device_parts(events, topo))
}

/// The device-lane entries shared by [`chrome_trace`] and
/// [`serving_chrome_trace`].
fn device_parts(events: &[TraceEvent], topo: &Topology) -> Vec<String> {
    let mut parts: Vec<String> = Vec::new();

    // Lane names first: process_name for the two groups, thread_name
    // per device.
    let mut m = String::new();
    meta(&mut m, PID_COMPUTE, 0, "process_name", "compute");
    parts.push(std::mem::take(&mut m));
    meta(&mut m, PID_MEM, 0, "process_name", "memory");
    parts.push(std::mem::take(&mut m));
    for (i, c) in topo.compute_devices().iter().enumerate() {
        meta(
            &mut m,
            PID_COMPUTE,
            i as u32,
            "thread_name",
            &format!("{}{}", c.kind.name(), i),
        );
        parts.push(std::mem::take(&mut m));
    }
    for (i, d) in topo.mem_devices().iter().enumerate() {
        meta(
            &mut m,
            PID_MEM,
            i as u32,
            "thread_name",
            &format!("{}{}", d.kind.name(), i),
        );
        parts.push(std::mem::take(&mut m));
    }

    // Task spans: join TaskStart with its TaskFinish (both are emitted
    // per (job, task); finish may carry a future timestamp).
    let mut finishes: BTreeMap<(u64, u64), u64> = BTreeMap::new();
    for e in events {
        if let TraceEvent::TaskFinish { job, task, at, .. } = *e {
            finishes.insert((job, task), at.as_nanos());
        }
    }

    for e in events {
        let mut s = String::new();
        match *e {
            TraceEvent::TaskStart { job, task, on, at } => {
                let start = at.as_nanos();
                let end = finishes.get(&(job, task)).copied().unwrap_or(start);
                span(
                    &mut s,
                    PID_COMPUTE,
                    on.0,
                    &format!("job{job}/task{task}"),
                    start,
                    end.saturating_sub(start),
                    &format!("\"job\":{job},\"task\":{task}"),
                );
            }
            TraceEvent::TaskDispatch { job, task, on, at, waited } => {
                let w = waited.as_nanos();
                if w > 0 {
                    span(
                        &mut s,
                        PID_COMPUTE,
                        on.0,
                        "queue-wait",
                        at.as_nanos() - w,
                        w,
                        &format!("\"job\":{job},\"task\":{task}"),
                    );
                }
            }
            TraceEvent::Access { region, dev, bytes, op, at, took } => {
                let name = match op {
                    AccessOp::Read => "read",
                    AccessOp::Write => "write",
                };
                span(
                    &mut s,
                    PID_MEM,
                    dev.0,
                    name,
                    at.as_nanos(),
                    took.as_nanos(),
                    &format!("\"region\":{region},\"bytes\":{bytes}"),
                );
            }
            TraceEvent::Migrate { region, from, to, bytes, at, took } => {
                // Show the copy on the destination lane (where the
                // bytes land), with the source in args.
                span(
                    &mut s,
                    PID_MEM,
                    to.0,
                    "migrate",
                    at.as_nanos(),
                    took.as_nanos(),
                    &format!("\"region\":{region},\"bytes\":{bytes},\"from\":{}", from.0),
                );
            }
            TraceEvent::Alloc { region, dev, bytes, at } => {
                instant(
                    &mut s,
                    PID_MEM,
                    dev.0,
                    "alloc",
                    at.as_nanos(),
                    &format!("\"region\":{region},\"bytes\":{bytes}"),
                );
            }
            TraceEvent::Free { region, dev, bytes, at } => {
                instant(
                    &mut s,
                    PID_MEM,
                    dev.0,
                    "free",
                    at.as_nanos(),
                    &format!("\"region\":{region},\"bytes\":{bytes}"),
                );
            }
            TraceEvent::OwnershipTransfer { region, from_task, to_task, bytes, at } => {
                // No device in the event — the whole point is that no
                // memory device did any work. Pin to lane 0.
                instant(
                    &mut s,
                    PID_MEM,
                    0,
                    "ownership-transfer",
                    at.as_nanos(),
                    &format!(
                        "\"region\":{region},\"bytes\":{bytes},\"from_task\":{from_task},\"to_task\":{to_task}"
                    ),
                );
            }
            TraceEvent::FaultDetected { job, task, on, at } => {
                instant(
                    &mut s,
                    PID_COMPUTE,
                    on.0,
                    "fault-detected",
                    at.as_nanos(),
                    &format!("\"job\":{job},\"task\":{task}"),
                );
            }
            TraceEvent::TaskRetry { job, task, from, to, attempt, at, lost } => {
                instant(
                    &mut s,
                    PID_COMPUTE,
                    to.0,
                    "task-retry",
                    at.as_nanos(),
                    &format!(
                        "\"job\":{job},\"task\":{task},\"from\":{},\"attempt\":{attempt},\"lost_ns\":{}",
                        from.0,
                        lost.as_nanos()
                    ),
                );
            }
            TraceEvent::Reconstruct { region, dev, bytes, at, took, .. } => {
                span(
                    &mut s,
                    PID_MEM,
                    dev.0,
                    "reconstruct",
                    at.as_nanos(),
                    took.as_nanos(),
                    &format!("\"region\":{region},\"bytes\":{bytes}"),
                );
            }
            TraceEvent::TaskFinish { .. }
            | TraceEvent::TaskQueued { .. }
            | TraceEvent::RequestTag { .. }
            // Breaker and serving-control events have no device lane in
            // the Chrome view; they surface via metrics and the CSV.
            | TraceEvent::BreakerTrip { .. }
            | TraceEvent::BreakerProbe { .. }
            | TraceEvent::BreakerClose { .. }
            | TraceEvent::RequestShed { .. }
            | TraceEvent::RequestDegraded { .. } => {}
        }
        if !s.is_empty() {
            parts.push(s);
        }
    }

    parts
}

/// Per-request attribution rendered as span args.
fn span_args(s: &RequestSpan) -> String {
    let a = &s.attribution;
    format!(
        "\"request\":{},\"tenant\":{},\"job\":{},\"latency_ns\":{},\"admission_ns\":{},\"queue_ns\":{},\"compute_ns\":{},\"transfer_ns\":{},\"recovery_ns\":{},\"dominant\":\"{}\"",
        s.request,
        s.tenant,
        s.job,
        s.latency().as_nanos(),
        a.admission.as_nanos(),
        a.queue.as_nanos(),
        a.compute.as_nanos(),
        a.transfer.as_nanos(),
        a.recovery.as_nanos(),
        a.dominant().name(),
    )
}

/// One lane per tenant, one complete span per request. With
/// `with_segments`, each request additionally carries its
/// single-component segments as child spans (they tile the request
/// span, so Perfetto nests them).
fn tenant_parts(spans: &[RequestSpan], with_segments: bool) -> Vec<String> {
    let mut parts: Vec<String> = Vec::new();
    let mut m = String::new();
    meta(&mut m, PID_TENANT, 0, "process_name", "serving");
    parts.push(std::mem::take(&mut m));
    let tenants: BTreeSet<u64> = spans.iter().map(|s| s.tenant).collect();
    for &t in &tenants {
        meta(&mut m, PID_TENANT, t as u32, "thread_name", &format!("tenant{t}"));
        parts.push(std::mem::take(&mut m));
    }
    for s in spans {
        let mut p = String::new();
        span(
            &mut p,
            PID_TENANT,
            s.tenant as u32,
            &format!("req{}", s.request),
            s.arrival.as_nanos(),
            s.latency().as_nanos(),
            &span_args(s),
        );
        parts.push(p);
        if with_segments {
            for seg in s.segments.iter().filter(|seg| !seg.is_empty()) {
                let mut p = String::new();
                let args = match seg.task {
                    Some(task) => format!("\"request\":{},\"task\":{task}", s.request),
                    None => format!("\"request\":{}", s.request),
                };
                span(
                    &mut p,
                    PID_TENANT,
                    s.tenant as u32,
                    seg.kind.name(),
                    seg.start.as_nanos(),
                    seg.len().as_nanos(),
                    &args,
                );
                parts.push(p);
            }
        }
    }
    parts
}

/// Renders a serving run: the full device-lane trace of
/// [`chrome_trace`] plus one lane per tenant carrying request spans
/// with their latency attribution in `args`. Load at `ui.perfetto.dev`
/// and correlate a slow request against the device lanes below it.
pub fn serving_chrome_trace(
    events: &[TraceEvent],
    topo: &Topology,
    spans: &[RequestSpan],
) -> String {
    let mut parts = device_parts(events, topo);
    parts.extend(tenant_parts(spans, false));
    wrap(parts)
}

/// Renders only each tenant's p99 exemplar requests (per
/// [`tail_attribution`]), each broken into its single-component
/// segments — a small document focused on *why* the tail was slow.
/// Returns `None` when there are no spans to export.
pub fn exemplar_chrome_trace(spans: &[RequestSpan]) -> Option<String> {
    let ids: BTreeSet<u64> = tail_attribution(spans)
        .into_iter()
        .flat_map(|t| t.exemplars)
        .collect();
    let exemplars: Vec<RequestSpan> = spans
        .iter()
        .filter(|s| ids.contains(&s.request))
        .cloned()
        .collect();
    if exemplars.is_empty() {
        return None;
    }
    Some(wrap(tenant_parts(&exemplars, true)))
}

/// What [`validate_chrome_trace`] learned about a document.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChromeTraceStats {
    /// Total entries in `traceEvents`.
    pub events: usize,
    /// Complete (`ph:"X"`) spans on compute lanes (task executions and
    /// queue waits).
    pub task_spans: usize,
    /// Complete spans on memory lanes (accesses and migrations).
    pub mem_spans: usize,
    /// Complete spans on tenant lanes (request spans and their
    /// segments, from the serving exports).
    pub request_spans: usize,
    /// Named lanes (thread_name metadata entries).
    pub lanes: usize,
    /// Earliest span start, in virtual nanoseconds.
    pub first_ns: u64,
    /// Latest span end (`ts + dur`), in virtual nanoseconds.
    pub last_ns: u64,
}

/// Parses a Chrome trace-event document and checks the invariants the
/// exporter guarantees. Returns aggregate stats on success.
pub fn validate_chrome_trace(doc: &str) -> Result<ChromeTraceStats, String> {
    let v = json::parse(doc).map_err(|e| e.to_string())?;
    let events = v
        .get("traceEvents")
        .and_then(Value::as_arr)
        .ok_or("missing traceEvents array")?;
    if events.is_empty() {
        return Err("traceEvents is empty".to_string());
    }
    let mut stats = ChromeTraceStats { first_ns: u64::MAX, ..Default::default() };
    stats.events = events.len();
    for e in events {
        let ph = e
            .get("ph")
            .and_then(Value::as_str)
            .ok_or("event without ph")?;
        let pid = e
            .get("pid")
            .and_then(Value::as_f64)
            .ok_or("event without pid")? as u32;
        e.get("tid")
            .and_then(Value::as_f64)
            .ok_or("event without tid")?;
        e.get("name")
            .and_then(Value::as_str)
            .ok_or("event without name")?;
        match ph {
            "M" => {
                if e.get("name").and_then(Value::as_str) == Some("thread_name") {
                    if e.get("args").and_then(|a| a.get("name")).is_none() {
                        return Err("thread_name metadata without args.name".to_string());
                    }
                    stats.lanes += 1;
                }
            }
            "X" => {
                let ts = e.get("ts").and_then(Value::as_f64).ok_or("span without ts")?;
                let dur = e.get("dur").and_then(Value::as_f64).ok_or("span without dur")?;
                if ts < 0.0 || dur < 0.0 {
                    return Err(format!("negative span time: ts={ts} dur={dur}"));
                }
                let start = (ts * 1_000.0).round() as u64;
                let end = ((ts + dur) * 1_000.0).round() as u64;
                stats.first_ns = stats.first_ns.min(start);
                stats.last_ns = stats.last_ns.max(end);
                match pid {
                    PID_COMPUTE => stats.task_spans += 1,
                    PID_MEM => stats.mem_spans += 1,
                    PID_TENANT => stats.request_spans += 1,
                    other => return Err(format!("span in unknown process {other}")),
                }
            }
            "i" => {
                e.get("ts").and_then(Value::as_f64).ok_or("instant without ts")?;
            }
            other => return Err(format!("unexpected phase {other:?}")),
        }
    }
    if stats.lanes == 0 {
        return Err("no named lanes".to_string());
    }
    if stats.first_ns == u64::MAX {
        stats.first_ns = 0;
    }
    Ok(stats)
}

/// Renders task spans as folded flamegraph stacks
/// (`job;task;layer count`), one line per non-zero layer, duplicate
/// stacks summed — feed to `flamegraph.pl` or any FlameGraph viewer.
pub fn folded_stacks(spans: &[TaskSpan]) -> String {
    let mut folded: BTreeMap<String, u64> = BTreeMap::new();
    for s in spans {
        for (layer, d) in [
            ("compute", s.compute),
            ("mem_stall", s.mem_stall),
            ("runtime", s.runtime),
        ] {
            if d.as_nanos() > 0 {
                *folded
                    .entry(format!("job{};{};{layer}", s.job, s.name))
                    .or_default() += d.as_nanos();
            }
        }
    }
    let mut out = String::new();
    for (stack, count) in folded {
        let _ = writeln!(out, "{stack} {count}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use disagg_hwsim::ids::{ComputeId, MemDeviceId};
    use disagg_hwsim::presets;
    use disagg_hwsim::time::{SimDuration, SimTime};

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Alloc { region: 1, dev: MemDeviceId(0), bytes: 4096, at: SimTime(0) },
            TraceEvent::TaskQueued { job: 0, task: 0, on: ComputeId(0), at: SimTime(0) },
            TraceEvent::TaskDispatch {
                job: 0,
                task: 0,
                on: ComputeId(0),
                at: SimTime(100),
                waited: SimDuration(100),
            },
            TraceEvent::TaskStart { job: 0, task: 0, on: ComputeId(0), at: SimTime(100) },
            TraceEvent::TaskFinish { job: 0, task: 0, on: ComputeId(0), at: SimTime(1_600) },
            TraceEvent::Access {
                region: 1,
                dev: MemDeviceId(0),
                bytes: 4096,
                op: AccessOp::Read,
                at: SimTime(200),
                took: SimDuration(300),
            },
            TraceEvent::Migrate {
                region: 1,
                from: MemDeviceId(0),
                to: MemDeviceId(1),
                bytes: 4096,
                at: SimTime(700),
                took: SimDuration(400),
            },
            TraceEvent::OwnershipTransfer {
                region: 1,
                from_task: 0,
                to_task: 1,
                bytes: 4096,
                at: SimTime(1_200),
            },
            TraceEvent::Free { region: 1, dev: MemDeviceId(1), bytes: 4096, at: SimTime(1_700) },
        ]
    }

    #[test]
    fn chrome_trace_round_trips() {
        let (topo, _) = presets::single_server();
        let doc = chrome_trace(&sample_events(), &topo);
        let stats = validate_chrome_trace(&doc).expect("emitted trace must validate");
        let lanes = topo.compute_devices().len() + topo.mem_devices().len();
        assert_eq!(stats.lanes, lanes, "one lane per device");
        // task span + queue-wait span on compute; access + migrate on
        // memory.
        assert_eq!(stats.task_spans, 2);
        assert_eq!(stats.mem_spans, 2);
        assert_eq!(stats.first_ns, 0, "queue wait starts at t=0");
        assert_eq!(stats.last_ns, 1_600, "task span ends at finish");
    }

    #[test]
    fn chrome_trace_is_deterministic() {
        let (topo, _) = presets::single_server();
        let events = sample_events();
        assert_eq!(chrome_trace(&events, &topo), chrome_trace(&events, &topo));
    }

    #[test]
    fn microsecond_rendering_is_integer_exact() {
        assert_eq!(us(0), "0.000");
        assert_eq!(us(999), "0.999");
        assert_eq!(us(1_000), "1.000");
        assert_eq!(us(3_001_495), "3001.495");
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":[]}").is_err());
        // A span missing dur must be rejected.
        let bad = "{\"traceEvents\":[{\"ph\":\"X\",\"pid\":1,\"tid\":0,\"name\":\"t\",\"ts\":0}]}";
        assert!(validate_chrome_trace(bad).is_err());
    }

    fn serving_events() -> Vec<TraceEvent> {
        let mut events = sample_events();
        events.insert(
            0,
            TraceEvent::RequestTag { request: 9, tenant: 2, job: 0, at: SimTime(0) },
        );
        events
    }

    #[test]
    fn serving_trace_adds_one_lane_per_tenant() {
        let (topo, _) = presets::single_server();
        let events = serving_events();
        let spans = crate::request::assemble_request_spans(&events);
        assert_eq!(spans.len(), 1);
        let doc = serving_chrome_trace(&events, &topo, &spans);
        let stats = validate_chrome_trace(&doc).expect("serving trace must validate");
        let device_lanes = topo.compute_devices().len() + topo.mem_devices().len();
        assert_eq!(stats.lanes, device_lanes + 1, "one extra lane for tenant 2");
        assert_eq!(stats.request_spans, 1, "one request span");
        assert_eq!(stats.task_spans, 2, "device lanes still present");
        assert!(doc.contains("\"tenant2\""), "{doc}");
        assert!(doc.contains("\"dominant\""), "attribution rides in args");
        // Deterministic output.
        assert_eq!(doc, serving_chrome_trace(&events, &topo, &spans));
    }

    #[test]
    fn exemplar_trace_exports_only_tail_requests_with_segments() {
        let events = serving_events();
        let spans = crate::request::assemble_request_spans(&events);
        let doc = exemplar_chrome_trace(&spans).expect("one exemplar");
        let stats = validate_chrome_trace(&doc).expect("exemplar trace must validate");
        // The request span plus its component segments, nothing else.
        assert_eq!(stats.request_spans, 1 + spans[0].segments.len());
        assert_eq!(stats.task_spans, 0, "no device lanes in the exemplar view");
        assert!(doc.contains("req9"), "{doc}");
        assert!(exemplar_chrome_trace(&[]).is_none());
    }

    #[test]
    fn folded_stacks_sum_duplicates_and_skip_zero_layers() {
        let mk = |name: &str, compute: u64, stall: u64| TaskSpan {
            job: 0,
            task: 0,
            name: name.to_string(),
            lane: 0,
            start: SimTime(0),
            finish: SimTime(compute + stall),
            compute: SimDuration(compute),
            mem_stall: SimDuration(stall),
            runtime: SimDuration::ZERO,
        };
        let spans = vec![mk("scan", 100, 40), mk("scan", 50, 0), mk("join", 10, 0)];
        let folded = folded_stacks(&spans);
        let lines: Vec<&str> = folded.lines().collect();
        assert!(lines.contains(&"job0;scan;compute 150"), "{folded}");
        assert!(lines.contains(&"job0;scan;mem_stall 40"), "{folded}");
        assert!(lines.contains(&"job0;join;compute 10"), "{folded}");
        assert!(!folded.contains("runtime"), "zero layers omitted: {folded}");
    }
}
