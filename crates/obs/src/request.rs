//! Request-centric spans and tail-latency attribution.
//!
//! The serving layer stamps every admitted request's identity into the
//! trace as a [`TraceEvent::RequestTag`] at submission; this module
//! assembles, per request, a causal span covering its whole sojourn
//! (`arrival .. last task finish`) and decomposes that latency into
//! five exhaustive components:
//!
//! - **admission** — arrival until the job's first task entered a ready
//!   queue (admission-wave wait);
//! - **queue** — some task of the request sat in a ready queue and
//!   nothing of the request was computing;
//! - **compute** — at least one task of the request was executing;
//! - **transfer** — dataflow handover gaps between tasks (outputs in
//!   flight, no task running or queued progress);
//! - **recovery** — time lost to interrupted attempts (detection
//!   delay plus backoff, from `TaskRetry.lost`) or spent rebuilding
//!   corrupted bytes (`Reconstruct`).
//!
//! The decomposition is an interval sweep over the request's sojourn:
//! every virtual nanosecond is assigned to exactly one component
//! (priority: recovery > compute > queue; uncovered time is admission
//! before the first enqueue, transfer after), so the components **sum
//! exactly to the end-to-end latency** — conservative and complete by
//! construction. The sweep consumes only committed trace events, whose
//! order and content are bit-for-bit shard-invariant, so spans and
//! attributions are too.

use std::collections::BTreeMap;

use disagg_hwsim::time::{SimDuration, SimTime};
use disagg_hwsim::trace::TraceEvent;

/// The latency component a span segment belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SegmentKind {
    /// Waiting for an admission wave before any task could queue.
    Admission,
    /// Waiting in a compute device's ready queue.
    Queue,
    /// At least one of the request's tasks was executing.
    Compute,
    /// Dataflow handover: outputs in flight between tasks.
    Transfer,
    /// Retry loss (detection + backoff) or reconstruction of lost bytes.
    Recovery,
}

impl SegmentKind {
    /// Stable lowercase name (JSON keys, report rows).
    pub fn name(self) -> &'static str {
        match self {
            SegmentKind::Admission => "admission",
            SegmentKind::Queue => "queue",
            SegmentKind::Compute => "compute",
            SegmentKind::Transfer => "transfer",
            SegmentKind::Recovery => "recovery",
        }
    }

    /// All components in report order.
    pub const ALL: [SegmentKind; 5] = [
        SegmentKind::Admission,
        SegmentKind::Queue,
        SegmentKind::Compute,
        SegmentKind::Transfer,
        SegmentKind::Recovery,
    ];
}

/// One contiguous, single-component slice of a request's sojourn.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// Which component this time belongs to.
    pub kind: SegmentKind,
    /// Segment start.
    pub start: SimTime,
    /// Segment end (exclusive).
    pub end: SimTime,
    /// The task the segment is attributed to, when one task's interval
    /// won the sweep (queue/compute/recovery); `None` for ambient time
    /// (admission, handover gaps).
    pub task: Option<u64>,
}

impl Segment {
    /// The segment's duration.
    pub fn len(&self) -> SimDuration {
        self.end - self.start
    }

    /// True when the segment is degenerate (zero-width).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// A request's latency decomposed into the five components. The
/// components of a [`RequestSpan`] sum exactly to its latency.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Attribution {
    /// Admission-wave wait before the first enqueue.
    pub admission: SimDuration,
    /// Ready-queue wait with nothing computing.
    pub queue: SimDuration,
    /// Task execution.
    pub compute: SimDuration,
    /// Dataflow handover gaps.
    pub transfer: SimDuration,
    /// Retry loss and reconstruction.
    pub recovery: SimDuration,
}

impl Attribution {
    /// The component for a kind.
    pub fn component(&self, kind: SegmentKind) -> SimDuration {
        match kind {
            SegmentKind::Admission => self.admission,
            SegmentKind::Queue => self.queue,
            SegmentKind::Compute => self.compute,
            SegmentKind::Transfer => self.transfer,
            SegmentKind::Recovery => self.recovery,
        }
    }

    /// Adds time to a component.
    pub fn add(&mut self, kind: SegmentKind, d: SimDuration) {
        let slot = match kind {
            SegmentKind::Admission => &mut self.admission,
            SegmentKind::Queue => &mut self.queue,
            SegmentKind::Compute => &mut self.compute,
            SegmentKind::Transfer => &mut self.transfer,
            SegmentKind::Recovery => &mut self.recovery,
        };
        *slot += d;
    }

    /// Sum of all components — equal to the request's end-to-end
    /// latency for spans assembled here.
    pub fn total(&self) -> SimDuration {
        self.admission + self.queue + self.compute + self.transfer + self.recovery
    }

    /// Component-wise sum.
    pub fn merge(&mut self, other: &Attribution) {
        for k in SegmentKind::ALL {
            self.add(k, other.component(k));
        }
    }

    /// The largest component (earlier in [`SegmentKind::ALL`] wins
    /// ties, so the answer is deterministic).
    pub fn dominant(&self) -> SegmentKind {
        let mut best = SegmentKind::ALL[0];
        for k in SegmentKind::ALL {
            if self.component(k) > self.component(best) {
                best = k;
            }
        }
        best
    }
}

/// One served request's causal span: identity, sojourn bounds, the
/// single-component segments tiling the sojourn, and the summed
/// attribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestSpan {
    /// Request identifier (the serving layer's request index).
    pub request: u64,
    /// Owning tenant.
    pub tenant: u64,
    /// The job instantiated for the request.
    pub job: u64,
    /// Arrival time (from the tag).
    pub arrival: SimTime,
    /// Last task finish.
    pub end: SimTime,
    /// Single-component segments tiling `[arrival, end)` in time order.
    pub segments: Vec<Segment>,
    /// The latency decomposition (sums exactly to `latency()`).
    pub attribution: Attribution,
}

impl RequestSpan {
    /// End-to-end latency (sojourn time).
    pub fn latency(&self) -> SimDuration {
        self.end - self.arrival
    }
}

/// A classified covering interval collected from the trace before the
/// sweep (all times in ns).
#[derive(Debug, Clone, Copy)]
struct Covering {
    start: u64,
    end: u64,
    kind: SegmentKind,
    task: Option<u64>,
}

/// Sweep priority: when intervals overlap, the highest class claims the
/// time. Recovery loss always shows (it *is* wasted time even while a
/// sibling task computes); compute beats queue (a queued task is not
/// the bottleneck while another makes progress).
fn priority(kind: SegmentKind) -> u8 {
    match kind {
        SegmentKind::Recovery => 3,
        SegmentKind::Compute => 2,
        SegmentKind::Queue => 1,
        // Admission/transfer never appear as covering intervals; they
        // classify uncovered time.
        SegmentKind::Admission | SegmentKind::Transfer => 0,
    }
}

/// Assembles one [`RequestSpan`] per tagged request found in `events`.
/// Requests whose jobs never finished a task (nothing executed) are
/// skipped. Output is ordered by request id.
pub fn assemble_request_spans(events: &[TraceEvent]) -> Vec<RequestSpan> {
    // Tag pass: job -> (request, tenant, arrival).
    let mut tag_of_job: BTreeMap<u64, (u64, u64, u64)> = BTreeMap::new();
    for e in events {
        if let TraceEvent::RequestTag { request, tenant, job, at } = *e {
            tag_of_job.insert(job, (request, tenant, at.as_nanos()));
        }
    }
    if tag_of_job.is_empty() {
        return Vec::new();
    }

    // Collection pass: per tagged job, the classified intervals plus
    // the sojourn bounds.
    let mut first_queued: BTreeMap<u64, u64> = BTreeMap::new();
    let mut last_finish: BTreeMap<u64, u64> = BTreeMap::new();
    let mut task_start: BTreeMap<(u64, u64), u64> = BTreeMap::new();
    let mut covering: BTreeMap<u64, Vec<Covering>> = BTreeMap::new();
    let tagged = |job: u64| tag_of_job.contains_key(&job);
    for e in events {
        match *e {
            TraceEvent::TaskQueued { job, at, .. } if tagged(job) => {
                let t = at.as_nanos();
                first_queued
                    .entry(job)
                    .and_modify(|f| *f = (*f).min(t))
                    .or_insert(t);
            }
            TraceEvent::TaskDispatch { job, task, at, waited, .. }
                if tagged(job) && waited > SimDuration::ZERO =>
            {
                covering.entry(job).or_default().push(Covering {
                    start: at.as_nanos() - waited.as_nanos(),
                    end: at.as_nanos(),
                    kind: SegmentKind::Queue,
                    task: Some(task),
                });
            }
            TraceEvent::TaskStart { job, task, at, .. } if tagged(job) => {
                task_start.insert((job, task), at.as_nanos());
            }
            TraceEvent::TaskFinish { job, task, at, .. } if tagged(job) => {
                let t = at.as_nanos();
                last_finish
                    .entry(job)
                    .and_modify(|f| *f = (*f).max(t))
                    .or_insert(t);
                if let Some(&start) = task_start.get(&(job, task)) {
                    covering.entry(job).or_default().push(Covering {
                        start,
                        end: t,
                        kind: SegmentKind::Compute,
                        task: Some(task),
                    });
                }
            }
            TraceEvent::TaskRetry { job, task, at, lost, .. }
                if tagged(job) && lost > SimDuration::ZERO =>
            {
                covering.entry(job).or_default().push(Covering {
                    start: at.as_nanos() - lost.as_nanos(),
                    end: at.as_nanos(),
                    kind: SegmentKind::Recovery,
                    task: Some(task),
                });
            }
            TraceEvent::Reconstruct { job: Some(job), task, at, took, .. }
                if tagged(job) && took > SimDuration::ZERO =>
            {
                covering.entry(job).or_default().push(Covering {
                    start: at.as_nanos(),
                    end: at.as_nanos() + took.as_nanos(),
                    kind: SegmentKind::Recovery,
                    task,
                });
            }
            _ => {}
        }
    }

    // Sweep pass: tile each request's sojourn with single-component
    // segments.
    let mut spans: Vec<RequestSpan> = Vec::with_capacity(tag_of_job.len());
    for (&job, &(request, tenant, arrival)) in &tag_of_job {
        let Some(&end) = last_finish.get(&job) else {
            continue; // nothing executed for this request
        };
        let end = end.max(arrival);
        let fq = first_queued.get(&job).copied().unwrap_or(end).clamp(arrival, end);
        let mut ivs: Vec<Covering> = covering.remove(&job).unwrap_or_default();
        for iv in &mut ivs {
            iv.start = iv.start.clamp(arrival, end);
            iv.end = iv.end.clamp(arrival, end);
        }
        ivs.retain(|iv| iv.end > iv.start);
        // Stable winner selection: sort by (priority desc, task, start)
        // so the covering scan below is deterministic.
        ivs.sort_by_key(|iv| (std::cmp::Reverse(priority(iv.kind)), iv.task, iv.start));

        let mut cuts: Vec<u64> = Vec::with_capacity(ivs.len() * 2 + 3);
        cuts.push(arrival);
        cuts.push(fq);
        cuts.push(end);
        for iv in &ivs {
            cuts.push(iv.start);
            cuts.push(iv.end);
        }
        cuts.sort_unstable();
        cuts.dedup();

        let mut segments: Vec<Segment> = Vec::new();
        let mut attribution = Attribution::default();
        for pair in cuts.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            // Highest-priority covering interval wins; first in the
            // sorted order on priority ties.
            let winner = ivs.iter().find(|iv| iv.start <= a && iv.end >= b);
            let (kind, task) = match winner {
                Some(iv) => (iv.kind, iv.task),
                None if a < fq => (SegmentKind::Admission, None),
                None => (SegmentKind::Transfer, None),
            };
            attribution.add(kind, SimDuration(b - a));
            match segments.last_mut() {
                Some(s) if s.kind == kind && s.task == task && s.end == SimTime(a) => {
                    s.end = SimTime(b);
                }
                _ => segments.push(Segment {
                    kind,
                    start: SimTime(a),
                    end: SimTime(b),
                    task,
                }),
            }
        }
        debug_assert_eq!(
            attribution.total(),
            SimTime(end) - SimTime(arrival),
            "sweep must tile the sojourn exactly"
        );
        spans.push(RequestSpan {
            request,
            tenant,
            job,
            arrival: SimTime(arrival),
            end: SimTime(end),
            segments,
            attribution,
        });
    }
    spans.sort_by_key(|s| s.request);
    spans
}

/// How many exemplar requests to surface per tenant.
pub const EXEMPLARS_PER_TENANT: usize = 3;

/// One tenant's tail-latency attribution: where its p99 comes from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantAttribution {
    /// Tenant index.
    pub tenant: u64,
    /// Requests with spans (admitted and executed).
    pub requests: u64,
    /// Component-wise sum over all the tenant's requests.
    pub total: Attribution,
    /// Exact p99 sojourn (order statistic over the tenant's spans).
    pub p99: SimDuration,
    /// The slowest requests at/above the p99 (ids, slowest first, at
    /// most [`EXEMPLARS_PER_TENANT`]).
    pub exemplars: Vec<u64>,
    /// The component dominating the exemplars' summed attribution —
    /// the one-word answer to "why did the tail blow up?".
    pub dominant: SegmentKind,
}

/// Per-tenant tail attribution over assembled spans, ordered by tenant.
pub fn tail_attribution(spans: &[RequestSpan]) -> Vec<TenantAttribution> {
    let mut by_tenant: BTreeMap<u64, Vec<&RequestSpan>> = BTreeMap::new();
    for s in spans {
        by_tenant.entry(s.tenant).or_default().push(s);
    }
    by_tenant
        .into_iter()
        .map(|(tenant, group)| {
            let mut total = Attribution::default();
            for s in &group {
                total.merge(&s.attribution);
            }
            let mut lats: Vec<u64> = group.iter().map(|s| s.latency().as_nanos()).collect();
            lats.sort_unstable();
            let n = lats.len();
            let rank = ((n as f64 * 0.99).ceil() as usize).clamp(1, n);
            let p99 = lats[rank - 1];
            let mut tail: Vec<&&RequestSpan> = group
                .iter()
                .filter(|s| s.latency().as_nanos() >= p99)
                .collect();
            tail.sort_by_key(|s| (std::cmp::Reverse(s.latency()), s.request));
            tail.truncate(EXEMPLARS_PER_TENANT);
            let mut tail_attr = Attribution::default();
            for s in &tail {
                tail_attr.merge(&s.attribution);
            }
            TenantAttribution {
                tenant,
                requests: group.len() as u64,
                total,
                p99: SimDuration(p99),
                exemplars: tail.iter().map(|s| s.request).collect(),
                dominant: tail_attr.dominant(),
            }
        })
        .collect()
}

/// The error budget a p99 SLO implies: 1% of requests may miss it.
pub const P99_ERROR_BUDGET: f64 = 0.01;

/// One rolling window of SLO burn accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BurnWindow {
    /// Window start (inclusive).
    pub start: SimTime,
    /// Window end (exclusive; the last window absorbs the remainder).
    pub end: SimTime,
    /// Requests completing in the window within the SLO threshold.
    pub good: u64,
    /// Requests completing in the window over the threshold.
    pub bad: u64,
}

impl BurnWindow {
    /// Burn rate: the fraction of the 1% error budget this window
    /// consumed per unit budget — 1.0 means burning exactly at budget,
    /// 100.0 means every request was bad.
    pub fn burn_rate(&self) -> f64 {
        let total = self.good + self.bad;
        if total == 0 {
            return 0.0;
        }
        (self.bad as f64 / total as f64) / P99_ERROR_BUDGET
    }
}

/// A tenant's burn curve over the run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantBurn {
    /// Tenant index.
    pub tenant: u64,
    /// Equal-width virtual-time windows spanning the run, each with its
    /// good/bad counts (requests bucketed by completion time).
    pub windows: Vec<BurnWindow>,
}

/// Computes per-tenant SLO burn curves: the run `[min arrival, max
/// end]` is cut into `windows` equal virtual-time windows, each request
/// lands in the window holding its completion time, and a request is
/// bad when its sojourn exceeds `threshold` (the p99 SLO). Ordered by
/// tenant; every tenant carries every window so curves align.
pub fn slo_burn(spans: &[RequestSpan], threshold: SimDuration, windows: usize) -> Vec<TenantBurn> {
    slo_burn_by(spans, windows, |_| Some(threshold))
}

/// [`slo_burn`] with a per-tenant SLO threshold: tenants for which
/// `threshold_of` returns `None` are held to no SLO and get no burn
/// curve. The window grid is shared across tenants (derived from *all*
/// spans), so the curves stay aligned even when only some tenants carry
/// SLOs.
pub fn slo_burn_by(
    spans: &[RequestSpan],
    windows: usize,
    threshold_of: impl Fn(u64) -> Option<SimDuration>,
) -> Vec<TenantBurn> {
    if spans.is_empty() || windows == 0 {
        return Vec::new();
    }
    let t_lo = spans.iter().map(|s| s.arrival.as_nanos()).min().unwrap_or(0);
    let t_hi = spans
        .iter()
        .map(|s| s.end.as_nanos())
        .max()
        .unwrap_or(t_lo)
        .max(t_lo + 1);
    let width = (t_hi - t_lo).div_ceil(windows as u64).max(1);
    let mut by_tenant: BTreeMap<u64, Vec<BurnWindow>> = BTreeMap::new();
    let blank: Vec<BurnWindow> = (0..windows as u64)
        .map(|i| BurnWindow {
            start: SimTime(t_lo + i * width),
            end: SimTime((t_lo + (i + 1) * width).min(t_hi)),
            good: 0,
            bad: 0,
        })
        .collect();
    for s in spans {
        let Some(threshold) = threshold_of(s.tenant) else {
            continue;
        };
        let wins = by_tenant.entry(s.tenant).or_insert_with(|| blank.clone());
        let idx = (((s.end.as_nanos() - t_lo) / width) as usize).min(windows - 1);
        if s.latency() > threshold {
            wins[idx].bad += 1;
        } else {
            wins[idx].good += 1;
        }
    }
    by_tenant
        .into_iter()
        .map(|(tenant, windows)| TenantBurn { tenant, windows })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use disagg_hwsim::ids::ComputeId;

    fn tag(request: u64, tenant: u64, job: u64, at: u64) -> TraceEvent {
        TraceEvent::RequestTag { request, tenant, job, at: SimTime(at) }
    }

    fn queued(job: u64, task: u64, at: u64) -> TraceEvent {
        TraceEvent::TaskQueued { job, task, on: ComputeId(0), at: SimTime(at) }
    }

    fn dispatch(job: u64, task: u64, at: u64, waited: u64) -> TraceEvent {
        TraceEvent::TaskDispatch {
            job,
            task,
            on: ComputeId(0),
            at: SimTime(at),
            waited: SimDuration(waited),
        }
    }

    fn start(job: u64, task: u64, at: u64) -> TraceEvent {
        TraceEvent::TaskStart { job, task, on: ComputeId(0), at: SimTime(at) }
    }

    fn finish(job: u64, task: u64, at: u64) -> TraceEvent {
        TraceEvent::TaskFinish { job, task, on: ComputeId(0), at: SimTime(at) }
    }

    /// A two-task chain with admission delay, queue wait, a handover
    /// gap, and a retry: every component appears and they sum exactly.
    #[test]
    fn sweep_tiles_the_sojourn_exactly() {
        let events = vec![
            tag(42, 1, 0, 0),
            // Admission: nothing queued until t=10.
            queued(0, 0, 10),
            dispatch(0, 0, 25, 15), // queue wait [10, 25)
            start(0, 0, 25),
            // Retry: attempt lost [40, 60), relaunched at 60.
            TraceEvent::TaskRetry {
                job: 0,
                task: 0,
                from: ComputeId(0),
                to: ComputeId(1),
                attempt: 1,
                at: SimTime(60),
                lost: SimDuration(20),
            },
            finish(0, 0, 100), // compute [25, 100) minus the recovery slice
            // Handover gap [100, 120), then task 1 runs back-to-back.
            queued(0, 1, 120),
            dispatch(0, 1, 120, 0),
            start(0, 1, 120),
            finish(0, 1, 150),
        ];
        let spans = assemble_request_spans(&events);
        assert_eq!(spans.len(), 1);
        let s = &spans[0];
        assert_eq!((s.request, s.tenant, s.job), (42, 1, 0));
        assert_eq!(s.latency(), SimDuration(150));
        let a = &s.attribution;
        assert_eq!(a.admission, SimDuration(10));
        assert_eq!(a.queue, SimDuration(15));
        assert_eq!(a.recovery, SimDuration(20));
        assert_eq!(a.compute, SimDuration(55 + 30)); // [25,100) minus recovery + [120,150)
        assert_eq!(a.transfer, SimDuration(20)); // the handover gap
        assert_eq!(a.total(), s.latency(), "components must sum to latency");
        // Segments tile [arrival, end) without gaps or overlaps.
        assert_eq!(s.segments.first().unwrap().start, s.arrival);
        assert_eq!(s.segments.last().unwrap().end, s.end);
        for w in s.segments.windows(2) {
            assert_eq!(w[0].end, w[1].start, "no gaps between segments");
        }
    }

    #[test]
    fn untagged_jobs_and_empty_traces_produce_no_spans() {
        assert!(assemble_request_spans(&[]).is_empty());
        let events = vec![queued(0, 0, 0), start(0, 0, 5), finish(0, 0, 9)];
        assert!(assemble_request_spans(&events).is_empty());
        // A tag whose job never ran is skipped, not fabricated.
        let events = vec![tag(1, 0, 7, 0)];
        assert!(assemble_request_spans(&events).is_empty());
    }

    #[test]
    fn overlapping_tasks_count_wall_clock_once() {
        // Two tasks computing in parallel [10, 50) and [20, 60): the
        // request spends 50 ns in compute, not 80.
        let events = vec![
            tag(0, 0, 0, 0),
            queued(0, 0, 0),
            dispatch(0, 0, 10, 10),
            start(0, 0, 10),
            queued(0, 1, 0),
            dispatch(0, 1, 20, 20),
            start(0, 1, 20),
            finish(0, 0, 50),
            finish(0, 1, 60),
        ];
        let spans = assemble_request_spans(&events);
        let a = &spans[0].attribution;
        assert_eq!(a.compute, SimDuration(50));
        assert_eq!(a.queue, SimDuration(10), "queue only while nothing computes");
        assert_eq!(a.total(), spans[0].latency());
    }

    #[test]
    fn tail_attribution_names_the_dominant_component() {
        let mk = |request, tenant, queue_ns, compute_ns| {
            let mut attribution = Attribution::default();
            attribution.add(SegmentKind::Queue, SimDuration(queue_ns));
            attribution.add(SegmentKind::Compute, SimDuration(compute_ns));
            RequestSpan {
                request,
                tenant,
                job: request,
                arrival: SimTime(0),
                end: SimTime(queue_ns + compute_ns),
                segments: Vec::new(),
                attribution,
            }
        };
        let spans = vec![
            mk(0, 0, 0, 100),
            mk(1, 0, 900, 100), // the tenant-0 tail: queue-dominated
            mk(2, 1, 0, 500),
        ];
        let tails = tail_attribution(&spans);
        assert_eq!(tails.len(), 2);
        let t0 = &tails[0];
        assert_eq!(t0.tenant, 0);
        assert_eq!(t0.requests, 2);
        assert_eq!(t0.p99, SimDuration(1000));
        assert_eq!(t0.exemplars, vec![1]);
        assert_eq!(t0.dominant, SegmentKind::Queue);
        assert_eq!(tails[1].dominant, SegmentKind::Compute);
    }

    #[test]
    fn burn_windows_bucket_by_completion_and_align_across_tenants() {
        let mk = |request, tenant, arrival, end| RequestSpan {
            request,
            tenant,
            job: request,
            arrival: SimTime(arrival),
            end: SimTime(end),
            segments: Vec::new(),
            attribution: Attribution::default(),
        };
        let spans = vec![
            mk(0, 0, 0, 10),    // good, window 0
            mk(1, 0, 0, 95),    // bad (latency 95 > 50), window 3
            mk(2, 1, 5, 40),    // good, window 1
        ];
        let burn = slo_burn(&spans, SimDuration(50), 4);
        assert_eq!(burn.len(), 2);
        for b in &burn {
            assert_eq!(b.windows.len(), 4, "curves align across tenants");
        }
        let t0 = &burn[0];
        assert_eq!((t0.windows[0].good, t0.windows[0].bad), (1, 0));
        assert_eq!((t0.windows[3].good, t0.windows[3].bad), (0, 1));
        assert_eq!(t0.windows[3].burn_rate(), 100.0, "all-bad window burns 100x budget");
        assert_eq!(t0.windows[1].burn_rate(), 0.0);
        let t1 = &burn[1];
        assert_eq!((t1.windows[1].good, t1.windows[1].bad), (1, 0));
        assert!(slo_burn(&[], SimDuration(1), 4).is_empty());
    }
}
