//! A minimal, dependency-free JSON reader/escaper.
//!
//! The workspace is offline by design, so the exporters hand-roll
//! their JSON output; this module is the matching *reader*, used to
//! round-trip-validate emitted Chrome traces (in tests and in
//! `exp_driver --trace-out`) without pulling in serde. It accepts
//! standard JSON; it is not meant to be fast, only correct on the
//! documents we generate.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as f64).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object (key-ordered for deterministic comparison).
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The value at an object key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// A parse failure, with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub msg: String,
    /// Byte offset in the input.
    pub at: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document (rejects trailing garbage).
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser { b: input.as_bytes(), i: 0 };
    p.ws();
    let v = p.value()?;
    p.ws();
    if p.i != p.b.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

/// Escapes a string for embedding in emitted JSON.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError { msg: msg.to_string(), at: self.i }
    }

    fn ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), ParseError> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn lit(&mut self, s: &str, v: Value) -> Result<Value, ParseError> {
        if self.b[self.i..].starts_with(s.as_bytes()) {
            self.i += s.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{s}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.lit("true", Value::Bool(true)),
            Some(b'f') => self.lit("false", Value::Bool(false)),
            Some(b'n') => self.lit("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.eat(b'{')?;
        let mut m = BTreeMap::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Value::Obj(m));
        }
        loop {
            self.ws();
            let k = self.string()?;
            self.ws();
            self.eat(b':')?;
            self.ws();
            let v = self.value()?;
            m.insert(k, v);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Value::Obj(m));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.eat(b'[')?;
        let mut v = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Value::Arr(v));
        }
        loop {
            self.ws();
            v.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Value::Arr(v));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            if self.i + 4 >= self.b.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex =
                                std::str::from_utf8(&self.b[self.i + 1..self.i + 5])
                                    .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.i += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let start = self.i;
                    self.i += 1;
                    while self.i < self.b.len() && self.b[self.i] & 0xC0 == 0x80 {
                        self.i += 1;
                    }
                    s.push_str(
                        std::str::from_utf8(&self.b[start..self.i])
                            .map_err(|_| self.err("invalid UTF-8"))?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while self
            .peek()
            .map(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
            .unwrap_or(false)
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Value::Num)
            .ok_or_else(|| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a": [1, 2.5, -3], "b": {"c": "x\ny", "d": true, "e": null}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_f64(), Some(2.5));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Value::Bool(true)));
        assert_eq!(v.get("b").unwrap().get("e"), Some(&Value::Null));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("{} extra").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn escape_round_trips() {
        let original = "a\"b\\c\nd\te\u{1}";
        let json = format!("\"{}\"", escape(original));
        let v = parse(&json).unwrap();
        assert_eq!(v.as_str(), Some(original));
    }

    #[test]
    fn unicode_escapes_decode() {
        let v = parse(r#""Aé""#).unwrap();
        assert_eq!(v.as_str(), Some("Aé"));
    }
}
