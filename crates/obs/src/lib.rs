//! # disagg-obs — streaming observability for the disagg runtime
//!
//! The paper's Challenge 8(1) asks how to debug, profile, and optimize
//! dataflow applications when the runtime system hides the
//! performance-relevant details across abstraction layers. The buffered
//! [`Trace`](disagg_hwsim::trace::Trace) answers post-hoc aggregate
//! questions ("how many bytes moved?"); this crate answers the
//! *cross-layer* ones — who stalled on which remote device, when, and
//! why — while the run is still in flight:
//!
//! - [`observer`] — the streaming [`Observer`] event sink the executor
//!   emits into as events happen, a zero-overhead [`NullObserver`]
//!   default, and the cloneable [`ObserverSlot`] config handle;
//! - [`metrics`] — a deterministic [`MetricsRegistry`] of counters and
//!   log2-bucket histograms (queue wait, access latency, migration
//!   sizes, per-device bytes), all recorded in *virtual* time so two
//!   runs of the same submission produce identical snapshots;
//! - [`timeline`] — per-device utilization and queue-depth timelines
//!   sampled on event boundaries;
//! - [`analyze`] — critical-path extraction over the executed task/edge
//!   DAG with per-layer attribution (compute / memory stall / runtime);
//! - [`export`] — Chrome trace-event JSON (loadable in Perfetto, one
//!   lane per compute/memory device) and folded flamegraph stacks;
//! - [`request`] — request-centric spans: per-request causal span
//!   assembly from `RequestTag`-stamped traces, an exact five-way
//!   latency decomposition (admission / queue / compute / transfer /
//!   recovery), per-tenant tail attribution with p99 exemplars, and
//!   SLO burn-rate curves;
//! - [`json`] — a dependency-free JSON reader used to validate emitted
//!   traces.
//!
//! Everything here consumes the same [`TraceEvent`]s the buffered trace
//! records, so the streaming and buffered views of a run are
//! bit-for-bit interchangeable (pinned by `tests/equivalence.rs`).
//!
//! [`TraceEvent`]: disagg_hwsim::trace::TraceEvent

pub mod analyze;
pub mod export;
pub mod json;
pub mod metrics;
pub mod observer;
pub mod request;
pub mod sharded;
pub mod timeline;

pub use analyze::{critical_paths, render_critical_paths, CriticalPath, TaskSpan};
pub use export::{
    chrome_trace, exemplar_chrome_trace, folded_stacks, serving_chrome_trace,
    validate_chrome_trace, ChromeTraceStats,
};
pub use metrics::{Histogram, HistogramSnapshot, MetricsObserver, MetricsRegistry, MetricsSnapshot};
pub use observer::{CollectingObserver, FullObserver, NullObserver, Observer, ObserverSlot};
pub use request::{
    assemble_request_spans, slo_burn, slo_burn_by, tail_attribution, Attribution, BurnWindow,
    RequestSpan, Segment, SegmentKind, TenantAttribution, TenantBurn,
};
pub use sharded::{merge_stamped, merge_stamped_into, ShardLanes, Stamped};
pub use timeline::{DeviceTimelines, Timeline, TimelineRecorder};
