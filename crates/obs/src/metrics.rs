//! The deterministic metrics registry.
//!
//! Counters and log2-bucket histograms keyed by name, fed from the
//! event stream. Every recorded value is *virtual* (virtual
//! nanoseconds, byte counts) and every container is ordered
//! (`BTreeMap`), so two runs of the same submission produce identical
//! snapshots — metrics are part of the reproducibility contract, not an
//! approximation of it.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use disagg_hwsim::trace::TraceEvent;

use crate::observer::Observer;

/// Number of log2 buckets: bucket `i` holds values `v` with
/// `bit_len(v) == i`, i.e. bucket 0 is `v == 0`, bucket 1 is `v == 1`,
/// bucket 2 is `2..=3`, and so on up to `u64::MAX`.
pub const BUCKETS: usize = 65;

/// A log2-bucket histogram over `u64` values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Occupancy per log2 bucket.
    pub buckets: [u64; BUCKETS],
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (`u64::MAX` when empty).
    pub min: u64,
    /// Largest recorded value.
    pub max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

/// The log2 bucket index of a value.
pub fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// The inclusive value range `[lo, hi]` a log2 bucket covers.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    match i {
        0 => (0, 0),
        1 => (1, 1),
        i if i >= 64 => (1u64 << 63, u64::MAX),
        _ => (1u64 << (i - 1), (1u64 << i) - 1),
    }
}

impl Histogram {
    /// Records one value.
    pub fn observe(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Deterministic percentile estimate (`p` in `[0, 1]`): locates the
    /// bucket holding the p-quantile's rank, then linearly interpolates
    /// *within* the bucket assuming its values spread evenly over
    /// `[lo, hi]` — the `pos`-th of `n` values lands at
    /// `lo + span * pos / (n + 1)`. Integer math throughout, so the
    /// estimate is bit-for-bit reproducible; before this interpolation
    /// the function returned the bucket's upper bound, quantizing every
    /// percentile to a power of two.
    pub fn quantile_bound(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64 * p).ceil() as u64).clamp(1, self.count);
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= rank {
                let (lo, hi) = bucket_bounds(i);
                let pos = (rank - seen) as u128;
                let span = (hi - lo) as u128;
                return lo + (span * pos / (n as u128 + 1)) as u64;
            }
            seen += n;
        }
        self.max
    }
}

/// An immutable histogram summary carried in snapshots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Smallest value (0 when empty, for display friendliness).
    pub min: u64,
    /// Largest value.
    pub max: u64,
    /// p50 bucket upper bound.
    pub p50: u64,
    /// p99 bucket upper bound.
    pub p99: u64,
    /// Non-empty log2 buckets as `(bucket_index, occupancy)`.
    pub buckets: Vec<(u8, u64)>,
}

impl HistogramSnapshot {
    fn of(h: &Histogram) -> HistogramSnapshot {
        HistogramSnapshot {
            count: h.count,
            sum: h.sum,
            min: if h.count == 0 { 0 } else { h.min },
            max: h.max,
            p50: h.quantile_bound(0.50),
            p99: h.quantile_bound(0.99),
            buckets: h
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, &n)| n > 0)
                .map(|(i, &n)| (i as u8, n))
                .collect(),
        }
    }
}

/// Virtual-time epoch length for per-region access-temperature
/// tracking: accesses are bucketed into fixed 1 ms windows of virtual
/// time, the granularity an epoch re-planner would act on.
pub const TEMP_EPOCH_NS: u64 = 1_000_000;

/// One region's access temperature over one epoch window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionTemperature {
    /// Region identifier.
    pub region: u64,
    /// Epoch index (`at / TEMP_EPOCH_NS` of the accesses).
    pub epoch: u64,
    /// Accesses (reads, writes, migrations) landing in the window.
    pub accesses: u64,
    /// Bytes touched in the window.
    pub bytes: u64,
    /// log2 bucket of the access count — the "heat" a tiering policy
    /// compares against thresholds.
    pub heat: u8,
    /// log2 bucket of the bytes touched.
    pub heat_bytes: u8,
}

/// Counters + histograms keyed by name, plus per-region per-epoch
/// access temperatures.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
    /// `(region, epoch) -> (accesses, bytes)`, ordered for determinism.
    temps: BTreeMap<(u64, u64), (u64, u64)>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds `by` to a counter (creating it at 0).
    pub fn incr(&mut self, name: &str, by: u64) {
        if let Some(c) = self.counters.get_mut(name) {
            *c += by;
        } else {
            self.counters.insert(name.to_string(), by);
        }
    }

    /// Records a value into a histogram (creating it empty).
    pub fn observe(&mut self, name: &str, value: u64) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.observe(value);
        } else {
            let mut h = Histogram::default();
            h.observe(value);
            self.histograms.insert(name.to_string(), h);
        }
    }

    /// Current counter value (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Feeds one event into the standard runtime metrics: event-kind
    /// counters, byte accounting per device, and the queue-wait /
    /// access-latency / migration-size / task-duration histograms.
    pub fn record(&mut self, e: &TraceEvent) {
        self.incr("events", 1);
        match *e {
            TraceEvent::Alloc { dev, bytes, .. } => {
                self.incr("events.alloc", 1);
                self.incr("bytes.allocated", bytes);
                self.observe("alloc_bytes", bytes);
                self.incr(&format!("dev.mem{}.allocs", dev.0), 1);
            }
            TraceEvent::Free { .. } => self.incr("events.free", 1),
            TraceEvent::Access { region, dev, bytes, at, took, .. } => {
                self.incr("events.access", 1);
                self.incr("bytes.moved", bytes);
                self.incr(&format!("dev.mem{}.bytes", dev.0), bytes);
                self.observe("access_ns", took.as_nanos());
                self.touch_region(region, at.as_nanos(), bytes);
            }
            TraceEvent::Migrate { region, from, to, bytes, at, took } => {
                self.incr("events.migrate", 1);
                self.incr("bytes.moved", bytes);
                self.incr(&format!("dev.mem{}.bytes", from.0), bytes);
                self.incr(&format!("dev.mem{}.bytes", to.0), bytes);
                self.observe("migrate_bytes", bytes);
                self.observe("migrate_ns", took.as_nanos());
                self.touch_region(region, at.as_nanos(), bytes);
            }
            TraceEvent::OwnershipTransfer { bytes, .. } => {
                self.incr("events.transfer", 1);
                self.incr("bytes.ownership", bytes);
                self.observe("transfer_bytes", bytes);
            }
            TraceEvent::TaskQueued { .. } => self.incr("events.task_queued", 1),
            TraceEvent::TaskDispatch { on, waited, .. } => {
                self.incr("events.task_dispatch", 1);
                self.incr(&format!("dev.cpu{}.dispatches", on.0), 1);
                self.observe("queue_wait_ns", waited.as_nanos());
            }
            TraceEvent::TaskStart { on, .. } => {
                self.incr("events.task_start", 1);
                self.incr(&format!("dev.cpu{}.tasks", on.0), 1);
            }
            TraceEvent::TaskFinish { .. } => self.incr("events.task_finish", 1),
            TraceEvent::FaultDetected { on, .. } => {
                self.incr("events.fault_detected", 1);
                self.incr("faults.detected", 1);
                self.incr(&format!("dev.cpu{}.faults", on.0), 1);
            }
            TraceEvent::TaskRetry { lost, .. } => {
                self.incr("events.task_retry", 1);
                self.incr("recovery.retries", 1);
                self.observe("recovery_lost_ns", lost.as_nanos());
            }
            TraceEvent::Reconstruct { bytes, took, .. } => {
                self.incr("events.reconstruct", 1);
                self.incr("recovery.reconstructs", 1);
                self.incr("bytes.reconstructed", bytes);
                self.observe("reconstruct_ns", took.as_nanos());
            }
            TraceEvent::RequestTag { .. } => self.incr("events.request_tag", 1),
            TraceEvent::BreakerTrip { node, .. } => {
                self.incr("events.breaker_trip", 1);
                self.incr("breaker.trips", 1);
                self.incr(&format!("node{}.breaker.trips", node.0), 1);
            }
            TraceEvent::BreakerProbe { .. } => {
                self.incr("events.breaker_probe", 1);
                self.incr("breaker.probes", 1);
            }
            TraceEvent::BreakerClose { .. } => {
                self.incr("events.breaker_close", 1);
                self.incr("breaker.closes", 1);
            }
            TraceEvent::RequestShed { .. } => {
                self.incr("events.request_shed", 1);
                self.incr("serve.shed", 1);
            }
            TraceEvent::RequestDegraded { .. } => {
                self.incr("events.request_degraded", 1);
                self.incr("serve.degraded", 1);
            }
        }
    }

    /// Charges one access against a region's current epoch window.
    fn touch_region(&mut self, region: u64, at_ns: u64, bytes: u64) {
        let e = self
            .temps
            .entry((region, at_ns / TEMP_EPOCH_NS))
            .or_insert((0, 0));
        e.0 += 1;
        e.1 += bytes;
    }

    /// The per-region per-epoch access temperatures recorded so far,
    /// in `(region, epoch)` order.
    pub fn temperatures(&self) -> Vec<RegionTemperature> {
        self.temps
            .iter()
            .map(|(&(region, epoch), &(accesses, bytes))| RegionTemperature {
                region,
                epoch,
                accesses,
                bytes,
                heat: bucket_of(accesses) as u8,
                heat_bytes: bucket_of(bytes) as u8,
            })
            .collect()
    }

    /// An immutable snapshot of everything recorded so far.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|(k, &v)| (k.clone(), v))
                .collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), HistogramSnapshot::of(h)))
                .collect(),
            temperatures: self.temperatures(),
        }
    }
}

/// A metrics-only streaming sink.
#[derive(Debug, Default)]
pub struct MetricsObserver {
    /// The registry being maintained.
    pub registry: MetricsRegistry,
}

impl Observer for MetricsObserver {
    fn on_event(&mut self, event: &TraceEvent) {
        self.registry.record(event);
    }

    fn metrics(&self) -> Option<MetricsSnapshot> {
        Some(self.registry.snapshot())
    }
}

/// What a run's metrics looked like at snapshot time. Attached to
/// `RunReport` when the runtime carries a metrics-keeping observer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// `(name, value)` in name order.
    pub counters: Vec<(String, u64)>,
    /// `(name, summary)` in name order.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// Per-region per-epoch access temperatures in `(region, epoch)`
    /// order — the telemetry substrate for adaptive tiering.
    pub temperatures: Vec<RegionTemperature>,
}

impl MetricsSnapshot {
    /// Counter value by name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    }

    /// Histogram summary by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, h)| h)
    }

    /// A region's temperature windows, in epoch order.
    pub fn region_temperature(&self, region: u64) -> Vec<&RegionTemperature> {
        self.temperatures
            .iter()
            .filter(|t| t.region == region)
            .collect()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty() && self.temperatures.is_empty()
    }

    /// Renders an aligned human-readable listing.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let width = self
            .counters
            .iter()
            .map(|(k, _)| k.len())
            .chain(self.histograms.iter().map(|(k, _)| k.len()))
            .max()
            .unwrap_or(0);
        for (k, v) in &self.counters {
            let _ = writeln!(out, "{k:<width$}  {v}");
        }
        for (k, h) in &self.histograms {
            let _ = writeln!(
                out,
                "{k:<width$}  count={} sum={} min={} p50<={} p99<={} max={}",
                h.count, h.sum, h.min, h.p50, h.p99, h.max
            );
        }
        for t in &self.temperatures {
            let _ = writeln!(
                out,
                "temp region={} epoch={} accesses={} bytes={} heat={} heat_bytes={}",
                t.region, t.epoch, t.accesses, t.bytes, t.heat, t.heat_bytes
            );
        }
        out
    }

    /// Renders the snapshot as JSON (hand-rolled; the workspace stays
    /// dependency-free).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    \"{}\": {v}", crate::json::escape(k));
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let buckets: Vec<String> = h
                .buckets
                .iter()
                .map(|&(b, n)| format!("[{b},{n}]"))
                .collect();
            let _ = write!(
                out,
                "{sep}\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"p50\": {}, \
                 \"p99\": {}, \"max\": {}, \"log2_buckets\": [{}]}}",
                crate::json::escape(k),
                h.count,
                h.sum,
                h.min,
                h.p50,
                h.p99,
                h.max,
                buckets.join(", ")
            );
        }
        out.push_str("\n  },\n  \"temperatures\": [");
        for (i, t) in self.temperatures.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    {{\"region\": {}, \"epoch\": {}, \"accesses\": {}, \"bytes\": {}, \
                 \"heat\": {}, \"heat_bytes\": {}}}",
                t.region, t.epoch, t.accesses, t.bytes, t.heat, t.heat_bytes
            );
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disagg_hwsim::device::AccessOp;
    use disagg_hwsim::ids::{ComputeId, MemDeviceId};
    use disagg_hwsim::time::{SimDuration, SimTime};

    #[test]
    fn bucket_indexing_is_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
    }

    #[test]
    fn histogram_tracks_extremes_and_quantiles() {
        let mut h = Histogram::default();
        for v in [1u64, 2, 4, 8, 1024] {
            h.observe(v);
        }
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 1039);
        assert_eq!(h.min, 1);
        assert_eq!(h.max, 1024);
        assert!(h.quantile_bound(0.5) >= 4);
        assert!(h.quantile_bound(0.99) >= 1024);
        assert_eq!(Histogram::default().quantile_bound(0.5), 0);
    }

    #[test]
    fn bucket_bounds_partition_the_u64_range() {
        assert_eq!(bucket_bounds(0), (0, 0));
        assert_eq!(bucket_bounds(1), (1, 1));
        assert_eq!(bucket_bounds(2), (2, 3));
        assert_eq!(bucket_bounds(11), (1024, 2047));
        assert_eq!(bucket_bounds(64), (1u64 << 63, u64::MAX));
        for v in [0u64, 1, 2, 3, 7, 8, 1023, 1024, u64::MAX] {
            let (lo, hi) = bucket_bounds(bucket_of(v));
            assert!(lo <= v && v <= hi, "{v} outside its bucket [{lo}, {hi}]");
        }
    }

    /// Pins the quantile fix: the log2-bucket estimate interpolates
    /// within the bucket instead of returning its upper bound. The
    /// "was" values are what the pre-fix implementation returned —
    /// always a power of two minus one.
    #[test]
    fn quantiles_interpolate_within_buckets() {
        let mut h = Histogram::default();
        for v in [1u64, 2, 4, 8, 1024] {
            h.observe(v);
        }
        assert_eq!(h.quantile_bound(0.50), 5); // was 7: bucket [4,7] upper bound
        assert_eq!(h.quantile_bound(0.99), 1535); // was 2047: bucket [1024,2047]

        // Several values in one bucket spread evenly across it.
        let mut h = Histogram::default();
        for _ in 0..3 {
            h.observe(1000); // bucket 10 covers [512, 1023]
        }
        assert_eq!(h.quantile_bound(0.25), 512 + 511 / 4); // was 1023
        assert_eq!(h.quantile_bound(0.50), 512 + 511 * 2 / 4);
        assert_eq!(h.quantile_bound(1.0), 512 + 511 * 3 / 4);

        // Degenerate buckets interpolate to their single value.
        let mut h = Histogram::default();
        h.observe(0);
        h.observe(1);
        assert_eq!(h.quantile_bound(0.50), 0);
        assert_eq!(h.quantile_bound(1.0), 1);
    }

    #[test]
    fn temperatures_bucket_accesses_per_region_and_epoch() {
        let mut r = MetricsRegistry::new();
        let access = |region, at, bytes| TraceEvent::Access {
            region,
            dev: MemDeviceId(0),
            bytes,
            op: AccessOp::Read,
            at: SimTime(at),
            took: SimDuration(10),
        };
        r.record(&access(1, 0, 100));
        r.record(&access(1, 50, 100));
        r.record(&access(1, TEMP_EPOCH_NS - 1, 56));
        r.record(&access(1, 2 * TEMP_EPOCH_NS, 4));
        r.record(&access(2, 10, 1));
        let snap = r.snapshot();
        assert_eq!(snap.temperatures.len(), 3, "two windows for region 1, one for region 2");
        let hot = snap.region_temperature(1);
        assert_eq!((hot[0].epoch, hot[0].accesses, hot[0].bytes), (0, 3, 256));
        assert_eq!(hot[0].heat, bucket_of(3) as u8);
        assert_eq!(hot[0].heat_bytes, bucket_of(256) as u8);
        assert_eq!((hot[1].epoch, hot[1].accesses), (2, 1));
        assert_eq!(snap.region_temperature(2)[0].bytes, 1);
        assert!(snap.to_json().contains("\"temperatures\""));
        assert!(snap.render().contains("temp region=1 epoch=0"));
    }

    #[test]
    fn registry_records_standard_metrics() {
        let mut r = MetricsRegistry::new();
        r.record(&TraceEvent::Access {
            region: 0,
            dev: MemDeviceId(2),
            bytes: 4096,
            op: AccessOp::Read,
            at: SimTime(10),
            took: SimDuration(100),
        });
        r.record(&TraceEvent::TaskDispatch {
            job: 0,
            task: 1,
            on: ComputeId(0),
            at: SimTime(50),
            waited: SimDuration(40),
        });
        r.record(&TraceEvent::Migrate {
            region: 0,
            from: MemDeviceId(0),
            to: MemDeviceId(2),
            bytes: 100,
            at: SimTime(60),
            took: SimDuration(5),
        });
        assert_eq!(r.counter("events"), 3);
        assert_eq!(r.counter("bytes.moved"), 4196);
        assert_eq!(r.counter("dev.mem2.bytes"), 4196);
        assert_eq!(r.counter("dev.mem0.bytes"), 100);
        assert_eq!(r.histogram("queue_wait_ns").unwrap().sum, 40);
        assert_eq!(r.histogram("access_ns").unwrap().count, 1);
        assert_eq!(r.histogram("migrate_bytes").unwrap().max, 100);
    }

    #[test]
    fn snapshots_are_deterministic_and_queryable() {
        let build = || {
            let mut r = MetricsRegistry::new();
            r.incr("b", 2);
            r.incr("a", 1);
            r.observe("h", 7);
            r.snapshot()
        };
        let s1 = build();
        let s2 = build();
        assert_eq!(s1, s2);
        // Name-ordered regardless of insertion order.
        assert_eq!(s1.counters[0].0, "a");
        assert_eq!(s1.counter("b"), 2);
        assert_eq!(s1.counter("missing"), 0);
        assert_eq!(s1.histogram("h").unwrap().count, 1);
        let json = s1.to_json();
        assert!(json.contains("\"a\": 1"));
        assert!(json.contains("\"log2_buckets\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(s1.render().contains("p50<="));
    }
}
