//! Per-device timelines sampled on event boundaries.
//!
//! Three step functions per device class, rebuilt from the event
//! stream:
//!
//! - **utilization** — busy lanes per compute device (`TaskStart` /
//!   `TaskFinish`);
//! - **queue depth** — ready tasks waiting per compute device
//!   (`TaskQueued` / `TaskDispatch`);
//! - **resident bytes** — allocated bytes per memory device (`Alloc` /
//!   `Free`).
//!
//! Events arrive in *emission* order, which is not virtual-time order
//! (a task's finish is emitted the moment the task is dispatched, with
//! a future timestamp), so the recorder buffers `(time, seq, delta)`
//! triples and sorts them once at finalize time. The `seq` tie-break
//! keeps equal-time deltas in emission order, so finalized timelines
//! are bit-for-bit deterministic.

use std::collections::BTreeMap;

use disagg_hwsim::time::SimTime;
use disagg_hwsim::trace::TraceEvent;

/// Buffered step deltas for one device metric.
#[derive(Debug, Clone, Default)]
struct Deltas {
    /// `(at, seq, delta)` in emission order.
    raw: Vec<(SimTime, u64, i64)>,
}

impl Deltas {
    fn push(&mut self, at: SimTime, seq: u64, delta: i64) {
        self.raw.push((at, seq, delta));
    }

    fn finalize(&self) -> Timeline {
        let mut raw = self.raw.clone();
        raw.sort_by_key(|&(at, seq, _)| (at, seq));
        let mut points = Vec::with_capacity(raw.len());
        let mut level = 0i64;
        for (at, _, d) in raw {
            level += d;
            match points.last_mut() {
                // Coalesce same-instant deltas into one sample.
                Some((t, v)) if *t == at => *v = level,
                _ => points.push((at, level)),
            }
        }
        Timeline { points }
    }
}

/// A finalized step function: the metric's value from each sample time
/// until the next.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Timeline {
    /// `(time, value)` samples, strictly increasing in time.
    pub points: Vec<(SimTime, i64)>,
}

impl Timeline {
    /// The value in effect at `t` (0 before the first sample).
    pub fn value_at(&self, t: SimTime) -> i64 {
        match self.points.partition_point(|&(at, _)| at <= t) {
            0 => 0,
            i => self.points[i - 1].1,
        }
    }

    /// The peak value across the run.
    pub fn peak(&self) -> i64 {
        self.points.iter().map(|&(_, v)| v).max().unwrap_or(0)
    }

    /// Virtual time integral of the step function between the first
    /// and last sample (value × duration, summed) — e.g. lane-seconds
    /// of busy time for a utilization timeline.
    pub fn integral(&self) -> i128 {
        let mut acc = 0i128;
        for w in self.points.windows(2) {
            let (t0, v) = w[0];
            let (t1, _) = w[1];
            acc += v as i128 * (t1.as_nanos() - t0.as_nanos()) as i128;
        }
        acc
    }

    /// Number of samples (event boundaries that changed the value).
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if the metric never changed.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// Streams events into per-device delta buffers.
#[derive(Debug, Clone, Default)]
pub struct TimelineRecorder {
    seq: u64,
    busy: BTreeMap<u32, Deltas>,
    queue: BTreeMap<u32, Deltas>,
    resident: BTreeMap<u32, Deltas>,
}

impl TimelineRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        TimelineRecorder::default()
    }

    /// Feeds one event.
    pub fn record(&mut self, e: &TraceEvent) {
        let seq = self.seq;
        self.seq += 1;
        match *e {
            TraceEvent::TaskStart { on, at, .. } => {
                self.busy.entry(on.0).or_default().push(at, seq, 1);
            }
            TraceEvent::TaskFinish { on, at, .. } => {
                self.busy.entry(on.0).or_default().push(at, seq, -1);
            }
            TraceEvent::TaskQueued { on, at, .. } => {
                self.queue.entry(on.0).or_default().push(at, seq, 1);
            }
            TraceEvent::TaskDispatch { on, at, .. } => {
                self.queue.entry(on.0).or_default().push(at, seq, -1);
            }
            TraceEvent::Alloc { dev, bytes, at, .. } => {
                self.resident
                    .entry(dev.0)
                    .or_default()
                    .push(at, seq, bytes as i64);
            }
            TraceEvent::Free { dev, bytes, at, .. } => {
                self.resident
                    .entry(dev.0)
                    .or_default()
                    .push(at, seq, -(bytes as i64));
            }
            _ => {}
        }
    }

    /// Sorts and collapses the buffered deltas into per-device step
    /// functions.
    pub fn finalize(&self) -> DeviceTimelines {
        let fin = |m: &BTreeMap<u32, Deltas>| -> Vec<(u32, Timeline)> {
            m.iter().map(|(&d, ds)| (d, ds.finalize())).collect()
        };
        DeviceTimelines {
            utilization: fin(&self.busy),
            queue_depth: fin(&self.queue),
            resident_bytes: fin(&self.resident),
        }
    }
}

/// The finalized per-device timelines of one run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeviceTimelines {
    /// Busy lanes per compute device, by device index.
    pub utilization: Vec<(u32, Timeline)>,
    /// Ready-queue depth per compute device, by device index.
    pub queue_depth: Vec<(u32, Timeline)>,
    /// Allocated bytes per memory device, by device index.
    pub resident_bytes: Vec<(u32, Timeline)>,
}

impl DeviceTimelines {
    fn find(list: &[(u32, Timeline)], dev: u32) -> Option<&Timeline> {
        list.iter().find(|&&(d, _)| d == dev).map(|(_, t)| t)
    }

    /// Utilization timeline of one compute device.
    pub fn utilization_of(&self, dev: u32) -> Option<&Timeline> {
        Self::find(&self.utilization, dev)
    }

    /// Queue-depth timeline of one compute device.
    pub fn queue_depth_of(&self, dev: u32) -> Option<&Timeline> {
        Self::find(&self.queue_depth, dev)
    }

    /// Resident-bytes timeline of one memory device.
    pub fn resident_bytes_of(&self, dev: u32) -> Option<&Timeline> {
        Self::find(&self.resident_bytes, dev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disagg_hwsim::ids::ComputeId;

    fn start(task: u64, at: u64) -> TraceEvent {
        TraceEvent::TaskStart { job: 0, task, on: ComputeId(0), at: SimTime(at) }
    }

    fn finish(task: u64, at: u64) -> TraceEvent {
        TraceEvent::TaskFinish { job: 0, task, on: ComputeId(0), at: SimTime(at) }
    }

    #[test]
    fn out_of_order_emission_sorts_into_a_step_function() {
        let mut r = TimelineRecorder::new();
        // Emission order: task 0 start@0, finish@100 (emitted early),
        // then task 1 start@50, finish@150.
        r.record(&start(0, 0));
        r.record(&finish(0, 100));
        r.record(&start(1, 50));
        r.record(&finish(1, 150));
        let t = r.finalize();
        let util = t.utilization_of(0).expect("device 0 has a timeline");
        assert_eq!(
            util.points,
            vec![
                (SimTime(0), 1),
                (SimTime(50), 2),
                (SimTime(100), 1),
                (SimTime(150), 0),
            ]
        );
        assert_eq!(util.peak(), 2);
        assert_eq!(util.value_at(SimTime(75)), 2);
        assert_eq!(util.value_at(SimTime(149)), 1);
        // 1*50 + 2*50 + 1*50 lane-ns of busy time.
        assert_eq!(util.integral(), 200);
    }

    #[test]
    fn same_instant_deltas_coalesce() {
        let mut r = TimelineRecorder::new();
        r.record(&start(0, 10));
        r.record(&finish(0, 10));
        let t = r.finalize();
        let util = t.utilization_of(0).unwrap();
        assert_eq!(util.points, vec![(SimTime(10), 0)]);
    }

    #[test]
    fn queue_depth_tracks_queued_minus_dispatched() {
        let mut r = TimelineRecorder::new();
        r.record(&TraceEvent::TaskQueued { job: 0, task: 0, on: ComputeId(1), at: SimTime(0) });
        r.record(&TraceEvent::TaskQueued { job: 0, task: 1, on: ComputeId(1), at: SimTime(0) });
        r.record(&TraceEvent::TaskDispatch {
            job: 0,
            task: 0,
            on: ComputeId(1),
            at: SimTime(5),
            waited: disagg_hwsim::time::SimDuration(5),
        });
        let t = r.finalize();
        let q = t.queue_depth_of(1).unwrap();
        assert_eq!(q.value_at(SimTime(0)), 2);
        assert_eq!(q.value_at(SimTime(5)), 1);
        assert!(t.queue_depth_of(9).is_none());
    }

    #[test]
    fn finalize_is_deterministic() {
        let run = || {
            let mut r = TimelineRecorder::new();
            for i in 0..32 {
                r.record(&start(i, i * 3 % 7));
                r.record(&finish(i, i * 3 % 7 + 10));
            }
            r.finalize()
        };
        assert_eq!(run(), run());
    }
}
