//! Critical-path extraction over the executed task/edge DAG.
//!
//! The makespan of a dataflow run is governed by its longest dependent
//! chain, not by total work. Given the spans of every executed task
//! (with per-layer attribution from the profiler) and the dataflow
//! edges that actually gated them, [`critical_paths`] returns the top-k
//! heaviest source→sink chains, each with its time split across the
//! abstraction layers — so the answer to "why is this run slow" points
//! at *a specific chain of tasks* and *a specific layer* (application
//! compute, programming-model memory stalls, or runtime overhead),
//! exactly what Challenge 8(1) asks for.

use std::fmt::Write as _;

use disagg_hwsim::time::{SimDuration, SimTime};

/// One executed task with its layer breakdown: the analyzer's input,
/// produced from a `RunReport` by the core crate's profiling glue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskSpan {
    /// Job identifier.
    pub job: u64,
    /// Task index within the job.
    pub task: u64,
    /// Task name.
    pub name: String,
    /// Compute device the task ran on (its Perfetto lane).
    pub lane: u32,
    /// Virtual start time.
    pub start: SimTime,
    /// Virtual finish time.
    pub finish: SimTime,
    /// Application layer: pure compute.
    pub compute: SimDuration,
    /// Programming-model layer: memory stalls (sync + unhidden async).
    pub mem_stall: SimDuration,
    /// Runtime layer: launch overhead, placement, handover, crypto.
    pub runtime: SimDuration,
}

impl TaskSpan {
    /// Wall-clock (virtual) span length.
    pub fn duration(&self) -> SimDuration {
        self.finish - self.start
    }
}

/// One extracted chain, heaviest first in [`critical_paths`]' output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CriticalPath {
    /// Indices into the input span slice, in source→sink order.
    pub spans: Vec<usize>,
    /// Sum of span durations along the chain.
    pub total: SimDuration,
    /// Chain time spent in application compute.
    pub compute: SimDuration,
    /// Chain time stalled on memory.
    pub mem_stall: SimDuration,
    /// Chain time spent in the runtime layer.
    pub runtime: SimDuration,
}

impl CriticalPath {
    /// Renders one line: total, per-layer split, and the chain.
    pub fn render(&self, spans: &[TaskSpan]) -> String {
        let chain: Vec<&str> = self.spans.iter().map(|&i| spans[i].name.as_str()).collect();
        format!(
            "{} (compute {}, mem-stall {}, runtime {}): {}",
            self.total,
            self.compute,
            self.mem_stall,
            self.runtime,
            chain.join(" -> ")
        )
    }
}

/// Extracts the top-`k` heaviest source→sink chains.
///
/// `edges` are `(from, to)` indices into `spans` — the dataflow edges
/// the executor actually honored. Chain weight is the sum of span
/// durations; ties break toward the lower span index, so the output is
/// deterministic. Edges referencing out-of-range spans are ignored.
pub fn critical_paths(spans: &[TaskSpan], edges: &[(usize, usize)], k: usize) -> Vec<CriticalPath> {
    let n = spans.len();
    if n == 0 || k == 0 {
        return Vec::new();
    }
    let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut pred: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(a, b) in edges {
        if a < n && b < n && a != b {
            succ[a].push(b);
            pred[b].push(a);
        }
    }
    // Kahn topological order (executed DAGs are acyclic by
    // construction; if a cycle sneaks in, its nodes are skipped).
    let mut indeg: Vec<usize> = pred.iter().map(Vec::len).collect();
    let mut order: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut head = 0;
    while head < order.len() {
        let u = order[head];
        head += 1;
        for &s in &succ[u] {
            indeg[s] -= 1;
            if indeg[s] == 0 {
                order.push(s);
            }
        }
    }

    // Longest chain ending at each node, with deterministic
    // lowest-index predecessor on ties.
    let weight = |i: usize| spans[i].duration().as_nanos() as u128;
    let mut best: Vec<u128> = vec![0; n];
    let mut back: Vec<Option<usize>> = vec![None; n];
    for &u in &order {
        let mut b = 0u128;
        let mut from = None;
        for &p in &pred[u] {
            if best[p] > b {
                b = best[p];
                from = Some(p);
            }
        }
        best[u] = b + weight(u);
        back[u] = from;
    }

    // Positive weights mean extending a chain never shrinks it, so the
    // heaviest chains end at sinks; rank sinks by weight (desc), index
    // (asc).
    let mut sinks: Vec<usize> = (0..n).filter(|&i| succ[i].is_empty()).collect();
    sinks.sort_by_key(|&i| (std::cmp::Reverse(best[i]), i));
    sinks
        .into_iter()
        .take(k)
        .map(|end| {
            let mut chain = vec![end];
            let mut cur = end;
            while let Some(p) = back[cur] {
                chain.push(p);
                cur = p;
            }
            chain.reverse();
            let sum = |f: fn(&TaskSpan) -> SimDuration| -> SimDuration {
                chain.iter().map(|&i| f(&spans[i])).sum()
            };
            CriticalPath {
                total: sum(TaskSpan::duration),
                compute: sum(|s| s.compute),
                mem_stall: sum(|s| s.mem_stall),
                runtime: sum(|s| s.runtime),
                spans: chain,
            }
        })
        .collect()
}

/// Renders the top-k report as one block of text.
pub fn render_critical_paths(spans: &[TaskSpan], paths: &[CriticalPath]) -> String {
    let mut out = String::new();
    for (i, p) in paths.iter().enumerate() {
        let _ = writeln!(out, "#{} {}", i + 1, p.render(spans));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &str, task: u64, start: u64, finish: u64) -> TaskSpan {
        TaskSpan {
            job: 0,
            task,
            name: name.to_string(),
            lane: 0,
            start: SimTime(start),
            finish: SimTime(finish),
            compute: SimDuration(finish - start),
            mem_stall: SimDuration::ZERO,
            runtime: SimDuration::ZERO,
        }
    }

    /// Diamond: 0=source, 1=slow branch, 2=fast branch, 3=sink.
    fn diamond() -> (Vec<TaskSpan>, Vec<(usize, usize)>) {
        let spans = vec![
            span("source", 0, 0, 10),
            span("slow", 1, 10, 110),
            span("fast", 2, 10, 30),
            span("sink", 3, 110, 120),
        ];
        let edges = vec![(0, 1), (0, 2), (1, 3), (2, 3)];
        (spans, edges)
    }

    #[test]
    fn diamond_critical_path_takes_the_slow_branch() {
        let (spans, edges) = diamond();
        let paths = critical_paths(&spans, &edges, 3);
        assert_eq!(paths.len(), 1, "one sink, one chain");
        let names: Vec<&str> = paths[0].spans.iter().map(|&i| spans[i].name.as_str()).collect();
        assert_eq!(names, vec!["source", "slow", "sink"]);
        assert_eq!(paths[0].total, SimDuration(10 + 100 + 10));
        assert_eq!(paths[0].compute, paths[0].total);
    }

    #[test]
    fn top_k_ranks_sinks_by_chain_weight() {
        // Two independent chains: 0→1 (weight 50) and 2→3 (weight 200).
        let spans = vec![
            span("a0", 0, 0, 20),
            span("a1", 1, 20, 50),
            span("b0", 2, 0, 120),
            span("b1", 3, 120, 200),
        ];
        let edges = vec![(0, 1), (2, 3)];
        let paths = critical_paths(&spans, &edges, 2);
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[0].total, SimDuration(200));
        assert_eq!(paths[1].total, SimDuration(50));
        assert!(paths[0].total >= paths[1].total, "heaviest first");
    }

    #[test]
    fn layer_attribution_sums_along_the_chain() {
        let mut s0 = span("x", 0, 0, 100);
        s0.compute = SimDuration(60);
        s0.mem_stall = SimDuration(30);
        s0.runtime = SimDuration(10);
        let mut s1 = span("y", 1, 100, 150);
        s1.compute = SimDuration(20);
        s1.mem_stall = SimDuration(25);
        s1.runtime = SimDuration(5);
        let paths = critical_paths(&[s0, s1], &[(0, 1)], 1);
        assert_eq!(paths[0].compute, SimDuration(80));
        assert_eq!(paths[0].mem_stall, SimDuration(55));
        assert_eq!(paths[0].runtime, SimDuration(15));
        assert_eq!(
            paths[0].compute + paths[0].mem_stall + paths[0].runtime,
            paths[0].total
        );
    }

    #[test]
    fn degenerate_inputs_are_safe() {
        assert!(critical_paths(&[], &[], 5).is_empty());
        let (spans, edges) = diamond();
        assert!(critical_paths(&spans, &edges, 0).is_empty());
        // Out-of-range and self edges are ignored, not panics.
        let paths = critical_paths(&spans, &[(0, 99), (1, 1)], 1);
        assert_eq!(paths.len(), 1);
    }

    #[test]
    fn render_names_the_chain() {
        let (spans, edges) = diamond();
        let paths = critical_paths(&spans, &edges, 1);
        let text = render_critical_paths(&spans, &paths);
        assert!(text.contains("source -> slow -> sink"), "{text}");
        assert!(text.starts_with("#1 "));
    }
}
