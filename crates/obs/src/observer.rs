//! The streaming event sink.
//!
//! The runtime's execution machinery (executor, accessors, migration,
//! lifetime handover) already funnels every observable action through
//! [`Trace::push`]; an [`Observer`] taps that same stream *as it
//! happens* instead of waiting for the run to finish. The buffered
//! [`Trace`] is itself one sink implementation; [`NullObserver`] is the
//! zero-overhead default (no tap is even installed); [`FullObserver`]
//! buffers events, maintains the metrics registry, and records device
//! timelines all at once.
//!
//! [`ObserverSlot`] is the handle a [`RuntimeConfig`] carries: a
//! cloneable, shareable reference so the caller keeps access to the
//! sink after the runtime consumed the config. Cloning a config clones
//! the handle, not the sink — both configs feed the same observer.
//!
//! [`Trace::push`]: disagg_hwsim::trace::Trace::push
//! [`RuntimeConfig`]: ../../disagg_core/config/struct.RuntimeConfig.html

use std::fmt;
use std::sync::{Arc, Mutex};

use disagg_hwsim::trace::{Trace, TraceEvent};

use crate::metrics::{MetricsRegistry, MetricsSnapshot};
use crate::timeline::TimelineRecorder;

/// A streaming sink for execution events.
///
/// Implementations must be deterministic functions of the event
/// sequence: events carry *virtual* timestamps and arrive in emission
/// order (the same order the buffered trace records), so anything
/// derived from them is bit-for-bit reproducible across runs.
pub trait Observer: Send {
    /// Called once per event, at emission time.
    fn on_event(&mut self, event: &TraceEvent);

    /// A snapshot of this observer's metrics, if it keeps any. The
    /// runtime attaches this to the `RunReport` at the end of a run.
    fn metrics(&self) -> Option<MetricsSnapshot> {
        None
    }
}

/// The default sink: drops everything. The runtime never installs a
/// trace tap for it, so observability-off costs one untaken branch per
/// event.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl Observer for NullObserver {
    fn on_event(&mut self, _event: &TraceEvent) {}
}

/// Buffers the raw event stream (for equivalence tests and custom
/// post-processing).
#[derive(Debug, Default)]
pub struct CollectingObserver {
    /// Every event seen, in emission order.
    pub events: Vec<TraceEvent>,
}

impl Observer for CollectingObserver {
    fn on_event(&mut self, event: &TraceEvent) {
        self.events.push(event.clone());
    }
}

/// The buffered trace is itself a valid streaming sink.
impl Observer for Trace {
    fn on_event(&mut self, event: &TraceEvent) {
        self.push(event.clone());
    }
}

/// The everything sink: buffered events + metrics registry + device
/// timelines, maintained incrementally from one stream.
#[derive(Debug, Default)]
pub struct FullObserver {
    /// Raw events in emission order (feed to the exporters).
    pub events: Vec<TraceEvent>,
    /// Counters and histograms.
    pub registry: MetricsRegistry,
    /// Per-device utilization / queue-depth recorder.
    pub timelines: TimelineRecorder,
}

impl FullObserver {
    /// An empty full observer.
    pub fn new() -> Self {
        FullObserver::default()
    }
}

impl Observer for FullObserver {
    fn on_event(&mut self, event: &TraceEvent) {
        self.registry.record(event);
        self.timelines.record(event);
        self.events.push(event.clone());
    }

    fn metrics(&self) -> Option<MetricsSnapshot> {
        Some(self.registry.snapshot())
    }
}

/// The observer handle a runtime config carries.
///
/// `Default` is the null slot: no sink, no tap, no overhead. Build an
/// active slot with [`ObserverSlot::new`] (slot owns the sink) or
/// [`ObserverSlot::shared`] (caller keeps an `Arc` to read results back
/// out after the run):
///
/// ```
/// use std::sync::{Arc, Mutex};
/// use disagg_obs::{FullObserver, ObserverSlot};
///
/// let sink = Arc::new(Mutex::new(FullObserver::new()));
/// let slot = ObserverSlot::shared(sink.clone());
/// assert!(slot.is_active());
/// // ... hand `slot` to the RuntimeConfig, run, then:
/// let _events = &sink.lock().unwrap().events;
/// ```
#[derive(Clone, Default)]
pub struct ObserverSlot(Option<Arc<Mutex<dyn Observer + Send>>>);

impl ObserverSlot {
    /// A slot owning the given sink.
    pub fn new(observer: impl Observer + 'static) -> Self {
        ObserverSlot(Some(Arc::new(Mutex::new(observer))))
    }

    /// A slot sharing an existing sink with the caller.
    pub fn shared<O: Observer + 'static>(observer: Arc<Mutex<O>>) -> Self {
        ObserverSlot(Some(observer))
    }

    /// The inert slot (equivalent to [`NullObserver`], but cheaper: no
    /// tap is installed at all).
    pub fn null() -> Self {
        ObserverSlot(None)
    }

    /// True if a sink is attached (the runtime only installs a trace
    /// tap when it is).
    pub fn is_active(&self) -> bool {
        self.0.is_some()
    }

    /// Forwards one event to the sink, if any.
    pub fn emit(&self, event: &TraceEvent) {
        if let Some(obs) = &self.0 {
            obs.lock().expect("observer lock").on_event(event);
        }
    }

    /// The sink's metrics snapshot, if it keeps one.
    pub fn metrics(&self) -> Option<MetricsSnapshot> {
        self.0
            .as_ref()
            .and_then(|obs| obs.lock().expect("observer lock").metrics())
    }
}

impl fmt::Debug for ObserverSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.0 {
            Some(_) => f.write_str("ObserverSlot(active)"),
            None => f.write_str("ObserverSlot(null)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disagg_hwsim::ids::ComputeId;
    use disagg_hwsim::time::SimTime;

    fn ev(task: u64, at: u64) -> TraceEvent {
        TraceEvent::TaskStart {
            job: 0,
            task,
            on: ComputeId(0),
            at: SimTime(at),
        }
    }

    #[test]
    fn null_slot_is_inactive_and_silent() {
        let slot = ObserverSlot::default();
        assert!(!slot.is_active());
        slot.emit(&ev(0, 1)); // must not panic
        assert!(slot.metrics().is_none());
    }

    #[test]
    fn collecting_observer_preserves_order() {
        let sink = Arc::new(Mutex::new(CollectingObserver::default()));
        let slot = ObserverSlot::shared(sink.clone());
        assert!(slot.is_active());
        for i in 0..5 {
            slot.emit(&ev(i, i * 10));
        }
        let got = &sink.lock().unwrap().events;
        assert_eq!(got.len(), 5);
        for (i, e) in got.iter().enumerate() {
            assert_eq!(e.at(), SimTime(i as u64 * 10));
        }
    }

    #[test]
    fn trace_is_a_sink() {
        let mut t = Trace::enabled();
        t.on_event(&ev(0, 1));
        t.on_event(&ev(1, 2));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn cloned_slots_share_one_sink() {
        let slot = ObserverSlot::new(CollectingObserver::default());
        let twin = slot.clone();
        slot.emit(&ev(0, 1));
        twin.emit(&ev(1, 2));
        // Both events hit the same registry: count via metrics-free
        // path by swapping in a FullObserver instead.
        let full = ObserverSlot::new(FullObserver::new());
        let other = full.clone();
        full.emit(&ev(0, 1));
        other.emit(&ev(1, 2));
        let snap = full.metrics().expect("full observer keeps metrics");
        assert_eq!(snap.counter("events"), 2);
    }
}
