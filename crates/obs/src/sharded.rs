//! Deterministic merging of per-shard event streams.
//!
//! The sharded executor runs one event loop per topology shard; each
//! loop emits its observations (trace events, task exits, metric
//! samples) into a private lane stamped with the event's virtual
//! `(SimTime, global_seq)` coordinate. Because every stamp is unique —
//! the global sequence number is assigned once, at event-creation time,
//! by a single counter — merging the lanes by `(time, seq)` reconstructs
//! *exactly* the order a serial run would have produced, regardless of
//! how many shards the work was split across or how the OS interleaved
//! their threads. This is the property the shard-count invariance
//! goldens in `tests/equivalence.rs` pin.
//!
//! The merge is a k-way cursor walk (shard counts are small, so a
//! linear min-scan beats a heap) and *drains* the input lanes, leaving
//! their allocations in place for the next window.

use disagg_hwsim::time::SimTime;

/// A `(time, seq)`-stamped item in a shard's output lane.
pub type Stamped<T> = (SimTime, u64, T);

/// Per-shard output lanes that merge back into serial order.
///
/// Lanes must be filled in nondecreasing `(time, seq)` order — which
/// each shard's loop does naturally, since it commits its own events in
/// virtual-time order. [`ShardLanes::merge_into`] then interleaves the
/// lanes into the unique global order.
#[derive(Debug)]
pub struct ShardLanes<T> {
    lanes: Vec<Vec<Stamped<T>>>,
}

impl<T> ShardLanes<T> {
    /// Creates `shards` empty lanes.
    pub fn new(shards: usize) -> ShardLanes<T> {
        ShardLanes {
            lanes: (0..shards).map(|_| Vec::new()).collect(),
        }
    }

    /// Number of lanes.
    pub fn shards(&self) -> usize {
        self.lanes.len()
    }

    /// Appends an item to a shard's lane.
    ///
    /// Items must arrive per-lane in nondecreasing `(time, seq)` order;
    /// the merge asserts this in debug builds.
    pub fn push(&mut self, shard: usize, time: SimTime, seq: u64, item: T) {
        debug_assert!(
            self.lanes[shard]
                .last()
                .is_none_or(|&(t, s, _)| (t, s) <= (time, seq)),
            "lane {shard} items must be pushed in (time, seq) order"
        );
        self.lanes[shard].push((time, seq, item));
    }

    /// True when no lane holds any item.
    pub fn is_empty(&self) -> bool {
        self.lanes.iter().all(Vec::is_empty)
    }

    /// Total queued items across all lanes.
    pub fn len(&self) -> usize {
        self.lanes.iter().map(Vec::len).sum()
    }

    /// Drains every lane into `out` in ascending `(time, seq)` order,
    /// reconstructing the serial event order. Lane capacity is retained
    /// for reuse.
    pub fn merge_into(&mut self, out: &mut Vec<Stamped<T>>) {
        merge_stamped_into(&mut self.lanes, out);
    }
}

/// Merges sorted per-shard lanes into `out` by `(time, seq)`, draining
/// the lanes (their allocations are retained for reuse). `out` is
/// cleared first. `Drain` iterators move the items without requiring
/// `T: Default` or `T: Clone`.
pub fn merge_stamped_into<T>(lanes: &mut [Vec<Stamped<T>>], out: &mut Vec<Stamped<T>>) {
    let total: usize = lanes.iter().map(Vec::len).sum();
    out.clear();
    out.reserve(total);
    let mut iters: Vec<std::iter::Peekable<std::vec::Drain<'_, Stamped<T>>>> =
        lanes.iter_mut().map(|l| l.drain(..).peekable()).collect();
    for _ in 0..total {
        let mut best: Option<(usize, (SimTime, u64))> = None;
        for (li, it) in iters.iter_mut().enumerate() {
            if let Some(&(t, s, _)) = it.peek() {
                if best.is_none_or(|(_, key)| (t, s) < key) {
                    best = Some((li, (t, s)));
                }
            }
        }
        let (li, _) = best.expect("total counted a remaining item");
        out.push(iters[li].next().expect("peeked item present"));
    }
}

/// Convenience wrapper: merges lanes into a fresh `Vec`.
pub fn merge_stamped<T>(lanes: &mut [Vec<Stamped<T>>]) -> Vec<Stamped<T>> {
    let mut out = Vec::new();
    merge_stamped_into(lanes, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime(ns)
    }

    #[test]
    fn merge_reconstructs_global_seq_order() {
        let mut lanes = ShardLanes::new(3);
        // Interleaved stamps as three shards would emit them.
        lanes.push(0, t(10), 0, "a");
        lanes.push(1, t(10), 1, "b");
        lanes.push(2, t(12), 2, "c");
        lanes.push(0, t(12), 4, "e");
        lanes.push(1, t(12), 3, "d");
        lanes.push(2, t(20), 5, "f");
        let mut out = Vec::new();
        lanes.merge_into(&mut out);
        let order: Vec<&str> = out.iter().map(|&(_, _, v)| v).collect();
        assert_eq!(order, ["a", "b", "c", "d", "e", "f"]);
        assert!(lanes.is_empty(), "merge drains the lanes");
    }

    #[test]
    fn merge_matches_global_sort_for_arbitrary_splits() {
        // The same stamped stream split across different lane counts
        // must merge back to the same sequence.
        let stream: Vec<Stamped<u64>> = (0..200)
            .map(|i| (t((i * 37) % 500 + i), i, i * 3))
            .collect();
        let mut sorted = stream.clone();
        sorted.sort_by_key(|&(time, seq, _)| (time, seq));

        for shards in [1usize, 2, 4, 8] {
            let mut lanes: Vec<Vec<Stamped<u64>>> = vec![Vec::new(); shards];
            for item in &sorted {
                // Deterministic but uneven assignment.
                lanes[(item.1 as usize * 7) % shards].push(*item);
            }
            let merged = merge_stamped(&mut lanes);
            assert_eq!(merged, sorted, "{shards} shards");
        }
    }

    #[test]
    fn lanes_are_reusable_after_merge() {
        let mut lanes = ShardLanes::new(2);
        let mut out = Vec::new();
        for round in 0..3u64 {
            lanes.push(0, t(round), round * 2, round);
            lanes.push(1, t(round), round * 2 + 1, round + 100);
            lanes.merge_into(&mut out);
            assert_eq!(out.len(), 2);
            assert_eq!(out[0].1 + 1, out[1].1);
            assert!(lanes.is_empty());
        }
    }

    #[test]
    fn empty_merge_is_a_noop() {
        let mut lanes: ShardLanes<u8> = ShardLanes::new(4);
        let mut out = vec![(t(0), 0, 9u8)];
        lanes.merge_into(&mut out);
        assert!(out.is_empty(), "merge_into replaces out with the merged stream");
    }
}
