//! Hotness tracking and tagged (remotable) pointers.
//!
//! The paper's RTS discussion points to prior work that "used pointer
//! tagging to track the hotness of pages or objects and to implement
//! remotable pointers that either point to objects in local or in remote
//! memory (pointer swizzling)". This module provides both ingredients:
//!
//! - [`TaggedPtr`] packs a device id, a saturating hotness counter, and a
//!   48-bit offset into one 64-bit word, exactly as a swizzling runtime
//!   would.
//! - [`HotnessTracker`] keeps exponentially decayed access statistics per
//!   region, feeding the tiering policy in [`mod@crate::migrate`].

use std::collections::HashMap;

use disagg_hwsim::ids::MemDeviceId;
use disagg_hwsim::time::SimTime;

use crate::pool::RegionId;

/// A 64-bit tagged pointer: `[remote:1][hot:7][device:8][offset:48]`.
///
/// The tag bits live in the high byte that user-space pointers leave
/// unused on x86-64/AArch64 — the same trick production swizzling runtimes
/// (LeanStore, AIFM, TPP's page tracking) play.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TaggedPtr(u64);

const OFFSET_BITS: u32 = 48;
const DEVICE_BITS: u32 = 8;
const HOT_BITS: u32 = 7;
const OFFSET_MASK: u64 = (1 << OFFSET_BITS) - 1;
const DEVICE_MASK: u64 = (1 << DEVICE_BITS) - 1;
const HOT_MASK: u64 = (1 << HOT_BITS) - 1;

impl TaggedPtr {
    /// Maximum representable hotness.
    pub const MAX_HOT: u8 = HOT_MASK as u8;

    /// Packs a pointer.
    ///
    /// # Panics
    ///
    /// Panics if `offset` needs more than 48 bits or `device` more than
    /// 8 bits — both far beyond any simulated configuration.
    pub fn pack(device: MemDeviceId, offset: u64, hotness: u8, remote: bool) -> TaggedPtr {
        assert!(offset <= OFFSET_MASK, "offset exceeds 48 bits");
        assert!(u64::from(device.0) <= DEVICE_MASK, "device id exceeds 8 bits");
        let hot = u64::from(hotness.min(Self::MAX_HOT));
        let r = u64::from(remote);
        TaggedPtr(
            (r << (OFFSET_BITS + DEVICE_BITS + HOT_BITS))
                | (hot << (OFFSET_BITS + DEVICE_BITS))
                | (u64::from(device.0) << OFFSET_BITS)
                | offset,
        )
    }

    /// The byte offset on the device.
    pub fn offset(self) -> u64 {
        self.0 & OFFSET_MASK
    }

    /// The device the pointee lives on.
    pub fn device(self) -> MemDeviceId {
        MemDeviceId(((self.0 >> OFFSET_BITS) & DEVICE_MASK) as u32)
    }

    /// The hotness counter.
    pub fn hotness(self) -> u8 {
        ((self.0 >> (OFFSET_BITS + DEVICE_BITS)) & HOT_MASK) as u8
    }

    /// Whether the pointee is remote (needs swizzling before direct use).
    pub fn is_remote(self) -> bool {
        (self.0 >> (OFFSET_BITS + DEVICE_BITS + HOT_BITS)) & 1 == 1
    }

    /// Returns the pointer with hotness incremented (saturating).
    pub fn touched(self) -> TaggedPtr {
        TaggedPtr::pack(
            self.device(),
            self.offset(),
            self.hotness().saturating_add(1),
            self.is_remote(),
        )
    }

    /// Returns the pointer with hotness halved (decay tick).
    pub fn decayed(self) -> TaggedPtr {
        TaggedPtr::pack(self.device(), self.offset(), self.hotness() / 2, self.is_remote())
    }

    /// Swizzles the pointer to a new (local) location.
    pub fn swizzle(self, device: MemDeviceId, offset: u64) -> TaggedPtr {
        TaggedPtr::pack(device, offset, self.hotness(), false)
    }

    /// The raw word (for storage inside region bytes).
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Reconstructs from a raw word.
    pub fn from_raw(raw: u64) -> TaggedPtr {
        TaggedPtr(raw)
    }
}

/// Per-region decayed access statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HotStat {
    /// Exponentially decayed access score.
    pub score: f64,
    /// Total accesses ever.
    pub total: u64,
    /// Last access time.
    pub last: SimTime,
}

/// Tracks region hotness with exponential decay.
#[derive(Debug, Default)]
pub struct HotnessTracker {
    stats: HashMap<RegionId, HotStat>,
    /// Decay factor applied per decay tick.
    alpha: f64,
}

impl HotnessTracker {
    /// Creates a tracker with the default decay factor (0.5 per tick).
    pub fn new() -> Self {
        HotnessTracker {
            stats: HashMap::new(),
            alpha: 0.5,
        }
    }

    /// Creates a tracker with a custom decay factor in `(0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1)`.
    pub fn with_alpha(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0, 1)");
        HotnessTracker {
            stats: HashMap::new(),
            alpha,
        }
    }

    /// Records an access of `bytes` to `region` at time `now`.
    pub fn record(&mut self, region: RegionId, bytes: u64, now: SimTime) {
        let stat = self.stats.entry(region).or_default();
        // Score grows with access count, weighted by log-size so huge
        // streams don't drown small hot objects.
        stat.score += 1.0 + (bytes as f64).max(1.0).log2() / 16.0;
        stat.total += 1;
        stat.last = now;
    }

    /// Applies one decay tick to every region.
    pub fn decay(&mut self) {
        for stat in self.stats.values_mut() {
            stat.score *= self.alpha;
        }
    }

    /// The current statistics for a region.
    pub fn stat(&self, region: RegionId) -> HotStat {
        self.stats.get(&region).copied().unwrap_or_default()
    }

    /// Regions with score at or above `threshold`, hottest first.
    pub fn hot(&self, threshold: f64) -> Vec<(RegionId, f64)> {
        let mut v: Vec<(RegionId, f64)> = self
            .stats
            .iter()
            .filter(|(_, s)| s.score >= threshold)
            .map(|(&r, s)| (r, s.score))
            .collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Regions with score strictly below `threshold`, coldest first.
    pub fn cold(&self, threshold: f64) -> Vec<(RegionId, f64)> {
        let mut v: Vec<(RegionId, f64)> = self
            .stats
            .iter()
            .filter(|(_, s)| s.score < threshold)
            .map(|(&r, s)| (r, s.score))
            .collect();
        v.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Forgets a freed region.
    pub fn forget(&mut self, region: RegionId) {
        self.stats.remove(&region);
    }

    /// Number of tracked regions.
    pub fn len(&self) -> usize {
        self.stats.len()
    }

    /// True if nothing is tracked.
    pub fn is_empty(&self) -> bool {
        self.stats.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tagged_ptr_round_trips_all_fields() {
        let p = TaggedPtr::pack(MemDeviceId(7), 0xDEAD_BEEF, 42, true);
        assert_eq!(p.device(), MemDeviceId(7));
        assert_eq!(p.offset(), 0xDEAD_BEEF);
        assert_eq!(p.hotness(), 42);
        assert!(p.is_remote());
        let q = TaggedPtr::from_raw(p.raw());
        assert_eq!(p, q);
    }

    #[test]
    fn touch_saturates_at_max() {
        let mut p = TaggedPtr::pack(MemDeviceId(0), 0, TaggedPtr::MAX_HOT - 1, false);
        p = p.touched();
        assert_eq!(p.hotness(), TaggedPtr::MAX_HOT);
        p = p.touched();
        assert_eq!(p.hotness(), TaggedPtr::MAX_HOT, "must saturate, not wrap");
        assert_eq!(p.offset(), 0, "saturation must not bleed into offset");
    }

    #[test]
    fn decay_halves_hotness() {
        let p = TaggedPtr::pack(MemDeviceId(1), 99, 64, false);
        assert_eq!(p.decayed().hotness(), 32);
        assert_eq!(p.decayed().offset(), 99);
    }

    #[test]
    fn swizzle_localizes_pointer() {
        let remote = TaggedPtr::pack(MemDeviceId(5), 1_000, 10, true);
        let local = remote.swizzle(MemDeviceId(0), 64);
        assert!(!local.is_remote());
        assert_eq!(local.device(), MemDeviceId(0));
        assert_eq!(local.offset(), 64);
        assert_eq!(local.hotness(), 10, "hotness survives swizzling");
    }

    #[test]
    #[should_panic(expected = "offset exceeds 48 bits")]
    fn oversized_offset_panics() {
        TaggedPtr::pack(MemDeviceId(0), 1 << 48, 0, false);
    }

    #[test]
    fn tracker_scores_grow_with_accesses() {
        let mut t = HotnessTracker::new();
        let r = RegionId(1);
        t.record(r, 64, SimTime(10));
        let s1 = t.stat(r).score;
        t.record(r, 64, SimTime(20));
        let s2 = t.stat(r).score;
        assert!(s2 > s1);
        assert_eq!(t.stat(r).total, 2);
        assert_eq!(t.stat(r).last, SimTime(20));
    }

    #[test]
    fn decay_cools_idle_regions() {
        let mut t = HotnessTracker::new();
        let r = RegionId(1);
        for _ in 0..10 {
            t.record(r, 64, SimTime(0));
        }
        let before = t.stat(r).score;
        t.decay();
        t.decay();
        assert!(t.stat(r).score < before / 3.0);
    }

    #[test]
    fn hot_and_cold_partition_by_threshold() {
        let mut t = HotnessTracker::new();
        for _ in 0..20 {
            t.record(RegionId(1), 64, SimTime(0));
        }
        t.record(RegionId(2), 64, SimTime(0));
        let hot = t.hot(5.0);
        let cold = t.cold(5.0);
        assert_eq!(hot.len(), 1);
        assert_eq!(hot[0].0, RegionId(1));
        assert_eq!(cold.len(), 1);
        assert_eq!(cold[0].0, RegionId(2));
    }

    #[test]
    fn hot_sorts_hottest_first() {
        let mut t = HotnessTracker::new();
        for _ in 0..5 {
            t.record(RegionId(1), 64, SimTime(0));
        }
        for _ in 0..10 {
            t.record(RegionId(2), 64, SimTime(0));
        }
        let hot = t.hot(0.0);
        assert_eq!(hot[0].0, RegionId(2));
        assert_eq!(hot[1].0, RegionId(1));
    }

    #[test]
    fn forget_removes_region() {
        let mut t = HotnessTracker::new();
        t.record(RegionId(1), 64, SimTime(0));
        assert_eq!(t.len(), 1);
        t.forget(RegionId(1));
        assert!(t.is_empty());
        assert_eq!(t.stat(RegionId(1)), HotStat::default());
    }

    #[test]
    fn large_streams_do_not_drown_small_hot_objects() {
        let mut t = HotnessTracker::new();
        // One huge streaming access vs many small accesses.
        t.record(RegionId(1), 1 << 30, SimTime(0));
        for _ in 0..10 {
            t.record(RegionId(2), 64, SimTime(0));
        }
        assert!(t.stat(RegionId(2)).score > t.stat(RegionId(1)).score);
    }
}
