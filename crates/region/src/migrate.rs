//! Region migration and watermark-based tiering.
//!
//! The runtime may move a region between physical devices after placement:
//! promoting hot data toward fast memory, demoting cold data toward
//! capacity tiers, or evacuating a device ahead of planned maintenance.
//! A migration is a *physical* copy — it pays the full transfer cost on
//! both devices and the path between them, unlike an ownership transfer,
//! which is free. The contrast between the two is exactly the paper's
//! Figure 4 experiment.

use disagg_hwsim::contention::{BandwidthLedger, ResourceKey};
use disagg_hwsim::ids::MemDeviceId;
use disagg_hwsim::time::{SimDuration, SimTime};
use disagg_hwsim::topology::Topology;
use disagg_hwsim::trace::{Trace, TraceEvent};

use crate::hotness::HotnessTracker;
use crate::pool::{Placement, RegionId};
use crate::region::{RegionError, RegionManager};

/// Physically moves a region to another device, charging the transfer on
/// both devices' ledgers. Returns the new placement and how long the copy
/// took. Contents and region id are preserved; ownership is untouched.
pub fn migrate(
    mgr: &mut RegionManager,
    topo: &Topology,
    ledger: &mut BandwidthLedger,
    trace: &mut Trace,
    id: RegionId,
    to: MemDeviceId,
    now: SimTime,
) -> Result<(Placement, SimDuration), RegionError> {
    let old = mgr.placement(id)?;
    if old.dev == to {
        return Ok((old, SimDuration::ZERO));
    }
    let base = topo
        .transfer_cost(old.dev, to, old.size)
        .ok_or(RegionError::IncoherentShare {
            // No route between the devices: reuse the closest error shape
            // without inventing a new variant for an unreachable copy.
            region: id,
            dev: to,
        })?;
    let new = mgr.pool_mut().rebind(id, to)?;
    // The copy occupies read bandwidth at the source and write bandwidth
    // at the destination for its duration.
    let src_bw = topo.mem(old.dev).read_bw_bpns;
    let dst_bw = topo.mem(to).write_bw_bpns;
    let f1 = ledger.reserve(ResourceKey::Mem(old.dev), now, old.size as f64, src_bw);
    let f2 = ledger.reserve(ResourceKey::Mem(to), now, old.size as f64, dst_bw);
    let mut took = base.max(f1.max(f2) - now);
    // The copy also occupies the narrowest interconnect link between the
    // devices, which other traffic contends with.
    if let Some(path) = topo.mem_path(old.dev, to) {
        if let Some(link) = path.bottleneck_link {
            let f3 = ledger.reserve(
                ResourceKey::Link(link),
                now,
                old.size as f64,
                path.bandwidth_bpns,
            );
            took = took.max(f3 - now);
        }
    }
    trace.push(TraceEvent::Migrate {
        region: id.0,
        from: old.dev,
        to,
        bytes: old.size,
        at: now,
        took,
    });
    Ok((new, took))
}

/// A tier list, fastest first, with promote/demote watermarks.
#[derive(Debug, Clone)]
pub struct TieringPolicy {
    /// Devices ordered fastest → slowest.
    pub tiers: Vec<MemDeviceId>,
    /// Regions with hotness score at or above this are promotion
    /// candidates.
    pub promote_score: f64,
    /// Regions with score strictly below this are demotion candidates.
    pub demote_score: f64,
    /// Do not fill a faster tier beyond this utilization when promoting.
    pub high_watermark: f64,
}

impl TieringPolicy {
    /// A sensible default policy over the given tier order.
    pub fn new(tiers: Vec<MemDeviceId>) -> Self {
        TieringPolicy {
            tiers,
            promote_score: 8.0,
            demote_score: 1.0,
            high_watermark: 0.9,
        }
    }

    /// Builds a tier order from the topology itself: every memory device,
    /// fastest (lowest read latency) first. Storage-class devices make
    /// natural demotion targets; the watermark keeps promotion sane.
    pub fn by_latency(topo: &Topology) -> Self {
        let mut tiers: Vec<MemDeviceId> = topo.mem_ids().collect();
        tiers.sort_by(|&a, &b| {
            topo.mem(a)
                .read_lat_ns
                .total_cmp(&topo.mem(b).read_lat_ns)
                .then(a.cmp(&b))
        });
        TieringPolicy::new(tiers)
    }

    fn tier_rank(&self, dev: MemDeviceId) -> Option<usize> {
        self.tiers.iter().position(|&d| d == dev)
    }

    /// True if moving the region to `target` would not break its declared
    /// properties (persistence, coherence, sync capability are device
    /// attributes; latency/bandwidth classes are re-audited by the caller
    /// against the actual accessor).
    fn target_safe(mgr: &RegionManager, topo: &Topology, id: RegionId, target: MemDeviceId) -> bool {
        let Ok(meta) = mgr.meta(id) else { return false };
        let dev = topo.mem(target);
        if meta.props.persistent && !dev.persistent {
            return false;
        }
        if meta.props.coherent && !dev.coherent {
            return false;
        }
        if meta.props.mode == crate::props::AccessMode::Sync && !dev.sync.allows_sync() {
            return false;
        }
        true
    }

    /// Plans migrations: hot regions move one tier up (if capacity under
    /// the watermark allows), cold regions move one tier down. Declared
    /// properties are never violated: a persistent region will not be
    /// "promoted" onto volatile memory. Returns `(region, destination)`
    /// pairs; the caller executes them with [`migrate`].
    pub fn plan(
        &self,
        mgr: &RegionManager,
        topo: &Topology,
        hotness: &HotnessTracker,
    ) -> Vec<(RegionId, MemDeviceId)> {
        let mut planned: Vec<(RegionId, MemDeviceId)> = Vec::new();
        // Track planned inflow so one pass doesn't overshoot a watermark.
        let mut planned_in: Vec<u64> = vec![0; self.tiers.len()];

        for (id, score) in hotness.hot(self.promote_score) {
            let Ok(p) = mgr.placement(id) else { continue };
            let Some(rank) = self.tier_rank(p.dev) else { continue };
            if rank == 0 {
                continue; // Already in the fastest tier.
            }
            // Climb to the highest safe tier with watermark headroom.
            let pool = mgr.pool();
            let target = (0..rank)
                .find(|&t| {
                    let up = self.tiers[t];
                    let would_use = pool.allocated(up) + planned_in[t] + p.size;
                    Self::target_safe(mgr, topo, id, up)
                        && (would_use as f64) <= self.high_watermark * pool.capacity(up) as f64
                });
            if let Some(t) = target {
                planned_in[t] += p.size;
                planned.push((id, self.tiers[t]));
                let _ = score;
            }
        }
        for (id, _score) in hotness.cold(self.demote_score) {
            let Ok(p) = mgr.placement(id) else { continue };
            let Some(rank) = self.tier_rank(p.dev) else { continue };
            if rank + 1 >= self.tiers.len() {
                continue; // Already in the slowest tier.
            }
            let down = self.tiers[rank + 1];
            if Self::target_safe(mgr, topo, id, down) {
                planned.push((id, down));
            }
        }
        planned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props::PropertySet;
    use crate::region::OwnerId;
    use crate::typed::RegionType;
    use disagg_hwsim::compute::{ComputeKind, ComputeModel};
    use disagg_hwsim::device::{MemDeviceKind, MemDeviceModel};
    use disagg_hwsim::topology::LinkKind;

    const WHO: OwnerId = OwnerId::App;

    fn setup() -> (Topology, RegionManager, MemDeviceId, MemDeviceId) {
        let mut b = Topology::builder();
        let n = b.node("host");
        let cpu = b.compute(n, ComputeModel::preset(ComputeKind::Cpu));
        let dram = b.mem(n, MemDeviceModel::preset_with_capacity(MemDeviceKind::Dram, 4096));
        let cxl = b.mem(n, MemDeviceModel::preset_with_capacity(MemDeviceKind::CxlDram, 1 << 20));
        b.link(cpu, dram, LinkKind::MemBus);
        b.link(cpu, cxl, LinkKind::PcieCxl);
        b.link(dram, cxl, LinkKind::PcieCxl);
        let topo = b.build().unwrap();
        let mgr = RegionManager::new(&topo);
        (topo, mgr, dram, cxl)
    }

    fn alloc(mgr: &mut RegionManager, dev: MemDeviceId, size: u64) -> RegionId {
        mgr.alloc(dev, size, RegionType::GlobalScratch, PropertySet::new(), WHO, SimTime::ZERO)
            .unwrap()
    }

    #[test]
    fn migrate_moves_bytes_and_charges_time() {
        let (topo, mut mgr, dram, cxl) = setup();
        let id = alloc(&mut mgr, cxl, 1024);
        mgr.write(id, WHO, 0, &[0xCD; 16]).unwrap();
        let mut ledger = BandwidthLedger::default_buckets();
        let mut trace = Trace::enabled();
        let (new, took) =
            migrate(&mut mgr, &topo, &mut ledger, &mut trace, id, dram, SimTime::ZERO).unwrap();
        assert_eq!(new.dev, dram);
        assert!(took > SimDuration::ZERO);
        assert_eq!(&mgr.bytes(id, WHO).unwrap()[..16], &[0xCD; 16]);
        assert_eq!(trace.count(|e| matches!(e, TraceEvent::Migrate { .. })), 1);
    }

    #[test]
    fn migrate_to_same_device_is_free() {
        let (topo, mut mgr, dram, _) = setup();
        let id = alloc(&mut mgr, dram, 512);
        let mut ledger = BandwidthLedger::default_buckets();
        let mut trace = Trace::enabled();
        let (p, took) =
            migrate(&mut mgr, &topo, &mut ledger, &mut trace, id, dram, SimTime::ZERO).unwrap();
        assert_eq!(p.dev, dram);
        assert_eq!(took, SimDuration::ZERO);
        assert!(trace.is_empty());
    }

    #[test]
    fn migrate_fails_when_target_full() {
        let (topo, mut mgr, dram, cxl) = setup();
        // DRAM arena is 4096 bytes; fill it.
        let _filler = alloc(&mut mgr, dram, 4000);
        let id = alloc(&mut mgr, cxl, 1024);
        let mut ledger = BandwidthLedger::default_buckets();
        let mut trace = Trace::enabled();
        assert!(migrate(&mut mgr, &topo, &mut ledger, &mut trace, id, dram, SimTime::ZERO).is_err());
        // Region remains usable at the old placement.
        assert_eq!(mgr.placement(id).unwrap().dev, cxl);
    }

    #[test]
    fn tiering_promotes_hot_and_demotes_cold() {
        let (_topo, mut mgr, dram, cxl) = setup();
        let hot = alloc(&mut mgr, cxl, 256);
        let cold = alloc(&mut mgr, dram, 256);
        let mut tracker = HotnessTracker::new();
        for _ in 0..20 {
            tracker.record(hot, 64, SimTime(0));
        }
        tracker.record(cold, 64, SimTime(0));
        for _ in 0..8 {
            tracker.decay();
        }
        // Re-heat the hot region after decay.
        for _ in 0..20 {
            tracker.record(hot, 64, SimTime(1));
        }
        let policy = TieringPolicy::new(vec![dram, cxl]);
        let plan = policy.plan(&mgr, &_topo, &tracker);
        assert!(plan.contains(&(hot, dram)), "hot region promotes to DRAM");
        assert!(plan.contains(&(cold, cxl)), "cold region demotes to CXL");
    }

    #[test]
    fn tiering_respects_high_watermark() {
        let (_topo, mut mgr, dram, cxl) = setup();
        // Fill DRAM (4096 B) beyond the 90% watermark.
        let _filler = alloc(&mut mgr, dram, 3800);
        let hot = alloc(&mut mgr, cxl, 1024);
        let mut tracker = HotnessTracker::new();
        for _ in 0..50 {
            tracker.record(hot, 64, SimTime(0));
        }
        let policy = TieringPolicy::new(vec![dram, cxl]);
        let plan = policy.plan(&mgr, &_topo, &tracker);
        assert!(
            !plan.iter().any(|&(r, _)| r == hot),
            "promotion must not breach the watermark"
        );
    }

    #[test]
    fn tiering_ignores_regions_already_in_extreme_tiers() {
        let (_topo, mut mgr, dram, cxl) = setup();
        let hot_in_fast = alloc(&mut mgr, dram, 64);
        let cold_in_slow = alloc(&mut mgr, cxl, 64);
        let mut tracker = HotnessTracker::new();
        for _ in 0..50 {
            tracker.record(hot_in_fast, 64, SimTime(0));
        }
        tracker.record(cold_in_slow, 1, SimTime(0));
        // Make the cold one *actually* cold.
        for _ in 0..10 {
            tracker.decay();
        }
        for _ in 0..50 {
            tracker.record(hot_in_fast, 64, SimTime(1));
        }
        let policy = TieringPolicy::new(vec![dram, cxl]);
        let plan = policy.plan(&mgr, &_topo, &tracker);
        assert!(plan.is_empty(), "nothing to do: {plan:?}");
    }
}
