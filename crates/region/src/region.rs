//! Regions and memory ownership.
//!
//! The paper's second pillar (§2.2(2)): every chunk of allocated memory is
//! either **exclusively owned** by one task — scratch space, or an output
//! handed to the next task — or **shared** between tasks that may run
//! concurrently, which demands a cache-coherent placement. Ownership can be
//! *transferred* (the "out" becomes the next task's "in", like C++ move
//! semantics), which is what lets the runtime skip physical copies.
//!
//! The [`RegionManager`] is the bookkeeper: it pairs every pool allocation
//! with its type, declared properties, and owner set, and enforces the
//! ownership rules on every access.

use std::collections::HashMap;

use disagg_hwsim::ids::MemDeviceId;
use disagg_hwsim::time::SimTime;
use disagg_hwsim::topology::Topology;

use crate::pool::{AllocError, MemoryPool, Placement, RegionId};
use crate::props::PropertySet;
use crate::typed::RegionType;

/// Who owns a region. The paper allows ownership at task, job, or
/// application granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OwnerId {
    /// A task within a job.
    Task {
        /// The job the task belongs to.
        job: u64,
        /// The task's index within the job.
        task: u64,
    },
    /// A whole job.
    Job(u64),
    /// The application itself (lives until shutdown).
    App,
}

impl OwnerId {
    /// The job this owner belongs to, if any.
    pub fn job(&self) -> Option<u64> {
        match *self {
            OwnerId::Task { job, .. } => Some(job),
            OwnerId::Job(job) => Some(job),
            OwnerId::App => None,
        }
    }
}

/// A region's ownership state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ownership {
    /// One owner; consistency can be relaxed.
    Exclusive(OwnerId),
    /// Multiple concurrent owners; requires a coherent placement.
    Shared(Vec<OwnerId>),
}

impl Ownership {
    /// All current owners.
    pub fn owners(&self) -> &[OwnerId] {
        match self {
            Ownership::Exclusive(o) => std::slice::from_ref(o),
            Ownership::Shared(v) => v,
        }
    }

    /// True if `who` is among the owners.
    pub fn is_owner(&self, who: OwnerId) -> bool {
        self.owners().contains(&who)
    }
}

/// Errors from region operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegionError {
    /// Underlying allocation failure.
    Alloc(AllocError),
    /// The caller does not own the region.
    NotOwner {
        /// The offending region.
        region: RegionId,
        /// Who tried to access it.
        who: OwnerId,
    },
    /// Transfer attempted on a shared region (only exclusive regions move).
    SharedTransfer(RegionId),
    /// This region type cannot be transferred (private scratch).
    NotTransferable(RegionId),
    /// This region type cannot be shared (private scratch).
    NotShareable(RegionId),
    /// Sharing requires a coherent device; this placement is not coherent.
    IncoherentShare {
        /// The offending region.
        region: RegionId,
        /// Its (non-coherent) device.
        dev: MemDeviceId,
    },
    /// Access outside the region bounds.
    OutOfBounds {
        /// The offending region.
        region: RegionId,
        /// Requested offset.
        offset: u64,
        /// Requested length.
        len: u64,
        /// Actual region size.
        size: u64,
    },
    /// A confidential region was touched by a different job.
    ConfidentialityViolation {
        /// The offending region.
        region: RegionId,
        /// The job that owns the secret.
        owner_job: Option<u64>,
        /// The job that tried to read it.
        accessor_job: Option<u64>,
    },
}

impl From<AllocError> for RegionError {
    fn from(e: AllocError) -> Self {
        RegionError::Alloc(e)
    }
}

impl std::fmt::Display for RegionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegionError::Alloc(e) => write!(f, "allocation error: {e}"),
            RegionError::NotOwner { region, who } => {
                write!(f, "{who:?} does not own region {region}")
            }
            RegionError::SharedTransfer(r) => write!(f, "region {r} is shared; cannot transfer"),
            RegionError::NotTransferable(r) => write!(f, "region {r} type is not transferable"),
            RegionError::NotShareable(r) => write!(f, "region {r} type is not shareable"),
            RegionError::IncoherentShare { region, dev } => {
                write!(f, "region {region} on non-coherent {dev} cannot be shared")
            }
            RegionError::OutOfBounds { region, offset, len, size } => {
                write!(f, "access [{offset}, {offset}+{len}) outside region {region} of {size} bytes")
            }
            RegionError::ConfidentialityViolation { region, owner_job, accessor_job } => {
                write!(
                    f,
                    "job {accessor_job:?} touched confidential region {region} of job {owner_job:?}"
                )
            }
        }
    }
}

impl std::error::Error for RegionError {}

/// Metadata the manager keeps per region.
#[derive(Debug, Clone)]
pub struct RegionMeta {
    /// Region id.
    pub id: RegionId,
    /// Region type (Table 2 vocabulary).
    pub rtype: RegionType,
    /// Declared properties.
    pub props: PropertySet,
    /// Current ownership state.
    pub ownership: Ownership,
    /// When the region was created.
    pub created_at: SimTime,
    /// The job that created the region (confidentiality boundary).
    pub origin_job: Option<u64>,
}

/// The ownership bookkeeper on top of the [`MemoryPool`].
#[derive(Debug)]
pub struct RegionManager {
    pool: MemoryPool,
    meta: HashMap<RegionId, RegionMeta>,
    /// Owner → regions index, kept in sync with `meta` ownership so
    /// task-exit cleanup (`owned_by`/`release_all`, called once per
    /// task) is O(regions of that owner), not a scan of every live
    /// region.
    owners: HashMap<OwnerId, Vec<RegionId>>,
}

impl RegionManager {
    /// Creates a manager over a fresh pool for the topology.
    pub fn new(topo: &Topology) -> Self {
        RegionManager {
            pool: MemoryPool::new(topo),
            meta: HashMap::new(),
            owners: HashMap::new(),
        }
    }

    fn index_add(&mut self, owner: OwnerId, id: RegionId) {
        self.owners.entry(owner).or_default().push(id);
    }

    fn index_remove(&mut self, owner: OwnerId, id: RegionId) {
        if let Some(v) = self.owners.get_mut(&owner) {
            v.retain(|&r| r != id);
            if v.is_empty() {
                self.owners.remove(&owner);
            }
        }
    }

    /// The underlying pool (for capacity/utilization queries).
    pub fn pool(&self) -> &MemoryPool {
        &self.pool
    }

    /// Mutable pool access (for the migration engine).
    pub fn pool_mut(&mut self) -> &mut MemoryPool {
        &mut self.pool
    }

    /// Allocates a region on `dev` with the given type, properties, and
    /// initial exclusive owner.
    pub fn alloc(
        &mut self,
        dev: MemDeviceId,
        size: u64,
        rtype: RegionType,
        props: PropertySet,
        owner: OwnerId,
        now: SimTime,
    ) -> Result<RegionId, RegionError> {
        let id = self.pool.alloc(dev, size)?;
        let origin_job = owner.job();
        self.meta.insert(
            id,
            RegionMeta {
                id,
                rtype,
                props,
                ownership: Ownership::Exclusive(owner),
                created_at: now,
                origin_job,
            },
        );
        self.index_add(owner, id);
        Ok(id)
    }

    /// Region metadata.
    pub fn meta(&self, id: RegionId) -> Result<&RegionMeta, RegionError> {
        self.meta
            .get(&id)
            .ok_or(RegionError::Alloc(AllocError::UnknownRegion(id)))
    }

    /// Region placement.
    pub fn placement(&self, id: RegionId) -> Result<Placement, RegionError> {
        Ok(self.pool.placement(id)?)
    }

    /// True if the region is still live.
    pub fn is_live(&self, id: RegionId) -> bool {
        self.pool.is_live(id)
    }

    /// Live regions owned (exclusively or shared) by `owner`.
    pub fn owned_by(&self, owner: OwnerId) -> Vec<RegionId> {
        let mut v = self.owners.get(&owner).cloned().unwrap_or_default();
        v.sort();
        v.dedup();
        v
    }

    fn check_access(&self, id: RegionId, who: OwnerId) -> Result<&RegionMeta, RegionError> {
        let meta = self.meta(id)?;
        let direct = meta.ownership.is_owner(who);
        if !direct {
            // Confidentiality is checked before hierarchical access:
            // broad (job/app) scope never grants another job a view of
            // confidential data. Direct ownership — an explicit transfer —
            // does imply authorization.
            if meta.props.confidential && meta.origin_job != who.job() {
                return Err(RegionError::ConfidentialityViolation {
                    region: id,
                    owner_job: meta.origin_job,
                    accessor_job: who.job(),
                });
            }
            // Ownership is hierarchical: a region owned at job scope is
            // accessible to every task of that job, and an app-scoped
            // region to everyone. (Job-wide global state and published
            // global scratch rely on this.)
            let hierarchical = meta.ownership.owners().iter().any(|o| match o {
                OwnerId::Job(j) => who.job() == Some(*j),
                OwnerId::App => true,
                OwnerId::Task { .. } => false,
            });
            if !hierarchical {
                return Err(RegionError::NotOwner { region: id, who });
            }
        }
        Ok(meta)
    }

    fn check_bounds(
        &self,
        id: RegionId,
        offset: u64,
        len: u64,
    ) -> Result<(), RegionError> {
        let size = self.pool.placement(id)?.size;
        if offset.checked_add(len).is_none_or(|end| end > size) {
            return Err(RegionError::OutOfBounds {
                region: id,
                offset,
                len,
                size,
            });
        }
        Ok(())
    }

    /// Reads `buf.len()` bytes at `offset` into `buf`, enforcing ownership
    /// and bounds. Returns the backing device (for cost charging).
    pub fn read(
        &self,
        id: RegionId,
        who: OwnerId,
        offset: u64,
        buf: &mut [u8],
    ) -> Result<MemDeviceId, RegionError> {
        self.check_access(id, who)?;
        self.check_bounds(id, offset, buf.len() as u64)?;
        self.pool.read_at(id, offset, buf)?;
        Ok(self.pool.placement(id)?.dev)
    }

    /// Writes `data` at `offset`, enforcing ownership and bounds. Returns
    /// the backing device.
    pub fn write(
        &mut self,
        id: RegionId,
        who: OwnerId,
        offset: u64,
        data: &[u8],
    ) -> Result<MemDeviceId, RegionError> {
        self.check_access(id, who)?;
        self.check_bounds(id, offset, data.len() as u64)?;
        let dev = self.pool.placement(id)?.dev;
        self.pool.write_at(id, offset, data)?;
        Ok(dev)
    }

    /// Borrows a region's bytes read-only (zero-copy view for owners).
    /// Only contiguous (dense-backed) regions support this; regions above
    /// [`crate::pool::DENSE_BACKING_LIMIT`] must use [`RegionManager::read`].
    pub fn bytes(&self, id: RegionId, who: OwnerId) -> Result<&[u8], RegionError> {
        self.check_access(id, who)?;
        Ok(self.pool.data(id)?)
    }

    /// Borrows a region's bytes mutably (zero-copy view for owners).
    /// Dense-backed regions only; see [`RegionManager::bytes`].
    pub fn bytes_mut(&mut self, id: RegionId, who: OwnerId) -> Result<&mut [u8], RegionError> {
        self.check_access(id, who)?;
        Ok(self.pool.data_mut(id)?)
    }

    /// Copies the full contents of `src` into `dst` (both must be live;
    /// `dst` must be at least as large). Streams in bounded chunks, so it
    /// works for sparse-backed regions of any size. Ownership checks are
    /// the caller's job — this is runtime-internal plumbing for handover
    /// copies and migrations.
    pub fn copy_contents(&mut self, src: RegionId, dst: RegionId) -> Result<u64, RegionError> {
        let len = self.pool.placement(src)?.size;
        let dst_size = self.pool.placement(dst)?.size;
        if dst_size < len {
            return Err(RegionError::OutOfBounds {
                region: dst,
                offset: 0,
                len,
                size: dst_size,
            });
        }
        self.pool.copy_between(src, dst, len)?;
        Ok(len)
    }

    /// Transfers exclusive ownership from `from` to `to` (Figure 4's
    /// handover arrow). No bytes move.
    pub fn transfer(
        &mut self,
        id: RegionId,
        from: OwnerId,
        to: OwnerId,
    ) -> Result<(), RegionError> {
        let meta = self.meta(id)?;
        if !meta.rtype.transferable() {
            return Err(RegionError::NotTransferable(id));
        }
        match &meta.ownership {
            Ownership::Exclusive(owner) if *owner == from => {
                self.meta.get_mut(&id).expect("checked above").ownership =
                    Ownership::Exclusive(to);
                self.index_remove(from, id);
                self.index_add(to, id);
                Ok(())
            }
            Ownership::Exclusive(_) => Err(RegionError::NotOwner { region: id, who: from }),
            Ownership::Shared(_) => Err(RegionError::SharedTransfer(id)),
        }
    }

    /// Adds `with` to the owner set, converting to shared ownership. The
    /// paper requires shared regions to be cache-coherent: the placement
    /// must be on a coherent device.
    pub fn share(
        &mut self,
        id: RegionId,
        owner: OwnerId,
        with: OwnerId,
        topo: &Topology,
    ) -> Result<(), RegionError> {
        let meta = self.check_access(id, owner)?;
        if !meta.rtype.shareable() {
            return Err(RegionError::NotShareable(id));
        }
        let dev = self.pool.placement(id)?.dev;
        if !topo.mem(dev).coherent {
            return Err(RegionError::IncoherentShare { region: id, dev });
        }
        let meta = self.meta.get_mut(&id).expect("checked above");
        let grant = match &mut meta.ownership {
            Ownership::Exclusive(o) => {
                let prev = *o;
                meta.ownership = Ownership::Shared(vec![prev, with]);
                true
            }
            Ownership::Shared(v) => {
                if !v.contains(&with) {
                    v.push(with);
                    true
                } else {
                    false
                }
            }
        };
        if grant {
            self.index_add(with, id);
        }
        Ok(())
    }

    /// Releases `who`'s ownership. When the last owner releases, the
    /// region is freed and `Ok(true)` is returned.
    pub fn release(&mut self, id: RegionId, who: OwnerId) -> Result<bool, RegionError> {
        let meta = self.meta(id)?;
        if !meta.ownership.is_owner(who) {
            return Err(RegionError::NotOwner { region: id, who });
        }
        let empty = {
            let meta = self.meta.get_mut(&id).expect("checked above");
            match &mut meta.ownership {
                Ownership::Exclusive(_) => true,
                Ownership::Shared(v) => {
                    v.retain(|&o| o != who);
                    match v.len() {
                        0 => true,
                        1 => {
                            let last = v[0];
                            meta.ownership = Ownership::Exclusive(last);
                            false
                        }
                        _ => false,
                    }
                }
            }
        };
        self.index_remove(who, id);
        if empty {
            self.meta.remove(&id);
            self.pool.free(id)?;
        }
        Ok(empty)
    }

    /// Releases everything a given owner holds (task-exit cleanup).
    /// Returns the regions that were freed outright.
    pub fn release_all(&mut self, who: OwnerId) -> Vec<RegionId> {
        let owned = self.owned_by(who);
        let mut freed = Vec::new();
        for id in owned {
            if self.release(id, who).unwrap_or(false) {
                freed.push(id);
            }
        }
        freed
    }

    /// Number of live regions.
    pub fn live_count(&self) -> usize {
        self.meta.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disagg_hwsim::compute::{ComputeKind, ComputeModel};
    use disagg_hwsim::device::{MemDeviceKind, MemDeviceModel};
    use disagg_hwsim::topology::LinkKind;

    const T0: OwnerId = OwnerId::Task { job: 1, task: 0 };
    const T1: OwnerId = OwnerId::Task { job: 1, task: 1 };
    const OTHER_JOB: OwnerId = OwnerId::Task { job: 2, task: 0 };

    fn setup() -> (Topology, RegionManager, MemDeviceId, MemDeviceId) {
        let mut b = Topology::builder();
        let n = b.node("host");
        let cpu = b.compute(n, ComputeModel::preset(ComputeKind::Cpu));
        let dram = b.mem(n, MemDeviceModel::preset_with_capacity(MemDeviceKind::Dram, 1 << 20));
        let far = b.mem(
            n,
            MemDeviceModel::preset_with_capacity(MemDeviceKind::FarMemory, 1 << 20),
        );
        b.link(cpu, dram, LinkKind::MemBus);
        b.link(cpu, far, LinkKind::Nic);
        let topo = b.build().unwrap();
        let mgr = RegionManager::new(&topo);
        (topo, mgr, dram, far)
    }

    fn alloc(mgr: &mut RegionManager, dev: MemDeviceId, rtype: RegionType, owner: OwnerId) -> RegionId {
        mgr.alloc(dev, 256, rtype, rtype.properties(), owner, SimTime::ZERO)
            .unwrap()
    }

    #[test]
    fn owner_can_read_and_write() {
        let (_topo, mut mgr, dram, _) = setup();
        let id = alloc(&mut mgr, dram, RegionType::Output, T0);
        mgr.write(id, T0, 0, &[1, 2, 3]).unwrap();
        let mut buf = [0u8; 3];
        mgr.read(id, T0, 0, &mut buf).unwrap();
        assert_eq!(buf, [1, 2, 3]);
    }

    #[test]
    fn non_owner_is_rejected() {
        let (_topo, mut mgr, dram, _) = setup();
        let id = alloc(&mut mgr, dram, RegionType::Output, T0);
        let mut buf = [0u8; 1];
        assert!(matches!(
            mgr.read(id, T1, 0, &mut buf),
            Err(RegionError::NotOwner { .. })
        ));
    }

    #[test]
    fn cross_job_access_to_confidential_region_is_a_violation() {
        let (_topo, mut mgr, dram, _) = setup();
        let props = RegionType::Output.properties().confidential(true);
        let id = mgr
            .alloc(dram, 64, RegionType::Output, props, T0, SimTime::ZERO)
            .unwrap();
        let mut buf = [0u8; 1];
        assert!(matches!(
            mgr.read(id, OTHER_JOB, 0, &mut buf),
            Err(RegionError::ConfidentialityViolation { .. })
        ));
        // Same-job non-owner still gets the plain NotOwner error.
        assert!(matches!(
            mgr.read(id, T1, 0, &mut buf),
            Err(RegionError::NotOwner { .. })
        ));
    }

    #[test]
    fn out_of_bounds_access_is_rejected() {
        let (_topo, mut mgr, dram, _) = setup();
        let id = alloc(&mut mgr, dram, RegionType::Output, T0);
        let mut buf = [0u8; 8];
        assert!(matches!(
            mgr.read(id, T0, 250, &mut buf),
            Err(RegionError::OutOfBounds { .. })
        ));
        assert!(matches!(
            mgr.write(id, T0, u64::MAX, &[1]),
            Err(RegionError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn transfer_moves_ownership_without_moving_bytes() {
        let (_topo, mut mgr, dram, _) = setup();
        let id = alloc(&mut mgr, dram, RegionType::Output, T0);
        mgr.write(id, T0, 0, &[9]).unwrap();
        mgr.transfer(id, T0, T1).unwrap();
        // New owner sees the same bytes at the same placement.
        let mut buf = [0u8; 1];
        mgr.read(id, T1, 0, &mut buf).unwrap();
        assert_eq!(buf, [9]);
        // Old owner lost access.
        assert!(mgr.read(id, T0, 0, &mut buf).is_err());
    }

    #[test]
    fn private_scratch_cannot_transfer_or_share() {
        let (topo, mut mgr, dram, _) = setup();
        let id = alloc(&mut mgr, dram, RegionType::PrivateScratch, T0);
        assert!(matches!(
            mgr.transfer(id, T0, T1),
            Err(RegionError::NotTransferable(_))
        ));
        assert!(matches!(
            mgr.share(id, T0, T1, &topo),
            Err(RegionError::NotShareable(_))
        ));
    }

    #[test]
    fn sharing_requires_coherent_device() {
        let (topo, mut mgr, dram, far) = setup();
        let ok = alloc(&mut mgr, dram, RegionType::GlobalScratch, T0);
        mgr.share(ok, T0, T1, &topo).unwrap();
        assert_eq!(mgr.meta(ok).unwrap().ownership.owners().len(), 2);

        // Far memory is outside the coherence domain in this setup.
        let props = PropertySet::new().with_mode(crate::props::AccessMode::Async);
        let bad = mgr
            .alloc(far, 64, RegionType::GlobalScratch, props, T0, SimTime::ZERO)
            .unwrap();
        assert!(matches!(
            mgr.share(bad, T0, T1, &topo),
            Err(RegionError::IncoherentShare { .. })
        ));
    }

    #[test]
    fn shared_regions_cannot_transfer() {
        let (topo, mut mgr, dram, _) = setup();
        let id = alloc(&mut mgr, dram, RegionType::GlobalScratch, T0);
        mgr.share(id, T0, T1, &topo).unwrap();
        assert!(matches!(
            mgr.transfer(id, T0, OwnerId::App),
            Err(RegionError::SharedTransfer(_))
        ));
    }

    #[test]
    fn release_frees_on_last_owner() {
        let (topo, mut mgr, dram, _) = setup();
        let id = alloc(&mut mgr, dram, RegionType::GlobalScratch, T0);
        mgr.share(id, T0, T1, &topo).unwrap();
        assert!(!mgr.release(id, T0).unwrap(), "one owner remains");
        assert!(mgr.is_live(id));
        assert!(mgr.release(id, T1).unwrap(), "last owner frees");
        assert!(!mgr.is_live(id));
        assert_eq!(mgr.pool().allocated(dram), 0);
    }

    #[test]
    fn shared_release_downgrades_to_exclusive() {
        let (topo, mut mgr, dram, _) = setup();
        let id = alloc(&mut mgr, dram, RegionType::GlobalScratch, T0);
        mgr.share(id, T0, T1, &topo).unwrap();
        mgr.release(id, T0).unwrap();
        // T1 is now the exclusive owner and can transfer.
        assert!(matches!(
            mgr.meta(id).unwrap().ownership,
            Ownership::Exclusive(o) if o == T1
        ));
        mgr.transfer(id, T1, T0).unwrap();
    }

    #[test]
    fn release_all_cleans_up_task_state() {
        let (_topo, mut mgr, dram, _) = setup();
        let a = alloc(&mut mgr, dram, RegionType::PrivateScratch, T0);
        let b = alloc(&mut mgr, dram, RegionType::Output, T0);
        let c = alloc(&mut mgr, dram, RegionType::Output, T1);
        let freed = mgr.release_all(T0);
        assert_eq!(freed.len(), 2);
        assert!(freed.contains(&a) && freed.contains(&b));
        assert!(mgr.is_live(c));
        assert_eq!(mgr.live_count(), 1);
    }

    #[test]
    fn owned_by_lists_are_accurate() {
        let (topo, mut mgr, dram, _) = setup();
        let a = alloc(&mut mgr, dram, RegionType::Output, T0);
        let b = alloc(&mut mgr, dram, RegionType::GlobalScratch, T0);
        mgr.share(b, T0, T1, &topo).unwrap();
        assert_eq!(mgr.owned_by(T0), vec![a, b]);
        assert_eq!(mgr.owned_by(T1), vec![b]);
    }

    #[test]
    fn zero_copy_views_respect_ownership() {
        let (_topo, mut mgr, dram, _) = setup();
        let id = alloc(&mut mgr, dram, RegionType::Output, T0);
        mgr.bytes_mut(id, T0).unwrap()[0] = 5;
        assert_eq!(mgr.bytes(id, T0).unwrap()[0], 5);
        assert!(mgr.bytes(id, T1).is_err());
    }
}
