//! The memory pool: per-device arenas with real backing bytes.
//!
//! Every simulated memory device gets an *arena* that tracks offset-based
//! allocations against the device's capacity with a coalescing first-fit
//! free list — so capacity pressure and fragmentation are real, measurable
//! effects. The *contents* of each allocation are backed by an ordinary
//! heap buffer, so tasks compute on real bytes while capacities can be
//! terabytes without reserving terabytes of host RAM.
//!
//! # Hot-path layout
//!
//! [`RegionId`]s are issued from a monotone counter and never reused, so
//! per-region state (placement + backing) lives in one dense slab `Vec`
//! indexed by the id — no hashing on the allocate/free/read/write paths,
//! and `live()` iterates in id order, which is deterministic. Sparse
//! backings keep their materialized pages in a sorted `Vec` with a
//! last-page cursor so sequential streams resolve pages in O(1), and
//! reads of ranges no page has ever touched zero-fill without any
//! per-page lookup at all.

use std::cell::Cell;

use disagg_hwsim::ids::MemDeviceId;
use disagg_hwsim::topology::Topology;

/// Identifies one allocation (and later, one region) in the pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegionId(pub u64);

impl std::fmt::Display for RegionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Allocation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllocError {
    /// No free extent of the requested size exists on the device.
    OutOfMemory {
        /// The device that could not satisfy the request.
        dev: MemDeviceId,
        /// Requested bytes.
        requested: u64,
        /// Bytes still free (possibly fragmented).
        free: u64,
    },
    /// Zero-sized allocations are rejected.
    ZeroSize,
    /// The id is unknown or already freed.
    UnknownRegion(RegionId),
    /// The region is too large for a contiguous byte view; use the
    /// offset-based `read_at`/`write_at` API instead.
    NotContiguous(RegionId),
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocError::OutOfMemory { dev, requested, free } => {
                write!(f, "{dev} cannot fit {requested} bytes ({free} free)")
            }
            AllocError::ZeroSize => write!(f, "zero-sized allocation"),
            AllocError::UnknownRegion(id) => write!(f, "unknown or freed region {id}"),
            AllocError::NotContiguous(id) => {
                write!(f, "region {id} is sparse-backed; use read_at/write_at")
            }
        }
    }
}

impl std::error::Error for AllocError {}

/// Where an allocation lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// Backing device.
    pub dev: MemDeviceId,
    /// Byte offset within the device arena.
    pub offset: u64,
    /// Size in bytes.
    pub size: u64,
}

#[derive(Debug)]
struct Arena {
    capacity: u64,
    /// Free extents `(offset, len)`, sorted by offset, coalesced.
    free: Vec<(u64, u64)>,
    allocated: u64,
    peak: u64,
}

impl Arena {
    fn new(capacity: u64) -> Self {
        Arena {
            capacity,
            free: if capacity > 0 { vec![(0, capacity)] } else { Vec::new() },
            allocated: 0,
            peak: 0,
        }
    }

    fn free_bytes(&self) -> u64 {
        self.capacity - self.allocated
    }

    fn alloc(&mut self, size: u64) -> Option<u64> {
        // First fit.
        let idx = self.free.iter().position(|&(_, len)| len >= size)?;
        let (off, len) = self.free[idx];
        if len == size {
            self.free.remove(idx);
        } else {
            self.free[idx] = (off + size, len - size);
        }
        self.allocated += size;
        self.peak = self.peak.max(self.allocated);
        Some(off)
    }

    fn dealloc(&mut self, offset: u64, size: u64) {
        let pos = self.free.partition_point(|&(o, _)| o < offset);
        self.free.insert(pos, (offset, size));
        // Coalesce with neighbours.
        if pos + 1 < self.free.len() {
            let (o, l) = self.free[pos];
            let (no, nl) = self.free[pos + 1];
            if o + l == no {
                self.free[pos] = (o, l + nl);
                self.free.remove(pos + 1);
            }
        }
        if pos > 0 {
            let (po, pl) = self.free[pos - 1];
            let (o, l) = self.free[pos];
            if po + pl == o {
                self.free[pos - 1] = (po, pl + l);
                self.free.remove(pos);
            }
        }
        self.allocated -= size;
    }

    /// `1 - largest_free / total_free`; 0 when unfragmented or full.
    fn fragmentation(&self) -> f64 {
        let total: u64 = self.free.iter().map(|&(_, l)| l).sum();
        if total == 0 {
            return 0.0;
        }
        let largest = self.free.iter().map(|&(_, l)| l).max().unwrap_or(0);
        1.0 - largest as f64 / total as f64
    }
}

/// Regions up to this size get one contiguous heap buffer; larger
/// regions use sparse page-mapped backing so a simulated terabyte does
/// not need a real terabyte of host RAM.
pub const DENSE_BACKING_LIMIT: u64 = 64 << 20;

/// Page size of the sparse backing.
const SPARSE_PAGE: u64 = 64 << 10;

/// Backing storage for a region's bytes.
#[derive(Debug)]
enum Backing {
    /// One contiguous buffer (small regions).
    Dense(Vec<u8>),
    /// Lazily materialized pages; unmapped pages read as zero. The
    /// logical size lives in the pool's placement table.
    Sparse {
        /// Materialized pages `(page_number, bytes)`, sorted by page
        /// number. Pages only materialize on write, so most regions hold
        /// a handful and binary search is already cheap; the cursor makes
        /// sequential streams O(1) per page.
        pages: Vec<(u64, Box<[u8]>)>,
        /// Index into `pages` of the last page touched.
        cursor: Cell<usize>,
    },
}

/// Locates `page` in the sorted page list, preferring the cursor hint
/// (exact hit or its successor — the sequential-stream cases) before
/// falling back to binary search. Updates the cursor on success.
fn find_page(pages: &[(u64, Box<[u8]>)], cursor: &Cell<usize>, page: u64) -> Option<usize> {
    let c = cursor.get();
    if let Some(&(p, _)) = pages.get(c) {
        if p == page {
            return Some(c);
        }
        if p < page {
            if let Some(&(np, _)) = pages.get(c + 1) {
                if np == page {
                    cursor.set(c + 1);
                    return Some(c + 1);
                }
            }
        }
    }
    match pages.binary_search_by_key(&page, |&(p, _)| p) {
        Ok(i) => {
            cursor.set(i);
            Some(i)
        }
        Err(_) => None,
    }
}

impl Backing {
    fn new(size: u64) -> Backing {
        if size <= DENSE_BACKING_LIMIT {
            Backing::Dense(vec![0u8; size as usize])
        } else {
            Backing::Sparse { pages: Vec::new(), cursor: Cell::new(0) }
        }
    }

    fn read(&self, offset: u64, buf: &mut [u8]) {
        match self {
            Backing::Dense(v) => {
                buf.copy_from_slice(&v[offset as usize..offset as usize + buf.len()]);
            }
            Backing::Sparse { pages, cursor } => {
                if buf.is_empty() {
                    return;
                }
                // Zero-fill fast path: a range no write has ever touched
                // needs no per-page lookups at all.
                let first = offset / SPARSE_PAGE;
                let last = (offset + buf.len() as u64 - 1) / SPARSE_PAGE;
                let untouched = match (pages.first(), pages.last()) {
                    (Some(&(lo, _)), Some(&(hi, _))) => last < lo || first > hi,
                    _ => true,
                };
                if untouched {
                    buf.fill(0);
                    return;
                }
                let mut done = 0usize;
                while done < buf.len() {
                    let pos = offset + done as u64;
                    let page = pos / SPARSE_PAGE;
                    let within = (pos % SPARSE_PAGE) as usize;
                    let take = (SPARSE_PAGE as usize - within).min(buf.len() - done);
                    match find_page(pages, cursor, page) {
                        Some(i) => {
                            let p = &pages[i].1;
                            buf[done..done + take].copy_from_slice(&p[within..within + take]);
                        }
                        None => buf[done..done + take].fill(0),
                    }
                    done += take;
                }
            }
        }
    }

    fn write(&mut self, offset: u64, data: &[u8]) {
        match self {
            Backing::Dense(v) => {
                v[offset as usize..offset as usize + data.len()].copy_from_slice(data);
            }
            Backing::Sparse { pages, cursor } => {
                let mut done = 0usize;
                while done < data.len() {
                    let pos = offset + done as u64;
                    let page = pos / SPARSE_PAGE;
                    let within = (pos % SPARSE_PAGE) as usize;
                    let take = (SPARSE_PAGE as usize - within).min(data.len() - done);
                    let i = match find_page(pages, cursor, page) {
                        Some(i) => i,
                        None => {
                            let at = pages.partition_point(|&(p, _)| p < page);
                            pages.insert(
                                at,
                                (page, vec![0u8; SPARSE_PAGE as usize].into_boxed_slice()),
                            );
                            cursor.set(at);
                            at
                        }
                    };
                    pages[i].1[within..within + take].copy_from_slice(&data[done..done + take]);
                    done += take;
                }
            }
        }
    }

    fn as_slice(&self) -> Option<&[u8]> {
        match self {
            Backing::Dense(v) => Some(v),
            Backing::Sparse { .. } => None,
        }
    }

    fn as_mut_slice(&mut self) -> Option<&mut [u8]> {
        match self {
            Backing::Dense(v) => Some(v),
            Backing::Sparse { .. } => None,
        }
    }
}

/// Per-region state in the slab.
#[derive(Debug)]
struct RegionSlot {
    placement: Placement,
    backing: Backing,
}

/// The pool of all memory devices in a topology.
#[derive(Debug)]
pub struct MemoryPool {
    arenas: Vec<Arena>,
    /// Dense slab indexed by `RegionId`; ids are monotone and never
    /// reused, so a freed region leaves a `None` tombstone.
    slots: Vec<Option<RegionSlot>>,
    live: usize,
}

impl MemoryPool {
    /// Builds a pool with one arena per memory device in the topology.
    pub fn new(topo: &Topology) -> Self {
        MemoryPool {
            arenas: topo.mem_devices().iter().map(|m| Arena::new(m.capacity)).collect(),
            slots: Vec::new(),
            live: 0,
        }
    }

    fn slot(&self, id: RegionId) -> Result<&RegionSlot, AllocError> {
        self.slots
            .get(id.0 as usize)
            .and_then(Option::as_ref)
            .ok_or(AllocError::UnknownRegion(id))
    }

    fn slot_mut(&mut self, id: RegionId) -> Result<&mut RegionSlot, AllocError> {
        self.slots
            .get_mut(id.0 as usize)
            .and_then(Option::as_mut)
            .ok_or(AllocError::UnknownRegion(id))
    }

    /// Allocates `size` bytes on `dev`, zero-initialized.
    pub fn alloc(&mut self, dev: MemDeviceId, size: u64) -> Result<RegionId, AllocError> {
        if size == 0 {
            return Err(AllocError::ZeroSize);
        }
        let arena = &mut self.arenas[dev.index()];
        let offset = arena.alloc(size).ok_or(AllocError::OutOfMemory {
            dev,
            requested: size,
            free: arena.free_bytes(),
        })?;
        let id = RegionId(self.slots.len() as u64);
        self.slots.push(Some(RegionSlot {
            placement: Placement { dev, offset, size },
            backing: Backing::new(size),
        }));
        self.live += 1;
        Ok(id)
    }

    /// Frees an allocation, returning its former placement.
    pub fn free(&mut self, id: RegionId) -> Result<Placement, AllocError> {
        let slot = self
            .slots
            .get_mut(id.0 as usize)
            .and_then(Option::take)
            .ok_or(AllocError::UnknownRegion(id))?;
        let placement = slot.placement;
        self.arenas[placement.dev.index()].dealloc(placement.offset, placement.size);
        self.live -= 1;
        Ok(placement)
    }

    /// The placement of a live allocation.
    pub fn placement(&self, id: RegionId) -> Result<Placement, AllocError> {
        Ok(self.slot(id)?.placement)
    }

    /// True if the id refers to a live allocation.
    pub fn is_live(&self, id: RegionId) -> bool {
        self.slot(id).is_ok()
    }

    /// Read access to an allocation's bytes as one contiguous slice.
    /// Fails with [`AllocError::NotContiguous`] for sparse-backed regions
    /// (larger than [`DENSE_BACKING_LIMIT`]); use [`MemoryPool::read_at`]
    /// for those.
    pub fn data(&self, id: RegionId) -> Result<&[u8], AllocError> {
        self.slot(id)?
            .backing
            .as_slice()
            .ok_or(AllocError::NotContiguous(id))
    }

    /// Write access to an allocation's bytes as one contiguous slice.
    /// Fails with [`AllocError::NotContiguous`] for sparse-backed regions.
    pub fn data_mut(&mut self, id: RegionId) -> Result<&mut [u8], AllocError> {
        self.slot_mut(id)?
            .backing
            .as_mut_slice()
            .ok_or(AllocError::NotContiguous(id))
    }

    /// Reads `buf.len()` bytes at `offset` (works for any backing).
    /// The caller checks bounds; out-of-range access panics.
    pub fn read_at(&self, id: RegionId, offset: u64, buf: &mut [u8]) -> Result<(), AllocError> {
        self.slot(id)?.backing.read(offset, buf);
        Ok(())
    }

    /// Writes `data` at `offset` (works for any backing).
    pub fn write_at(&mut self, id: RegionId, offset: u64, data: &[u8]) -> Result<(), AllocError> {
        self.slot_mut(id)?.backing.write(offset, data);
        Ok(())
    }

    /// Copies `len` bytes from `src` to `dst` in bounded chunks (works for
    /// any backing combination; used by handover copies and migrations).
    pub fn copy_between(
        &mut self,
        src: RegionId,
        dst: RegionId,
        len: u64,
    ) -> Result<(), AllocError> {
        self.slot(src)?;
        self.slot(dst)?;
        let mut chunk = vec![0u8; (1 << 20).min(len as usize).max(1)];
        let mut off = 0u64;
        while off < len {
            let take = ((len - off) as usize).min(chunk.len());
            self.slot(src)?.backing.read(off, &mut chunk[..take]);
            self.slot_mut(dst)?.backing.write(off, &chunk[..take]);
            off += take as u64;
        }
        Ok(())
    }

    /// Moves an allocation's backing to another device (the physical part
    /// of a migration). Contents are preserved; the id stays the same.
    pub fn rebind(&mut self, id: RegionId, to: MemDeviceId) -> Result<Placement, AllocError> {
        let old = self.placement(id)?;
        if old.dev == to {
            return Ok(old);
        }
        let arena = &mut self.arenas[to.index()];
        let offset = arena.alloc(old.size).ok_or(AllocError::OutOfMemory {
            dev: to,
            requested: old.size,
            free: arena.free_bytes(),
        })?;
        self.arenas[old.dev.index()].dealloc(old.offset, old.size);
        let new = Placement {
            dev: to,
            offset,
            size: old.size,
        };
        self.slot_mut(id)?.placement = new;
        Ok(new)
    }

    /// Bytes currently allocated on a device.
    pub fn allocated(&self, dev: MemDeviceId) -> u64 {
        self.arenas[dev.index()].allocated
    }

    /// Peak bytes ever allocated on a device.
    pub fn peak(&self, dev: MemDeviceId) -> u64 {
        self.arenas[dev.index()].peak
    }

    /// Capacity of a device arena.
    pub fn capacity(&self, dev: MemDeviceId) -> u64 {
        self.arenas[dev.index()].capacity
    }

    /// Fraction of a device's capacity currently allocated.
    pub fn utilization(&self, dev: MemDeviceId) -> f64 {
        let a = &self.arenas[dev.index()];
        if a.capacity == 0 {
            0.0
        } else {
            a.allocated as f64 / a.capacity as f64
        }
    }

    /// Fragmentation of a device arena (`1 - largest_free/total_free`).
    pub fn fragmentation(&self, dev: MemDeviceId) -> f64 {
        self.arenas[dev.index()].fragmentation()
    }

    /// Number of live allocations.
    pub fn live_count(&self) -> usize {
        self.live
    }

    /// Iterates over live allocations in id (allocation) order.
    pub fn live(&self) -> impl Iterator<Item = (RegionId, Placement)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|s| (RegionId(i as u64), s.placement)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disagg_hwsim::compute::{ComputeKind, ComputeModel};
    use disagg_hwsim::device::{MemDeviceKind, MemDeviceModel};
    use disagg_hwsim::topology::{LinkKind, Topology};

    fn pool_with_capacity(cap: u64) -> (MemoryPool, MemDeviceId) {
        let mut b = Topology::builder();
        let n = b.node("host");
        let cpu = b.compute(n, ComputeModel::preset(ComputeKind::Cpu));
        let dram = b.mem(n, MemDeviceModel::preset_with_capacity(MemDeviceKind::Dram, cap));
        b.link(cpu, dram, LinkKind::MemBus);
        let topo = b.build().unwrap();
        (MemoryPool::new(&topo), dram)
    }

    #[test]
    fn alloc_free_round_trip_restores_capacity() {
        let (mut pool, dev) = pool_with_capacity(1024);
        let id = pool.alloc(dev, 512).unwrap();
        assert_eq!(pool.allocated(dev), 512);
        assert!(pool.is_live(id));
        pool.free(id).unwrap();
        assert_eq!(pool.allocated(dev), 0);
        assert!(!pool.is_live(id));
        // The full extent is available again.
        let id2 = pool.alloc(dev, 1024).unwrap();
        assert_eq!(pool.placement(id2).unwrap().offset, 0);
    }

    #[test]
    fn capacity_is_enforced() {
        let (mut pool, dev) = pool_with_capacity(1024);
        pool.alloc(dev, 1000).unwrap();
        let err = pool.alloc(dev, 100).unwrap_err();
        assert!(matches!(err, AllocError::OutOfMemory { free: 24, .. }));
    }

    #[test]
    fn zero_size_rejected() {
        let (mut pool, dev) = pool_with_capacity(1024);
        assert_eq!(pool.alloc(dev, 0).unwrap_err(), AllocError::ZeroSize);
    }

    #[test]
    fn double_free_is_an_error() {
        let (mut pool, dev) = pool_with_capacity(1024);
        let id = pool.alloc(dev, 64).unwrap();
        pool.free(id).unwrap();
        assert_eq!(pool.free(id).unwrap_err(), AllocError::UnknownRegion(id));
    }

    #[test]
    fn buffers_are_zero_initialized_and_writable() {
        let (mut pool, dev) = pool_with_capacity(1024);
        let id = pool.alloc(dev, 16).unwrap();
        assert!(pool.data(id).unwrap().iter().all(|&b| b == 0));
        pool.data_mut(id).unwrap()[0] = 0xAB;
        assert_eq!(pool.data(id).unwrap()[0], 0xAB);
    }

    #[test]
    fn freeing_middle_block_coalesces() {
        let (mut pool, dev) = pool_with_capacity(300);
        let a = pool.alloc(dev, 100).unwrap();
        let b = pool.alloc(dev, 100).unwrap();
        let c = pool.alloc(dev, 100).unwrap();
        pool.free(a).unwrap();
        pool.free(c).unwrap();
        // Free list: [0,100) and [200,300) → fragmented.
        assert!(pool.fragmentation(dev) > 0.0);
        pool.free(b).unwrap();
        // Fully coalesced again.
        assert_eq!(pool.fragmentation(dev), 0.0);
        let big = pool.alloc(dev, 300).unwrap();
        assert_eq!(pool.placement(big).unwrap().offset, 0);
    }

    #[test]
    fn fragmentation_blocks_large_allocations_even_with_enough_total_free() {
        let (mut pool, dev) = pool_with_capacity(300);
        let a = pool.alloc(dev, 100).unwrap();
        let _b = pool.alloc(dev, 100).unwrap();
        let c = pool.alloc(dev, 100).unwrap();
        pool.free(a).unwrap();
        pool.free(c).unwrap();
        // 200 bytes free but no contiguous 150-byte extent.
        let err = pool.alloc(dev, 150).unwrap_err();
        assert!(matches!(err, AllocError::OutOfMemory { free: 200, .. }));
    }

    #[test]
    fn rebind_moves_between_devices_preserving_contents() {
        let mut b = Topology::builder();
        let n = b.node("host");
        let cpu = b.compute(n, ComputeModel::preset(ComputeKind::Cpu));
        let d0 = b.mem(n, MemDeviceModel::preset_with_capacity(MemDeviceKind::Dram, 1024));
        let d1 = b.mem(n, MemDeviceModel::preset_with_capacity(MemDeviceKind::Pmem, 1024));
        b.link(cpu, d0, LinkKind::MemBus);
        b.link(cpu, d1, LinkKind::MemBus);
        let topo = b.build().unwrap();
        let mut pool = MemoryPool::new(&topo);

        let id = pool.alloc(d0, 64).unwrap();
        pool.data_mut(id).unwrap()[7] = 42;
        let new = pool.rebind(id, d1).unwrap();
        assert_eq!(new.dev, d1);
        assert_eq!(pool.allocated(d0), 0);
        assert_eq!(pool.allocated(d1), 64);
        assert_eq!(pool.data(id).unwrap()[7], 42);
    }

    #[test]
    fn rebind_to_same_device_is_a_no_op() {
        let (mut pool, dev) = pool_with_capacity(1024);
        let id = pool.alloc(dev, 64).unwrap();
        let before = pool.placement(id).unwrap();
        let after = pool.rebind(id, dev).unwrap();
        assert_eq!(before, after);
    }

    #[test]
    fn rebind_fails_when_target_is_full_and_keeps_origin() {
        let mut b = Topology::builder();
        let n = b.node("host");
        let cpu = b.compute(n, ComputeModel::preset(ComputeKind::Cpu));
        let d0 = b.mem(n, MemDeviceModel::preset_with_capacity(MemDeviceKind::Dram, 1024));
        let d1 = b.mem(n, MemDeviceModel::preset_with_capacity(MemDeviceKind::Pmem, 32));
        b.link(cpu, d0, LinkKind::MemBus);
        b.link(cpu, d1, LinkKind::MemBus);
        let topo = b.build().unwrap();
        let mut pool = MemoryPool::new(&topo);

        let id = pool.alloc(d0, 64).unwrap();
        assert!(pool.rebind(id, d1).is_err());
        assert_eq!(pool.placement(id).unwrap().dev, d0);
        assert_eq!(pool.allocated(d0), 64);
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let (mut pool, dev) = pool_with_capacity(1024);
        let a = pool.alloc(dev, 400).unwrap();
        let b = pool.alloc(dev, 400).unwrap();
        pool.free(a).unwrap();
        pool.free(b).unwrap();
        assert_eq!(pool.peak(dev), 800);
        assert_eq!(pool.allocated(dev), 0);
    }

    #[test]
    fn utilization_reflects_allocated_fraction() {
        let (mut pool, dev) = pool_with_capacity(1000);
        pool.alloc(dev, 250).unwrap();
        assert!((pool.utilization(dev) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn live_iterates_all_allocations() {
        let (mut pool, dev) = pool_with_capacity(1024);
        let a = pool.alloc(dev, 10).unwrap();
        let b = pool.alloc(dev, 20).unwrap();
        let mut ids: Vec<RegionId> = pool.live().map(|(id, _)| id).collect();
        ids.sort();
        assert_eq!(ids, vec![a, b]);
        assert_eq!(pool.live_count(), 2);
    }

    #[test]
    fn offset_io_works_on_dense_backing() {
        let (mut pool, dev) = pool_with_capacity(1 << 20);
        let id = pool.alloc(dev, 4096).unwrap();
        pool.write_at(id, 100, b"hello").unwrap();
        let mut buf = [0u8; 5];
        pool.read_at(id, 100, &mut buf).unwrap();
        assert_eq!(&buf, b"hello");
        // data() works for dense regions.
        assert_eq!(&pool.data(id).unwrap()[100..105], b"hello");
    }

    #[test]
    fn huge_regions_are_sparse_and_reject_contiguous_views() {
        let (mut pool, dev) = pool_with_capacity(1 << 30);
        let id = pool.alloc(dev, 512 << 20).unwrap();
        assert!(matches!(pool.data(id), Err(AllocError::NotContiguous(_))));
        assert!(matches!(pool.data_mut(id), Err(AllocError::NotContiguous(_))));
        // But offset I/O works anywhere, and unwritten bytes read zero.
        pool.write_at(id, 400 << 20, b"far out").unwrap();
        let mut buf = [0u8; 7];
        pool.read_at(id, 400 << 20, &mut buf).unwrap();
        assert_eq!(&buf, b"far out");
        let mut z = [9u8; 4];
        pool.read_at(id, 100 << 20, &mut z).unwrap();
        assert_eq!(z, [0u8; 4]);
    }

    #[test]
    fn sparse_writes_spanning_page_boundaries_round_trip() {
        let (mut pool, dev) = pool_with_capacity(1 << 30);
        let id = pool.alloc(dev, 512 << 20).unwrap();
        // 64 KiB pages: straddle the boundary at page 1.
        let off = (64 << 10) - 3;
        let payload: Vec<u8> = (0..9).collect();
        pool.write_at(id, off, &payload).unwrap();
        let mut buf = vec![0u8; 9];
        pool.read_at(id, off, &mut buf).unwrap();
        assert_eq!(buf, payload);
    }

    #[test]
    fn copy_between_streams_across_backings() {
        let (mut pool, dev) = pool_with_capacity(1 << 30);
        // Dense source, sparse destination.
        let small = pool.alloc(dev, 4096).unwrap();
        let big = pool.alloc(dev, 512 << 20).unwrap();
        pool.write_at(small, 0, &[0xAB; 4096]).unwrap();
        pool.copy_between(small, big, 4096).unwrap();
        let mut buf = [0u8; 4096];
        pool.read_at(big, 0, &mut buf).unwrap();
        assert_eq!(buf, [0xAB; 4096]);
        // Unknown regions are rejected.
        assert!(pool.copy_between(RegionId(999), big, 1).is_err());
        assert!(pool.copy_between(small, RegionId(999), 1).is_err());
    }
}
