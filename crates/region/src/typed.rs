//! The predefined Memory Regions of Table 2.
//!
//! The paper names three region types that dataflow systems keep reaching
//! for, each a bundle of properties:
//!
//! | Name            | Properties              | Purpose            |
//! |-----------------|-------------------------|--------------------|
//! | Global State    | {coherent, sync}        | Syncing tasks      |
//! | Global Scratch  | {coherent, async}       | Data exchange      |
//! | Private Scratch | {noncoherent, sync}     | Thread-local data  |
//!
//! Plus the dataflow plumbing regions of Figure 4: `Input` and `Output`,
//! which the runtime allocates so that handover between adjacent tasks is
//! a pure ownership transfer whenever both compute devices can address the
//! memory.

use crate::props::{AccessHint, AccessMode, BandwidthClass, LatencyClass, PropertySet};

/// The region vocabulary a task context exposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegionType {
    /// Thread-local working memory; not shared, not transferable.
    PrivateScratch,
    /// Application-global synchronization state; coherent and strongly
    /// ordered, expected slow.
    GlobalState,
    /// Cross-task data exchange for unconnected tasks; coherent with an
    /// asynchronous interface.
    GlobalScratch,
    /// The data set a task operates on (produced by its predecessor).
    Input,
    /// The data a task produces (the successor's input).
    Output,
}

impl RegionType {
    /// All predefined types.
    pub const ALL: [RegionType; 5] = [
        RegionType::PrivateScratch,
        RegionType::GlobalState,
        RegionType::GlobalScratch,
        RegionType::Input,
        RegionType::Output,
    ];

    /// The Table 2 rows (the three named regions).
    pub const TABLE2: [RegionType; 3] = [
        RegionType::GlobalState,
        RegionType::GlobalScratch,
        RegionType::PrivateScratch,
    ];

    /// The paper's name for this region type.
    pub fn name(self) -> &'static str {
        match self {
            RegionType::PrivateScratch => "Private Scratch",
            RegionType::GlobalState => "Global State",
            RegionType::GlobalScratch => "Global Scratch",
            RegionType::Input => "Input",
            RegionType::Output => "Output",
        }
    }

    /// The property bundle this region type expands to (Table 2).
    pub fn properties(self) -> PropertySet {
        match self {
            // Fast and local to the executing thread; coherence can be
            // relaxed because nothing else sees it.
            RegionType::PrivateScratch => PropertySet::new()
                .coherent(false)
                .with_mode(AccessMode::Sync)
                .with_latency(LatencyClass::Low)
                .with_hint(AccessHint::mixed_random()),
            // Visible to every task: must be coherent with strong
            // ordering; latency is whatever the pool can offer.
            RegionType::GlobalState => PropertySet::new()
                .coherent(true)
                .with_mode(AccessMode::Sync)
                .with_latency(LatencyClass::Medium)
                .with_hint(AccessHint::random_reads()),
            // Bulk exchange space: coherent, asynchronous, bandwidth over
            // latency.
            RegionType::GlobalScratch => PropertySet::new()
                .coherent(true)
                .with_mode(AccessMode::Async)
                .with_bandwidth(BandwidthClass::Medium)
                .with_hint(AccessHint::streaming()),
            // Dataflow inputs are streamed by the consumer: bandwidth
            // matters, per-access latency does not bound feasibility.
            RegionType::Input => PropertySet::new()
                .with_mode(AccessMode::Sync)
                .with_hint(AccessHint::streaming()),
            // Outputs are written once by the producer, then handed over.
            // No latency class: a persistent output must be placeable on
            // PMem-class devices across the rack fabric.
            RegionType::Output => PropertySet::new()
                .with_mode(AccessMode::Sync)
                .with_hint(AccessHint {
                    read_fraction: 0.1,
                    ..AccessHint::streaming()
                }),
        }
    }

    /// Whether regions of this type may be shared between tasks.
    pub fn shareable(self) -> bool {
        !matches!(self, RegionType::PrivateScratch)
    }

    /// Whether regions of this type may move between owners (Figure 4's
    /// "transfer ownership" arrow). Private scratch is pinned to its
    /// thread; everything else can be handed over.
    pub fn transferable(self) -> bool {
        !matches!(self, RegionType::PrivateScratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_property_bundles_match_the_paper() {
        let gs = RegionType::GlobalState.properties();
        assert!(gs.coherent);
        assert_eq!(gs.mode, AccessMode::Sync);

        let gsc = RegionType::GlobalScratch.properties();
        assert!(gsc.coherent);
        assert_eq!(gsc.mode, AccessMode::Async);

        let ps = RegionType::PrivateScratch.properties();
        assert!(!ps.coherent);
        assert_eq!(ps.mode, AccessMode::Sync);
    }

    #[test]
    fn private_scratch_is_neither_shareable_nor_transferable() {
        assert!(!RegionType::PrivateScratch.shareable());
        assert!(!RegionType::PrivateScratch.transferable());
        assert!(RegionType::GlobalScratch.shareable());
        assert!(RegionType::Output.transferable());
    }

    #[test]
    fn private_scratch_demands_low_latency() {
        assert_eq!(
            RegionType::PrivateScratch.properties().latency,
            LatencyClass::Low
        );
    }

    #[test]
    fn names_match_paper_vocabulary() {
        assert_eq!(RegionType::GlobalState.name(), "Global State");
        assert_eq!(RegionType::GlobalScratch.name(), "Global Scratch");
        assert_eq!(RegionType::PrivateScratch.name(), "Private Scratch");
    }

    #[test]
    fn outputs_are_write_heavy() {
        let out = RegionType::Output.properties();
        assert!(out.hint.read_fraction < 0.5);
        let inp = RegionType::Input.properties();
        assert!(inp.hint.read_fraction >= 0.5);
    }
}
