//! Typed memory regions with declarative properties and ownership.
//!
//! This crate implements the memory half of the paper's programming model:
//!
//! - [`props`]: the declarative property vocabulary — latency/bandwidth
//!   classes, persistence, coherence, confidentiality, access mode and
//!   hints. Applications *describe* memory; they never name devices.
//! - [`typed`]: the predefined region types of Table 2 (Private Scratch,
//!   Global State, Global Scratch) plus the dataflow Input/Output regions
//!   of Figure 4.
//! - [`pool`]: per-device arenas with real capacity accounting,
//!   fragmentation, and real backing bytes.
//! - [`region`]: the ownership bookkeeper — exclusive and shared
//!   ownership, move-semantics transfer, release-on-last-owner.
//! - [`access`]: the synchronous and asynchronous access interfaces,
//!   charging virtual time (and contention) for every operation.
//! - [`hotness`]: pointer tagging, swizzling, and decayed hotness
//!   statistics.
//! - [`mod@migrate`]: physical migration between devices and watermark
//!   tiering.

pub mod access;
pub mod hotness;
pub mod migrate;
pub mod pool;
pub mod props;
pub mod region;
pub mod typed;

pub use access::{AccessStats, Accessor};
pub use hotness::{HotStat, HotnessTracker, TaggedPtr};
pub use migrate::{migrate, TieringPolicy};
pub use pool::{AllocError, MemoryPool, Placement, RegionId};
pub use props::{AccessHint, AccessMode, BandwidthClass, LatencyClass, PropertySet};
pub use region::{OwnerId, Ownership, RegionError, RegionManager, RegionMeta};
pub use typed::RegionType;
