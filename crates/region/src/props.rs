//! The declarative property vocabulary.
//!
//! The paper's central move: applications stop naming memory devices and
//! instead *describe* the memory they need — "low latency from where I
//! run", "persistent", "coherently shareable", "confidential". A
//! [`PropertySet`] is such a description. The runtime system resolves it
//! against the physical topology; [`PropertySet::satisfied_by`] is the
//! feasibility check the placement optimizer builds on.

use disagg_hwsim::device::{AccessOp, AccessPattern, MemDeviceModel};
use disagg_hwsim::topology::PathCost;

/// Latency requirement classes, evaluated against the *achieved* access
/// latency (device + interconnect path) from the executing compute device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LatencyClass {
    /// Near memory: ≤ 200 ns per access (DRAM/HBM/cache territory).
    Low,
    /// ≤ 1 µs per access (PMem, CXL, NUMA-remote).
    Medium,
    /// ≤ 100 µs per access (far memory, fast NVMe).
    High,
    /// No latency requirement.
    #[default]
    Any,
}

impl LatencyClass {
    /// The inclusive upper bound in nanoseconds, if any.
    pub fn max_ns(self) -> Option<f64> {
        match self {
            LatencyClass::Low => Some(200.0),
            LatencyClass::Medium => Some(1_000.0),
            LatencyClass::High => Some(100_000.0),
            LatencyClass::Any => None,
        }
    }

    /// Name for reports.
    pub fn name(self) -> &'static str {
        match self {
            LatencyClass::Low => "low",
            LatencyClass::Medium => "medium",
            LatencyClass::High => "high",
            LatencyClass::Any => "any",
        }
    }
}

/// Bandwidth requirement classes, evaluated against the achievable
/// sequential bandwidth (bottleneck of device and path).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BandwidthClass {
    /// ≥ 100 GB/s (HBM/GDDR/DRAM).
    High,
    /// ≥ 10 GB/s (CXL, far memory, PMem reads).
    Medium,
    /// ≥ 1 GB/s (NVMe).
    Low,
    /// No bandwidth requirement.
    #[default]
    Any,
}

impl BandwidthClass {
    /// The inclusive lower bound in bytes/ns, if any.
    pub fn min_bpns(self) -> Option<f64> {
        match self {
            BandwidthClass::High => Some(100.0),
            BandwidthClass::Medium => Some(10.0),
            BandwidthClass::Low => Some(1.0),
            BandwidthClass::Any => None,
        }
    }

    /// Name for reports.
    pub fn name(self) -> &'static str {
        match self {
            BandwidthClass::High => "high",
            BandwidthClass::Medium => "medium",
            BandwidthClass::Low => "low",
            BandwidthClass::Any => "any",
        }
    }
}

/// Which access interface the task intends to use (the paper's §2.2(3):
/// near memory wants synchronous loads/stores, far memory an asynchronous
/// interface).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AccessMode {
    /// Synchronous loads/stores; requires a device that supports them.
    #[default]
    Sync,
    /// Asynchronous issue/poll/wait; any device can serve it.
    Async,
}

/// Declared access behaviour, used by the cost model to weigh latency
/// against bandwidth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccessHint {
    /// Random or sequential.
    pub pattern: AccessPattern,
    /// Fraction of accesses that are reads, in `[0, 1]`.
    pub read_fraction: f64,
    /// Typical bytes per access (for latency-vs-bandwidth weighting).
    pub typical_bytes: u64,
}

impl Default for AccessHint {
    fn default() -> Self {
        AccessHint {
            pattern: AccessPattern::Sequential,
            read_fraction: 0.7,
            typical_bytes: 4096,
        }
    }
}

impl AccessHint {
    /// A random, small-access, read-mostly hint (index lookups).
    pub fn random_reads() -> Self {
        AccessHint {
            pattern: AccessPattern::Random,
            read_fraction: 0.95,
            typical_bytes: 64,
        }
    }

    /// A streaming, large-access hint (scans).
    pub fn streaming() -> Self {
        AccessHint {
            pattern: AccessPattern::Sequential,
            read_fraction: 0.8,
            typical_bytes: 1 << 20,
        }
    }

    /// A balanced read/write random hint (operator state updates).
    pub fn mixed_random() -> Self {
        AccessHint {
            pattern: AccessPattern::Random,
            read_fraction: 0.5,
            typical_bytes: 256,
        }
    }

    /// The dominant operation implied by the read fraction.
    pub fn dominant_op(&self) -> AccessOp {
        if self.read_fraction >= 0.5 {
            AccessOp::Read
        } else {
            AccessOp::Write
        }
    }
}

/// A declarative memory request: what the application needs, not where it
/// should live.
#[derive(Debug, Clone, PartialEq)]
pub struct PropertySet {
    /// Required latency class (achieved, from the executing device).
    pub latency: LatencyClass,
    /// Required bandwidth class (achieved, from the executing device).
    pub bandwidth: BandwidthClass,
    /// Contents must survive crashes/power loss.
    pub persistent: bool,
    /// The region will be shared between concurrent tasks and therefore
    /// must live in the cache-coherence domain with strong ordering.
    pub coherent: bool,
    /// The data is sensitive: isolated from other jobs and encrypted when
    /// it leaves the coherence domain.
    pub confidential: bool,
    /// Intended access interface.
    pub mode: AccessMode,
    /// Declared access behaviour.
    pub hint: AccessHint,
}

impl Default for PropertySet {
    fn default() -> Self {
        PropertySet {
            latency: LatencyClass::Any,
            bandwidth: BandwidthClass::Any,
            persistent: false,
            coherent: false,
            confidential: false,
            mode: AccessMode::Sync,
            hint: AccessHint::default(),
        }
    }
}

impl PropertySet {
    /// Starts from the defaults (no requirements).
    pub fn new() -> Self {
        Self::default()
    }

    /// Requires a latency class.
    pub fn with_latency(mut self, latency: LatencyClass) -> Self {
        self.latency = latency;
        self
    }

    /// Requires a bandwidth class.
    pub fn with_bandwidth(mut self, bandwidth: BandwidthClass) -> Self {
        self.bandwidth = bandwidth;
        self
    }

    /// Requires persistence.
    pub fn persistent(mut self, yes: bool) -> Self {
        self.persistent = yes;
        self
    }

    /// Requires coherent shareability.
    pub fn coherent(mut self, yes: bool) -> Self {
        self.coherent = yes;
        self
    }

    /// Marks the data confidential.
    pub fn confidential(mut self, yes: bool) -> Self {
        self.confidential = yes;
        self
    }

    /// Selects the access interface.
    pub fn with_mode(mut self, mode: AccessMode) -> Self {
        self.mode = mode;
        self
    }

    /// Declares the access behaviour.
    pub fn with_hint(mut self, hint: AccessHint) -> Self {
        self.hint = hint;
        self
    }

    /// Achieved per-access latency for this request on `dev` over `path`.
    pub fn achieved_latency_ns(&self, dev: &MemDeviceModel, path: PathCost) -> f64 {
        dev.latency(self.hint.dominant_op()) + path.latency_ns
    }

    /// Achieved sequential bandwidth for this request on `dev` over `path`.
    pub fn achieved_bandwidth_bpns(&self, dev: &MemDeviceModel, path: PathCost) -> f64 {
        dev.bandwidth(self.hint.dominant_op()).min(path.bandwidth_bpns)
    }

    /// Hard feasibility: can a region with these properties live on `dev`
    /// when accessed over `path`?
    ///
    /// - `persistent` requires a persistent device.
    /// - `coherent` requires a device inside the coherence domain.
    /// - `mode == Sync` requires a device capable of synchronous access.
    /// - latency/bandwidth classes bound the achieved values.
    ///
    /// Confidentiality is *not* a device constraint: it is enforced by the
    /// runtime through isolation and encryption (see `sched::enforce`).
    pub fn satisfied_by(&self, dev: &MemDeviceModel, path: PathCost) -> bool {
        if self.persistent && !dev.persistent {
            return false;
        }
        if self.coherent && !dev.coherent {
            return false;
        }
        if self.mode == AccessMode::Sync && !dev.sync.allows_sync() {
            return false;
        }
        if let Some(max) = self.latency.max_ns() {
            if self.achieved_latency_ns(dev, path) > max {
                return false;
            }
        }
        if let Some(min) = self.bandwidth.min_bpns() {
            if self.achieved_bandwidth_bpns(dev, path) < min {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disagg_hwsim::device::MemDeviceKind;

    fn dev(kind: MemDeviceKind) -> MemDeviceModel {
        MemDeviceModel::preset(kind)
    }

    const LOCAL: PathCost = PathCost::LOCAL;

    #[test]
    fn default_properties_accept_anything_sync_capable() {
        let p = PropertySet::default();
        assert!(p.satisfied_by(&dev(MemDeviceKind::Dram), LOCAL));
        assert!(p.satisfied_by(&dev(MemDeviceKind::Pmem), LOCAL));
        // Default mode is Sync, which SSDs cannot serve.
        assert!(!p.satisfied_by(&dev(MemDeviceKind::Ssd), LOCAL));
        assert!(p
            .with_mode(AccessMode::Async)
            .satisfied_by(&dev(MemDeviceKind::Ssd), LOCAL));
    }

    #[test]
    fn persistence_is_a_hard_constraint() {
        let p = PropertySet::new().persistent(true);
        assert!(!p.satisfied_by(&dev(MemDeviceKind::Dram), LOCAL));
        assert!(p.satisfied_by(&dev(MemDeviceKind::Pmem), LOCAL));
        assert!(p
            .clone()
            .with_mode(AccessMode::Async)
            .satisfied_by(&dev(MemDeviceKind::Ssd), LOCAL));
    }

    #[test]
    fn coherence_excludes_noncoherent_devices() {
        let p = PropertySet::new().coherent(true);
        assert!(p.satisfied_by(&dev(MemDeviceKind::Dram), LOCAL));
        assert!(p.satisfied_by(&dev(MemDeviceKind::CxlDram), LOCAL));
        let far = PropertySet::new().coherent(true).with_mode(AccessMode::Async);
        assert!(!far.satisfied_by(&dev(MemDeviceKind::FarMemory), LOCAL));
    }

    #[test]
    fn latency_class_bounds_achieved_latency() {
        let p = PropertySet::new().with_latency(LatencyClass::Low);
        assert!(p.satisfied_by(&dev(MemDeviceKind::Dram), LOCAL));
        assert!(!p.satisfied_by(&dev(MemDeviceKind::Pmem), LOCAL));
        // The same DRAM behind a slow path fails the Low bound.
        let slow_path = PathCost {
            latency_ns: 500.0,
            bandwidth_bpns: 40.0,
            hops: 2,
            bottleneck_link: None,
        };
        assert!(!p.satisfied_by(&dev(MemDeviceKind::Dram), slow_path));
    }

    #[test]
    fn bandwidth_class_bounds_achieved_bandwidth() {
        let p = PropertySet::new().with_bandwidth(BandwidthClass::High);
        assert!(p.satisfied_by(&dev(MemDeviceKind::Dram), LOCAL));
        assert!(!p.satisfied_by(&dev(MemDeviceKind::CxlDram), LOCAL));
        // DRAM behind a narrow path is bottlenecked below the class.
        let narrow = PathCost {
            latency_ns: 0.0,
            bandwidth_bpns: 12.0,
            hops: 1,
            bottleneck_link: None,
        };
        assert!(!p.satisfied_by(&dev(MemDeviceKind::Dram), narrow));
    }

    #[test]
    fn confidentiality_is_not_a_device_filter() {
        let p = PropertySet::new().confidential(true);
        assert!(p.satisfied_by(&dev(MemDeviceKind::Dram), LOCAL));
        assert!(p
            .clone()
            .with_mode(AccessMode::Async)
            .satisfied_by(&dev(MemDeviceKind::FarMemory), LOCAL));
    }

    #[test]
    fn write_heavy_hints_use_write_latency() {
        let hint = AccessHint {
            pattern: AccessPattern::Random,
            read_fraction: 0.1,
            typical_bytes: 64,
        };
        assert_eq!(hint.dominant_op(), AccessOp::Write);
        let p = PropertySet::new()
            .with_hint(hint)
            .with_latency(LatencyClass::Medium);
        // PMem write latency 450 ns still fits Medium (≤ 1 µs).
        assert!(p.satisfied_by(&dev(MemDeviceKind::Pmem), LOCAL));
    }

    #[test]
    fn class_thresholds_are_ordered() {
        assert!(LatencyClass::Low.max_ns() < LatencyClass::Medium.max_ns());
        assert!(LatencyClass::Medium.max_ns() < LatencyClass::High.max_ns());
        assert_eq!(LatencyClass::Any.max_ns(), None);
        assert!(BandwidthClass::High.min_bpns() > BandwidthClass::Medium.min_bpns());
        assert!(BandwidthClass::Medium.min_bpns() > BandwidthClass::Low.min_bpns());
        assert_eq!(BandwidthClass::Any.min_bpns(), None);
    }
}
