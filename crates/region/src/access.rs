//! Access interfaces: synchronous loads/stores and asynchronous sessions.
//!
//! The paper's third pillar (§2.2(3)): near memory wants synchronous
//! loads/stores; far memory wants an asynchronous interface that fetches in
//! the background so compute and transfer overlap. The [`Accessor`] is a
//! task's window onto memory:
//!
//! - [`Accessor::read`] / [`Accessor::write`] are the synchronous
//!   interface. Each call charges full access latency plus a bandwidth
//!   reservation on the device's contention ledger, then advances the
//!   task's virtual clock.
//! - [`Accessor::async_read`] / [`Accessor::async_write`] issue operations
//!   that complete in the background; [`Accessor::wait_async`] joins them
//!   with concurrently executed compute, paying
//!   `startup-latency + max(io, compute)` instead of the synchronous
//!   `io + compute` — the crossover the paper predicts for far memory.
//! - [`Accessor::compute_work`] charges pure execution time for the
//!   task's compute device.

use disagg_hwsim::compute::WorkClass;
use disagg_hwsim::contention::{BandwidthLedger, ResourceKey};
use disagg_hwsim::device::{AccessOp, AccessPattern};
use disagg_hwsim::fault::FaultInjector;
use disagg_hwsim::ids::ComputeId;
use disagg_hwsim::time::{SimDuration, SimTime};
use disagg_hwsim::topology::Topology;
use disagg_hwsim::trace::{Trace, TraceEvent};

use crate::pool::RegionId;
use crate::region::{OwnerId, RegionError, RegionManager};

/// Statistics an accessor accumulates over a task's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AccessStats {
    /// Bytes read (logical).
    pub bytes_read: u64,
    /// Bytes written (logical).
    pub bytes_written: u64,
    /// Synchronous operations issued.
    pub sync_ops: u64,
    /// Asynchronous operations issued.
    pub async_ops: u64,
    /// Time spent stalled on synchronous accesses.
    pub sync_stall: SimDuration,
    /// Time spent stalled at async join points (after overlap).
    pub async_stall: SimDuration,
    /// Pure compute time charged.
    pub compute_time: SimDuration,
    /// Bytes served through transparent reconstruction after a checksum
    /// caught corrupted data under a read.
    pub bytes_reconstructed: u64,
    /// Time spent re-fetching and decoding reconstructed data.
    pub reconstruct_stall: SimDuration,
    /// Time spent in accesses whose bottleneck link was running below
    /// nominal bandwidth (a `LinkDegraded` fault window).
    pub degraded_time: SimDuration,
}

/// Software cost of issuing one asynchronous operation (submission +
/// completion handling, an io_uring/SPDK-style toll), charged to the
/// issuing task's clock. This is why near memory prefers plain loads:
/// when the device latency is smaller than the bookkeeping, sync wins.
pub const ASYNC_ISSUE_OVERHEAD_NS: f64 = 150.0;

/// One pending asynchronous operation.
#[derive(Debug, Clone, Copy)]
struct PendingOp {
    /// When the transfer (including contention) completes on the device.
    device_done: SimTime,
    /// Startup latency for this op (paid once, pipelined thereafter).
    latency: SimDuration,
}

/// A task's gateway to simulated memory: performs real byte movement via
/// the [`RegionManager`] while charging virtual time for every operation.
#[derive(Debug)]
pub struct Accessor<'a> {
    topo: &'a Topology,
    ledger: &'a mut BandwidthLedger,
    mgr: &'a mut RegionManager,
    trace: &'a mut Trace,
    /// The compute device this task runs on.
    pub compute: ComputeId,
    /// The owner identity accesses are checked against.
    pub who: OwnerId,
    /// The task's virtual clock cursor.
    pub now: SimTime,
    /// Accumulated statistics.
    pub stats: AccessStats,
    pending: Vec<PendingOp>,
    async_compute: SimDuration,
    /// The run's fault schedule, when one is active. `None` (the
    /// default) keeps the calm path free of per-access fault queries.
    faults: Option<&'a FaultInjector>,
}

impl<'a> Accessor<'a> {
    /// Creates an accessor for a task running on `compute` as `who`,
    /// starting at virtual time `start`.
    pub fn new(
        topo: &'a Topology,
        ledger: &'a mut BandwidthLedger,
        mgr: &'a mut RegionManager,
        trace: &'a mut Trace,
        compute: ComputeId,
        who: OwnerId,
        start: SimTime,
    ) -> Self {
        Accessor {
            topo,
            ledger,
            mgr,
            trace,
            compute,
            who,
            now: start,
            stats: AccessStats::default(),
            pending: Vec::new(),
            async_compute: SimDuration::ZERO,
            faults: None,
        }
    }

    /// Makes accesses fault-aware: reads verify checksums against the
    /// injector's `Corrupt` ranges (reconstructing transparently on a
    /// hit) and transfers over degraded links run at the degraded
    /// bandwidth. Callers should only attach a non-empty injector — an
    /// empty one adds queries for nothing.
    pub fn with_faults(mut self, faults: &'a FaultInjector) -> Self {
        self.faults = Some(faults);
        self
    }

    /// The region manager (for allocation through a task context).
    pub fn manager(&mut self) -> &mut RegionManager {
        self.mgr
    }

    /// Read-only access to the region manager.
    pub fn manager_ref(&self) -> &RegionManager {
        self.mgr
    }

    /// The topology.
    pub fn topology(&self) -> &Topology {
        self.topo
    }

    /// The bandwidth multiplier of the access path's bottleneck link at
    /// `self.now` (1.0 when no injector is attached or the link is
    /// healthy).
    fn link_factor(&self, link: Option<disagg_hwsim::ids::LinkId>) -> f64 {
        match (self.faults, link) {
            (Some(f), Some(l)) => f.link_degradation(l, self.now),
            _ => 1.0,
        }
    }

    fn charge(
        &mut self,
        region: RegionId,
        bytes: u64,
        op: AccessOp,
        pattern: AccessPattern,
    ) -> Result<SimDuration, RegionError> {
        let dev = self.mgr.placement(region)?.dev;
        let parts = self
            .topo
            .access_cost_parts(self.compute, dev, bytes, op, pattern)
            .expect("placement guaranteed reachable by the runtime");
        let transfer_start = self.now + SimDuration::from_nanos_f64(parts.latency_ns);
        let mut finish = self.ledger.reserve(
            ResourceKey::Mem(dev),
            transfer_start,
            parts.eff_bytes as f64,
            parts.bandwidth_bpns,
        );
        // A narrow interconnect contends independently of the device: two
        // streams to different devices behind the same uplink still share
        // the uplink. A degraded link carries traffic at a fraction of
        // its nominal bandwidth until it heals.
        let factor = self.link_factor(parts.bottleneck_link);
        if let Some(link) = parts.bottleneck_link {
            let link_finish = self.ledger.reserve(
                ResourceKey::Link(link),
                transfer_start,
                parts.eff_bytes as f64,
                parts.link_bandwidth_bpns * factor,
            );
            finish = finish.max(link_finish);
        }
        let took = finish - self.now;
        if factor < 1.0 {
            self.stats.degraded_time += took;
        }
        self.trace.push(TraceEvent::Access {
            region: region.0,
            dev,
            bytes,
            op,
            at: self.now,
            took,
        });
        Ok(took)
    }

    /// Bytes of `[offset, offset+len)` within `region` that overlap a
    /// corrupted device range at `self.now` (0 without an injector).
    fn corrupt_overlap(&self, region: RegionId, offset: u64, len: u64) -> u64 {
        let Some(faults) = self.faults else { return 0 };
        let Ok(placement) = self.mgr.placement(region) else { return 0 };
        let lo = placement.offset + offset;
        let hi = lo + len;
        faults
            .corrupted_ranges(placement.dev, self.now)
            .iter()
            .map(|&(c_off, c_len)| {
                let c_hi = c_off + c_len;
                c_hi.min(hi).saturating_sub(c_off.max(lo))
            })
            .sum()
    }

    /// GF(2⁸)-style decode arithmetic charged per reconstructed byte
    /// (matches the ftol crate's host parity engine).
    const RECONSTRUCT_DECODE_NS_PER_BYTE: f64 = 0.5;

    /// Pays for serving `bytes` of a read from redundancy after a
    /// checksum mismatch: a second fetch of the granule plus decode
    /// arithmetic, recorded as a [`TraceEvent::Reconstruct`].
    fn reconstruct(&mut self, region: RegionId, bytes: u64) -> Result<SimDuration, RegionError> {
        let dev = self.mgr.placement(region)?.dev;
        let parts = self
            .topo
            .access_cost_parts(self.compute, dev, bytes, AccessOp::Read, AccessPattern::Sequential)
            .expect("placement guaranteed reachable by the runtime");
        let transfer_start = self.now + SimDuration::from_nanos_f64(parts.latency_ns);
        let mut finish = self.ledger.reserve(
            ResourceKey::Mem(dev),
            transfer_start,
            parts.eff_bytes as f64,
            parts.bandwidth_bpns,
        );
        if let Some(link) = parts.bottleneck_link {
            let link_finish = self.ledger.reserve(
                ResourceKey::Link(link),
                transfer_start,
                parts.eff_bytes as f64,
                parts.link_bandwidth_bpns * self.link_factor(parts.bottleneck_link),
            );
            finish = finish.max(link_finish);
        }
        let decode =
            SimDuration::from_nanos_f64(bytes as f64 * Self::RECONSTRUCT_DECODE_NS_PER_BYTE);
        let took = (finish - self.now) + decode;
        let (job, task) = match self.who {
            OwnerId::Task { job, task } => (Some(job), Some(task)),
            OwnerId::Job(job) => (Some(job), None),
            OwnerId::App => (None, None),
        };
        self.trace.push(TraceEvent::Reconstruct {
            region: region.0,
            dev,
            bytes,
            at: self.now,
            took,
            job,
            task,
        });
        Ok(took)
    }

    /// Synchronously reads into `buf`, stalling the task for the full
    /// access cost. With a fault injector attached, the read verifies
    /// checksums against the injector's `Corrupt` ranges; on a mismatch
    /// the damaged bytes are transparently served from redundancy,
    /// paying a second fetch plus decode time.
    pub fn read(
        &mut self,
        region: RegionId,
        offset: u64,
        buf: &mut [u8],
        pattern: AccessPattern,
    ) -> Result<SimDuration, RegionError> {
        self.mgr.read(region, self.who, offset, buf)?;
        let mut took = self.charge(region, buf.len() as u64, AccessOp::Read, pattern)?;
        let corrupt = self.corrupt_overlap(region, offset, buf.len() as u64);
        if corrupt > 0 {
            let repair = self.reconstruct(region, corrupt)?;
            self.stats.bytes_reconstructed += corrupt;
            self.stats.reconstruct_stall += repair;
            took += repair;
        }
        self.now += took;
        self.stats.bytes_read += buf.len() as u64;
        self.stats.sync_ops += 1;
        self.stats.sync_stall += took;
        Ok(took)
    }

    /// Synchronously writes `data`, stalling the task for the full access
    /// cost.
    pub fn write(
        &mut self,
        region: RegionId,
        offset: u64,
        data: &[u8],
        pattern: AccessPattern,
    ) -> Result<SimDuration, RegionError> {
        self.mgr.write(region, self.who, offset, data)?;
        let took = self.charge(region, data.len() as u64, AccessOp::Write, pattern)?;
        self.now += took;
        self.stats.bytes_written += data.len() as u64;
        self.stats.sync_ops += 1;
        self.stats.sync_stall += took;
        Ok(took)
    }

    /// Issues an asynchronous read. Data lands in `buf` immediately (the
    /// simulation models *when* it would be usable, not staleness); the
    /// time cost is deferred to [`Accessor::wait_async`].
    pub fn async_read(
        &mut self,
        region: RegionId,
        offset: u64,
        buf: &mut [u8],
        pattern: AccessPattern,
    ) -> Result<(), RegionError> {
        self.mgr.read(region, self.who, offset, buf)?;
        self.enqueue(region, buf.len() as u64, AccessOp::Read, pattern)?;
        self.stats.bytes_read += buf.len() as u64;
        Ok(())
    }

    /// Issues an asynchronous write.
    pub fn async_write(
        &mut self,
        region: RegionId,
        offset: u64,
        data: &[u8],
        pattern: AccessPattern,
    ) -> Result<(), RegionError> {
        self.mgr.write(region, self.who, offset, data)?;
        self.enqueue(region, data.len() as u64, AccessOp::Write, pattern)?;
        self.stats.bytes_written += data.len() as u64;
        Ok(())
    }

    fn enqueue(
        &mut self,
        region: RegionId,
        bytes: u64,
        op: AccessOp,
        pattern: AccessPattern,
    ) -> Result<(), RegionError> {
        let dev = self.mgr.placement(region)?.dev;
        let parts = self
            .topo
            .access_cost_parts(self.compute, dev, bytes, op, pattern)
            .expect("placement guaranteed reachable by the runtime");
        // Issuing costs CPU time (submission/completion bookkeeping).
        self.now += SimDuration::from_nanos_f64(ASYNC_ISSUE_OVERHEAD_NS);
        // Transfers queue on the device ledger from "now": they run in the
        // background while the task keeps computing.
        let mut device_done = self.ledger.reserve(
            ResourceKey::Mem(dev),
            self.now,
            parts.eff_bytes as f64,
            parts.bandwidth_bpns,
        );
        let factor = self.link_factor(parts.bottleneck_link);
        if let Some(link) = parts.bottleneck_link {
            let link_done = self.ledger.reserve(
                ResourceKey::Link(link),
                self.now,
                parts.eff_bytes as f64,
                parts.link_bandwidth_bpns * factor,
            );
            device_done = device_done.max(link_done);
        }
        if factor < 1.0 {
            self.stats.degraded_time += device_done - self.now;
        }
        let latency = SimDuration::from_nanos_f64(parts.latency_ns);
        self.trace.push(TraceEvent::Access {
            region: region.0,
            dev,
            bytes,
            op,
            at: self.now,
            took: (device_done - self.now) + latency,
        });
        self.pending.push(PendingOp { device_done, latency });
        self.stats.async_ops += 1;
        Ok(())
    }

    /// Registers compute executed *while* pending async operations are in
    /// flight (the overlap the async interface exists for).
    pub fn overlap_compute(&mut self, class: WorkClass, elems: u64) {
        let cost = self.topo.compute(self.compute).work_cost(class, elems);
        self.async_compute += cost;
        self.stats.compute_time += cost;
    }

    /// Joins all pending asynchronous operations with the overlapped
    /// compute. The task pays `max(io-completion, compute) + one startup
    /// latency` instead of their sum; the resulting stall (time not hidden
    /// by compute) is returned.
    pub fn wait_async(&mut self) -> SimDuration {
        if self.pending.is_empty() {
            let compute = std::mem::take(&mut self.async_compute);
            self.now += compute;
            return SimDuration::ZERO;
        }
        let io_done = self
            .pending
            .iter()
            .map(|p| p.device_done)
            .fold(SimTime::ZERO, SimTime::max);
        // Pipelined ops hide all but the first latency.
        let startup = self
            .pending
            .iter()
            .map(|p| p.latency)
            .fold(SimDuration::ZERO, SimDuration::max);
        let io_elapsed = (io_done - self.now) + startup;
        let compute = std::mem::take(&mut self.async_compute);
        let elapsed = io_elapsed.max(compute);
        let stall = elapsed.saturating_sub(compute);
        self.now += elapsed;
        self.stats.async_stall += stall;
        self.pending.clear();
        stall
    }

    /// Charges pure compute time on the task's device (no memory traffic).
    pub fn compute_work(&mut self, class: WorkClass, elems: u64) -> SimDuration {
        let cost = self.topo.compute(self.compute).work_cost(class, elems);
        self.now += cost;
        self.stats.compute_time += cost;
        cost
    }

    /// Number of operations still pending.
    pub fn pending_ops(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props::PropertySet;
    use crate::typed::RegionType;
    use disagg_hwsim::presets::single_server;

    fn fixture() -> (
        disagg_hwsim::topology::Topology,
        disagg_hwsim::presets::SingleServer,
        RegionManager,
        BandwidthLedger,
        Trace,
    ) {
        let (topo, ids) = single_server();
        let mgr = RegionManager::new(&topo);
        (topo, ids, mgr, BandwidthLedger::default_buckets(), Trace::enabled())
    }

    const WHO: OwnerId = OwnerId::Task { job: 0, task: 0 };

    #[test]
    fn sync_read_round_trips_data_and_charges_time() {
        let (topo, ids, mut mgr, mut ledger, mut trace) = fixture();
        let r = mgr
            .alloc(ids.dram, 1024, RegionType::Output, PropertySet::new(), WHO, SimTime::ZERO)
            .unwrap();
        let mut acc = Accessor::new(&topo, &mut ledger, &mut mgr, &mut trace, ids.cpu, WHO, SimTime::ZERO);
        acc.write(r, 0, &[7u8; 64], AccessPattern::Random).unwrap();
        let mut buf = [0u8; 64];
        acc.read(r, 0, &mut buf, AccessPattern::Random).unwrap();
        assert_eq!(buf, [7u8; 64]);
        assert!(acc.now > SimTime::ZERO);
        assert_eq!(acc.stats.sync_ops, 2);
        assert_eq!(acc.stats.bytes_read, 64);
        assert_eq!(acc.stats.bytes_written, 64);
    }

    #[test]
    fn far_memory_sync_access_costs_more_than_dram() {
        let (topo, ids, mut mgr, mut ledger, mut trace) = fixture();
        let near = mgr
            .alloc(ids.dram, 4096, RegionType::Output, PropertySet::new(), WHO, SimTime::ZERO)
            .unwrap();
        let far = mgr
            .alloc(ids.far, 4096, RegionType::Output, PropertySet::new(), WHO, SimTime::ZERO)
            .unwrap();
        let mut acc = Accessor::new(&topo, &mut ledger, &mut mgr, &mut trace, ids.cpu, WHO, SimTime::ZERO);
        let mut buf = [0u8; 4096];
        let near_cost = acc.read(near, 0, &mut buf, AccessPattern::Random).unwrap();
        let far_cost = acc.read(far, 0, &mut buf, AccessPattern::Random).unwrap();
        // 4 KiB random: DRAM does 64 line-fetches at ~90 ns; far memory 16
        // 256 B fetches at ~2.3 µs each — roughly a 6x gap.
        assert!(
            far_cost.as_nanos() > 5 * near_cost.as_nanos(),
            "far {far_cost} vs near {near_cost}"
        );
    }

    #[test]
    fn async_interface_hides_io_behind_compute() {
        let (topo, ids, mut mgr, mut ledger, mut trace) = fixture();
        let far = mgr
            .alloc(ids.far, 1 << 20, RegionType::GlobalScratch, PropertySet::new(), WHO, SimTime::ZERO)
            .unwrap();

        // Synchronous baseline: read then compute, costs add up.
        let mut sync_acc =
            Accessor::new(&topo, &mut ledger, &mut mgr, &mut trace, ids.cpu, WHO, SimTime::ZERO);
        let mut buf = vec![0u8; 1 << 20];
        sync_acc.read(far, 0, &mut buf, AccessPattern::Sequential).unwrap();
        sync_acc.compute_work(WorkClass::Vector, 4_000_000);
        let sync_total = sync_acc.now;

        // Async: issue the read, overlap the same compute, join.
        let mut ledger2 = BandwidthLedger::default_buckets();
        let mut trace2 = Trace::enabled();
        let mut async_acc =
            Accessor::new(&topo, &mut ledger2, &mut mgr, &mut trace2, ids.cpu, WHO, SimTime::ZERO);
        async_acc.async_read(far, 0, &mut buf, AccessPattern::Sequential).unwrap();
        async_acc.overlap_compute(WorkClass::Vector, 4_000_000);
        async_acc.wait_async();
        let async_total = async_acc.now;

        assert!(
            async_total < sync_total,
            "async {async_total:?} should beat sync {sync_total:?}"
        );
    }

    #[test]
    fn wait_async_with_no_pending_ops_still_charges_compute() {
        let (topo, ids, mut mgr, mut ledger, mut trace) = fixture();
        let mut acc = Accessor::new(&topo, &mut ledger, &mut mgr, &mut trace, ids.cpu, WHO, SimTime::ZERO);
        acc.overlap_compute(WorkClass::Scalar, 1_000);
        let stall = acc.wait_async();
        assert_eq!(stall, SimDuration::ZERO);
        assert!(acc.now > SimTime::ZERO);
    }

    #[test]
    fn async_stall_is_zero_when_compute_dominates() {
        let (topo, ids, mut mgr, mut ledger, mut trace) = fixture();
        let r = mgr
            .alloc(ids.dram, 64, RegionType::Output, PropertySet::new(), WHO, SimTime::ZERO)
            .unwrap();
        let mut acc = Accessor::new(&topo, &mut ledger, &mut mgr, &mut trace, ids.cpu, WHO, SimTime::ZERO);
        let mut buf = [0u8; 64];
        acc.async_read(r, 0, &mut buf, AccessPattern::Random).unwrap();
        // A billion scalar elements dwarf one DRAM line fetch.
        acc.overlap_compute(WorkClass::Scalar, 1_000_000_000);
        let stall = acc.wait_async();
        assert_eq!(stall, SimDuration::ZERO);
        assert_eq!(acc.pending_ops(), 0);
    }

    #[test]
    fn contention_slows_concurrent_streams() {
        let (topo, ids, mut mgr, mut ledger, mut trace) = fixture();
        let r = mgr
            .alloc(ids.cxl, 64 << 20, RegionType::GlobalScratch, PropertySet::new(), WHO, SimTime::ZERO)
            .unwrap();
        let mut buf = vec![0u8; 32 << 20];
        // First stream, empty ledger.
        let mut a1 = Accessor::new(&topo, &mut ledger, &mut mgr, &mut trace, ids.cpu, WHO, SimTime::ZERO);
        let t1 = a1.read(r, 0, &mut buf, AccessPattern::Sequential).unwrap();
        // Second stream, same window: queues behind the first.
        let mut a2 = Accessor::new(&topo, &mut ledger, &mut mgr, &mut trace, ids.cpu, WHO, SimTime::ZERO);
        let t2 = a2.read(r, 0, &mut buf, AccessPattern::Sequential).unwrap();
        assert!(t2 > t1, "second stream {t2} should queue behind first {t1}");
    }

    #[test]
    fn access_denied_for_non_owner_costs_nothing() {
        let (topo, ids, mut mgr, mut ledger, mut trace) = fixture();
        let other = OwnerId::Task { job: 9, task: 9 };
        let r = mgr
            .alloc(ids.dram, 64, RegionType::Output, PropertySet::new(), other, SimTime::ZERO)
            .unwrap();
        let mut acc = Accessor::new(&topo, &mut ledger, &mut mgr, &mut trace, ids.cpu, WHO, SimTime::ZERO);
        let mut buf = [0u8; 8];
        assert!(acc.read(r, 0, &mut buf, AccessPattern::Random).is_err());
        assert_eq!(acc.now, SimTime::ZERO);
        assert_eq!(acc.stats.sync_ops, 0);
    }

    #[test]
    fn trace_records_every_access() {
        let (topo, ids, mut mgr, mut ledger, mut trace) = fixture();
        let r = mgr
            .alloc(ids.dram, 1024, RegionType::Output, PropertySet::new(), WHO, SimTime::ZERO)
            .unwrap();
        {
            let mut acc =
                Accessor::new(&topo, &mut ledger, &mut mgr, &mut trace, ids.cpu, WHO, SimTime::ZERO);
            acc.write(r, 0, &[1u8; 512], AccessPattern::Sequential).unwrap();
            let mut buf = [0u8; 512];
            acc.read(r, 0, &mut buf, AccessPattern::Sequential).unwrap();
        }
        assert_eq!(trace.count(|e| matches!(e, TraceEvent::Access { .. })), 2);
        assert_eq!(trace.bytes_moved(), 1024);
    }

    #[test]
    fn corrupt_range_under_a_read_is_reconstructed_with_extra_cost() {
        use disagg_hwsim::fault::{FaultEvent, FaultKind};
        let (topo, ids, mut mgr, mut ledger, mut trace) = fixture();
        let r = mgr
            .alloc(ids.far, 1 << 20, RegionType::GlobalScratch, PropertySet::new(), WHO, SimTime::ZERO)
            .unwrap();
        let placement = mgr.placement(r).unwrap();
        let faults = FaultInjector::with_events(vec![FaultEvent {
            at: SimTime(0),
            kind: FaultKind::Corrupt {
                dev: placement.dev,
                offset: placement.offset + 100,
                len: 50,
            },
        }]);
        let mut buf = [0u8; 4096];

        // Clean baseline on its own ledger.
        let mut ledger2 = BandwidthLedger::default_buckets();
        let mut trace2 = Trace::enabled();
        let clean = Accessor::new(
            &topo, &mut ledger2, &mut mgr, &mut trace2, ids.cpu, WHO, SimTime::ZERO,
        )
        .read(r, 0, &mut buf, AccessPattern::Sequential)
        .unwrap();

        let mut acc = Accessor::new(
            &topo, &mut ledger, &mut mgr, &mut trace, ids.cpu, WHO, SimTime::ZERO,
        )
        .with_faults(&faults);
        let took = acc.read(r, 0, &mut buf, AccessPattern::Sequential).unwrap();
        assert!(took > clean, "reconstruction must cost extra: {took} vs {clean}");
        assert_eq!(acc.stats.bytes_reconstructed, 50);
        assert!(acc.stats.reconstruct_stall > SimDuration::ZERO);
        assert_eq!(trace.count(|e| matches!(e, TraceEvent::Reconstruct { .. })), 1);

        // A read outside the corrupted range pays nothing extra.
        let mut acc2 = Accessor::new(
            &topo, &mut ledger, &mut mgr, &mut trace, ids.cpu, WHO, SimTime::ZERO,
        )
        .with_faults(&faults);
        acc2.read(r, 4096, &mut buf, AccessPattern::Sequential).unwrap();
        assert_eq!(acc2.stats.bytes_reconstructed, 0);
    }

    #[test]
    fn degraded_link_slows_transfers_until_it_heals() {
        use disagg_hwsim::fault::{FaultEvent, FaultKind};
        let (topo, ids, mut mgr, _ledger, mut trace) = fixture();
        let r = mgr
            .alloc(ids.far, 64 << 20, RegionType::GlobalScratch, PropertySet::new(), WHO, SimTime::ZERO)
            .unwrap();
        let placement = mgr.placement(r).unwrap();
        let link = topo
            .access_cost_parts(
                ids.cpu,
                placement.dev,
                1 << 20,
                AccessOp::Read,
                AccessPattern::Sequential,
            )
            .unwrap()
            .bottleneck_link
            .expect("far memory sits behind an interconnect");
        let faults = FaultInjector::with_events(vec![
            FaultEvent {
                at: SimTime(0),
                kind: FaultKind::LinkDegraded { link, factor_pct: 10 },
            },
            FaultEvent {
                at: SimTime(1_000_000_000),
                kind: FaultKind::LinkUp(link),
            },
        ]);
        let mut buf = vec![0u8; 16 << 20];

        let mut l1 = BandwidthLedger::default_buckets();
        let clean = Accessor::new(&topo, &mut l1, &mut mgr, &mut trace, ids.cpu, WHO, SimTime::ZERO)
            .read(r, 0, &mut buf, AccessPattern::Sequential)
            .unwrap();

        let mut l2 = BandwidthLedger::default_buckets();
        let mut degraded_acc =
            Accessor::new(&topo, &mut l2, &mut mgr, &mut trace, ids.cpu, WHO, SimTime::ZERO)
                .with_faults(&faults);
        let degraded = degraded_acc.read(r, 0, &mut buf, AccessPattern::Sequential).unwrap();
        assert!(
            degraded.as_nanos() > clean.as_nanos() * 3,
            "10% bandwidth should stretch the transfer: {clean} healthy vs {degraded} degraded"
        );
        assert_eq!(degraded_acc.stats.degraded_time, degraded);

        // After LinkUp the same read costs the healthy price again.
        let mut l3 = BandwidthLedger::default_buckets();
        let healed_at = SimTime(1_000_000_000);
        let mut healed_acc =
            Accessor::new(&topo, &mut l3, &mut mgr, &mut trace, ids.cpu, WHO, healed_at)
                .with_faults(&faults);
        let healed = healed_acc.read(r, 0, &mut buf, AccessPattern::Sequential).unwrap();
        assert_eq!(healed, clean);
        assert_eq!(healed_acc.stats.degraded_time, SimDuration::ZERO);
    }

    #[test]
    fn shared_uplink_contends_across_distinct_devices() {
        // Two CXL expanders behind one PCIe uplink: streams to different
        // devices still share the uplink's 32 GB/s.
        use disagg_hwsim::compute::{ComputeKind, ComputeModel};
        use disagg_hwsim::device::{MemDeviceKind, MemDeviceModel};
        use disagg_hwsim::topology::{Endpoint, LinkKind, Topology};

        let mut b = Topology::builder();
        let n = b.node("host");
        let cpu = b.compute(n, ComputeModel::preset(ComputeKind::Cpu));
        let a = b.mem(n, MemDeviceModel::preset(MemDeviceKind::CxlDram));
        let c = b.mem(n, MemDeviceModel::preset(MemDeviceKind::CxlDram));
        b.link(cpu, Endpoint::Hub(n), LinkKind::PcieCxl);
        b.link(Endpoint::Hub(n), a, LinkKind::PcieCxl);
        b.link(Endpoint::Hub(n), c, LinkKind::PcieCxl);
        let topo = b.build().unwrap();

        let mut mgr = RegionManager::new(&topo);
        let ra = mgr
            .alloc(a, 64 << 20, RegionType::GlobalScratch, PropertySet::new(), WHO, SimTime::ZERO)
            .unwrap();
        let rc = mgr
            .alloc(c, 64 << 20, RegionType::GlobalScratch, PropertySet::new(), WHO, SimTime::ZERO)
            .unwrap();

        let mut ledger = BandwidthLedger::default_buckets();
        let mut trace = Trace::disabled();
        let mut buf = vec![0u8; 32 << 20];
        let mut acc1 =
            Accessor::new(&topo, &mut ledger, &mut mgr, &mut trace, cpu, WHO, SimTime::ZERO);
        let t1 = acc1.read(ra, 0, &mut buf, AccessPattern::Sequential).unwrap();
        // Same window, *different* device: must queue on the shared uplink.
        let mut trace2 = Trace::disabled();
        let mut acc2 =
            Accessor::new(&topo, &mut ledger, &mut mgr, &mut trace2, cpu, WHO, SimTime::ZERO);
        let t2 = acc2.read(rc, 0, &mut buf, AccessPattern::Sequential).unwrap();
        assert!(
            t2.as_nanos() > t1.as_nanos() * 3 / 2,
            "uplink sharing should stretch the second stream: {t1} then {t2}"
        );
    }
}
