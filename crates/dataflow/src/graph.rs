//! DAG utilities for dataflow jobs.
//!
//! Connected tasks form a directed acyclic graph (§2.1). This module
//! provides the structural machinery: adjacency, Kahn topological
//! ordering (which doubles as the cycle check), level assignment, and a
//! weighted critical path for the scheduler's bounds.

use crate::task::TaskId;

/// Errors from graph validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge references a task index that does not exist.
    UnknownTask(TaskId),
    /// A self-loop `t → t`.
    SelfLoop(TaskId),
    /// The graph contains a cycle (tasks listed are on it or behind it).
    Cycle(Vec<TaskId>),
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::UnknownTask(t) => write!(f, "edge references unknown task {t}"),
            GraphError::SelfLoop(t) => write!(f, "self-loop on task {t}"),
            GraphError::Cycle(ts) => write!(f, "cycle involving tasks {ts:?}"),
        }
    }
}

impl std::error::Error for GraphError {}

/// An immutable, validated DAG over `n` tasks.
#[derive(Debug, Clone)]
pub struct Dag {
    n: usize,
    /// Successors per task.
    succ: Vec<Vec<TaskId>>,
    /// Predecessors per task.
    pred: Vec<Vec<TaskId>>,
    /// A topological order.
    topo: Vec<TaskId>,
}

impl Dag {
    /// Validates edges over `n` tasks and builds the DAG.
    pub fn new(n: usize, edges: &[(TaskId, TaskId)]) -> Result<Dag, GraphError> {
        let mut succ = vec![Vec::new(); n];
        let mut pred = vec![Vec::new(); n];
        for &(a, b) in edges {
            if a.index() >= n {
                return Err(GraphError::UnknownTask(a));
            }
            if b.index() >= n {
                return Err(GraphError::UnknownTask(b));
            }
            if a == b {
                return Err(GraphError::SelfLoop(a));
            }
            if !succ[a.index()].contains(&b) {
                succ[a.index()].push(b);
                pred[b.index()].push(a);
            }
        }
        // Kahn's algorithm: a full ordering exists iff the graph is acyclic.
        let mut indeg: Vec<usize> = pred.iter().map(Vec::len).collect();
        let mut queue: Vec<TaskId> = (0..n)
            .filter(|&i| indeg[i] == 0)
            .map(|i| TaskId(i as u32))
            .collect();
        let mut topo = Vec::with_capacity(n);
        let mut head = 0;
        while head < queue.len() {
            let t = queue[head];
            head += 1;
            topo.push(t);
            for &s in &succ[t.index()] {
                indeg[s.index()] -= 1;
                if indeg[s.index()] == 0 {
                    queue.push(s);
                }
            }
        }
        if topo.len() != n {
            let stuck: Vec<TaskId> = (0..n)
                .filter(|&i| indeg[i] > 0)
                .map(|i| TaskId(i as u32))
                .collect();
            return Err(GraphError::Cycle(stuck));
        }
        Ok(Dag { n, succ, pred, topo })
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the DAG has no tasks.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Successors of a task.
    pub fn successors(&self, t: TaskId) -> &[TaskId] {
        &self.succ[t.index()]
    }

    /// Predecessors of a task.
    pub fn predecessors(&self, t: TaskId) -> &[TaskId] {
        &self.pred[t.index()]
    }

    /// A topological order (stable across runs).
    pub fn topo_order(&self) -> &[TaskId] {
        &self.topo
    }

    /// Tasks with no predecessors.
    pub fn sources(&self) -> Vec<TaskId> {
        self.frontier().collect()
    }

    /// In-degree (predecessor count) per task, indexed by task id.
    ///
    /// This is the seed state for dependency-counting dispatch: an
    /// executor decrements a task's count as each incoming edge is
    /// satisfied and enqueues the task when it reaches zero.
    pub fn indegrees(&self) -> Vec<usize> {
        self.pred.iter().map(Vec::len).collect()
    }

    /// Iterates the initial ready frontier: tasks with no predecessors,
    /// in task-id order.
    pub fn frontier(&self) -> impl Iterator<Item = TaskId> + '_ {
        (0..self.n)
            .filter(|&i| self.pred[i].is_empty())
            .map(|i| TaskId(i as u32))
    }

    /// Tasks with no successors.
    pub fn sinks(&self) -> Vec<TaskId> {
        (0..self.n)
            .filter(|&i| self.succ[i].is_empty())
            .map(|i| TaskId(i as u32))
            .collect()
    }

    /// Level (longest distance from any source) per task.
    pub fn levels(&self) -> Vec<u32> {
        let mut level = vec![0u32; self.n];
        for &t in &self.topo {
            for &s in &self.succ[t.index()] {
                level[s.index()] = level[s.index()].max(level[t.index()] + 1);
            }
        }
        level
    }

    /// Critical-path length under per-task weights: the maximum weighted
    /// path from any source to any sink. An empty DAG has weight 0.
    pub fn critical_path(&self, weight: impl Fn(TaskId) -> f64) -> f64 {
        let mut best = vec![0.0f64; self.n];
        let mut max = 0.0f64;
        for &t in &self.topo {
            let w = best[t.index()] + weight(t);
            max = max.max(w);
            for &s in &self.succ[t.index()] {
                if w > best[s.index()] {
                    best[s.index()] = w;
                }
            }
        }
        max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> TaskId {
        TaskId(i)
    }

    #[test]
    fn diamond_orders_correctly() {
        // 0 → 1, 0 → 2, 1 → 3, 2 → 3.
        let dag = Dag::new(4, &[(t(0), t(1)), (t(0), t(2)), (t(1), t(3)), (t(2), t(3))]).unwrap();
        let topo = dag.topo_order();
        let pos = |x: TaskId| topo.iter().position(|&y| y == x).unwrap();
        assert!(pos(t(0)) < pos(t(1)));
        assert!(pos(t(0)) < pos(t(2)));
        assert!(pos(t(1)) < pos(t(3)));
        assert!(pos(t(2)) < pos(t(3)));
        assert_eq!(dag.sources(), vec![t(0)]);
        assert_eq!(dag.sinks(), vec![t(3)]);
    }

    #[test]
    fn cycle_is_rejected() {
        let err = Dag::new(3, &[(t(0), t(1)), (t(1), t(2)), (t(2), t(0))]).unwrap_err();
        assert!(matches!(err, GraphError::Cycle(_)));
    }

    #[test]
    fn self_loop_is_rejected() {
        assert_eq!(
            Dag::new(2, &[(t(1), t(1))]).unwrap_err(),
            GraphError::SelfLoop(t(1))
        );
    }

    #[test]
    fn unknown_task_is_rejected() {
        assert_eq!(
            Dag::new(2, &[(t(0), t(5))]).unwrap_err(),
            GraphError::UnknownTask(t(5))
        );
    }

    #[test]
    fn duplicate_edges_collapse() {
        let dag = Dag::new(2, &[(t(0), t(1)), (t(0), t(1))]).unwrap();
        assert_eq!(dag.successors(t(0)), &[t(1)]);
        assert_eq!(dag.predecessors(t(1)), &[t(0)]);
    }

    #[test]
    fn disconnected_tasks_are_fine() {
        let dag = Dag::new(3, &[]).unwrap();
        assert_eq!(dag.sources().len(), 3);
        assert_eq!(dag.sinks().len(), 3);
        assert_eq!(dag.levels(), vec![0, 0, 0]);
    }

    #[test]
    fn levels_reflect_longest_path() {
        // 0 → 1 → 3 and 0 → 3: task 3 is at level 2 (via 1).
        let dag = Dag::new(4, &[(t(0), t(1)), (t(1), t(3)), (t(0), t(3)), (t(0), t(2))]).unwrap();
        assert_eq!(dag.levels(), vec![0, 1, 1, 2]);
    }

    #[test]
    fn critical_path_takes_heaviest_route() {
        // 0 → 1 → 3 (weights 1+10+1) vs 0 → 2 → 3 (1+2+1).
        let dag = Dag::new(4, &[(t(0), t(1)), (t(0), t(2)), (t(1), t(3)), (t(2), t(3))]).unwrap();
        let w = |x: TaskId| match x.0 {
            1 => 10.0,
            2 => 2.0,
            _ => 1.0,
        };
        assert_eq!(dag.critical_path(w), 12.0);
    }

    #[test]
    fn indegrees_and_frontier_match_edges() {
        let dag = Dag::new(4, &[(t(0), t(1)), (t(0), t(2)), (t(1), t(3)), (t(2), t(3))]).unwrap();
        assert_eq!(dag.indegrees(), vec![0, 1, 1, 2]);
        assert_eq!(dag.frontier().collect::<Vec<_>>(), vec![t(0)]);
    }

    #[test]
    fn empty_dag_is_valid() {
        let dag = Dag::new(0, &[]).unwrap();
        assert!(dag.is_empty());
        assert_eq!(dag.critical_path(|_| 1.0), 0.0);
    }
}
