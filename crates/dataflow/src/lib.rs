//! The declarative dataflow programming model.
//!
//! Applications launch **jobs** made of **tasks** forming a DAG (§2.1).
//! Tasks attach declarative properties — compute-device class,
//! confidentiality, persistence, memory latency (Figure 2c) — and receive
//! a [`TaskCtx`] at runtime exposing the paper's memory vocabulary:
//! input, output, private scratch, global state, global scratch. Nothing
//! in this crate names a physical device; resolving properties to
//! hardware is the runtime system's job (`disagg-sched`).
//!
//! ```
//! use disagg_dataflow::{JobBuilder, TaskSpec};
//! use disagg_hwsim::compute::{ComputeKind, WorkClass};
//!
//! let mut job = JobBuilder::new("example");
//! let produce = job.task(
//!     TaskSpec::new("produce")
//!         .work(WorkClass::Vector, 1_000)
//!         .output_bytes(4096)
//!         .body(|ctx| {
//!             ctx.write_output(0, &[42u8; 4096])?;
//!             Ok(())
//!         }),
//! );
//! let consume = job.task(
//!     TaskSpec::new("consume").on(ComputeKind::Gpu).body(|ctx| {
//!         let mut buf = [0u8; 4096];
//!         ctx.read_input(0, &mut buf)?;
//!         assert_eq!(buf[0], 42);
//!         Ok(())
//!     }),
//! );
//! job.edge(produce, consume);
//! let spec = job.build().expect("valid DAG");
//! assert_eq!(spec.tasks.len(), 2);
//! ```

pub mod ctx;
pub mod graph;
pub mod job;
pub mod task;

pub use ctx::{Placer, TaskCtx, TaskRegions};
pub use graph::{Dag, GraphError};
pub use job::{JobBuilder, JobError, JobId, JobSpec};
pub use task::{
    ComputePref, ResolvedProps, TaskBody, TaskError, TaskId, TaskProps, TaskSpec, WorkProfile,
};
