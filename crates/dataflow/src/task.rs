//! Task specifications: the unit of computation in a dataflow job.
//!
//! A task declares *what* it needs — a compute-device class, memory
//! properties (Figure 2c: `comp. device`, `confidential`, `persistent`,
//! `mem. latency`), scratch sizes, and a work profile for the scheduler's
//! cost model — and provides a body, a plain Rust closure that runs
//! against a [`crate::ctx::TaskCtx`]. The body never names a physical
//! device; the runtime resolves every memory request at placement time.

use disagg_hwsim::compute::{ComputeKind, WorkClass};
use disagg_region::props::LatencyClass;

use crate::ctx::TaskCtx;

/// Identifies a task within its job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u32);

impl TaskId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for TaskId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// How strongly a task is bound to a compute-device class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ComputePref {
    /// The scheduler picks freely on cost.
    #[default]
    Any,
    /// Prefer this class, but fall back if it is saturated or missing.
    Prefer(ComputeKind),
    /// Hard requirement (e.g. the body uses GPU-only kernels).
    Require(ComputeKind),
}

impl ComputePref {
    /// The preferred kind, if one is named.
    pub fn kind(self) -> Option<ComputeKind> {
        match self {
            ComputePref::Any => None,
            ComputePref::Prefer(k) | ComputePref::Require(k) => Some(k),
        }
    }

    /// True if `kind` is acceptable under this preference.
    pub fn allows(self, kind: ComputeKind) -> bool {
        match self {
            ComputePref::Any | ComputePref::Prefer(_) => true,
            ComputePref::Require(k) => k == kind,
        }
    }
}

/// The declarative properties attachable to a task (Figure 2c).
///
/// `None` means "inherit the job-level default"; see
/// [`TaskProps::effective`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TaskProps {
    /// Processed data is sensitive: isolated between jobs and encrypted
    /// when leaving the coherence domain.
    pub confidential: Option<bool>,
    /// The task's output must survive crashes.
    pub persistent: Option<bool>,
    /// Required latency class for the task's working memory.
    pub mem_latency: Option<LatencyClass>,
    /// Streaming (latency-sensitive per item) vs batch processing.
    pub streaming: Option<bool>,
}

impl TaskProps {
    /// Resolves task-level properties against job-level defaults.
    pub fn effective(&self, job_defaults: &TaskProps) -> ResolvedProps {
        ResolvedProps {
            confidential: self
                .confidential
                .or(job_defaults.confidential)
                .unwrap_or(false),
            persistent: self.persistent.or(job_defaults.persistent).unwrap_or(false),
            mem_latency: self.mem_latency.or(job_defaults.mem_latency),
            streaming: self.streaming.or(job_defaults.streaming).unwrap_or(false),
        }
    }
}

/// Fully resolved task properties (no inheritance holes left).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResolvedProps {
    /// Sensitive data.
    pub confidential: bool,
    /// Output must persist.
    pub persistent: bool,
    /// Working-memory latency requirement (`None`: keep the region
    /// type's own default).
    pub mem_latency: Option<LatencyClass>,
    /// Streaming task.
    pub streaming: bool,
}

/// The scheduler-facing work estimate for a task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkProfile {
    /// Dominant work class (drives compute-device affinity).
    pub class: WorkClass,
    /// Estimated elements processed.
    pub elems: u64,
}

impl Default for WorkProfile {
    fn default() -> Self {
        WorkProfile {
            class: WorkClass::Scalar,
            elems: 0,
        }
    }
}

/// Machine-readable classification of a task-body failure, so layers
/// above (audit, recovery) can react to *what* failed without sniffing
/// the message text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TaskErrorKind {
    /// An ordinary failure with no special runtime handling.
    #[default]
    Generic,
    /// The body was denied access to a confidential region it does not
    /// own; the runtime's auditor records these.
    ConfidentialityDenied,
}

/// Errors returned by task bodies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskError {
    /// Human-readable failure description.
    pub msg: String,
    /// What class of failure this is.
    pub kind: TaskErrorKind,
}

impl TaskError {
    /// Builds a generic error from anything printable.
    pub fn new(msg: impl Into<String>) -> Self {
        TaskError {
            msg: msg.into(),
            kind: TaskErrorKind::Generic,
        }
    }

    /// Tags the error with a specific kind.
    pub fn with_kind(mut self, kind: TaskErrorKind) -> Self {
        self.kind = kind;
        self
    }

    /// True if this is a confidentiality denial.
    pub fn is_confidentiality_denial(&self) -> bool {
        self.kind == TaskErrorKind::ConfidentialityDenied
    }
}

impl std::fmt::Display for TaskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "task failed: {}", self.msg)
    }
}

impl std::error::Error for TaskError {}

impl From<disagg_region::RegionError> for TaskError {
    fn from(e: disagg_region::RegionError) -> Self {
        let kind = match e {
            disagg_region::RegionError::ConfidentialityViolation { .. } => {
                TaskErrorKind::ConfidentialityDenied
            }
            _ => TaskErrorKind::Generic,
        };
        TaskError {
            msg: e.to_string(),
            kind,
        }
    }
}

/// The body closure type. Bodies may run more than once (retry after an
/// injected fault), hence `Fn`, not `FnOnce`.
pub type TaskBody = Box<dyn Fn(&mut TaskCtx<'_, '_>) -> Result<(), TaskError>>;

/// A complete task specification.
pub struct TaskSpec {
    /// Human-readable name (Figure 2b: "Preprocessing", "Face Recog.", …).
    pub name: String,
    /// Compute-device binding.
    pub compute: ComputePref,
    /// Declarative properties (holes inherit from the job).
    pub props: TaskProps,
    /// Work estimate for the scheduler.
    pub work: WorkProfile,
    /// Requested private-scratch bytes (0 = none).
    pub private_scratch: u64,
    /// Requested global-scratch bytes this task *creates* (0 = none).
    pub global_scratch: u64,
    /// Estimated output bytes (the successor's input).
    pub output_bytes: u64,
    /// The body.
    pub body: TaskBody,
}

impl std::fmt::Debug for TaskSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskSpec")
            .field("name", &self.name)
            .field("compute", &self.compute)
            .field("props", &self.props)
            .field("work", &self.work)
            .field("private_scratch", &self.private_scratch)
            .field("global_scratch", &self.global_scratch)
            .field("output_bytes", &self.output_bytes)
            .finish_non_exhaustive()
    }
}

impl TaskSpec {
    /// Starts a task spec with a no-op body and no requirements.
    pub fn new(name: impl Into<String>) -> Self {
        TaskSpec {
            name: name.into(),
            compute: ComputePref::Any,
            props: TaskProps::default(),
            work: WorkProfile::default(),
            private_scratch: 0,
            global_scratch: 0,
            output_bytes: 0,
            body: Box::new(|_| Ok(())),
        }
    }

    /// Prefers a compute-device class.
    pub fn on(mut self, kind: ComputeKind) -> Self {
        self.compute = ComputePref::Prefer(kind);
        self
    }

    /// Requires a compute-device class.
    pub fn require(mut self, kind: ComputeKind) -> Self {
        self.compute = ComputePref::Require(kind);
        self
    }

    /// Marks the task's data confidential.
    pub fn confidential(mut self, yes: bool) -> Self {
        self.props.confidential = Some(yes);
        self
    }

    /// Requires the task's output to be persistent.
    pub fn persistent(mut self, yes: bool) -> Self {
        self.props.persistent = Some(yes);
        self
    }

    /// Requires a working-memory latency class.
    pub fn mem_latency(mut self, class: LatencyClass) -> Self {
        self.props.mem_latency = Some(class);
        self
    }

    /// Marks the task streaming (vs batch).
    pub fn streaming(mut self, yes: bool) -> Self {
        self.props.streaming = Some(yes);
        self
    }

    /// Declares the work estimate.
    pub fn work(mut self, class: WorkClass, elems: u64) -> Self {
        self.work = WorkProfile { class, elems };
        self
    }

    /// Requests private scratch space.
    pub fn private_scratch(mut self, bytes: u64) -> Self {
        self.private_scratch = bytes;
        self
    }

    /// Requests global scratch space created by this task.
    pub fn global_scratch(mut self, bytes: u64) -> Self {
        self.global_scratch = bytes;
        self
    }

    /// Declares the estimated output size.
    pub fn output_bytes(mut self, bytes: u64) -> Self {
        self.output_bytes = bytes;
        self
    }

    /// Sets the body.
    pub fn body(
        mut self,
        f: impl Fn(&mut TaskCtx<'_, '_>) -> Result<(), TaskError> + 'static,
    ) -> Self {
        self.body = Box::new(f);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_declarations() {
        let t = TaskSpec::new("face-recognition")
            .on(ComputeKind::Gpu)
            .confidential(true)
            .mem_latency(LatencyClass::Low)
            .work(WorkClass::Tensor, 1_000_000)
            .private_scratch(1 << 20)
            .output_bytes(4096);
        assert_eq!(t.name, "face-recognition");
        assert_eq!(t.compute, ComputePref::Prefer(ComputeKind::Gpu));
        assert_eq!(t.props.confidential, Some(true));
        assert_eq!(t.props.mem_latency, Some(LatencyClass::Low));
        assert_eq!(t.work.class, WorkClass::Tensor);
        assert_eq!(t.private_scratch, 1 << 20);
        assert_eq!(t.output_bytes, 4096);
    }

    #[test]
    fn props_inherit_job_defaults() {
        let job_defaults = TaskProps {
            confidential: Some(true),
            persistent: None,
            mem_latency: Some(LatencyClass::Medium),
            streaming: Some(false),
        };
        let task = TaskProps {
            confidential: None,
            persistent: Some(true),
            mem_latency: None,
            streaming: None,
        };
        let eff = task.effective(&job_defaults);
        assert!(eff.confidential, "inherited from job");
        assert!(eff.persistent, "task override");
        assert_eq!(eff.mem_latency, Some(LatencyClass::Medium));
        assert!(!eff.streaming);
    }

    #[test]
    fn unset_props_resolve_to_permissive_defaults() {
        let eff = TaskProps::default().effective(&TaskProps::default());
        assert!(!eff.confidential);
        assert!(!eff.persistent);
        assert_eq!(eff.mem_latency, None);
        assert!(!eff.streaming);
    }

    #[test]
    fn compute_pref_gates_placement() {
        assert!(ComputePref::Any.allows(ComputeKind::Cpu));
        assert!(ComputePref::Prefer(ComputeKind::Gpu).allows(ComputeKind::Cpu));
        assert!(ComputePref::Require(ComputeKind::Gpu).allows(ComputeKind::Gpu));
        assert!(!ComputePref::Require(ComputeKind::Gpu).allows(ComputeKind::Cpu));
        assert_eq!(ComputePref::Prefer(ComputeKind::Tpu).kind(), Some(ComputeKind::Tpu));
        assert_eq!(ComputePref::Any.kind(), None);
    }

    #[test]
    fn task_error_wraps_region_errors() {
        let e: TaskError = disagg_region::RegionError::SharedTransfer(disagg_region::RegionId(3)).into();
        assert!(e.msg.contains("r3"));
        assert_eq!(e.kind, TaskErrorKind::Generic);
    }

    #[test]
    fn confidentiality_violations_carry_a_typed_kind() {
        let e: TaskError = disagg_region::RegionError::ConfidentialityViolation {
            region: disagg_region::RegionId(7),
            owner_job: Some(1),
            accessor_job: Some(2),
        }
        .into();
        assert!(e.is_confidentiality_denial());
        assert_eq!(e.kind, TaskErrorKind::ConfidentialityDenied);
        // Re-wrapping with a custom message keeps the kind explicit.
        let tagged = TaskError::new("custom").with_kind(TaskErrorKind::ConfidentialityDenied);
        assert!(tagged.is_confidentiality_denial());
        assert!(!TaskError::new("plain").is_confidentiality_denial());
    }
}
