//! The task context: what a task body sees at runtime.
//!
//! A [`TaskCtx`] exposes exactly the paper's memory vocabulary (Figure 4):
//! the task's `input` (handed over from the predecessor), its `output`
//! (to be handed to the successor), its `private_scratch`, and the job's
//! shared `global_state` and `global_scratch`. All of them are region
//! handles the runtime placed by properties — the body never sees a
//! device name.
//!
//! Ad-hoc allocations made inside the body go through the [`Placer`]
//! trait, which the runtime system implements; this keeps the *placement
//! policy* out of the programming model, as the paper demands.

use disagg_hwsim::fx::FxHashMap;

use disagg_hwsim::compute::WorkClass;
use disagg_hwsim::device::AccessPattern;
use disagg_hwsim::ids::MemDeviceId;
use disagg_hwsim::time::SimDuration;
use disagg_region::access::Accessor;
use disagg_region::pool::RegionId;
use disagg_region::props::PropertySet;
use disagg_region::typed::RegionType;

use crate::task::TaskError;

/// Resolves a declarative memory request to a physical device. Implemented
/// by the runtime system's placement optimizer; task bodies stay
/// device-agnostic.
pub trait Placer {
    /// Picks the best feasible device for `props` as seen from `compute`,
    /// with at least `size` bytes free. `None` if no device qualifies.
    fn place(
        &mut self,
        topo: &disagg_hwsim::topology::Topology,
        pool: &disagg_region::pool::MemoryPool,
        compute: disagg_hwsim::ids::ComputeId,
        props: &PropertySet,
        size: u64,
    ) -> Option<MemDeviceId>;
}

/// The regions the runtime pre-allocated for a task.
#[derive(Debug, Clone, Default)]
pub struct TaskRegions {
    /// The predecessors' outputs, now owned by this task (one per
    /// incoming dataflow edge, in predecessor order).
    pub inputs: Vec<RegionId>,
    /// This task's output region.
    pub output: Option<RegionId>,
    /// Thread-local scratch.
    pub private_scratch: Option<RegionId>,
    /// Job-wide synchronization state.
    pub global_state: Option<RegionId>,
    /// This task's global-scratch region (if it requested one).
    pub global_scratch: Option<RegionId>,
}

/// The execution context passed to task bodies.
pub struct TaskCtx<'a, 'b> {
    /// The cost-charging gateway to memory and compute.
    pub acc: &'a mut Accessor<'b>,
    /// Pre-placed regions.
    pub regions: TaskRegions,
    placer: &'a mut dyn Placer,
    /// Named global-scratch publications, shared across the job
    /// (e.g. a bloom filter another operator can reuse).
    published: &'a mut FxHashMap<String, RegionId>,
    /// Application-wide publications: regions that outlive the job so
    /// *other jobs* can reuse them (a cached index, a transformed data
    /// set — the paper's "Global Scratch can pass data between tasks
    /// that are not connected", across job boundaries).
    app_published: &'a mut FxHashMap<String, RegionId>,
    /// High-water mark of output bytes written (for handover sizing).
    pub output_written: u64,
}

impl<'a, 'b> TaskCtx<'a, 'b> {
    /// Assembles a context (called by the executor, not by applications).
    pub fn new(
        acc: &'a mut Accessor<'b>,
        regions: TaskRegions,
        placer: &'a mut dyn Placer,
        published: &'a mut FxHashMap<String, RegionId>,
        app_published: &'a mut FxHashMap<String, RegionId>,
    ) -> Self {
        TaskCtx {
            acc,
            regions,
            placer,
            published,
            app_published,
            output_written: 0,
        }
    }

    fn require(r: Option<RegionId>, what: &str) -> Result<RegionId, TaskError> {
        r.ok_or_else(|| TaskError::new(format!("task has no {what} region")))
    }

    /// The (first) input region handle.
    pub fn input(&self) -> Result<RegionId, TaskError> {
        Self::require(self.regions.inputs.first().copied(), "input")
    }

    /// All input region handles (fan-in tasks have several).
    pub fn inputs(&self) -> &[RegionId] {
        &self.regions.inputs
    }

    /// The output region handle.
    pub fn output(&self) -> Result<RegionId, TaskError> {
        Self::require(self.regions.output, "output")
    }

    /// The private-scratch region handle.
    pub fn private_scratch(&self) -> Result<RegionId, TaskError> {
        Self::require(self.regions.private_scratch, "private scratch")
    }

    /// The global-state region handle.
    pub fn global_state(&self) -> Result<RegionId, TaskError> {
        Self::require(self.regions.global_state, "global state")
    }

    /// The global-scratch region handle.
    pub fn global_scratch(&self) -> Result<RegionId, TaskError> {
        Self::require(self.regions.global_scratch, "global scratch")
    }

    /// Size of the first input region in bytes (0 when there is none).
    pub fn input_len(&self) -> u64 {
        self.regions
            .inputs
            .first()
            .and_then(|&r| self.acc.manager_ref().placement(r).ok())
            .map_or(0, |p| p.size)
    }

    /// Size of any region in bytes.
    pub fn region_len(&self, region: RegionId) -> u64 {
        self.acc
            .manager_ref()
            .placement(region)
            .map_or(0, |p| p.size)
    }

    /// Streams `buf.len()` bytes of input at `offset`.
    pub fn read_input(&mut self, offset: u64, buf: &mut [u8]) -> Result<SimDuration, TaskError> {
        let r = self.input()?;
        Ok(self.acc.read(r, offset, buf, AccessPattern::Sequential)?)
    }

    /// Streams `data` into the output at `offset`.
    pub fn write_output(&mut self, offset: u64, data: &[u8]) -> Result<SimDuration, TaskError> {
        let r = self.output()?;
        let took = self.acc.write(r, offset, data, AccessPattern::Sequential)?;
        self.output_written = self.output_written.max(offset + data.len() as u64);
        Ok(took)
    }

    /// Random-access read from private scratch.
    pub fn scratch_read(&mut self, offset: u64, buf: &mut [u8]) -> Result<SimDuration, TaskError> {
        let r = self.private_scratch()?;
        Ok(self.acc.read(r, offset, buf, AccessPattern::Random)?)
    }

    /// Random-access write to private scratch.
    pub fn scratch_write(&mut self, offset: u64, data: &[u8]) -> Result<SimDuration, TaskError> {
        let r = self.private_scratch()?;
        Ok(self.acc.write(r, offset, data, AccessPattern::Random)?)
    }

    /// Synchronous random read from global state (latch/metadata access).
    pub fn state_read(&mut self, offset: u64, buf: &mut [u8]) -> Result<SimDuration, TaskError> {
        let r = self.global_state()?;
        Ok(self.acc.read(r, offset, buf, AccessPattern::Random)?)
    }

    /// Synchronous random write to global state.
    pub fn state_write(&mut self, offset: u64, data: &[u8]) -> Result<SimDuration, TaskError> {
        let r = self.global_state()?;
        Ok(self.acc.write(r, offset, data, AccessPattern::Random)?)
    }

    /// Asynchronous streaming read from a (usually global-scratch) region.
    pub fn async_read(
        &mut self,
        region: RegionId,
        offset: u64,
        buf: &mut [u8],
    ) -> Result<(), TaskError> {
        Ok(self
            .acc
            .async_read(region, offset, buf, AccessPattern::Sequential)?)
    }

    /// Asynchronous streaming write to a region.
    pub fn async_write(
        &mut self,
        region: RegionId,
        offset: u64,
        data: &[u8],
    ) -> Result<(), TaskError> {
        Ok(self
            .acc
            .async_write(region, offset, data, AccessPattern::Sequential)?)
    }

    /// Registers compute overlapped with pending async operations.
    pub fn overlap_compute(&mut self, class: WorkClass, elems: u64) {
        self.acc.overlap_compute(class, elems);
    }

    /// Joins pending async operations; returns the unhidden stall time.
    pub fn wait_async(&mut self) -> SimDuration {
        self.acc.wait_async()
    }

    /// Charges pure compute.
    pub fn compute(&mut self, class: WorkClass, elems: u64) -> SimDuration {
        self.acc.compute_work(class, elems)
    }

    /// Allocates an additional region declaratively: the runtime picks the
    /// device from the properties, as seen from this task's compute device.
    pub fn alloc(
        &mut self,
        rtype: RegionType,
        props: PropertySet,
        size: u64,
    ) -> Result<RegionId, TaskError> {
        let compute = self.acc.compute;
        let who = self.acc.who;
        let now = self.acc.now;
        let dev = self
            .placer
            .place(
                self.acc.topology(),
                self.acc.manager_ref().pool(),
                compute,
                &props,
                size,
            )
            .ok_or_else(|| TaskError::new("no device satisfies the requested properties"))?;
        Ok(self
            .acc
            .manager()
            .alloc(dev, size, rtype, props, who, now)?)
    }

    /// Publishes a region under a name for other tasks of the job to
    /// reuse (the paper's bloom-filter / cached-index pattern).
    pub fn publish(&mut self, name: impl Into<String>, region: RegionId) {
        self.published.insert(name.into(), region);
    }

    /// Looks up a previously published region: job-scope publications
    /// first, then application-scope ones from earlier jobs.
    pub fn lookup(&self, name: &str) -> Option<RegionId> {
        self.published
            .get(name)
            .or_else(|| self.app_published.get(name))
            .copied()
    }

    /// Publishes a region at *application* scope: it outlives this job so
    /// later jobs can reuse it (the runtime re-owns it at task exit).
    pub fn publish_app(&mut self, name: impl Into<String>, region: RegionId) {
        self.app_published.insert(name.into(), region);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disagg_hwsim::contention::BandwidthLedger;
    use disagg_hwsim::presets::single_server;
    use disagg_hwsim::time::SimTime;
    use disagg_hwsim::trace::Trace;
    use disagg_region::region::{OwnerId, RegionManager};

    struct FixedPlacer(MemDeviceId);
    impl Placer for FixedPlacer {
        fn place(
            &mut self,
            _topo: &disagg_hwsim::topology::Topology,
            _pool: &disagg_region::pool::MemoryPool,
            _compute: disagg_hwsim::ids::ComputeId,
            _props: &PropertySet,
            _size: u64,
        ) -> Option<MemDeviceId> {
            Some(self.0)
        }
    }

    struct NoPlacer;
    impl Placer for NoPlacer {
        fn place(
            &mut self,
            _topo: &disagg_hwsim::topology::Topology,
            _pool: &disagg_region::pool::MemoryPool,
            _compute: disagg_hwsim::ids::ComputeId,
            _props: &PropertySet,
            _size: u64,
        ) -> Option<MemDeviceId> {
            None
        }
    }

    const WHO: OwnerId = OwnerId::Task { job: 0, task: 0 };

    #[test]
    fn ctx_reads_and_writes_through_named_regions() {
        let (topo, ids) = single_server();
        let mut mgr = RegionManager::new(&topo);
        let input = mgr
            .alloc(ids.dram, 128, RegionType::Input, PropertySet::new(), WHO, SimTime::ZERO)
            .unwrap();
        mgr.write(input, WHO, 0, b"hello").unwrap();
        let output = mgr
            .alloc(ids.dram, 128, RegionType::Output, PropertySet::new(), WHO, SimTime::ZERO)
            .unwrap();
        let scratch = mgr
            .alloc(ids.dram, 64, RegionType::PrivateScratch, PropertySet::new(), WHO, SimTime::ZERO)
            .unwrap();

        let mut ledger = BandwidthLedger::default_buckets();
        let mut trace = Trace::enabled();
        let mut acc = Accessor::new(&topo, &mut ledger, &mut mgr, &mut trace, ids.cpu, WHO, SimTime::ZERO);
        let mut placer = FixedPlacer(ids.dram);
        let mut published = FxHashMap::default();
        let mut app_published = FxHashMap::default();
        let mut ctx = TaskCtx::new(
            &mut acc,
            TaskRegions {
                inputs: vec![input],
                output: Some(output),
                private_scratch: Some(scratch),
                ..Default::default()
            },
            &mut placer,
            &mut published,
            &mut app_published,
        );

        assert_eq!(ctx.input_len(), 128);
        let mut buf = [0u8; 5];
        ctx.read_input(0, &mut buf).unwrap();
        assert_eq!(&buf, b"hello");
        ctx.write_output(0, b"world").unwrap();
        assert_eq!(ctx.output_written, 5);
        ctx.scratch_write(0, &[1, 2]).unwrap();
        let mut s = [0u8; 2];
        ctx.scratch_read(0, &mut s).unwrap();
        assert_eq!(s, [1, 2]);
    }

    #[test]
    fn missing_regions_give_descriptive_errors() {
        let (topo, ids) = single_server();
        let mut mgr = RegionManager::new(&topo);
        let mut ledger = BandwidthLedger::default_buckets();
        let mut trace = Trace::enabled();
        let mut acc = Accessor::new(&topo, &mut ledger, &mut mgr, &mut trace, ids.cpu, WHO, SimTime::ZERO);
        let mut placer = NoPlacer;
        let mut published = FxHashMap::default();
        let mut app_published = FxHashMap::default();
        let mut ctx = TaskCtx::new(
            &mut acc,
            TaskRegions::default(),
            &mut placer,
            &mut published,
            &mut app_published,
        );
        let mut buf = [0u8; 1];
        let err = ctx.read_input(0, &mut buf).unwrap_err();
        assert!(err.msg.contains("input"));
        assert!(ctx.global_state().is_err());
        assert_eq!(ctx.input_len(), 0);
    }

    #[test]
    fn alloc_goes_through_the_placer() {
        let (topo, ids) = single_server();
        let mut mgr = RegionManager::new(&topo);
        let mut ledger = BandwidthLedger::default_buckets();
        let mut trace = Trace::enabled();
        let mut acc = Accessor::new(&topo, &mut ledger, &mut mgr, &mut trace, ids.cpu, WHO, SimTime::ZERO);
        let mut placer = FixedPlacer(ids.pmem);
        let mut published = FxHashMap::default();
        let mut app_published = FxHashMap::default();
        let mut ctx = TaskCtx::new(
            &mut acc,
            TaskRegions::default(),
            &mut placer,
            &mut published,
            &mut app_published,
        );
        let r = ctx
            .alloc(RegionType::GlobalScratch, PropertySet::new().persistent(true), 256)
            .unwrap();
        drop(ctx);
        assert_eq!(mgr.placement(r).unwrap().dev, ids.pmem);
    }

    #[test]
    fn alloc_fails_cleanly_when_nothing_qualifies() {
        let (topo, ids) = single_server();
        let mut mgr = RegionManager::new(&topo);
        let mut ledger = BandwidthLedger::default_buckets();
        let mut trace = Trace::enabled();
        let mut acc = Accessor::new(&topo, &mut ledger, &mut mgr, &mut trace, ids.cpu, WHO, SimTime::ZERO);
        let mut placer = NoPlacer;
        let mut published = FxHashMap::default();
        let mut app_published = FxHashMap::default();
        let mut ctx = TaskCtx::new(
            &mut acc,
            TaskRegions::default(),
            &mut placer,
            &mut published,
            &mut app_published,
        );
        let err = ctx
            .alloc(RegionType::GlobalScratch, PropertySet::new(), 256)
            .unwrap_err();
        assert!(err.msg.contains("no device"));
    }

    #[test]
    fn publish_and_lookup_share_regions_by_name() {
        let (topo, ids) = single_server();
        let mut mgr = RegionManager::new(&topo);
        let r = mgr
            .alloc(ids.dram, 64, RegionType::GlobalScratch, PropertySet::new(), WHO, SimTime::ZERO)
            .unwrap();
        let mut ledger = BandwidthLedger::default_buckets();
        let mut trace = Trace::enabled();
        let mut acc = Accessor::new(&topo, &mut ledger, &mut mgr, &mut trace, ids.cpu, WHO, SimTime::ZERO);
        let mut placer = FixedPlacer(ids.dram);
        let mut published = FxHashMap::default();
        let mut app_published = FxHashMap::default();
        {
            let mut ctx = TaskCtx::new(
                &mut acc,
                TaskRegions::default(),
                &mut placer,
                &mut published,
                &mut app_published,
            );
            assert!(ctx.lookup("bloom").is_none());
            ctx.publish("bloom", r);
            assert_eq!(ctx.lookup("bloom"), Some(r));
        }
        // A later task of the same job sees the publication.
        assert_eq!(published.get("bloom"), Some(&r));
    }
}
