//! Jobs: validated bundles of tasks forming a DAG.
//!
//! Applications launch *jobs* consisting of *tasks* (§2.1, Figure 2). A
//! [`JobBuilder`] accumulates task specs, dataflow edges, and job-level
//! property defaults, then validates everything into a [`JobSpec`] the
//! runtime can place and schedule.

use crate::graph::{Dag, GraphError};
use crate::task::{TaskId, TaskProps, TaskSpec};

/// Identifies a job within a runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "J{}", self.0)
    }
}

/// Errors from job construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// The job has no tasks.
    Empty,
    /// Structural DAG error.
    Graph(GraphError),
    /// Two tasks share a name (names key reports and published regions).
    DuplicateTaskName(String),
}

impl From<GraphError> for JobError {
    fn from(e: GraphError) -> Self {
        JobError::Graph(e)
    }
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Empty => write!(f, "job has no tasks"),
            JobError::Graph(e) => write!(f, "invalid dataflow graph: {e}"),
            JobError::DuplicateTaskName(n) => write!(f, "duplicate task name '{n}'"),
        }
    }
}

impl std::error::Error for JobError {}

/// A validated job, ready for submission.
pub struct JobSpec {
    /// Job name (for reports).
    pub name: String,
    /// Task specifications, indexed by [`TaskId`].
    pub tasks: Vec<TaskSpec>,
    /// The dataflow DAG.
    pub dag: Dag,
    /// Job-level property defaults tasks inherit from.
    pub defaults: TaskProps,
    /// Bytes of job-wide global state to allocate (0 = none).
    pub global_state_bytes: u64,
}

impl std::fmt::Debug for JobSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobSpec")
            .field("name", &self.name)
            .field("tasks", &self.tasks.len())
            .field("edges", &self.dag.topo_order().len())
            .finish_non_exhaustive()
    }
}

impl JobSpec {
    /// Looks a task up by name.
    pub fn task_by_name(&self, name: &str) -> Option<TaskId> {
        self.tasks
            .iter()
            .position(|t| t.name == name)
            .map(|i| TaskId(i as u32))
    }
}

/// Builds a [`JobSpec`].
pub struct JobBuilder {
    name: String,
    tasks: Vec<TaskSpec>,
    edges: Vec<(TaskId, TaskId)>,
    defaults: TaskProps,
    global_state_bytes: u64,
}

impl JobBuilder {
    /// Starts a job.
    pub fn new(name: impl Into<String>) -> Self {
        JobBuilder {
            name: name.into(),
            tasks: Vec::new(),
            edges: Vec::new(),
            defaults: TaskProps::default(),
            global_state_bytes: 0,
        }
    }

    /// Sets job-level property defaults all tasks inherit.
    pub fn defaults(mut self, defaults: TaskProps) -> Self {
        self.defaults = defaults;
        self
    }

    /// Requests a job-wide global-state region of `bytes`.
    pub fn global_state(mut self, bytes: u64) -> Self {
        self.global_state_bytes = bytes;
        self
    }

    /// Adds a task, returning its id.
    pub fn task(&mut self, spec: TaskSpec) -> TaskId {
        let id = TaskId(self.tasks.len() as u32);
        self.tasks.push(spec);
        id
    }

    /// Adds a dataflow edge `from → to` (the producer's output becomes
    /// the consumer's input).
    pub fn edge(&mut self, from: TaskId, to: TaskId) -> &mut Self {
        self.edges.push((from, to));
        self
    }

    /// Adds a linear chain of edges through the given tasks.
    pub fn chain(&mut self, tasks: &[TaskId]) -> &mut Self {
        for pair in tasks.windows(2) {
            self.edges.push((pair[0], pair[1]));
        }
        self
    }

    /// Validates and finalizes the job.
    pub fn build(self) -> Result<JobSpec, JobError> {
        if self.tasks.is_empty() {
            return Err(JobError::Empty);
        }
        let mut seen = std::collections::HashSet::new();
        for t in &self.tasks {
            if !seen.insert(t.name.as_str()) {
                return Err(JobError::DuplicateTaskName(t.name.clone()));
            }
        }
        let dag = Dag::new(self.tasks.len(), &self.edges)?;
        Ok(JobSpec {
            name: self.name,
            tasks: self.tasks,
            dag,
            defaults: self.defaults,
            global_state_bytes: self.global_state_bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disagg_hwsim::compute::ComputeKind;
    use disagg_region::props::LatencyClass;

    #[test]
    fn hospital_job_shape_builds() {
        // Figure 2: T1 → T2 → {T3, T4, T5}.
        let mut job = JobBuilder::new("hospital").defaults(TaskProps {
            confidential: Some(true),
            ..TaskProps::default()
        });
        let t1 = job.task(TaskSpec::new("preprocessing").on(ComputeKind::Gpu));
        let t2 = job.task(
            TaskSpec::new("face-recognition")
                .on(ComputeKind::Gpu)
                .mem_latency(LatencyClass::Low),
        );
        let t3 = job.task(TaskSpec::new("track-hours"));
        let t4 = job.task(TaskSpec::new("compute-utilization").confidential(false));
        let t5 = job.task(TaskSpec::new("alert-caregivers").persistent(true));
        job.edge(t1, t2);
        job.edge(t2, t3);
        job.edge(t2, t4);
        job.edge(t2, t5);
        let spec = job.build().unwrap();
        assert_eq!(spec.tasks.len(), 5);
        assert_eq!(spec.dag.successors(t2), &[t3, t4, t5]);
        assert_eq!(spec.task_by_name("track-hours"), Some(t3));

        // Property inheritance: t3 inherits job-level confidentiality,
        // t4 overrides it off.
        let eff3 = spec.tasks[t3.index()].props.effective(&spec.defaults);
        let eff4 = spec.tasks[t4.index()].props.effective(&spec.defaults);
        assert!(eff3.confidential);
        assert!(!eff4.confidential);
        let eff5 = spec.tasks[t5.index()].props.effective(&spec.defaults);
        assert!(eff5.persistent);
    }

    #[test]
    fn empty_job_is_rejected() {
        assert_eq!(JobBuilder::new("empty").build().unwrap_err(), JobError::Empty);
    }

    #[test]
    fn cyclic_job_is_rejected() {
        let mut job = JobBuilder::new("cyclic");
        let a = job.task(TaskSpec::new("a"));
        let b = job.task(TaskSpec::new("b"));
        job.edge(a, b);
        job.edge(b, a);
        assert!(matches!(job.build().unwrap_err(), JobError::Graph(GraphError::Cycle(_))));
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let mut job = JobBuilder::new("dups");
        job.task(TaskSpec::new("same"));
        job.task(TaskSpec::new("same"));
        assert_eq!(
            job.build().unwrap_err(),
            JobError::DuplicateTaskName("same".into())
        );
    }

    #[test]
    fn chain_builds_linear_pipelines() {
        let mut job = JobBuilder::new("pipeline");
        let ids: Vec<TaskId> = (0..4)
            .map(|i| job.task(TaskSpec::new(format!("stage{i}"))))
            .collect();
        job.chain(&ids);
        let spec = job.build().unwrap();
        for pair in ids.windows(2) {
            assert_eq!(spec.dag.successors(pair[0]), &[pair[1]]);
        }
    }

    #[test]
    fn global_state_request_is_recorded() {
        let mut job = JobBuilder::new("with-state");
        job.task(TaskSpec::new("t"));
        let spec = job.global_state(4096).build().unwrap();
        assert_eq!(spec.global_state_bytes, 4096);
    }
}
