//! End-to-end tests for the runtime executor.

use disagg_core::prelude::*;
use disagg_hwsim::fault::{FaultEvent, FaultInjector, FaultKind};
use disagg_hwsim::presets::{disaggregated_rack, single_server};

fn passthrough(bytes: usize) -> impl Fn(&mut TaskCtx<'_, '_>) -> Result<(), TaskError> {
    move |ctx| {
        let mut buf = vec![0u8; bytes];
        if !ctx.inputs().is_empty() {
            ctx.read_input(0, &mut buf)?;
        }
        ctx.write_output(0, &buf)?;
        Ok(())
    }
}

#[test]
fn linear_pipeline_is_all_ownership_transfers() {
    let (topo, _) = single_server();
    let mut rt = Runtime::new(topo, RuntimeConfig::traced());
    let mut job = JobBuilder::new("pipe");
    let n = 5;
    let ids: Vec<TaskId> = (0..n)
        .map(|i| {
            job.task(
                TaskSpec::new(format!("t{i}"))
                    .work(WorkClass::Vector, 10_000)
                    .output_bytes(1 << 20)
                    .body(passthrough(1 << 20)),
            )
        })
        .collect();
    job.chain(&ids);
    let report = rt.execute(job.build().unwrap()).unwrap();
    assert_eq!(report.ownership_transfers, (n - 1) as u64);
    assert_eq!(report.handover_copies, 0);
    assert_eq!(report.transfer_ratio(), 1.0);
    assert!(report.makespan > SimDuration::ZERO);
    // 4 handovers of 1 MiB avoided any wire movement.
    assert_eq!(report.bytes_ownership_transferred, 4 << 20);
}

#[test]
fn always_copy_baseline_moves_every_byte() {
    let (topo, _) = single_server();
    let mut rt = Runtime::new(
        topo,
        RuntimeConfig::traced().with_handover(HandoverPolicy::AlwaysCopy),
    );
    let mut job = JobBuilder::new("pipe");
    let ids: Vec<TaskId> = (0..3)
        .map(|i| {
            job.task(
                TaskSpec::new(format!("t{i}"))
                    .output_bytes(1 << 20)
                    .body(passthrough(1 << 20)),
            )
        })
        .collect();
    job.chain(&ids);
    let report = rt.execute(job.build().unwrap()).unwrap();
    assert_eq!(report.ownership_transfers, 0);
    assert_eq!(report.handover_copies, 2);
    assert!(report.bytes_moved >= 2 << 20, "copies must move the bytes");
}

#[test]
fn hospital_dataflow_properties_are_honored() {
    // Figure 2: the five-task hospital job with its property annotations.
    let (topo, _) = single_server();
    let mut rt = Runtime::new(topo, RuntimeConfig::traced());
    let mut job = JobBuilder::new("hospital").defaults(TaskProps {
        confidential: Some(true),
        ..TaskProps::default()
    });
    let t1 = job.task(
        TaskSpec::new("preprocessing")
            .on(ComputeKind::Gpu)
            .mem_latency(LatencyClass::Low)
            .work(WorkClass::Vector, 1_000_000)
            .private_scratch(1 << 20)
            .output_bytes(1 << 20)
            .body(passthrough(1 << 20)),
    );
    let t2 = job.task(
        TaskSpec::new("face-recognition")
            .on(ComputeKind::Gpu)
            .mem_latency(LatencyClass::Low)
            .work(WorkClass::Tensor, 10_000_000)
            .private_scratch(8 << 20)
            .output_bytes(64 << 10)
            .body(passthrough(64 << 10)),
    );
    let t3 = job.task(
        TaskSpec::new("track-hours")
            .on(ComputeKind::Cpu)
            .work(WorkClass::Scalar, 100_000)
            .private_scratch(1 << 16)
            .output_bytes(4096)
            .body(passthrough(4096)),
    );
    let t4 = job.task(
        TaskSpec::new("compute-utilization")
            .on(ComputeKind::Cpu)
            .confidential(false)
            .work(WorkClass::Scalar, 10_000)
            .output_bytes(1024)
            .body(passthrough(1024)),
    );
    let t5 = job.task(
        TaskSpec::new("alert-caregivers")
            .on(ComputeKind::Cpu)
            .persistent(true)
            .work(WorkClass::Scalar, 10_000)
            .output_bytes(4096)
            .body(passthrough(4096)),
    );
    job.edge(t1, t2);
    job.edge(t2, t3);
    job.edge(t2, t4);
    job.edge(t2, t5);

    let report = rt.execute(job.build().unwrap()).unwrap();
    assert!(report.placements_clean(), "violations: {:?}", report.violations);
    assert_eq!(report.tasks.len(), 5);

    // GPU tasks ran on the GPU.
    let face = report.task_by_name(JobId(0), "face-recognition").unwrap();
    assert_eq!(rt.topology().compute(face.compute).kind, ComputeKind::Gpu);

    // The persistent alert output survived on a persistent device and is
    // still live (App scope) after the job finished.
    let alert = report.task_by_name(JobId(0), "alert-caregivers").unwrap();
    let (_, out_region, out_dev) = alert
        .placements
        .iter()
        .find(|(kind, _, _)| *kind == "output")
        .expect("alert task has an output placement");
    assert!(rt.topology().mem(*out_dev).persistent);
    assert!(rt.manager().is_live(*out_region), "persistent result survives");
}

#[test]
fn figure3_same_request_maps_to_dram_on_cpu_and_gddr_on_gpu() {
    let (topo, ids) = single_server();
    let mut rt = Runtime::new(topo, RuntimeConfig::traced());
    let mut job = JobBuilder::new("fig3");
    job.task(
        TaskSpec::new("cpu-task")
            .require(ComputeKind::Cpu)
            .mem_latency(LatencyClass::Low)
            .private_scratch(1 << 30)
            .body(|ctx| {
                ctx.scratch_write(0, &[1u8; 64])?;
                Ok(())
            }),
    );
    job.task(
        TaskSpec::new("gpu-task")
            .require(ComputeKind::Gpu)
            .mem_latency(LatencyClass::Low)
            .private_scratch(1 << 30)
            .body(|ctx| {
                ctx.scratch_write(0, &[1u8; 64])?;
                Ok(())
            }),
    );
    let report = rt.execute(job.build().unwrap()).unwrap();
    let scratch_dev = |name: &str| {
        report
            .task_by_name(JobId(0), name)
            .unwrap()
            .placements
            .iter()
            .find(|(k, _, _)| *k == "private_scratch")
            .unwrap()
            .2
    };
    assert_eq!(scratch_dev("cpu-task"), ids.dram);
    assert_eq!(scratch_dev("gpu-task"), ids.gddr);
}

#[test]
fn fan_out_gives_first_consumer_the_transfer_and_copies_the_rest() {
    let (topo, _) = single_server();
    let mut rt = Runtime::new(topo, RuntimeConfig::traced());
    let mut job = JobBuilder::new("fanout");
    let src = job.task(
        TaskSpec::new("src")
            .output_bytes(1 << 16)
            .body(passthrough(1 << 16)),
    );
    let consumers: Vec<TaskId> = (0..3)
        .map(|i| {
            job.task(TaskSpec::new(format!("c{i}")).body(|ctx| {
                let mut buf = [0u8; 16];
                ctx.read_input(0, &mut buf)?;
                Ok(())
            }))
        })
        .collect();
    for &c in &consumers {
        job.edge(src, c);
    }
    let report = rt.execute(job.build().unwrap()).unwrap();
    assert_eq!(report.ownership_transfers, 1);
    assert_eq!(report.handover_copies, 2);
}

#[test]
fn global_state_is_shared_across_tasks_of_a_job() {
    let (topo, _) = single_server();
    let mut rt = Runtime::new(topo, RuntimeConfig::traced());
    let mut job = JobBuilder::new("stateful");
    let w = job.task(TaskSpec::new("writer").body(|ctx| {
        ctx.state_write(0, &[42u8; 8])?;
        Ok(())
    }));
    let r = job.task(TaskSpec::new("reader").body(|ctx| {
        let mut buf = [0u8; 8];
        ctx.state_read(0, &mut buf)?;
        if buf != [42u8; 8] {
            return Err(TaskError::new("global state not visible"));
        }
        Ok(())
    }));
    job.edge(w, r);
    let spec = job.global_state(4096).build().unwrap();
    let report = rt.execute(spec).unwrap();
    assert_eq!(report.tasks.len(), 2);
}

#[test]
fn published_global_scratch_is_reusable_downstream() {
    let (topo, _) = single_server();
    let mut rt = Runtime::new(topo, RuntimeConfig::traced());
    let mut job = JobBuilder::new("publish");
    let producer = job.task(
        TaskSpec::new("build-index")
            .global_scratch(1 << 16)
            .output_bytes(64)
            .body(|ctx| {
                let idx = ctx.global_scratch()?;
                ctx.async_write(idx, 0, &[0xCC; 1024])?;
                ctx.wait_async();
                ctx.publish("index", idx);
                ctx.write_output(0, &[0u8; 64])?;
                Ok(())
            }),
    );
    let consumer = job.task(TaskSpec::new("reuse-index").body(|ctx| {
        let idx = ctx
            .lookup("index")
            .ok_or_else(|| TaskError::new("index not published"))?;
        let mut buf = [0u8; 1024];
        ctx.async_read(idx, 0, &mut buf)?;
        ctx.wait_async();
        if buf != [0xCC; 1024] {
            return Err(TaskError::new("index contents wrong"));
        }
        Ok(())
    }));
    job.edge(producer, consumer);
    rt.execute(job.build().unwrap()).unwrap();
}

#[test]
fn node_crash_fails_over_to_another_compute_device() {
    let (topo, rack) = disaggregated_rack(2, 32, 2, 64);
    let crash_node = topo.node_of_compute(rack.cpus[0]);
    let faults = FaultInjector::with_events(vec![FaultEvent {
        at: SimTime::ZERO,
        kind: FaultKind::NodeCrash(crash_node),
    }]);
    let mut rt = Runtime::new(topo, RuntimeConfig::traced().with_faults(faults));
    let mut job = JobBuilder::new("failover");
    job.task(
        TaskSpec::new("work")
            .work(WorkClass::Scalar, 1_000)
            .private_scratch(4096)
            .body(|ctx| {
                ctx.scratch_write(0, &[1u8; 64])?;
                Ok(())
            }),
    );
    let report = rt.execute(job.build().unwrap()).unwrap();
    let t = &report.tasks[0];
    assert_ne!(
        rt.topology().node_of_compute(t.compute),
        crash_node,
        "task must not run on the crashed node"
    );
}

#[test]
fn confidential_region_cross_job_access_is_denied() {
    let (topo, _) = single_server();
    let mut rt = Runtime::new(topo, RuntimeConfig::traced());

    // Job 0 leaves behind a persistent, confidential result.
    let mut job0 = JobBuilder::new("secret-job");
    job0.task(
        TaskSpec::new("write-secret")
            .confidential(true)
            .persistent(true)
            .output_bytes(4096)
            .body(passthrough(4096)),
    );
    let report0 = rt.execute(job0.build().unwrap()).unwrap();
    let (_, secret, _) = report0.tasks[0]
        .placements
        .iter()
        .find(|(k, _, _)| *k == "output")
        .copied()
        .expect("secret output placed");

    // Job 1 tries to read it: denied by ownership + confidentiality.
    let mut job1 = JobBuilder::new("snoop-job");
    job1.task(TaskSpec::new("snoop").body(move |ctx| {
        let mut buf = [0u8; 16];
        match ctx.acc.read(secret, 0, &mut buf, AccessPattern::Random) {
            Err(e) => Err(TaskError::from(e)),
            Ok(_) => Ok(()),
        }
    }));
    let err = rt.execute(job1.build().unwrap()).unwrap_err();
    match err {
        RuntimeError::Task { error, .. } => {
            assert!(error.is_confidentiality_denial(), "got: {}", error.msg)
        }
        other => panic!("expected task failure, got {other}"),
    }
}

#[test]
fn multi_job_batch_reports_all_tasks_and_advances_clock() {
    let (topo, _) = single_server();
    let mut rt = Runtime::new(topo, RuntimeConfig::traced());
    let mk = |name: &str| {
        let mut j = JobBuilder::new(name);
        let a = j.task(TaskSpec::new("a").output_bytes(1024).body(passthrough(1024)));
        let b = j.task(TaskSpec::new("b").body(|_| Ok(())));
        j.edge(a, b);
        j.build().unwrap()
    };
    let report = rt.execute(vec![mk("one"), mk("two")]).unwrap();
    assert_eq!(report.tasks.len(), 4);
    assert!(rt.now() > SimTime::ZERO);
    let first_clock = rt.now();
    rt.execute(vec![mk("three")]).unwrap();
    assert!(rt.now() > first_clock, "clock is monotonic across batches");
}

#[test]
fn declarative_beats_worst_feasible_placement() {
    let mk_job = || {
        let mut j = JobBuilder::new("scan");
        j.task(
            TaskSpec::new("scan")
                .work(WorkClass::Scalar, 1_000_000)
                .private_scratch(64 << 20)
                .body(|ctx| {
                    let mut buf = vec![0u8; 1 << 20];
                    for i in 0..16u64 {
                        ctx.scratch_read((i * (1 << 20)) % (32 << 20), &mut buf)?;
                    }
                    Ok(())
                }),
        );
        j.build().unwrap()
    };
    let run = |policy: PlacementPolicy| {
        let (topo, _) = single_server();
        let mut rt = Runtime::new(topo, RuntimeConfig::traced().with_placement(policy));
        rt.execute(mk_job()).unwrap().makespan
    };
    let good = run(PlacementPolicy::Declarative);
    let bad = run(PlacementPolicy::WorstFeasible);
    assert!(
        bad.as_nanos() > 2 * good.as_nanos(),
        "worst {bad} should be >2x declarative {good}"
    );
}

#[test]
fn lifetime_rule_frees_scratch_after_task_exit() {
    let (topo, _) = single_server();
    let mut rt = Runtime::new(topo, RuntimeConfig::traced());
    let mut job = JobBuilder::new("cleanup");
    job.task(
        TaskSpec::new("t")
            .private_scratch(1 << 20)
            .body(|ctx| {
                ctx.scratch_write(0, &[1u8; 64])?;
                Ok(())
            }),
    );
    rt.execute(job.build().unwrap()).unwrap();
    assert_eq!(
        rt.manager().live_count(),
        0,
        "no regions outlive a job without persistent outputs"
    );
}

#[test]
fn streaming_chains_pipeline_and_batch_chains_do_not() {
    // A chain of 4 heavy tasks. As a batch job, stages run back-to-back;
    // declared streaming, each stage starts once its predecessor's first
    // chunk is out.
    let run = |streaming: bool| {
        let (topo, _) = single_server();
        let mut rt = Runtime::new(topo, RuntimeConfig::traced());
        let mut job = JobBuilder::new("chain");
        let ids: Vec<TaskId> = (0..4)
            .map(|i| {
                job.task(
                    TaskSpec::new(format!("s{i}"))
                        .streaming(streaming)
                        .work(WorkClass::Scalar, 1_000_000)
                        .output_bytes(1 << 20)
                        .body(|ctx| {
                            ctx.compute(WorkClass::Scalar, 1_000_000);
                            ctx.write_output(0, &[1u8; 1 << 20])?;
                            Ok(())
                        }),
                )
            })
            .collect();
        job.chain(&ids);
        rt.execute(job.build().unwrap()).unwrap().makespan
    };
    let batch = run(false);
    let streamed = run(true);
    let speedup = batch.as_nanos_f64() / streamed.as_nanos_f64();
    assert!(
        speedup > 2.0,
        "streaming chain should pipeline: batch {batch} vs streamed {streamed} ({speedup:.2}x)"
    );
    assert!(
        speedup < 4.0,
        "4 stages cannot speed up more than 4x, got {speedup:.2}x"
    );
}

#[test]
fn mixed_streaming_edges_only_pipeline_between_streaming_tasks() {
    // stream → batch → stream: the batch stage forces a full barrier.
    let (topo, _) = single_server();
    let mut rt = Runtime::new(topo, RuntimeConfig::traced());
    let mut job = JobBuilder::new("mixed");
    let mk = |name: &str, streaming: bool| {
        TaskSpec::new(name)
            .streaming(streaming)
            .work(WorkClass::Scalar, 1_000_000)
            .output_bytes(1 << 16)
            .body(|ctx| {
                ctx.compute(WorkClass::Scalar, 1_000_000);
                ctx.write_output(0, &[1u8; 1 << 16])?;
                Ok(())
            })
    };
    let a = job.task(mk("a", true));
    let b = job.task(mk("b", false));
    let c = job.task(mk("c", true));
    job.chain(&[a, b, c]);
    let report = rt.execute(job.build().unwrap()).unwrap();
    let at = report.task_by_name(JobId(0), "a").unwrap();
    let bt = report.task_by_name(JobId(0), "b").unwrap();
    let ct = report.task_by_name(JobId(0), "c").unwrap();
    // a→b is not pipelined (b is batch): b starts after a finishes.
    assert!(bt.start >= at.finish);
    // b→c is not pipelined either (b is batch).
    assert!(ct.start >= bt.finish);
}

#[test]
fn mid_task_node_crash_retries_on_a_survivor() {
    // The assigned node dies halfway through the task; the body re-runs
    // on a surviving node and the job still completes — paying for both
    // attempts.
    let (topo, rack) = disaggregated_rack(2, 32, 2, 64);
    let victim = topo.node_of_compute(rack.cpus[0]);

    // Baseline: how long does the task take without faults?
    let mk_job = || {
        let mut j = JobBuilder::new("crashy");
        j.task(
            TaskSpec::new("work")
                .require(ComputeKind::Cpu)
                .work(WorkClass::Scalar, 2_000_000)
                .private_scratch(1 << 20)
                .body(|ctx| {
                    ctx.scratch_write(0, &[1u8; 4096])?;
                    ctx.compute(WorkClass::Scalar, 2_000_000);
                    Ok(())
                }),
        );
        j.build().unwrap()
    };
    let healthy = {
        let (topo, _) = disaggregated_rack(2, 32, 2, 64);
        let mut rt = Runtime::new(topo, RuntimeConfig::traced());
        rt.execute(mk_job()).unwrap()
    };
    let healthy_task = &healthy.tasks[0];
    let healthy_dur = healthy_task.duration();
    // Crash the node that ran it, halfway through its runtime.
    let crash_at = healthy_task.start + healthy_dur / 2;
    assert_eq!(
        healthy
            .tasks
            .iter()
            .filter(|t| t.name == "work")
            .count(),
        1
    );

    let faults = FaultInjector::with_events(vec![FaultEvent {
        at: crash_at,
        kind: FaultKind::NodeCrash(victim),
    }]);
    let mut rt = Runtime::new(topo, RuntimeConfig::traced().with_faults(faults));
    let report = rt.execute(mk_job()).unwrap();
    let t = &report.tasks[0];
    assert_ne!(
        rt.topology().node_of_compute(t.compute),
        victim,
        "the retry must land on a surviving node"
    );
    assert!(
        t.duration().as_nanos() > healthy_dur.as_nanos() * 13 / 10,
        "the retry pays for both attempts: {} vs healthy {}",
        t.duration(),
        healthy_dur
    );
}

#[test]
fn arrivals_gate_job_starts_and_makespan_extends_past_the_last_one() {
    let (topo, _) = single_server();
    let mut rt = Runtime::new(topo, RuntimeConfig::traced());
    let mk = |name: &str| {
        let mut j = JobBuilder::new(name);
        j.task(
            TaskSpec::new("t")
                .work(WorkClass::Scalar, 100_000)
                .body(|ctx| {
                    ctx.compute(WorkClass::Scalar, 100_000);
                    Ok(())
                }),
        );
        j.build().unwrap()
    };
    let report = rt
        .execute(vec![
            (SimDuration::ZERO, mk("first")),
            (SimDuration::from_micros(500), mk("second")),
            (SimDuration::from_millis(2), mk("third")),
        ])
        .unwrap();
    let start_of = |job: u64| {
        report
            .tasks
            .iter()
            .find(|t| t.job == JobId(job))
            .unwrap()
            .start
    };
    assert_eq!(start_of(0), SimTime::ZERO);
    assert!(start_of(1) >= SimTime(500_000));
    assert!(start_of(1) < SimTime(1_000_000), "no reason to delay past arrival");
    assert!(start_of(2) >= SimTime(2_000_000));
    // The last arrival lands at 2 ms; its ~100 us of work extends the
    // makespan past that.
    assert!(report.makespan > SimDuration::from_millis(2));
}

#[test]
fn app_published_regions_are_reusable_across_jobs() {
    // Job 0 builds an index and publishes it at application scope; job 1
    // (a different job, no dataflow edge) finds and reads it — the
    // paper's "re-use (transient) results of earlier operators" across
    // job boundaries.
    let (topo, _) = single_server();
    let mut rt = Runtime::new(topo, RuntimeConfig::traced());

    let mut builder = JobBuilder::new("builder");
    builder.task(
        TaskSpec::new("build-index")
            .global_scratch(1 << 16)
            .body(|ctx| {
                let idx = ctx.global_scratch()?;
                ctx.async_write(idx, 0, &[0xEE; 512])?;
                ctx.wait_async();
                ctx.publish_app("shared-index", idx);
                Ok(())
            }),
    );
    rt.execute(builder.build().unwrap()).unwrap();
    assert!(rt.manager().live_count() >= 1, "the index must survive job 0");

    let mut consumer = JobBuilder::new("consumer");
    consumer.task(TaskSpec::new("reuse").body(|ctx| {
        let idx = ctx
            .lookup("shared-index")
            .ok_or_else(|| TaskError::new("app index not found"))?;
        let mut buf = [0u8; 512];
        ctx.async_read(idx, 0, &mut buf)?;
        ctx.wait_async();
        if buf != [0xEE; 512] {
            return Err(TaskError::new("index contents wrong"));
        }
        Ok(())
    }));
    rt.execute(consumer.build().unwrap()).unwrap();
}

#[test]
fn app_published_confidential_regions_stay_isolated() {
    // App scope does not leak confidential data across jobs: the region
    // manager's confidentiality check fires before hierarchical access.
    let (topo, _) = single_server();
    let mut rt = Runtime::new(topo, RuntimeConfig::traced());

    let mut secret = JobBuilder::new("secret");
    secret.task(
        TaskSpec::new("keeper")
            .confidential(true)
            .global_scratch(4096)
            .body(|ctx| {
                let r = ctx.global_scratch()?;
                ctx.async_write(r, 0, b"classified")?;
                ctx.wait_async();
                ctx.publish_app("leaky", r);
                Ok(())
            }),
    );
    rt.execute(secret.build().unwrap()).unwrap();

    let mut snoop = JobBuilder::new("snoop");
    snoop.task(TaskSpec::new("snoop").body(|ctx| {
        let r = ctx.lookup("leaky").ok_or_else(|| TaskError::new("gone"))?;
        let mut buf = [0u8; 10];
        match ctx.async_read(r, 0, &mut buf) {
            Err(e) => Err(TaskError::from(e)),
            Ok(_) => Ok(()),
        }
    }));
    let err = rt.execute(snoop.build().unwrap()).unwrap_err();
    match err {
        RuntimeError::Task { error, .. } => {
            assert!(error.is_confidentiality_denial(), "got: {}", error.msg)
        }
        other => panic!("expected denial, got {other}"),
    }
}

#[test]
fn runtime_tiering_promotes_hot_app_regions_and_respects_properties() {
    use disagg_region::migrate::TieringPolicy;
    use disagg_region::props::{AccessMode, PropertySet};
    use disagg_region::region::OwnerId;
    use disagg_region::typed::RegionType;

    let (topo, ids) = single_server();
    let dram = ids.dram;
    let cxl = ids.cxl;
    let pmem = ids.pmem;
    let mut rt = Runtime::new(topo, RuntimeConfig::traced());

    // An App-scoped region parked on CXL (a cold-start placement), and a
    // persistent one on PMem that must never move to volatile memory.
    let hot = rt
        .manager_mut()
        .alloc(
            cxl,
            1 << 20,
            RegionType::GlobalScratch,
            PropertySet::new().with_mode(AccessMode::Async),
            OwnerId::App,
            SimTime::ZERO,
        )
        .unwrap();
    let pinned = rt
        .manager_mut()
        .alloc(
            pmem,
            1 << 20,
            RegionType::GlobalScratch,
            PropertySet::new().persistent(true),
            OwnerId::App,
            SimTime::ZERO,
        )
        .unwrap();

    // A job hammers the CXL region (heat flows in through the trace).
    let mut j = JobBuilder::new("heater");
    j.task(TaskSpec::new("hammer").body(move |ctx| {
        let mut buf = [0u8; 4096];
        for i in 0..64u64 {
            ctx.acc
                .read(hot, (i * 4096) % ((1 << 20) - 4096), &mut buf, AccessPattern::Random)?;
        }
        Ok(())
    }));
    rt.execute(j.build().unwrap()).unwrap();
    assert!(rt.hotness().stat(hot).score > 0.0, "heat must accumulate");

    let mut policy = TieringPolicy::new(vec![dram, cxl, pmem]);
    policy.promote_score = 4.0;
    let moved = rt.run_tiering(&policy).unwrap();
    assert!(
        moved.iter().any(|&(r, to, _)| r == hot && to == dram),
        "the hot CXL region should promote to DRAM: {moved:?}"
    );
    assert!(
        moved.iter().all(|&(r, _, _)| r != pinned),
        "the persistent region must not move to volatile tiers"
    );
    assert_eq!(rt.manager().placement(hot).unwrap().dev, dram);
    assert_eq!(rt.manager().placement(pinned).unwrap().dev, pmem);
}

// ---------------------------------------------------------------------
// Out-of-order executor invariants.
// ---------------------------------------------------------------------

/// Two nodes, each with a single-slot CPU and local DRAM, joined by a
/// NUMA interconnect: the smallest topology where genuine multi-device
/// overlap is observable (each device can only run one task at a time).
fn two_workers() -> disagg_hwsim::topology::Topology {
    use disagg_hwsim::compute::ComputeModel;
    use disagg_hwsim::device::{MemDeviceKind, MemDeviceModel};
    use disagg_hwsim::topology::{Endpoint, LinkKind, Topology};

    let mut b = Topology::builder();
    let mut serial_cpu = ComputeModel::preset(ComputeKind::Cpu);
    serial_cpu.slots = 1;
    let s0 = b.node("worker0");
    let s1 = b.node("worker1");
    let cpu0 = b.compute(s0, serial_cpu.clone());
    let cpu1 = b.compute(s1, serial_cpu);
    let dram0 = b.mem(s0, MemDeviceModel::preset(MemDeviceKind::Dram));
    let dram1 = b.mem(s1, MemDeviceModel::preset(MemDeviceKind::Dram));
    b.link(cpu0, dram0, LinkKind::MemBus);
    b.link(cpu1, dram1, LinkKind::MemBus);
    b.link(cpu0, Endpoint::Hub(s0), LinkKind::MemBus);
    b.link(cpu1, Endpoint::Hub(s1), LinkKind::MemBus);
    b.link(Endpoint::Hub(s0), Endpoint::Hub(s1), LinkKind::Numa);
    b.link(Endpoint::Hub(s0), dram0, LinkKind::MemBus);
    b.link(Endpoint::Hub(s1), dram1, LinkKind::MemBus);
    b.build().expect("two-worker topology is valid")
}

/// A diamond: source → {left, right} → sink, every task ~1 ms of scalar
/// compute with a small output.
fn diamond_job() -> JobSpec {
    let mut j = JobBuilder::new("diamond");
    let mk = |name: &str| {
        TaskSpec::new(name)
            .work(WorkClass::Scalar, 1_000_000)
            .output_bytes(4096)
            .body(|ctx| {
                ctx.compute(WorkClass::Scalar, 1_000_000);
                ctx.write_output(0, &[1u8; 4096])?;
                Ok(())
            })
    };
    let source = j.task(mk("source"));
    let left = j.task(mk("left"));
    let right = j.task(mk("right"));
    let sink = j.task(mk("sink"));
    j.edge(source, left);
    j.edge(source, right);
    j.edge(left, sink);
    j.edge(right, sink);
    j.build().unwrap()
}

#[test]
fn diamond_on_two_devices_beats_the_serial_sum() {
    let mut rt = Runtime::new(two_workers(), RuntimeConfig::traced());
    let report = rt.execute(diamond_job()).unwrap();
    assert_eq!(report.tasks.len(), 4);
    let serial_sum: SimDuration = report.tasks.iter().map(|t| t.duration()).sum();
    assert!(
        report.makespan < serial_sum,
        "parallel arms must overlap: makespan {} vs serial sum {}",
        report.makespan,
        serial_sum
    );
    // The two arms genuinely ran concurrently (in virtual time) on the
    // two single-slot devices.
    let left = report.task_by_name(JobId(0), "left").unwrap();
    let right = report.task_by_name(JobId(0), "right").unwrap();
    assert_ne!(left.compute, right.compute, "arms spread across devices");
    assert!(
        left.start < right.finish && right.start < left.finish,
        "arm executions overlap in virtual time"
    );
}

#[test]
fn makespan_is_bounded_below_by_the_critical_path() {
    // For non-streaming tasks, every DAG path must execute end-to-end
    // in sequence, so the makespan can never undercut the longest path
    // of observed task durations.
    let mut rt = Runtime::new(two_workers(), RuntimeConfig::traced());
    let report = rt.execute(diamond_job()).unwrap();
    let dur = |name: &str| report.task_by_name(JobId(0), name).unwrap().duration();
    let critical_path =
        dur("source") + dur("left").max(dur("right")) + dur("sink");
    assert!(
        report.makespan >= critical_path,
        "makespan {} below critical path {}",
        report.makespan,
        critical_path
    );
}

#[test]
fn same_submission_is_bit_for_bit_deterministic() {
    let run = || {
        let mut rt = Runtime::new(two_workers(), RuntimeConfig::traced());
        rt.execute(diamond_job()).unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.ownership_transfers, b.ownership_transfers);
    assert_eq!(a.handover_copies, b.handover_copies);
    assert_eq!(a.bytes_moved, b.bytes_moved);
    assert_eq!(a.tasks.len(), b.tasks.len());
    for (x, y) in a.tasks.iter().zip(b.tasks.iter()) {
        assert_eq!((x.job, x.task, x.compute), (y.job, y.task, y.compute));
        assert_eq!((x.start, x.finish), (y.start, y.finish));
    }
}

#[test]
fn every_queue_policy_runs_the_full_dag() {
    for policy in [
        QueuePolicy::CostRank,
        QueuePolicy::Fifo,
        QueuePolicy::ShortestFirst,
    ] {
        let mut rt = Runtime::new(
            two_workers(),
            RuntimeConfig::traced().with_queue(policy),
        );
        let report = rt.execute(diamond_job()).unwrap();
        assert_eq!(report.tasks.len(), 4, "{policy:?} ran every task");
        let serial_sum: SimDuration = report.tasks.iter().map(|t| t.duration()).sum();
        assert!(
            report.makespan < serial_sum,
            "{policy:?} still overlaps the arms"
        );
    }
}

#[test]
fn dispatch_is_visible_in_the_trace() {
    use disagg_hwsim::trace::TraceEvent;
    let mut rt = Runtime::new(two_workers(), RuntimeConfig::traced());
    rt.execute(diamond_job()).unwrap();
    let queued = rt
        .trace()
        .events()
        .iter()
        .filter(|e| matches!(e, TraceEvent::TaskQueued { .. }))
        .count();
    let dispatched = rt
        .trace()
        .events()
        .iter()
        .filter(|e| matches!(e, TraceEvent::TaskDispatch { .. }))
        .count();
    assert_eq!(queued, 4, "every task passes through a ready queue");
    assert_eq!(dispatched, 4, "every task is dispatched exactly once");
    // The sink must have waited in a queue for a lane only if both arms
    // contended; regardless, no dispatch may precede its queueing.
    for e in rt.trace().events() {
        if let TraceEvent::TaskDispatch { waited, .. } = e {
            assert!(*waited >= SimDuration::ZERO);
        }
    }
}

#[test]
fn quickstart_handover_count_is_unchanged() {
    // The crate-level quickstart promises exactly one zero-copy
    // ownership transfer; the out-of-order executor must keep it.
    let (topo, _ids) = single_server();
    let mut rt = Runtime::new(topo, RuntimeConfig::traced());
    let mut job = JobBuilder::new("quickstart");
    let produce = job.task(
        TaskSpec::new("produce")
            .work(WorkClass::Vector, 10_000)
            .output_bytes(4096)
            .body(|ctx| {
                ctx.write_output(0, &[7u8; 4096])?;
                Ok(())
            }),
    );
    let consume = job.task(TaskSpec::new("consume").body(|ctx| {
        let mut buf = [0u8; 4096];
        ctx.read_input(0, &mut buf)?;
        assert!(buf.iter().all(|&b| b == 7));
        Ok(())
    }));
    job.edge(produce, consume);
    let report = rt.execute(job.build().unwrap()).unwrap();
    assert_eq!(report.ownership_transfers, 1);
    assert!(report.placements_clean());
}

#[test]
fn independent_jobs_interleave_on_the_devices() {
    // Two single-task jobs submitted as one batch must not serialize
    // behind each other when two devices are free.
    let mk = |name: &str| {
        let mut j = JobBuilder::new(name);
        j.task(
            TaskSpec::new("t")
                .work(WorkClass::Scalar, 1_000_000)
                .body(|ctx| {
                    ctx.compute(WorkClass::Scalar, 1_000_000);
                    Ok(())
                }),
        );
        j.build().unwrap()
    };
    let mut rt = Runtime::new(two_workers(), RuntimeConfig::traced());
    let report = rt.execute(vec![mk("one"), mk("two")]).unwrap();
    let serial_sum: SimDuration = report.tasks.iter().map(|t| t.duration()).sum();
    assert!(
        report.makespan < serial_sum,
        "independent jobs overlap: makespan {} vs serial {}",
        report.makespan,
        serial_sum
    );
}

#[test]
fn reports_contain_only_their_own_runs_findings() {
    // Run 1 provokes a confidential denial; run 2 is clean. Each report
    // carries its own findings, not the runtime's whole history.
    let (topo, _) = single_server();
    let mut rt = Runtime::new(topo, RuntimeConfig::traced());

    let mut secret = JobBuilder::new("secret");
    secret.task(
        TaskSpec::new("keeper")
            .confidential(true)
            .persistent(true)
            .output_bytes(1024)
            .body(|ctx| {
                ctx.write_output(0, b"shh")?;
                Ok(())
            }),
    );
    let r1 = rt.execute(secret.build().unwrap()).unwrap();
    assert!(r1.violations.is_empty());

    let mut clean = JobBuilder::new("clean");
    clean.task(TaskSpec::new("noop").body(|_| Ok(())));
    let r2 = rt.execute(clean.build().unwrap()).unwrap();
    assert!(
        r2.violations.is_empty() && r2.denials == 0,
        "run 2 must not inherit run 1's audit history"
    );
}
