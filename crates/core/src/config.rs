//! Runtime configuration.

use disagg_hwsim::fault::FaultInjector;
use disagg_hwsim::time::SimDuration;
use disagg_obs::ObserverSlot;
use disagg_sched::cost::TopologyAwareness;
use disagg_sched::lifetime::HandoverPolicy;
use disagg_sched::placement::PlacementPolicy;
use disagg_sched::schedule::{QueuePolicy, SchedPolicy};

/// How the runtime detects and recovers from mid-task faults
/// (Challenge 8(3)). All delays are virtual time, so recovery behavior
/// is as reproducible as the fault schedule itself.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryPolicy {
    /// How many times one task may be re-placed after being interrupted
    /// before the run surfaces [`crate::DisaggError::RetriesExhausted`].
    /// The default (3) bounds the work a flapping node can waste.
    pub max_retries: u32,
    /// Virtual time between a fault striking and the runtime noticing
    /// it (failure detectors are not instant: lease expiry, missed
    /// heartbeats). Zero models an oracle detector.
    pub detection_delay: SimDuration,
    /// Base relaunch backoff. Attempt `n` (1-based) waits
    /// `backoff * 2^(n-1)` after detection before the task restarts
    /// elsewhere, so repeated failures of the same task back off
    /// exponentially.
    pub backoff: SimDuration,
    /// Straggler mitigation: when `Some(k)`, a task whose attempt runs
    /// longer than `k` times its cost-model estimate is re-executed
    /// speculatively on the next-best surviving device, and the task
    /// finishes with whichever attempt completes first.
    pub straggler_factor: Option<f64>,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_retries: 3,
            detection_delay: SimDuration::ZERO,
            backoff: SimDuration::ZERO,
            straggler_factor: None,
        }
    }
}

impl RecoveryPolicy {
    /// Sets the retry budget.
    pub fn with_max_retries(mut self, n: u32) -> Self {
        self.max_retries = n;
        self
    }

    /// Sets the fault-detection delay.
    pub fn with_detection_delay(mut self, d: SimDuration) -> Self {
        self.detection_delay = d;
        self
    }

    /// Sets the base relaunch backoff (doubled per attempt).
    pub fn with_backoff(mut self, d: SimDuration) -> Self {
        self.backoff = d;
        self
    }

    /// Enables straggler re-execution at `k` times the estimate.
    pub fn with_straggler_factor(mut self, k: f64) -> Self {
        self.straggler_factor = Some(k);
        self
    }

    /// The relaunch delay after the fault is detected, for 1-based
    /// attempt `n`: `backoff * 2^(n-1)`.
    ///
    /// # Contract: saturation vs. exhaustion
    ///
    /// This is *pure arithmetic* — it does not know or enforce
    /// [`max_retries`](Self::max_retries). Two distinct behaviors meet
    /// here and must not be confused:
    ///
    /// - **Saturation** (this function): once `backoff * 2^(n-1)`
    ///   overflows, the result pins at `u64::MAX` nanoseconds; and a
    ///   zero base backoff stays zero at
    ///   *every* attempt — doubling zero is still zero, not an error.
    ///   Callers asking for attempt 7 of a policy whose cap is 3 get a
    ///   well-defined delay, not a panic.
    /// - **Exhaustion** is the *caller's* check, made *before* asking
    ///   for a delay: the executor compares the attempt count against
    ///   `max_retries` and surfaces
    ///   [`crate::DisaggError::RetriesExhausted`] (or, past a tenant's
    ///   retry budget, [`crate::DisaggError::RetryBudgetExhausted`])
    ///   instead of scheduling another relaunch.
    ///
    /// Use [`exhausted`](Self::exhausted) to ask the policy directly.
    pub fn backoff_for(&self, attempt: u32) -> SimDuration {
        let factor = 1u64.checked_shl(attempt.saturating_sub(1)).unwrap_or(u64::MAX);
        SimDuration(self.backoff.0.saturating_mul(factor))
    }

    /// True when 1-based attempt `n` exceeds the retry cap — the
    /// explicit exhaustion check `backoff_for` deliberately does not
    /// perform (see its contract note).
    pub fn exhausted(&self, attempt: u32) -> bool {
        attempt > self.max_retries
    }
}

/// Per-tenant retry budget: a virtual-time token bucket charged once per
/// executor `TaskRetry`. When a tenant's bucket is empty, its requests
/// fail fast with [`crate::DisaggError::RetryBudgetExhausted`] instead
/// of grinding through the full [`RecoveryPolicy`] — a fault storm
/// cannot metastasize into a retry storm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryBudgetPolicy {
    /// Bucket capacity (tokens): the burst of retries one tenant may
    /// spend before refills gate further attempts.
    pub capacity: u32,
    /// Virtual time per token refilled (buckets refill continuously and
    /// cap at `capacity`).
    pub refill_interval: SimDuration,
}

impl Default for RetryBudgetPolicy {
    fn default() -> Self {
        RetryBudgetPolicy {
            capacity: 8,
            refill_interval: SimDuration::from_micros(100),
        }
    }
}

impl RetryBudgetPolicy {
    /// Sets the bucket capacity.
    pub fn with_capacity(mut self, n: u32) -> Self {
        self.capacity = n;
        self
    }

    /// Sets the per-token refill interval.
    pub fn with_refill_interval(mut self, d: SimDuration) -> Self {
        self.refill_interval = d;
        self
    }
}

/// Per-node circuit breaker: consecutive `FaultDetected` strikes trip
/// the breaker, the scheduler's candidate ranking then excludes the
/// node, and after a virtual-time cool-down a *single* probe task is
/// admitted (half-open). A clean probe closes the breaker; a probe-time
/// fault re-opens it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerPolicy {
    /// Consecutive detected faults on one node that open its breaker.
    pub trip_after: u32,
    /// Virtual time an open breaker waits before admitting a probe.
    pub cooldown: SimDuration,
}

impl Default for BreakerPolicy {
    fn default() -> Self {
        BreakerPolicy {
            trip_after: 2,
            cooldown: SimDuration::from_micros(200),
        }
    }
}

impl BreakerPolicy {
    /// Sets the trip threshold.
    pub fn with_trip_after(mut self, n: u32) -> Self {
        self.trip_after = n.max(1);
        self
    }

    /// Sets the cool-down before a probe.
    pub fn with_cooldown(mut self, d: SimDuration) -> Self {
        self.cooldown = d;
        self
    }
}

/// Fault-aware control-plane knobs layered over [`RecoveryPolicy`]. All
/// default **off** (`FaultControlPolicy::default()` is inert), so plain
/// runs — and every existing equivalence golden — execute byte-for-byte
/// the same code path.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultControlPolicy {
    /// Per-tenant retry budgets (`None` = unbounded, the legacy
    /// behavior). Budgets only bind request-tagged jobs: untagged batch
    /// jobs have no tenant to charge.
    pub retry_budget: Option<RetryBudgetPolicy>,
    /// Per-node circuit breakers (`None` = placement never excludes a
    /// faulty-but-up node).
    pub breakers: Option<BreakerPolicy>,
    /// When true, a request-tagged job whose task exhausts its retries
    /// or budget fails *alone*: the job is marked failed in the report
    /// (`RunReport::failed_jobs`) and the wave continues, instead of the
    /// whole submission erroring out.
    pub isolate_failures: bool,
}

impl FaultControlPolicy {
    /// True when every mechanism is off — the executor takes the legacy
    /// path with zero extra state.
    pub fn is_inert(&self) -> bool {
        self.retry_budget.is_none() && self.breakers.is_none() && !self.isolate_failures
    }

    /// Enables per-tenant retry budgets.
    pub fn with_retry_budget(mut self, p: RetryBudgetPolicy) -> Self {
        self.retry_budget = Some(p);
        self
    }

    /// Enables per-node circuit breakers.
    pub fn with_breakers(mut self, p: BreakerPolicy) -> Self {
        self.breakers = Some(p);
        self
    }

    /// Lets request-tagged jobs fail individually instead of failing
    /// the whole submission.
    pub fn with_isolation(mut self) -> Self {
        self.isolate_failures = true;
        self
    }
}

/// Configuration for a [`crate::Runtime`].
///
/// The defaults are the paper's vision: declarative placement, HEFT
/// scheduling, ownership-transfer handover, topology-aware costs. Every
/// knob exists so an experiment can switch one ingredient to a baseline
/// and measure the difference.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// How declarative memory requests are resolved to devices.
    pub placement: PlacementPolicy,
    /// How tasks are assigned to compute devices.
    pub sched: SchedPolicy,
    /// How each device's ready queue orders dispatch when several
    /// assigned tasks are ready at once (out-of-order executor).
    pub queue: QueuePolicy,
    /// How outputs reach successors (transfer vs copy).
    pub handover: HandoverPolicy,
    /// Cost-model topology awareness (ablation).
    pub awareness: TopologyAwareness,
    /// Record a full event trace (costs memory on big runs).
    pub trace: bool,
    /// Streaming event sink: sees every trace event at emission time,
    /// independent of whether `trace` buffers them. The default is the
    /// null slot — no tap is installed and observability costs nothing.
    pub observer: ObserverSlot,
    /// Injected faults for this run.
    pub faults: FaultInjector,
    /// How mid-task faults are detected and retried.
    pub recovery: RecoveryPolicy,
    /// Overload/fault control plane on top of `recovery`: retry
    /// budgets, circuit breakers, failure isolation. Inert by default.
    pub fault_control: FaultControlPolicy,
    /// Memory-aware admission control: when set, a submitted batch is
    /// split into waves so that each wave's *predicted* memory footprint
    /// stays below this fraction of the pool's free capacity. `None`
    /// admits everything at once (a too-big batch then fails placement).
    pub admission_watermark: Option<f64>,
    /// Copies kept of every persistent output (Challenge 8(3)): 1 keeps
    /// just the primary; 2+ adds replicas on persistent devices in
    /// *different failure domains*, so a node loss cannot erase a result
    /// the application was promised would survive.
    pub persistent_replicas: usize,
    /// Event-loop shards: the topology is partitioned along node
    /// boundaries into this many per-shard event loops, synchronized
    /// with conservative virtual-time windows. Clamped to the node
    /// count. Reports, traces, and metrics are bit-for-bit identical at
    /// every shard count (pinned by the equivalence goldens); sharding
    /// only changes how the simulation is *driven*.
    pub shards: usize,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            placement: PlacementPolicy::default(),
            sched: SchedPolicy::default(),
            queue: QueuePolicy::default(),
            handover: HandoverPolicy::default(),
            awareness: TopologyAwareness::default(),
            trace: false,
            observer: ObserverSlot::default(),
            faults: FaultInjector::default(),
            recovery: RecoveryPolicy::default(),
            fault_control: FaultControlPolicy::default(),
            admission_watermark: None,
            persistent_replicas: 1,
            shards: 1,
        }
    }
}

impl RuntimeConfig {
    /// The paper's configuration with tracing enabled (what examples and
    /// experiments usually want).
    pub fn traced() -> Self {
        RuntimeConfig {
            trace: true,
            ..RuntimeConfig::default()
        }
    }

    /// The compute-centric baseline of Figure 1a: explicit local
    /// placement, copy-based handover.
    pub fn compute_centric() -> Self {
        RuntimeConfig {
            placement: PlacementPolicy::ComputeCentric,
            handover: HandoverPolicy::AlwaysCopy,
            trace: true,
            ..RuntimeConfig::default()
        }
    }

    /// Sets the placement policy.
    pub fn with_placement(mut self, p: PlacementPolicy) -> Self {
        self.placement = p;
        self
    }

    /// Sets the scheduling policy.
    pub fn with_sched(mut self, s: SchedPolicy) -> Self {
        self.sched = s;
        self
    }

    /// Sets the device ready-queue dispatch policy.
    pub fn with_queue(mut self, q: QueuePolicy) -> Self {
        self.queue = q;
        self
    }

    /// Sets the handover policy.
    pub fn with_handover(mut self, h: HandoverPolicy) -> Self {
        self.handover = h;
        self
    }

    /// Attaches a streaming observer (use [`ObserverSlot::shared`] to
    /// keep a handle for reading results back after the run).
    pub fn with_observer(mut self, o: ObserverSlot) -> Self {
        self.observer = o;
        self
    }

    /// Sets the fault plan.
    pub fn with_faults(mut self, f: FaultInjector) -> Self {
        self.faults = f;
        self
    }

    /// Sets the failure-recovery policy.
    pub fn with_recovery(mut self, r: RecoveryPolicy) -> Self {
        self.recovery = r;
        self
    }

    /// Sets the overload/fault control plane (retry budgets, breakers,
    /// failure isolation).
    pub fn with_fault_control(mut self, fc: FaultControlPolicy) -> Self {
        self.fault_control = fc;
        self
    }

    /// Sets cost-model topology awareness.
    pub fn with_awareness(mut self, a: TopologyAwareness) -> Self {
        self.awareness = a;
        self
    }

    /// Enables memory-aware admission control at the given watermark.
    pub fn with_admission(mut self, watermark: f64) -> Self {
        self.admission_watermark = Some(watermark);
        self
    }

    /// Keeps `n` copies of every persistent output (n >= 1).
    pub fn with_persistent_replicas(mut self, n: usize) -> Self {
        self.persistent_replicas = n.max(1);
        self
    }

    /// Runs the event loop on `n` topology shards (n >= 1; clamped to
    /// the node count at runtime). Output is identical at every shard
    /// count.
    pub fn with_shards(mut self, n: usize) -> Self {
        self.shards = n.max(1);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_the_papers_vision() {
        let c = RuntimeConfig::default();
        assert_eq!(c.placement, PlacementPolicy::Declarative);
        assert_eq!(c.sched, SchedPolicy::Heft);
        assert_eq!(c.handover, HandoverPolicy::TransferWhenPossible);
        assert!(!c.trace);
    }

    #[test]
    fn compute_centric_flips_the_baseline_knobs() {
        let c = RuntimeConfig::compute_centric();
        assert_eq!(c.placement, PlacementPolicy::ComputeCentric);
        assert_eq!(c.handover, HandoverPolicy::AlwaysCopy);
    }

    #[test]
    fn builder_methods_compose() {
        let c = RuntimeConfig::traced()
            .with_placement(PlacementPolicy::WorstFeasible)
            .with_sched(SchedPolicy::RoundRobin)
            .with_handover(HandoverPolicy::AlwaysCopy);
        assert!(c.trace);
        assert_eq!(c.placement, PlacementPolicy::WorstFeasible);
        assert_eq!(c.sched, SchedPolicy::RoundRobin);
    }

    #[test]
    fn recovery_policy_backoff_is_exponential() {
        let p = RecoveryPolicy::default()
            .with_max_retries(5)
            .with_detection_delay(SimDuration(100))
            .with_backoff(SimDuration(1_000))
            .with_straggler_factor(4.0);
        assert_eq!(p.max_retries, 5);
        assert_eq!(p.straggler_factor, Some(4.0));
        assert_eq!(p.backoff_for(1), SimDuration(1_000));
        assert_eq!(p.backoff_for(2), SimDuration(2_000));
        assert_eq!(p.backoff_for(4), SimDuration(8_000));
        // Zero backoff stays zero at any attempt: saturation, not an
        // exhaustion signal (backoff_for's documented contract).
        assert_eq!(RecoveryPolicy::default().backoff_for(7), SimDuration::ZERO);
        let c = RuntimeConfig::traced().with_recovery(p);
        assert_eq!(c.recovery.max_retries, 5);
    }

    #[test]
    fn backoff_saturates_and_exhaustion_is_a_separate_check() {
        let p = RecoveryPolicy::default()
            .with_max_retries(3)
            .with_backoff(SimDuration(1_000));
        // Saturation: a nonzero base pins at u64::MAX past the shift
        // width instead of wrapping — still a valid delay, not an error.
        assert_eq!(p.backoff_for(100), SimDuration(u64::MAX));
        // ... and the shift itself saturates before the multiply does.
        assert_eq!(p.backoff_for(64), SimDuration(u64::MAX));
        // Exhaustion is asked explicitly, independent of the delay math.
        assert!(!p.exhausted(3));
        assert!(p.exhausted(4));
        assert!(p.exhausted(100));
    }

    #[test]
    fn fault_control_defaults_inert() {
        let fc = FaultControlPolicy::default();
        assert!(fc.is_inert());
        assert!(fc.retry_budget.is_none());
        assert!(fc.breakers.is_none());
        assert!(!fc.isolate_failures);
        let armed = FaultControlPolicy::default()
            .with_retry_budget(RetryBudgetPolicy::default().with_capacity(4))
            .with_breakers(BreakerPolicy::default().with_trip_after(2))
            .with_isolation();
        assert!(!armed.is_inert());
        assert_eq!(armed.retry_budget.unwrap().capacity, 4);
        assert_eq!(armed.breakers.unwrap().trip_after, 2);
        assert!(armed.isolate_failures);
        let c = RuntimeConfig::default().with_fault_control(armed);
        assert!(c.fault_control.isolate_failures);
    }
}
