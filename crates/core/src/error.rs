//! The unified error type for the whole `disagg` API surface.
//!
//! Every layer used to surface its own error enum (`SchedError`,
//! `RegionError`, `TaskError`, `AllocError`); callers of the runtime
//! dealt with a different type per entry point. [`DisaggError`] folds
//! them into one non-exhaustive enum with `From` conversions, so `?`
//! works across layers and new failure classes can be added without
//! breaking downstream matches.

use disagg_dataflow::graph::GraphError;
use disagg_dataflow::job::JobId;
use disagg_dataflow::task::{TaskError, TaskId};
use disagg_region::pool::AllocError;
use disagg_region::region::RegionError;
use disagg_sched::schedule::SchedError;

/// Any failure surfaced by the disagg runtime and its layers.
///
/// Marked `#[non_exhaustive]`: match with a wildcard arm, new variants
/// may appear in future versions.
#[derive(Debug)]
#[non_exhaustive]
pub enum DisaggError {
    /// Scheduling failed.
    Sched(SchedError),
    /// A region operation failed outside a task body.
    Region(RegionError),
    /// A raw allocation failed outside the region layer.
    Alloc(AllocError),
    /// A dataflow graph failed validation.
    Graph(GraphError),
    /// A task body error lifted without job/task context (helper code
    /// running outside the executor).
    Body(TaskError),
    /// No feasible device for one of a task's declared regions.
    Placement {
        /// The job.
        job: JobId,
        /// The task.
        task: TaskId,
        /// Which region kind could not be placed.
        what: &'static str,
    },
    /// Every eligible compute device for a task is down.
    NoComputeAvailable {
        /// The job.
        job: JobId,
        /// The task.
        task: TaskId,
    },
    /// A task kept being interrupted by faults until its
    /// [`crate::RecoveryPolicy`] retry budget ran out.
    RetriesExhausted {
        /// The job.
        job: JobId,
        /// The task.
        task: TaskId,
        /// Attempts made (initial execution + retries).
        attempts: u32,
    },
    /// A task was interrupted by a fault but its tenant's retry budget
    /// (token bucket, [`crate::RetryBudgetPolicy`]) was empty: the
    /// request fails fast instead of spending more of the
    /// [`crate::RecoveryPolicy`] cap during a fault storm.
    RetryBudgetExhausted {
        /// The job.
        job: JobId,
        /// The task.
        task: TaskId,
        /// The tenant whose bucket ran dry.
        tenant: u64,
        /// Attempts made before the budget gated further retries.
        attempts: u32,
    },
    /// A [`Submission`](crate::Submission) was malformed: the arrival
    /// offsets do not line up one-per-job.
    Submission {
        /// Number of jobs in the submission.
        jobs: usize,
        /// Number of arrival offsets attached.
        offsets: usize,
    },
    /// A task body returned an error.
    Task {
        /// The job.
        job: JobId,
        /// The task.
        task: TaskId,
        /// Task name.
        name: String,
        /// The body's error.
        error: TaskError,
    },
}

/// The historical name for [`DisaggError`]; kept so existing call sites
/// and pattern matches keep compiling.
pub type RuntimeError = DisaggError;

impl From<SchedError> for DisaggError {
    fn from(e: SchedError) -> Self {
        DisaggError::Sched(e)
    }
}

impl From<RegionError> for DisaggError {
    fn from(e: RegionError) -> Self {
        DisaggError::Region(e)
    }
}

impl From<AllocError> for DisaggError {
    fn from(e: AllocError) -> Self {
        DisaggError::Alloc(e)
    }
}

impl From<GraphError> for DisaggError {
    fn from(e: GraphError) -> Self {
        DisaggError::Graph(e)
    }
}

impl From<TaskError> for DisaggError {
    fn from(e: TaskError) -> Self {
        DisaggError::Body(e)
    }
}

impl std::fmt::Display for DisaggError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DisaggError::Sched(e) => write!(f, "scheduling failed: {e}"),
            DisaggError::Region(e) => write!(f, "region operation failed: {e}"),
            DisaggError::Alloc(e) => write!(f, "allocation failed: {e}"),
            DisaggError::Graph(e) => write!(f, "invalid dataflow graph: {e}"),
            DisaggError::Body(e) => write!(f, "task body failed: {e}"),
            DisaggError::Placement { job, task, what } => {
                write!(f, "no feasible placement for {what} of {job}/{task}")
            }
            DisaggError::NoComputeAvailable { job, task } => {
                write!(f, "no live compute device for {job}/{task}")
            }
            DisaggError::RetriesExhausted { job, task, attempts } => {
                write!(
                    f,
                    "{job}/{task} kept failing: retry budget exhausted after {attempts} attempts"
                )
            }
            DisaggError::RetryBudgetExhausted { job, task, tenant, attempts } => {
                write!(
                    f,
                    "{job}/{task} failed fast: tenant {tenant}'s retry budget empty after {attempts} attempts"
                )
            }
            DisaggError::Submission { jobs, offsets } => {
                write!(
                    f,
                    "malformed submission: {jobs} jobs but {offsets} arrival offsets"
                )
            }
            DisaggError::Task { job, task, name, error } => {
                write!(f, "{job}/{task} ('{name}') failed: {error}")
            }
        }
    }
}

impl std::error::Error for DisaggError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DisaggError::Sched(e) => Some(e),
            DisaggError::Region(e) => Some(e),
            DisaggError::Alloc(e) => Some(e),
            DisaggError::Graph(e) => Some(e),
            DisaggError::Body(e) => Some(e),
            DisaggError::Task { error, .. } => Some(error),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_impls_lift_every_layer_error() {
        let s: DisaggError = SchedError::NoEligibleDevice {
            job: JobId(1),
            task: TaskId(2),
        }
        .into();
        assert!(matches!(s, DisaggError::Sched(_)));

        let a: DisaggError = AllocError::ZeroSize.into();
        assert!(matches!(a, DisaggError::Alloc(_)));

        let g: DisaggError = GraphError::SelfLoop(TaskId(0)).into();
        assert!(matches!(g, DisaggError::Graph(_)));

        let t: DisaggError = TaskError::new("boom").into();
        assert!(matches!(t, DisaggError::Body(_)));
    }

    #[test]
    fn display_and_source_cover_wrapped_errors() {
        use std::error::Error;
        let e: DisaggError = TaskError::new("boom").into();
        assert!(e.to_string().contains("boom"));
        assert!(e.source().is_some());
        let p = DisaggError::Placement {
            job: JobId(0),
            task: TaskId(1),
            what: "output",
        };
        assert!(p.to_string().contains("output"));
        assert!(p.source().is_none());
    }
}
