//! Profiling across abstraction layers (the paper's Challenge 8(1)).
//!
//! "How can we debug, profile, and optimize dataflow applications with
//! multiple abstraction layers for performance when the runtime system
//! hides performance-relevant details?" — by having the runtime *keep*
//! the details. Every task's virtual time is attributed to the layer
//! that spent it:
//!
//! - **application**: pure compute charged by the task body;
//! - **programming model**: synchronous memory stalls and un-hidden
//!   asynchronous stalls (time the memory interfaces cost the task);
//! - **runtime system**: launch overhead plus whatever the executor
//!   spent around the body (placement, handover bookkeeping);
//!
//! and the trace lets reports drill from a task to the regions and
//! devices it touched.

use disagg_hwsim::time::SimDuration;

use crate::report::{RunReport, TaskReport};

/// One task's virtual time attributed per layer.
#[derive(Debug, Clone)]
pub struct TaskProfile {
    /// Task name.
    pub name: String,
    /// Total task duration.
    pub total: SimDuration,
    /// Application layer: pure compute.
    pub compute: SimDuration,
    /// Programming-model layer: synchronous memory stalls.
    pub sync_stall: SimDuration,
    /// Programming-model layer: async join stalls not hidden by compute.
    pub async_stall: SimDuration,
    /// Runtime layer: launch overhead + everything unaccounted above
    /// (placement, handover crediting, encryption toll).
    pub runtime: SimDuration,
}

impl TaskProfile {
    fn from_report(t: &TaskReport) -> TaskProfile {
        let total = t.duration();
        let compute = t.stats.compute_time;
        let sync_stall = t.stats.sync_stall;
        let async_stall = t.stats.async_stall;
        let accounted = compute + sync_stall + async_stall;
        TaskProfile {
            name: t.name.clone(),
            total,
            compute,
            sync_stall,
            async_stall,
            runtime: total.saturating_sub(accounted),
        }
    }

    /// Fraction of the task spent in pure compute.
    pub fn compute_fraction(&self) -> f64 {
        if self.total == SimDuration::ZERO {
            0.0
        } else {
            self.compute.as_nanos_f64() / self.total.as_nanos_f64()
        }
    }

    /// Fraction of the task stalled on memory (sync + async).
    pub fn memory_fraction(&self) -> f64 {
        if self.total == SimDuration::ZERO {
            0.0
        } else {
            (self.sync_stall + self.async_stall).as_nanos_f64() / self.total.as_nanos_f64()
        }
    }
}

/// Whole-run profile: per-task layers plus aggregates.
#[derive(Debug, Clone)]
pub struct RunProfile {
    /// One entry per executed task.
    pub tasks: Vec<TaskProfile>,
}

impl RunProfile {
    /// Builds the profile from a run report.
    pub fn new(report: &RunReport) -> RunProfile {
        RunProfile {
            tasks: report.tasks.iter().map(TaskProfile::from_report).collect(),
        }
    }

    /// Aggregate time per layer across all tasks:
    /// `(compute, memory_stall, runtime)`.
    pub fn totals(&self) -> (SimDuration, SimDuration, SimDuration) {
        self.tasks.iter().fold(
            (SimDuration::ZERO, SimDuration::ZERO, SimDuration::ZERO),
            |(c, m, r), t| (c + t.compute, m + t.sync_stall + t.async_stall, r + t.runtime),
        )
    }

    /// The task with the largest memory-stall fraction (the tuning
    /// target a profiler should point at first).
    pub fn most_memory_bound(&self) -> Option<&TaskProfile> {
        self.tasks
            .iter()
            .filter(|t| t.total > SimDuration::ZERO)
            .max_by(|a, b| a.memory_fraction().total_cmp(&b.memory_fraction()))
    }

    /// Renders an aligned per-task breakdown.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "task                  total        compute      mem-stall    runtime\n",
        );
        for t in &self.tasks {
            out.push_str(&format!(
                "{:20}  {:>11}  {:>11}  {:>11}  {:>11}\n",
                t.name,
                t.total.to_string(),
                t.compute.to_string(),
                (t.sync_stall + t.async_stall).to_string(),
                t.runtime.to_string(),
            ));
        }
        let (c, m, r) = self.totals();
        out.push_str(&format!(
            "{:20}  {:>11}  {:>11}  {:>11}  {:>11}\n",
            "TOTAL",
            (c + m + r).to_string(),
            c.to_string(),
            m.to_string(),
            r.to_string(),
        ));
        out
    }
}

impl RunReport {
    /// Profiles this run across abstraction layers (Challenge 8(1)).
    pub fn profile(&self) -> RunProfile {
        RunProfile::new(self)
    }

    /// The run as analyzer input: one [`TaskSpan`] per executed task
    /// (layer attribution from [`TaskProfile`]) plus the honored
    /// dataflow edges as index pairs into the span list.
    ///
    /// [`TaskSpan`]: disagg_obs::TaskSpan
    pub fn task_spans(&self) -> (Vec<disagg_obs::TaskSpan>, Vec<(usize, usize)>) {
        let spans: Vec<disagg_obs::TaskSpan> = self
            .tasks
            .iter()
            .map(|t| {
                let p = TaskProfile::from_report(t);
                disagg_obs::TaskSpan {
                    job: t.job.0,
                    task: t.task.0 as u64,
                    name: t.name.clone(),
                    lane: t.compute.0,
                    start: t.start,
                    finish: t.finish,
                    compute: p.compute,
                    mem_stall: p.sync_stall + p.async_stall,
                    runtime: p.runtime,
                }
            })
            .collect();
        let index: std::collections::HashMap<(u64, u64), usize> = spans
            .iter()
            .enumerate()
            .map(|(i, s)| ((s.job, s.task), i))
            .collect();
        let edges = self
            .edges
            .iter()
            .filter_map(|&(j, a, b)| {
                Some((
                    *index.get(&(j.0, a.0 as u64))?,
                    *index.get(&(j.0, b.0 as u64))?,
                ))
            })
            .collect();
        (spans, edges)
    }

    /// The top-`k` heaviest dependent chains of this run, with per-layer
    /// attribution — returns `(spans, paths)` so the paths can be
    /// rendered against their spans.
    pub fn critical_paths(
        &self,
        k: usize,
    ) -> (Vec<disagg_obs::TaskSpan>, Vec<disagg_obs::CriticalPath>) {
        let (spans, edges) = self.task_spans();
        let paths = disagg_obs::critical_paths(&spans, &edges, k);
        (spans, paths)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disagg_dataflow::{JobBuilder, TaskSpec};
    use disagg_hwsim::compute::WorkClass;
    use disagg_hwsim::device::AccessPattern;
    use disagg_hwsim::presets::single_server;
    use crate::{Runtime, RuntimeConfig};

    fn run_mixed() -> RunReport {
        let (topo, ids) = single_server();
        let far = ids.far;
        let mut rt = Runtime::new(topo, RuntimeConfig::traced());
        let mut job = JobBuilder::new("profiled");
        job.task(
            TaskSpec::new("compute-bound")
                .work(WorkClass::Scalar, 1_000_000)
                .body(|ctx| {
                    ctx.compute(WorkClass::Scalar, 1_000_000);
                    Ok(())
                }),
        );
        job.task(TaskSpec::new("memory-bound").body(move |ctx| {
            let props = disagg_region::props::PropertySet::new()
                .with_mode(disagg_region::props::AccessMode::Async);
            let _ = far;
            let r = ctx.alloc(
                disagg_region::typed::RegionType::GlobalScratch,
                props,
                1 << 20,
            )?;
            let mut buf = vec![0u8; 1 << 20];
            // Force a far placement by reading something big through the
            // sync interface on whatever device the runtime picked; the
            // stall shows up either way.
            ctx.acc.read(r, 0, &mut buf, AccessPattern::Random)?;
            Ok(())
        }));
        rt.execute(job.build().unwrap()).unwrap()
    }

    #[test]
    fn layers_sum_to_the_total() {
        let report = run_mixed();
        for t in report.profile().tasks {
            let sum = t.compute + t.sync_stall + t.async_stall + t.runtime;
            assert_eq!(sum, t.total, "{}: layers must partition the total", t.name);
        }
    }

    #[test]
    fn the_profiler_points_at_the_memory_bound_task() {
        let report = run_mixed();
        let profile = report.profile();
        let worst = profile.most_memory_bound().expect("tasks ran");
        assert_eq!(worst.name, "memory-bound");
        assert!(worst.memory_fraction() > 0.5, "{}", worst.memory_fraction());

        let cb = profile
            .tasks
            .iter()
            .find(|t| t.name == "compute-bound")
            .unwrap();
        assert!(cb.compute_fraction() > 0.8, "{}", cb.compute_fraction());
    }

    #[test]
    fn render_contains_every_task_and_a_total() {
        let report = run_mixed();
        let text = report.profile().render();
        assert!(text.contains("compute-bound"));
        assert!(text.contains("memory-bound"));
        assert!(text.contains("TOTAL"));
    }
}
