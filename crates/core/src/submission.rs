//! The unified submission API.
//!
//! The runtime used to expose three overlapping entry points — `submit`
//! (one job), `run` (a batch with optional admission waves), and
//! `run_arrivals` (a batch whose jobs arrive over virtual time, no
//! admission). A [`Submission`] folds all three into one builder:
//!
//! ```
//! use disagg_core::prelude::*;
//!
//! let (topo, _ids) = disagg_hwsim::presets::single_server();
//! let mut rt = Runtime::new(topo, RuntimeConfig::default());
//!
//! let mk = |name: &str| {
//!     let mut j = JobBuilder::new(name);
//!     j.task(TaskSpec::new("t").work(WorkClass::Scalar, 10_000));
//!     j.build().unwrap()
//! };
//!
//! // A closed batch, admitted in memory-aware waves:
//! let report = rt
//!     .execute(Submission::batch(vec![mk("a"), mk("b")]).admission(AdmissionPolicy::Watermark(0.8)))
//!     .unwrap();
//! assert_eq!(report.tasks.len(), 2);
//!
//! // An open arrival stream — arrivals and admission now compose.
//! let report = rt
//!     .execute(
//!         Submission::batch(vec![mk("c"), mk("d")])
//!             .arrivals(vec![SimDuration::ZERO, SimDuration::from_micros(5)]),
//!     )
//!     .unwrap();
//! assert_eq!(report.tasks.len(), 2);
//! ```
//!
//! The old methods survive as thin deprecated shims over
//! [`Runtime::execute`](crate::Runtime::execute), so applications can
//! migrate incrementally.

use disagg_dataflow::job::JobSpec;
use disagg_hwsim::time::SimDuration;

/// How a submission's jobs are admitted against pool capacity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdmissionPolicy {
    /// Admit every job at once; an infeasible batch fails placement.
    Open,
    /// Memory-aware admission: split into waves so each wave's
    /// *predicted* footprint stays below this fraction of the pool's
    /// free capacity (clamped to `[0.05, 1.0]` at execution time).
    Watermark(f64),
}

/// One unit of work handed to [`Runtime::execute`](crate::Runtime::execute):
/// a batch of jobs, optional per-job arrival offsets, and an optional
/// admission-policy override.
///
/// Built with [`Submission::batch`] / [`Submission::job`] /
/// [`Submission::arriving`] and refined with the builder methods. When
/// no [`AdmissionPolicy`] is set, the runtime's configured
/// [`admission_watermark`](crate::RuntimeConfig::admission_watermark)
/// applies — to arrival streams just like to closed batches.
#[derive(Debug)]
pub struct Submission {
    pub(crate) jobs: Vec<JobSpec>,
    pub(crate) offsets: Option<Vec<SimDuration>>,
    pub(crate) admission: Option<AdmissionPolicy>,
    /// Per-job `(request, tenant)` identities for request-centric
    /// observability. When set, the executor stamps a
    /// [`TraceEvent::RequestTag`](disagg_hwsim::trace::TraceEvent) per
    /// job at its arrival, so the whole trace can be attributed back to
    /// requests; untagged submissions emit nothing extra.
    pub(crate) tags: Option<Vec<(u64, u64)>>,
}

impl Submission {
    /// A closed batch: every job arrives at the current virtual time.
    pub fn batch(jobs: Vec<JobSpec>) -> Submission {
        Submission { jobs, offsets: None, admission: None, tags: None }
    }

    /// A single job (the old `submit` shape).
    pub fn job(job: JobSpec) -> Submission {
        Submission::batch(vec![job])
    }

    /// An arrival stream given as `(offset, job)` pairs (the old
    /// `run_arrivals` shape): each job's tasks may not start before its
    /// offset relative to the current virtual time.
    pub fn arriving(arrivals: Vec<(SimDuration, JobSpec)>) -> Submission {
        let (offsets, jobs): (Vec<_>, Vec<_>) = arrivals.into_iter().unzip();
        Submission { jobs, offsets: Some(offsets), admission: None, tags: None }
    }

    /// Attaches per-job arrival offsets (must be one per job; checked
    /// at execution time).
    pub fn arrivals(mut self, offsets: Vec<SimDuration>) -> Submission {
        self.offsets = Some(offsets);
        self
    }

    /// Overrides the runtime's admission policy for this submission.
    pub fn admission(mut self, policy: AdmissionPolicy) -> Submission {
        self.admission = Some(policy);
        self
    }

    /// Attaches per-job `(request, tenant)` identities (must be one per
    /// job; checked at execution time). Each tagged job gets a
    /// `RequestTag` trace event at its arrival so spans, retries, and
    /// reconstructions can be attributed to the owning request.
    pub fn requests(mut self, tags: Vec<(u64, u64)>) -> Submission {
        self.tags = Some(tags);
        self
    }

    /// Number of jobs in the submission.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True when the submission carries no jobs.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }
}

impl From<JobSpec> for Submission {
    fn from(job: JobSpec) -> Submission {
        Submission::job(job)
    }
}

impl From<Vec<JobSpec>> for Submission {
    fn from(jobs: Vec<JobSpec>) -> Submission {
        Submission::batch(jobs)
    }
}

impl From<Vec<(SimDuration, JobSpec)>> for Submission {
    fn from(arrivals: Vec<(SimDuration, JobSpec)>) -> Submission {
        Submission::arriving(arrivals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disagg_dataflow::job::JobBuilder;
    use disagg_dataflow::task::TaskSpec;

    fn job(name: &str) -> JobSpec {
        let mut j = JobBuilder::new(name);
        j.task(TaskSpec::new("t"));
        j.build().unwrap()
    }

    #[test]
    fn builder_shapes_compose() {
        let s = Submission::batch(vec![job("a"), job("b")]);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert!(s.offsets.is_none());
        assert!(s.admission.is_none());

        let s = Submission::job(job("solo"))
            .arrivals(vec![SimDuration::from_nanos(5)])
            .admission(AdmissionPolicy::Watermark(0.5))
            .requests(vec![(17, 3)]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.offsets.as_ref().unwrap().len(), 1);
        assert_eq!(s.admission, Some(AdmissionPolicy::Watermark(0.5)));
        assert_eq!(s.tags.as_ref().unwrap(), &[(17, 3)]);

        let s = Submission::arriving(vec![
            (SimDuration::ZERO, job("x")),
            (SimDuration::from_nanos(9), job("y")),
        ]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.offsets.as_ref().unwrap()[1], SimDuration::from_nanos(9));
    }

    #[test]
    fn from_impls_cover_the_common_shapes() {
        let s: Submission = job("a").into();
        assert_eq!(s.len(), 1);
        let s: Submission = vec![job("a"), job("b")].into();
        assert_eq!(s.len(), 2);
    }
}
