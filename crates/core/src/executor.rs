//! The discrete-event, out-of-order executor.
//!
//! [`run_wave`] drives one admission wave of jobs through virtual time
//! as a proper event simulation instead of a serial drain:
//!
//! - an **event heap** keyed on [`SimTime`] orders everything that can
//!   change executor state: a job arriving, a dataflow edge being
//!   satisfied (output handed over / transfer complete), a compute lane
//!   freeing up;
//! - **dependency counting** over [`disagg_dataflow::graph::Dag`]
//!   in-degrees moves a task into its assigned device's **ready queue**
//!   the instant its last incoming edge is satisfied;
//! - each compute device **dispatches** queued tasks into free lanes
//!   according to the configured [`QueuePolicy`] (the scheduler's cost
//!   model feeds the default rank order);
//! - compute and region transfer **overlap**: a producer's successors
//!   are unblocked by per-edge events (pipelined early for streaming
//!   pairs), so independent DAG branches advance concurrently on
//!   different devices while transfers are still in flight elsewhere.
//!
//! Determinism: the heap breaks time ties by a monotone sequence
//! number, queue pops break policy ties by (queue time, job, task), and
//! the bandwidth ledger is charged in event order — two runs of the
//! same submission produce identical reports.
//!
//! # Hot-path layout
//!
//! Per-task state is kept in dense arenas indexed by a one-time global
//! task numbering (`task_base[ji] + task.index()`), not `(job, task)`
//! hash maps: dependency counts, pending inputs, and start/finish times
//! are all O(1) array hits. Deferred task exits live in a min-heap
//! ordered by `(finish, seq)` — the stable insertion-order tie-break
//! reproduces the old sort-then-drain semantics without ever re-sorting
//! inside the event loop.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use disagg_dataflow::ctx::{Placer, TaskCtx, TaskRegions};
use disagg_dataflow::job::{JobId, JobSpec};
use disagg_dataflow::task::{TaskError, TaskId, TaskSpec};
use disagg_hwsim::compute::WorkClass;
use disagg_hwsim::contention::ResourceKey;
use disagg_hwsim::device::{AccessOp, AccessPattern};
use disagg_hwsim::fault::FaultKind;
use disagg_hwsim::ids::{ComputeId, LinkId, MemDeviceId};
use disagg_hwsim::time::{SimDuration, SimTime};
use disagg_hwsim::topology::Topology;
use disagg_hwsim::trace::TraceEvent;
use disagg_region::access::{AccessStats, Accessor};
use disagg_region::pool::{MemoryPool, RegionId};
use disagg_region::props::PropertySet;
use disagg_region::region::OwnerId;
use disagg_region::typed::RegionType;
use disagg_sched::enforce::needs_encryption;
use disagg_sched::placement::PlacementEngine;
use disagg_sched::schedule::{QueuePolicy, Schedule, Scheduler};

use crate::error::DisaggError;
use crate::report::{DeviceSummary, RunReport, TaskReport};
use crate::runtime::Runtime;

/// Streaming producers release their first chunk after 1/DEPTH of their
/// runtime: a streaming consumer on a pure ownership-transfer edge may
/// start that early instead of waiting for the whole batch — the
/// paper's stream-vs-batch property made operational.
pub(crate) const PIPELINE_DEPTH: u64 = 8;

/// Adapter exposing the placement engine as the programming model's
/// [`Placer`] trait (for ad-hoc allocations inside task bodies).
struct EnginePlacer<'e> {
    engine: &'e mut PlacementEngine,
}

impl Placer for EnginePlacer<'_> {
    fn place(
        &mut self,
        topo: &Topology,
        pool: &MemoryPool,
        compute: ComputeId,
        props: &PropertySet,
        size: u64,
    ) -> Option<MemDeviceId> {
        self.engine.choose(topo, pool, compute, props, size)
    }
}

/// Runs the task body once on `compute`, starting at `at` plus the
/// device's launch overhead. Returns the attempt's virtual finish time,
/// its access statistics, and the body's result.
fn run_body_once(
    rt: &mut Runtime,
    published: &mut HashMap<String, RegionId>,
    tspec: &TaskSpec,
    regions: TaskRegions,
    compute: ComputeId,
    who: OwnerId,
    at: SimTime,
) -> (SimTime, AccessStats, Result<(), TaskError>) {
    let launch = SimDuration::from_nanos_f64(rt.topo.compute(compute).launch_overhead_ns);
    let mut acc = Accessor::new(
        &rt.topo,
        &mut rt.ledger,
        &mut rt.mgr,
        &mut rt.trace,
        compute,
        who,
        at + launch,
    );
    // Fault awareness costs a per-access schedule query, so the calm
    // path skips it entirely and stays bit-for-bit identical.
    if !rt.config.faults.is_empty() {
        acc = acc.with_faults(&rt.config.faults);
    }
    let mut placer = EnginePlacer { engine: &mut rt.engine };
    let mut ctx = TaskCtx::new(&mut acc, regions, &mut placer, published, &mut rt.app_published);
    let result = (tspec.body)(&mut ctx);
    (acc.now, acc.stats, result)
}

/// The first fault event in the closed attempt window `[from, to]`,
/// past the progress cursor `after`, that interrupts an attempt running
/// on `compute`: the node hosting it crashing, a device backing one of
/// the task's fresh placements failing, or the bottleneck link to such
/// a device going down. Returns the event's index in the schedule and
/// its strike time; advancing the cursor past handled events keeps the
/// retry loop making progress even under a zero-delay, zero-backoff
/// policy.
fn first_interrupt(
    rt: &Runtime,
    compute: ComputeId,
    placements: &[(&'static str, RegionId, MemDeviceId)],
    after: Option<usize>,
    from: SimTime,
    to: SimTime,
) -> Option<(usize, SimTime)> {
    let node = rt.topo.node_of_compute(compute);
    let links: Vec<LinkId> = placements
        .iter()
        .filter_map(|&(_, _, dev)| {
            rt.topo
                .access_cost_parts(compute, dev, 1, AccessOp::Read, AccessPattern::Sequential)
                .and_then(|p| p.bottleneck_link)
        })
        .collect();
    for (i, e) in rt.config.faults.events().iter().enumerate() {
        if e.at > to {
            break;
        }
        if e.at < from || after.is_some_and(|h| i <= h) {
            continue;
        }
        let hits = match e.kind {
            FaultKind::NodeCrash(n) => n == node,
            FaultKind::DeviceFail(d) => placements.iter().any(|&(_, _, pd)| pd == d),
            FaultKind::LinkDown(l) => links.contains(&l),
            _ => false,
        };
        if hits {
            return Some((i, e.at));
        }
    }
    None
}

/// What can happen at an instant of virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EventKind {
    /// A task with no (remaining) prerequisites becomes ready: sources
    /// fire this at their job's arrival time.
    Ready { ji: usize, task: TaskId },
    /// One incoming dataflow edge of a task was satisfied (the
    /// producer's output is transferred/copied and addressable).
    EdgeDone { ji: usize, task: TaskId },
    /// A lane on a compute device became free.
    LaneFree { compute: ComputeId },
}

/// A task waiting in a device's ready queue.
#[derive(Debug, Clone, Copy)]
struct Queued {
    ji: usize,
    task: TaskId,
    queued_at: SimTime,
    /// Upward rank from the schedule (cost-model priority).
    rank: f64,
    /// Estimated duration from the schedule (for shortest-first).
    est: SimDuration,
}

/// Mutable per-wave state threaded through the event loop.
struct Wave {
    job_ids: Vec<JobId>,
    schedule: Schedule,
    heap: BinaryHeap<Reverse<(SimTime, u64, EventKind)>>,
    seq: u64,
    /// Global task numbering: task `(ji, t)` owns arena slot
    /// `task_base[ji] + t.index()`.
    task_base: Vec<usize>,
    /// Unsatisfied incoming-edge counts, indexed by global task number.
    deps_left: Vec<u32>,
    /// Per-device ready queues.
    queues: Vec<Vec<Queued>>,
    /// Per-device lane free times.
    lane_free: Vec<Vec<SimTime>>,
    /// Task-exit cleanup deferred until virtual time passes the task's
    /// finish: tasks overlapping in virtual time must have overlapping
    /// footprints in the pool. Min-heap on `(finish, seq)`; the seq
    /// tie-break preserves insertion order among equal finish times.
    pending_exits: BinaryHeap<Reverse<(SimTime, u64, OwnerId)>>,
    exit_seq: u64,
    /// Handed-over input regions awaiting each consumer (global task
    /// number).
    inputs: Vec<Vec<RegionId>>,
    start_at: Vec<SimTime>,
    finish_at: Vec<SimTime>,
    /// Job-scoped published-region maps (user-facing string keys).
    published: Vec<HashMap<String, RegionId>>,
    global_state: Vec<Option<RegionId>>,
    /// Events popped off the heap (the loop's unit of work).
    events: u64,
    report: RunReport,
}

impl Wave {
    fn push_event(&mut self, at: SimTime, kind: EventKind) {
        self.heap.push(Reverse((at, self.seq, kind)));
        self.seq += 1;
    }

    /// Global arena slot of a task.
    fn gx(&self, ji: usize, task: TaskId) -> usize {
        self.task_base[ji] + task.index()
    }

    fn defer_exit(&mut self, finish: SimTime, who: OwnerId) {
        self.pending_exits.push(Reverse((finish, self.exit_seq, who)));
        self.exit_seq += 1;
    }
}

/// Runs one admission wave (the whole batch when admission is off).
/// `offsets` are per-job arrival delays relative to the wave start.
pub(crate) fn run_wave(
    rt: &mut Runtime,
    jobs: Vec<JobSpec>,
    offsets: Vec<SimDuration>,
) -> Result<RunReport, DisaggError> {
    let t0 = rt.clock;
    let trace_mark = rt.trace.len();
    // Report only this run's audit findings, not the runtime's whole
    // history.
    let audit_mark = rt.auditor.violations.len();
    let denial_mark = rt.auditor.denials;
    let job_ids: Vec<JobId> = jobs
        .iter()
        .map(|_| {
            let id = JobId(rt.next_job);
            rt.next_job += 1;
            id
        })
        .collect();
    let pairs: Vec<(JobId, &JobSpec)> = job_ids.iter().copied().zip(jobs.iter()).collect();
    let schedule = Scheduler::new(rt.config.sched).plan(&rt.topo, &pairs)?;

    // Job-wide global state, placed where every assigned device can
    // address it.
    let mut global_state: Vec<Option<RegionId>> = vec![None; jobs.len()];
    for (ji, (&jid, spec)) in job_ids.iter().zip(jobs.iter()).enumerate() {
        if spec.global_state_bytes == 0 {
            continue;
        }
        let mut computes: Vec<ComputeId> = (0..spec.tasks.len())
            .filter_map(|t| schedule.assignment(jid, TaskId(t as u32)))
            .collect();
        computes.dedup();
        let props = RegionType::GlobalState.properties();
        let dev = rt
            .engine
            .choose_shared(&rt.topo, rt.mgr.pool(), &computes, &props, spec.global_state_bytes)
            .ok_or(DisaggError::Placement {
                job: jid,
                task: TaskId(0),
                what: "global state",
            })?;
        let id = rt.mgr.alloc(
            dev,
            spec.global_state_bytes,
            RegionType::GlobalState,
            props.clone(),
            OwnerId::Job(jid.0),
            t0,
        )?;
        rt.auditor
            .check_placement(&rt.topo, computes[0], id, dev, &props);
        rt.trace.push(TraceEvent::Alloc {
            region: id.0,
            dev,
            bytes: spec.global_state_bytes,
            at: t0,
        });
        global_state[ji] = Some(id);
    }

    // One-time global task numbering: per-job offsets into flat arenas.
    let mut task_base = Vec::with_capacity(jobs.len());
    let mut total_tasks = 0usize;
    for spec in &jobs {
        task_base.push(total_tasks);
        total_tasks += spec.tasks.len();
    }
    let mut deps_left = Vec::with_capacity(total_tasks);
    for spec in &jobs {
        deps_left.extend(spec.dag.indegrees().into_iter().map(|d| d as u32));
    }

    let mut w = Wave {
        job_ids,
        schedule,
        heap: BinaryHeap::new(),
        seq: 0,
        task_base,
        deps_left,
        queues: vec![Vec::new(); rt.topo.compute_devices().len()],
        lane_free: rt
            .topo
            .compute_devices()
            .iter()
            .map(|m| vec![t0; m.slots as usize])
            .collect(),
        pending_exits: BinaryHeap::new(),
        exit_seq: 0,
        inputs: vec![Vec::new(); total_tasks],
        start_at: vec![SimTime::ZERO; total_tasks],
        finish_at: vec![SimTime::ZERO; total_tasks],
        published: jobs.iter().map(|_| HashMap::new()).collect(),
        global_state,
        events: 0,
        report: RunReport::default(),
    };

    // Seed the frontier: source tasks become ready when their job
    // arrives.
    for (ji, spec) in jobs.iter().enumerate() {
        let arrival = t0 + offsets[ji];
        for task in spec.dag.frontier() {
            w.push_event(arrival, EventKind::Ready { ji, task });
        }
    }

    // The event loop: strictly non-decreasing virtual time.
    while let Some(Reverse((at, _, kind))) = w.heap.pop() {
        w.events += 1;
        match kind {
            EventKind::Ready { ji, task } => enqueue(rt, &mut w, &jobs, ji, task, at)?,
            EventKind::EdgeDone { ji, task } => {
                let g = w.gx(ji, task);
                w.deps_left[g] -= 1;
                if w.deps_left[g] == 0 {
                    enqueue(rt, &mut w, &jobs, ji, task, at)?;
                }
            }
            EventKind::LaneFree { compute } => service(rt, &mut w, &jobs, compute, at)?,
        }
    }
    assert_eq!(
        w.report.tasks.len(),
        total_tasks,
        "event heap drained with tasks unrun; DAG validation should prevent this"
    );

    // End of wave: flush the remaining task exits in time order, then
    // release job-scoped regions; App-scoped (persistent) regions
    // survive.
    while let Some(Reverse((t, _, who_exited))) = w.pending_exits.pop() {
        rt.lifetime.task_exit(&mut rt.mgr, &mut rt.trace, who_exited, t);
    }
    for &jid in &w.job_ids {
        let _ = rt.mgr.release_all(OwnerId::Job(jid.0));
    }

    // Feed the wave's accesses into the hotness tracker (one decay tick
    // per wave so old heat fades).
    rt.hotness.decay();
    for e in &rt.trace.events()[trace_mark..] {
        match *e {
            TraceEvent::Access { region, bytes, at, .. } => {
                rt.hotness.record(RegionId(region), bytes, at);
            }
            TraceEvent::Free { region, .. } => {
                rt.hotness.forget(RegionId(region));
            }
            _ => {}
        }
    }

    let end = w.finish_at.iter().copied().fold(t0, SimTime::max);
    rt.clock = end;
    let mut report = w.report;
    report.events = w.events;
    report.makespan = end - t0;
    report.bytes_moved = rt.trace.bytes_moved();
    report.bytes_ownership_transferred = rt.trace.bytes_transferred_by_ownership();
    report.placements = std::mem::take(&mut rt.engine.decisions);
    report.violations = rt.auditor.violations[audit_mark..].to_vec();
    report.denials = rt.auditor.denials - denial_mark;
    report.devices = rt
        .topo
        .mem_ids()
        .map(|dev| DeviceSummary {
            dev,
            peak_bytes: rt.mgr.pool().peak(dev),
            capacity: rt.mgr.pool().capacity(dev),
            bytes_transferred: rt.ledger.stats(ResourceKey::Mem(dev)).bytes.round() as u64,
        })
        .collect();
    report.tasks.sort_by_key(|t| (t.finish, t.job, t.task));
    // The DAG the wave honored, for critical-path analysis.
    for (ji, spec) in jobs.iter().enumerate() {
        let jid = w.job_ids[ji];
        for ti in 0..spec.dag.len() {
            let task = TaskId(ti as u32);
            for &succ in spec.dag.successors(task) {
                report.edges.push((jid, task, succ));
            }
        }
    }
    report.metrics = rt.config.observer.metrics();
    Ok(report)
}

/// A ready task joins its assigned device's queue (rerouted if the
/// node is down), then the device tries to dispatch.
fn enqueue(
    rt: &mut Runtime,
    w: &mut Wave,
    jobs: &[JobSpec],
    ji: usize,
    task: TaskId,
    at: SimTime,
) -> Result<(), DisaggError> {
    let jid = w.job_ids[ji];
    let entry = *w.schedule.entry(jid, task).expect("every task is scheduled");

    // Fault-aware admission: fall back to the cheapest live eligible
    // device if the assigned one's node is down at ready time.
    let mut compute = entry.compute;
    if rt
        .config
        .faults
        .node_down(rt.topo.node_of_compute(compute), at)
    {
        compute = Scheduler::ranked_candidates(&rt.topo, &jobs[ji], task)
            .into_iter()
            .map(|(c, _)| c)
            .find(|&c| !rt.config.faults.node_down(rt.topo.node_of_compute(c), at))
            .ok_or(DisaggError::NoComputeAvailable { job: jid, task })?;
    }

    rt.trace.push(TraceEvent::TaskQueued {
        job: jid.0,
        task: task.0 as u64,
        on: compute,
        at,
    });
    w.queues[compute.index()].push(Queued {
        ji,
        task,
        queued_at: at,
        rank: entry.rank,
        est: entry.est_duration(),
    });
    service(rt, w, jobs, compute, at)
}

/// Picks the queue index to dispatch next under a policy. Ties always
/// fall back to (queue time, job, task) so dispatch is deterministic.
fn pick(queue: &[Queued], policy: QueuePolicy) -> usize {
    let tiebreak = |q: &Queued| (q.queued_at, q.ji, q.task);
    let best = match policy {
        QueuePolicy::CostRank => queue.iter().enumerate().min_by(|(_, a), (_, b)| {
            b.rank
                .total_cmp(&a.rank)
                .then_with(|| tiebreak(a).cmp(&tiebreak(b)))
        }),
        QueuePolicy::Fifo => queue
            .iter()
            .enumerate()
            .min_by_key(|(_, q)| tiebreak(q)),
        QueuePolicy::ShortestFirst => queue
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.est.cmp(&b.est).then_with(|| tiebreak(a).cmp(&tiebreak(b)))),
    };
    best.map(|(i, _)| i).expect("queue is non-empty")
}

/// Dispatches queued tasks into free lanes until the device runs out
/// of either.
fn service(
    rt: &mut Runtime,
    w: &mut Wave,
    jobs: &[JobSpec],
    compute: ComputeId,
    now: SimTime,
) -> Result<(), DisaggError> {
    loop {
        if w.queues[compute.index()].is_empty() {
            return Ok(());
        }
        let Some(lane) = w.lane_free[compute.index()]
            .iter()
            .enumerate()
            .filter(|&(_, &f)| f <= now)
            .min_by_key(|&(i, &f)| (f, i))
            .map(|(i, _)| i)
        else {
            return Ok(());
        };
        let qi = pick(&w.queues[compute.index()], rt.config.queue);
        // pick() selects by a strict total order on (rank, queue time,
        // job, task), so the winner is position-independent and the
        // O(1) swap_remove cannot perturb future dispatch decisions.
        let q = w.queues[compute.index()].swap_remove(qi);
        run_task(rt, w, jobs, q, compute, lane, now)?;
    }
}

/// Executes one task at `start`: allocates its declared regions, runs
/// the body against the virtual clock, survives mid-task crashes, then
/// hands its output over to successors and emits their edge events.
#[allow(clippy::too_many_lines)]
fn run_task(
    rt: &mut Runtime,
    w: &mut Wave,
    jobs: &[JobSpec],
    q: Queued,
    mut compute: ComputeId,
    lane: usize,
    start: SimTime,
) -> Result<(), DisaggError> {
    let ji = q.ji;
    let task = q.task;
    let jid = w.job_ids[ji];
    let spec = &jobs[ji];
    let tspec = &spec.tasks[task.index()];
    let eff = tspec.props.effective(&spec.defaults);
    let who = OwnerId::Task {
        job: jid.0,
        task: task.0 as u64,
    };

    rt.trace.push(TraceEvent::TaskDispatch {
        job: jid.0,
        task: task.0 as u64,
        on: compute,
        at: start,
        waited: start - q.queued_at,
    });

    // Flush exits whose virtual finish precedes this start: their
    // regions are genuinely gone by the time this task allocates.
    while let Some(&Reverse((t, _, who_exited))) = w.pending_exits.peek() {
        if t <= start {
            w.pending_exits.pop();
            rt.lifetime.task_exit(&mut rt.mgr, &mut rt.trace, who_exited, t);
        } else {
            break;
        }
    }

    // --- Region allocation, by declared properties. ---
    let g = w.gx(ji, task);
    let mut placements: Vec<(&'static str, RegionId, MemDeviceId)> = Vec::new();
    let mut regions = TaskRegions {
        inputs: std::mem::take(&mut w.inputs[g]),
        global_state: w.global_state[ji],
        ..TaskRegions::default()
    };

    if tspec.private_scratch > 0 {
        let mut props = RegionType::PrivateScratch.properties();
        if let Some(latency) = eff.mem_latency {
            props.latency = latency;
        }
        props.confidential = eff.confidential;
        let dev = rt
            .engine
            .choose(&rt.topo, rt.mgr.pool(), compute, &props, tspec.private_scratch)
            .ok_or(DisaggError::Placement { job: jid, task, what: "private scratch" })?;
        let id = rt.mgr.alloc(
            dev,
            tspec.private_scratch,
            RegionType::PrivateScratch,
            props.clone(),
            who,
            start,
        )?;
        rt.auditor.check_placement(&rt.topo, compute, id, dev, &props);
        rt.trace.push(TraceEvent::Alloc { region: id.0, dev, bytes: tspec.private_scratch, at: start });
        placements.push(("private_scratch", id, dev));
        regions.private_scratch = Some(id);
    }

    if tspec.output_bytes > 0 {
        let mut props = RegionType::Output.properties();
        props.persistent = eff.persistent;
        props.confidential = eff.confidential;
        // Co-placement: every consumer must be able to address the
        // output for handover to be a pure transfer.
        let mut accessors = vec![compute];
        for &s in spec.dag.successors(task) {
            if let Some(c) = w.schedule.assignment(jid, s) {
                if !accessors.contains(&c) {
                    accessors.push(c);
                }
            }
        }
        let dev = rt
            .engine
            .choose_shared(&rt.topo, rt.mgr.pool(), &accessors, &props, tspec.output_bytes)
            .or_else(|| {
                // Fall back to producer-only placement (handover will
                // copy).
                rt.engine
                    .choose(&rt.topo, rt.mgr.pool(), compute, &props, tspec.output_bytes)
            })
            .ok_or(DisaggError::Placement { job: jid, task, what: "output" })?;
        let id = rt.mgr.alloc(
            dev,
            tspec.output_bytes,
            RegionType::Output,
            props.clone(),
            who,
            start,
        )?;
        rt.auditor.check_placement(&rt.topo, compute, id, dev, &props);
        rt.trace.push(TraceEvent::Alloc { region: id.0, dev, bytes: tspec.output_bytes, at: start });
        placements.push(("output", id, dev));
        regions.output = Some(id);
    }

    if tspec.global_scratch > 0 {
        let mut props = RegionType::GlobalScratch.properties();
        props.confidential = eff.confidential;
        let mut computes: Vec<ComputeId> = (0..spec.tasks.len())
            .filter_map(|t| w.schedule.assignment(jid, TaskId(t as u32)))
            .collect();
        computes.dedup();
        let dev = rt
            .engine
            .choose_shared(&rt.topo, rt.mgr.pool(), &computes, &props, tspec.global_scratch)
            .ok_or(DisaggError::Placement { job: jid, task, what: "global scratch" })?;
        let id = rt.mgr.alloc(
            dev,
            tspec.global_scratch,
            RegionType::GlobalScratch,
            props.clone(),
            who,
            start,
        )?;
        rt.auditor.check_placement(&rt.topo, compute, id, dev, &props);
        rt.trace.push(TraceEvent::Alloc { region: id.0, dev, bytes: tspec.global_scratch, at: start });
        placements.push(("global_scratch", id, dev));
        regions.global_scratch = Some(id);
    }

    // --- Execute the body. ---
    rt.trace.push(TraceEvent::TaskStart {
        job: jid.0,
        task: task.0 as u64,
        on: compute,
        at: start,
    });
    let regions_snapshot = regions.clone();
    let policy = rt.config.recovery;
    let (mut finish, mut stats, mut body_result) =
        run_body_once(rt, &mut w.published[ji], tspec, regions.clone(), compute, who, start);

    // Mid-task fault recovery: if a fault interrupted the attempt while
    // it ran — the executing node crashing, a backing device failing,
    // the bottleneck link dropping — that attempt's work is lost. Task
    // bodies are re-runnable (`Fn`), so after the virtual-time
    // detection delay and the policy's exponential backoff the task is
    // re-placed on the cheapest surviving candidate from the
    // scheduler's cost ranking and executed again; the makespan pays
    // for every attempt. The retry budget bounds how much work a
    // flapping resource can waste before the run fails cleanly.
    let mut attempt_start = start;
    let mut retries: u32 = 0;
    let mut handled = None;
    if !rt.config.faults.is_empty() {
        while body_result.is_ok() {
            let Some((idx, fault_at)) =
                first_interrupt(rt, compute, &placements, handled, attempt_start, finish)
            else {
                break;
            };
            handled = Some(idx);
            retries += 1;
            if retries > policy.max_retries {
                return Err(DisaggError::RetriesExhausted {
                    job: jid,
                    task,
                    attempts: retries,
                });
            }
            let detect_at = fault_at + policy.detection_delay;
            rt.trace.push(TraceEvent::FaultDetected {
                job: jid.0,
                task: task.0 as u64,
                on: compute,
                at: detect_at,
            });
            let replacement = Scheduler::ranked_candidates(&rt.topo, spec, task)
                .into_iter()
                .map(|(c, _)| c)
                .find(|&c| !rt.config.faults.node_down(rt.topo.node_of_compute(c), detect_at))
                .ok_or(DisaggError::NoComputeAvailable { job: jid, task })?;
            let relaunch_at = detect_at + policy.backoff_for(retries);
            rt.trace.push(TraceEvent::TaskRetry {
                job: jid.0,
                task: task.0 as u64,
                from: compute,
                to: replacement,
                attempt: u64::from(retries),
                at: relaunch_at,
                lost: detect_at - attempt_start,
            });
            compute = replacement;
            attempt_start = relaunch_at;
            let (f, s, r) = run_body_once(
                rt,
                &mut w.published[ji],
                tspec,
                regions.clone(),
                compute,
                who,
                attempt_start,
            );
            finish = f;
            stats = s;
            body_result = r;
        }
    }

    // Straggler mitigation: when enabled, an attempt that overran `k`
    // times its cost-model estimate gets a speculative twin on the
    // next-best surviving device, and the task finishes with whichever
    // attempt completes first (the loser's work is sunk cost).
    if let Some(k) = policy.straggler_factor {
        let allowance = SimDuration::from_nanos_f64(q.est.0 as f64 * k);
        if body_result.is_ok()
            && allowance > SimDuration::ZERO
            && finish - attempt_start > allowance
        {
            let spawn_at = attempt_start + allowance;
            let backup = Scheduler::ranked_candidates(&rt.topo, spec, task)
                .into_iter()
                .map(|(c, _)| c)
                .find(|&c| {
                    c != compute
                        && !rt.config.faults.node_down(rt.topo.node_of_compute(c), spawn_at)
                });
            if let Some(backup) = backup {
                retries += 1;
                rt.trace.push(TraceEvent::TaskRetry {
                    job: jid.0,
                    task: task.0 as u64,
                    from: compute,
                    to: backup,
                    attempt: u64::from(retries),
                    at: spawn_at,
                    lost: SimDuration::ZERO,
                });
                let (f, s, r) = run_body_once(
                    rt,
                    &mut w.published[ji],
                    tspec,
                    regions.clone(),
                    backup,
                    who,
                    spawn_at,
                );
                if r.is_ok() && f < finish {
                    compute = backup;
                    finish = f;
                    stats = s;
                    body_result = r;
                }
            }
        }
    }

    if let Err(error) = body_result {
        // Record the denial if it was a confidentiality rejection.
        if error.is_confidentiality_denial() {
            rt.auditor.record_denial(RegionId(u64::MAX), None, Some(jid.0));
        }
        return Err(DisaggError::Task {
            job: jid,
            task,
            name: tspec.name.clone(),
            error,
        });
    }

    // Confidential data leaving the trust boundary pays the encryption
    // toll on every written byte.
    if eff.confidential {
        let crypto_bytes: u64 = placements
            .iter()
            .filter(|(_, _, dev)| needs_encryption(&rt.topo, *dev))
            .map(|_| stats.bytes_written)
            .sum();
        if crypto_bytes > 0 {
            finish += rt
                .topo
                .compute(compute)
                .exec_cost(WorkClass::Crypto, crypto_bytes);
        }
    }

    rt.trace.push(TraceEvent::TaskFinish {
        job: jid.0,
        task: task.0 as u64,
        on: compute,
        at: finish,
    });
    // A crash retry may have moved the task to a device with fewer
    // lanes; clamp the lane index before booking, and free the lane by
    // event so queued work dispatches the instant it opens.
    let lane = lane.min(w.lane_free[compute.index()].len() - 1);
    w.lane_free[compute.index()][lane] = finish;
    w.push_event(finish, EventKind::LaneFree { compute });
    w.start_at[g] = start;
    w.finish_at[g] = finish;

    // --- Handover to successors: emit one EdgeDone per outgoing edge
    // at the instant the consumer can actually address the data. ---
    let succs = spec.dag.successors(task).to_vec();
    if let Some(out) = regions_snapshot.output {
        if succs.is_empty() {
            if eff.persistent {
                // Persistent results outlive the job (App scope).
                rt.mgr.transfer(out, who, OwnerId::App)?;
                // Fault tolerance: keep extra copies on persistent
                // devices in other failure domains.
                if rt.config.persistent_replicas > 1 {
                    let copies = rt.replicate_persistent(
                        out,
                        compute,
                        rt.config.persistent_replicas - 1,
                        finish,
                    )?;
                    w.report.persistent_replicas.push((out, copies));
                }
            }
        } else {
            // Copies for fan-out consumers beyond the first...
            for &s in &succs[1..] {
                let cons = w.schedule.assignment(jid, s).unwrap_or(compute);
                let to = OwnerId::Task { job: jid.0, task: s.0 as u64 };
                let o = rt
                    .lifetime
                    .copy_to(
                        &mut rt.mgr,
                        &rt.topo,
                        &mut rt.ledger,
                        &mut rt.trace,
                        &mut rt.engine,
                        out,
                        None,
                        to,
                        cons,
                        finish,
                    )
                    .map_err(DisaggError::Region)?;
                w.report.handover_copies += 1;
                let gs = w.gx(ji, s);
                w.inputs[gs].push(o.region);
                w.push_event(finish + o.took, EventKind::EdgeDone { ji, task: s });
            }
            // ...then the transfer (or copy) to the first.
            let s0 = succs[0];
            let cons = w.schedule.assignment(jid, s0).unwrap_or(compute);
            let to = OwnerId::Task { job: jid.0, task: s0.0 as u64 };
            let o = rt
                .lifetime
                .handover(
                    &mut rt.mgr,
                    &rt.topo,
                    &mut rt.ledger,
                    &mut rt.trace,
                    &mut rt.engine,
                    out,
                    who,
                    to,
                    cons,
                    finish,
                )
                .map_err(DisaggError::Region)?;
            if o.transferred {
                w.report.ownership_transfers += 1;
            } else {
                w.report.handover_copies += 1;
            }
            let gs0 = w.gx(ji, s0);
            w.inputs[gs0].push(o.region);
            let consumer_streams =
                spec.tasks[s0.index()].props.effective(&spec.defaults).streaming;
            let release = if o.transferred && eff.streaming && consumer_streams {
                // Pipelined edge: the consumer may start on the first
                // chunk while the producer's tail is still streaming.
                start + (finish - start) / PIPELINE_DEPTH
            } else {
                finish
            };
            w.push_event(release + o.took, EventKind::EdgeDone { ji, task: s0 });
        }
    } else {
        // No output region: successors are gated on (pipelined) finish
        // alone.
        for &s in &succs {
            let consumer_streams =
                spec.tasks[s.index()].props.effective(&spec.defaults).streaming;
            let release = if eff.streaming && consumer_streams {
                start + (finish - start) / PIPELINE_DEPTH
            } else {
                finish
            };
            w.push_event(release, EventKind::EdgeDone { ji, task: s });
        }
    }

    // Published global-scratch regions get job scope so later tasks can
    // use them; app-published ones get App scope so later *jobs* can.
    // Everything else the task still owns is released (the §2.3
    // lifetime rule) when virtual time passes its finish.
    for &r in rt.app_published.values() {
        if rt.mgr.is_live(r)
            && rt.mgr.meta(r).map(|m| m.ownership.is_owner(who)).unwrap_or(false)
        {
            rt.mgr.transfer(r, who, OwnerId::App)?;
        }
    }
    let job_published: Vec<RegionId> = w.published[ji].values().copied().collect();
    for r in job_published {
        if rt.mgr.is_live(r)
            && rt.mgr.meta(r).map(|m| m.ownership.is_owner(who)).unwrap_or(false)
        {
            rt.mgr.transfer(r, who, OwnerId::Job(jid.0))?;
        }
    }
    w.defer_exit(finish, who);

    w.report.tasks.push(TaskReport {
        job: jid,
        task,
        name: tspec.name.clone(),
        compute,
        start,
        finish,
        stats,
        placements,
    });
    Ok(())
}
