//! # disagg — programming fully disaggregated systems
//!
//! A runtime system and declarative programming model for dataflow
//! applications on disaggregated hardware, reproducing the vision of
//! "Programming Fully Disaggregated Systems" (HotOS '23) on a simulated
//! rack: typed **Memory Regions** requested by *properties* instead of
//! device names, **memory ownership** with move-semantics handover
//! between tasks, **sync/async access interfaces**, and a runtime that
//! places, schedules, enforces, and accounts for everything.
//!
//! ```
//! use disagg_core::prelude::*;
//!
//! // A two-task pipeline on a fully equipped server.
//! let (topo, _ids) = disagg_hwsim::presets::single_server();
//! let mut rt = Runtime::new(topo, RuntimeConfig::traced());
//!
//! let mut job = JobBuilder::new("quickstart");
//! let produce = job.task(
//!     TaskSpec::new("produce")
//!         .work(WorkClass::Vector, 10_000)
//!         .output_bytes(4096)
//!         .body(|ctx| {
//!             ctx.write_output(0, &[7u8; 4096])?;
//!             Ok(())
//!         }),
//! );
//! let consume = job.task(TaskSpec::new("consume").body(|ctx| {
//!     let mut buf = [0u8; 4096];
//!     ctx.read_input(0, &mut buf)?;
//!     assert!(buf.iter().all(|&b| b == 7));
//!     Ok(())
//! }));
//! job.edge(produce, consume);
//!
//! let report = rt.execute(Submission::job(job.build().unwrap())).unwrap();
//! assert_eq!(report.ownership_transfers, 1, "handover was zero-copy");
//! assert!(report.placements_clean());
//! ```

pub mod breaker;
pub mod config;
pub mod error;
pub mod executor;
pub mod profile;
pub mod report;
pub mod runtime;
pub mod submission;

pub use breaker::{BreakerBank, BreakerState, BreakerTransition, RetryBudgets};
pub use config::{
    BreakerPolicy, FaultControlPolicy, RecoveryPolicy, RetryBudgetPolicy, RuntimeConfig,
};
pub use error::{DisaggError, RuntimeError};
pub use profile::{RunProfile, TaskProfile};
pub use report::{DeviceSummary, FailReason, FailedJob, RunReport, TaskReport};
pub use runtime::Runtime;
pub use submission::{AdmissionPolicy, Submission};

/// Re-export of the observability crate (observers, metrics, timelines,
/// exporters), so `disagg_core::obs::*` is the one-stop surface.
pub use disagg_obs as obs;

/// Everything an application or experiment typically imports.
pub mod prelude {
    pub use crate::breaker::{BreakerBank, BreakerState, BreakerTransition, RetryBudgets};
    pub use crate::config::{
        BreakerPolicy, FaultControlPolicy, RecoveryPolicy, RetryBudgetPolicy, RuntimeConfig,
    };
    pub use crate::error::{DisaggError, RuntimeError};
    pub use crate::profile::{RunProfile, TaskProfile};
    pub use crate::report::{DeviceSummary, FailReason, FailedJob, RunReport, TaskReport};
    pub use crate::runtime::Runtime;
    pub use crate::submission::{AdmissionPolicy, Submission};
    pub use disagg_dataflow::ctx::TaskCtx;
    pub use disagg_dataflow::job::{JobBuilder, JobId, JobSpec};
    pub use disagg_dataflow::task::{TaskError, TaskId, TaskProps, TaskSpec};
    pub use disagg_hwsim::compute::{ComputeKind, WorkClass};
    pub use disagg_hwsim::device::{AccessPattern, MemDeviceKind};
    pub use disagg_hwsim::time::{SimDuration, SimTime};
    pub use disagg_hwsim::topology::Topology;
    pub use disagg_obs::{
        CollectingObserver, FullObserver, MetricsSnapshot, NullObserver, Observer, ObserverSlot,
    };
    pub use disagg_region::props::{
        AccessHint, AccessMode, BandwidthClass, LatencyClass, PropertySet,
    };
    pub use disagg_region::typed::RegionType;
    pub use disagg_sched::lifetime::HandoverPolicy;
    pub use disagg_sched::placement::PlacementPolicy;
    pub use disagg_sched::schedule::{QueuePolicy, SchedPolicy};
}
