//! The discrete-event, out-of-order executor — sharded.
//!
//! [`run_wave`] drives one admission wave of jobs through virtual time
//! as a proper event simulation instead of a serial drain:
//!
//! - an **event heap** keyed on [`SimTime`] orders everything that can
//!   change executor state: a job arriving, a dataflow edge being
//!   satisfied (output handed over / transfer complete), a compute lane
//!   freeing up;
//! - **dependency counting** over [`disagg_dataflow::graph::Dag`]
//!   in-degrees moves a task into its assigned device's **ready queue**
//!   the instant its last incoming edge is satisfied;
//! - each compute device **dispatches** queued tasks into free lanes
//!   according to the configured
//!   [`QueuePolicy`](disagg_sched::schedule::QueuePolicy) (the
//!   scheduler's cost model feeds the default rank order);
//! - compute and region transfer **overlap**: a producer's successors
//!   are unblocked by per-edge events (pipelined early for streaming
//!   pairs), so independent DAG branches advance concurrently on
//!   different devices while transfers are still in flight elsewhere.
//!
//! # Sharding: conservative virtual-time windows
//!
//! With [`RuntimeConfig::shards`](crate::RuntimeConfig) > 1 the
//! topology is partitioned along node boundaries
//! ([`ShardMap::partition`]) and the single event heap becomes one heap
//! **per shard**, each owning its shard's ready queues, lane tables,
//! and deferred exits. The loop then alternates two phases:
//!
//! - **Stage** (parallel): every shard pops its own heap for events in
//!   the window `[T, T + lookahead)`, where `T` is the global minimum
//!   pending time and the lookahead is the cheapest cross-shard link
//!   latency — no cross-shard effect can land sooner, so the pops are
//!   causally independent and run under [`std::thread::scope`] when
//!   the backlog is worth it.
//! - **Commit** (serial): the coordinator repeatedly takes the global
//!   minimum `(time, seq)` across all staged fronts and heap heads and
//!   applies that one event against the shared runtime state. Events
//!   a commit emits for *other* shards land in per-destination
//!   mailboxes and are flushed into the target heaps between commits.
//!
//! Every event carries a sequence number from one wave-global counter,
//! so the union of the shard heaps is totally ordered exactly like the
//! old single heap — commits happen in the identical order at any
//! shard count, making reports, traces, and metrics **bit-for-bit
//! identical** whether the wave runs on 1 shard or 8 (pinned by
//! `tests/equivalence.rs`). Sharding changes how the simulation is
//! *driven*, never what it computes.
//!
//! Determinism: the heap breaks time ties by the monotone sequence
//! number, queue pops break policy ties by (queue time, job, task), and
//! the bandwidth ledger is charged in event order — two runs of the
//! same submission produce identical reports.
//!
//! # Hot-path layout
//!
//! Per-task state is kept in dense arenas indexed by a one-time global
//! task numbering (`task_base[ji] + task.index()`), not `(job, task)`
//! hash maps: dependency counts, pending inputs, and start/finish times
//! are all O(1) array hits. Ready queues are binary heaps whose key
//! *is* the dispatch policy (see [`task::QueueEntry`]). Deferred task
//! exits live in per-shard min-heaps ordered by `(finish, seq)` with a
//! wave-global seq, merged on drain — the same order the old single
//! heap produced, without ever re-sorting inside the event loop.

mod shard;
mod task;

use std::cmp::Reverse;

use disagg_dataflow::job::{JobId, JobSpec};
use disagg_dataflow::task::TaskId;
use disagg_hwsim::contention::ResourceKey;
use disagg_hwsim::fx::FxHashMap;
use disagg_hwsim::ids::ComputeId;
use disagg_hwsim::shard::ShardMap;
use disagg_hwsim::time::{SimDuration, SimTime};
use disagg_hwsim::trace::TraceEvent;
use disagg_obs::sharded::{ShardLanes, Stamped};
use disagg_region::pool::RegionId;
use disagg_region::region::OwnerId;
use disagg_region::typed::RegionType;
use disagg_sched::schedule::{Schedule, Scheduler};
use disagg_sched::shard::ShardTables;

use crate::error::DisaggError;
use crate::report::{DeviceSummary, RunReport};
use crate::runtime::Runtime;

use shard::{flush_exits, ShardState};
use task::{enqueue, service};

/// Minimum total heap backlog before window staging fans out to OS
/// threads; below this the spawn overhead outweighs the pop work and
/// staging runs inline.
const PAR_STAGE_THRESHOLD: usize = 256;

/// What can happen at an instant of virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum EventKind {
    /// A task with no (remaining) prerequisites becomes ready: sources
    /// fire this at their job's arrival time.
    Ready { ji: usize, task: TaskId },
    /// One incoming dataflow edge of a task was satisfied (the
    /// producer's output is transferred/copied and addressable).
    EdgeDone { ji: usize, task: TaskId },
    /// A lane on a compute device became free.
    LaneFree { compute: ComputeId },
}

/// Mutable per-wave state threaded through the event loop.
pub(crate) struct Wave {
    pub job_ids: Vec<JobId>,
    pub schedule: Schedule,
    /// Per-shard event loops (one when sharding is off).
    pub shards: Vec<ShardState>,
    /// The topology partition this wave runs on.
    pub map: ShardMap,
    /// Dense task → shard routing derived from the schedule.
    pub tables: ShardTables,
    /// The shard whose event is being committed right now; events it
    /// emits for itself go straight to its heap, events for peers go
    /// through its outboxes.
    pub current: usize,
    /// Outstanding (unflushed) cross-shard mailbox entries.
    pub pending_mail: usize,
    /// Wave-global event sequence: assigned at push time, totally
    /// ordering the union of all shard heaps.
    pub seq: u64,
    /// Global task numbering: task `(ji, t)` owns arena slot
    /// `task_base[ji] + t.index()`.
    pub task_base: Vec<usize>,
    /// Unsatisfied incoming-edge counts, indexed by global task number.
    pub deps_left: Vec<u32>,
    /// Wave-global exit sequence (same trick as `seq`: the merged
    /// per-shard exit drain reproduces the old single heap's order).
    pub exit_seq: u64,
    /// Reusable merge buffers for the cross-shard exit drain.
    pub exit_lanes: ShardLanes<OwnerId>,
    pub exit_scratch: Vec<Stamped<OwnerId>>,
    /// Handed-over input regions awaiting each consumer (global task
    /// number).
    pub inputs: Vec<Vec<RegionId>>,
    pub start_at: Vec<SimTime>,
    pub finish_at: Vec<SimTime>,
    /// Job-scoped published-region maps (user-facing string keys).
    pub published: Vec<FxHashMap<String, RegionId>>,
    pub global_state: Vec<Option<RegionId>>,
    /// Per-job tenant identity from the submission's request tags —
    /// what the retry-budget buckets are keyed on.
    pub tenants: Vec<Option<u64>>,
    /// Jobs declared failed under fail-fast isolation: their remaining
    /// events are committed as no-ops instead of erroring the wave.
    pub failed: Vec<bool>,
    /// Per-task completion flags (global task numbering), so a fail-fast
    /// knows which of the job's tasks it is cancelling.
    pub ran: Vec<bool>,
    /// Tasks cancelled by fail-fast isolation, for the end-of-wave
    /// drain accounting.
    pub failed_tasks: usize,
    /// Events committed (the loop's unit of work); identical at every
    /// shard count.
    pub events: u64,
    pub report: RunReport,
}

impl Wave {
    /// The shard that owns an event: task events go to the planned
    /// compute's shard (a fault reroute may *execute* elsewhere — that
    /// only moves which heap holds the event, never the commit order),
    /// lane events to the lane's device's shard.
    fn route(&self, kind: EventKind) -> usize {
        match kind {
            EventKind::Ready { ji, task } | EventKind::EdgeDone { ji, task } => self
                .tables
                .shard_of(self.job_ids[ji], task)
                .unwrap_or(0),
            EventKind::LaneFree { compute } => self.map.shard_of_compute(compute),
        }
    }

    /// Emits an event from the currently-committing shard: own-shard
    /// events go straight onto the heap, cross-shard events into the
    /// destination's mailbox (flushed before the next commit; heap
    /// order restores the total order, so flush order is irrelevant).
    pub(crate) fn push_event(&mut self, at: SimTime, kind: EventKind) {
        let dst = self.route(kind);
        let e = (at, self.seq, kind);
        self.seq += 1;
        if dst == self.current {
            self.shards[dst].heap.push(Reverse(e));
        } else {
            self.shards[self.current].outboxes[dst].push_back(e);
            self.pending_mail += 1;
        }
    }

    /// Seeds an event before the loop starts (no committing shard yet):
    /// straight onto the owning shard's heap.
    fn seed_event(&mut self, at: SimTime, kind: EventKind) {
        let dst = self.route(kind);
        self.shards[dst].heap.push(Reverse((at, self.seq, kind)));
        self.seq += 1;
    }

    /// Drains every outbox into its destination heap.
    fn flush_mail(&mut self) {
        if self.pending_mail == 0 {
            return;
        }
        for s in 0..self.shards.len() {
            for d in 0..self.shards.len() {
                if d == s || self.shards[s].outboxes[d].is_empty() {
                    continue;
                }
                // Swap the mailbox out to sidestep the double borrow,
                // then back in so its allocation is reused.
                let mut mail = std::mem::take(&mut self.shards[s].outboxes[d]);
                for e in mail.drain(..) {
                    self.shards[d].heap.push(Reverse(e));
                }
                self.shards[s].outboxes[d] = mail;
            }
        }
        self.pending_mail = 0;
    }

    /// Global arena slot of a task.
    pub(crate) fn gx(&self, ji: usize, task: TaskId) -> usize {
        self.task_base[ji] + task.index()
    }

    /// Defers a task's exit to the shard owning the device it finished
    /// on, stamped with the wave-global exit sequence.
    pub(crate) fn defer_exit(&mut self, finish: SimTime, who: OwnerId, compute: ComputeId) {
        let s = self.map.shard_of_compute(compute);
        self.shards[s]
            .pending_exits
            .push(Reverse((finish, self.exit_seq, who)));
        self.exit_seq += 1;
    }
}

/// Applies one event against the shared runtime state. Called serially,
/// in global `(time, seq)` order, regardless of shard count.
fn commit(
    rt: &mut Runtime,
    w: &mut Wave,
    jobs: &[JobSpec],
    at: SimTime,
    kind: EventKind,
) -> Result<(), DisaggError> {
    w.events += 1;
    match kind {
        // Events addressed to a fail-fast-isolated job are spent as
        // no-ops: the wave keeps draining, the job stays cancelled.
        EventKind::Ready { ji, task } => {
            if w.failed[ji] {
                return Ok(());
            }
            enqueue(rt, w, jobs, ji, task, at)
        }
        EventKind::EdgeDone { ji, task } => {
            if w.failed[ji] {
                return Ok(());
            }
            let g = w.gx(ji, task);
            w.deps_left[g] -= 1;
            if w.deps_left[g] == 0 {
                enqueue(rt, w, jobs, ji, task, at)
            } else {
                Ok(())
            }
        }
        EventKind::LaneFree { compute } => service(rt, w, jobs, compute, at),
    }
}

/// Cores the host actually has. On a single-core host fanning staging
/// out to threads is pure spawn overhead, so the loop stays inline.
fn host_threads() -> usize {
    static N: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *N.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Stages the current window on every shard — in parallel when the
/// host has cores to spare and the backlog justifies the thread
/// spawns, inline otherwise. Staging only touches each shard's own
/// heap, so the parallel arm shares nothing.
fn stage_all(shards: &mut [ShardState], window_end: Option<SimTime>) {
    let backlog: usize = shards.iter().map(|s| s.heap.len()).sum();
    if backlog >= PAR_STAGE_THRESHOLD && host_threads() > 1 {
        std::thread::scope(|scope| {
            for sh in shards.iter_mut() {
                scope.spawn(move || sh.stage(window_end));
            }
        });
    } else {
        for sh in shards.iter_mut() {
            sh.stage(window_end);
        }
    }
}

/// Runs one admission wave (the whole batch when admission is off).
/// `offsets` are per-job arrival delays relative to the wave start;
/// `tags` are optional per-job `(request, tenant)` identities stamped
/// into the trace at arrival for request-centric attribution.
pub(crate) fn run_wave(
    rt: &mut Runtime,
    jobs: Vec<JobSpec>,
    offsets: Vec<SimDuration>,
    tags: Vec<Option<(u64, u64)>>,
) -> Result<RunReport, DisaggError> {
    let t0 = rt.clock;
    let trace_mark = rt.trace.len();
    // Report only this run's audit findings, not the runtime's whole
    // history.
    let audit_mark = rt.auditor.violations.len();
    let denial_mark = rt.auditor.denials;
    let job_ids: Vec<JobId> = jobs
        .iter()
        .map(|_| {
            let id = JobId(rt.next_job);
            rt.next_job += 1;
            id
        })
        .collect();
    let pairs: Vec<(JobId, &JobSpec)> = job_ids.iter().copied().zip(jobs.iter()).collect();
    let schedule = Scheduler::new(rt.config.sched).plan(&rt.topo, &pairs)?;

    // Job-wide global state, placed where every assigned device can
    // address it.
    let mut global_state: Vec<Option<RegionId>> = vec![None; jobs.len()];
    for (ji, (&jid, spec)) in job_ids.iter().zip(jobs.iter()).enumerate() {
        if spec.global_state_bytes == 0 {
            continue;
        }
        let mut computes: Vec<ComputeId> = (0..spec.tasks.len())
            .filter_map(|t| schedule.assignment(jid, TaskId(t as u32)))
            .collect();
        computes.dedup();
        let props = RegionType::GlobalState.properties();
        let dev = rt
            .engine
            .choose_shared(&rt.topo, rt.mgr.pool(), &computes, &props, spec.global_state_bytes)
            .ok_or(DisaggError::Placement {
                job: jid,
                task: TaskId(0),
                what: "global state",
            })?;
        let id = rt.mgr.alloc(
            dev,
            spec.global_state_bytes,
            RegionType::GlobalState,
            props.clone(),
            OwnerId::Job(jid.0),
            t0,
        )?;
        rt.auditor
            .check_placement(&rt.topo, computes[0], id, dev, &props);
        rt.trace.push(TraceEvent::Alloc {
            region: id.0,
            dev,
            bytes: spec.global_state_bytes,
            at: t0,
        });
        global_state[ji] = Some(id);
    }

    // One-time global task numbering: per-job offsets into flat arenas.
    let mut task_base = Vec::with_capacity(jobs.len());
    let mut total_tasks = 0usize;
    for spec in &jobs {
        task_base.push(total_tasks);
        total_tasks += spec.tasks.len();
    }
    let mut deps_left = Vec::with_capacity(total_tasks);
    for spec in &jobs {
        deps_left.extend(spec.dag.indegrees().into_iter().map(|d| d as u32));
    }

    let map = rt.shard_map.clone();
    let tables = ShardTables::build(&schedule, &map);
    let shards: Vec<ShardState> = (0..map.shards())
        .map(|s| ShardState::new(&map, s, &rt.topo, t0))
        .collect();
    let n_shards = shards.len();

    let mut w = Wave {
        job_ids,
        schedule,
        shards,
        map,
        tables,
        current: 0,
        pending_mail: 0,
        seq: 0,
        task_base,
        deps_left,
        exit_seq: 0,
        exit_lanes: ShardLanes::new(n_shards),
        exit_scratch: Vec::new(),
        inputs: vec![Vec::new(); total_tasks],
        start_at: vec![SimTime::ZERO; total_tasks],
        finish_at: vec![SimTime::ZERO; total_tasks],
        published: jobs.iter().map(|_| FxHashMap::default()).collect(),
        global_state,
        tenants: tags.iter().map(|t| t.map(|(_, tenant)| tenant)).collect(),
        failed: vec![false; jobs.len()],
        ran: vec![false; total_tasks],
        failed_tasks: 0,
        events: 0,
        report: RunReport::default(),
    };

    // Seed the frontier: source tasks become ready when their job
    // arrives. Request-tagged jobs stamp their identity into the trace
    // here — serially, before any event commits, so the tag block is
    // bit-for-bit identical at every shard count.
    for (ji, spec) in jobs.iter().enumerate() {
        let arrival = t0 + offsets[ji];
        if let Some(&Some((request, tenant))) = tags.get(ji) {
            rt.trace.push(TraceEvent::RequestTag {
                request,
                tenant,
                job: w.job_ids[ji].0,
                at: arrival,
            });
        }
        for task in spec.dag.frontier() {
            w.seed_event(arrival, EventKind::Ready { ji, task });
        }
    }

    if n_shards == 1 {
        // Fast path: one shard is the classic single-heap loop — no
        // windows, no staging, no mailboxes.
        while let Some(Reverse((at, _, kind))) = w.shards[0].heap.pop() {
            commit(rt, &mut w, &jobs, at, kind)?;
        }
    } else {
        let lookahead = w.map.lookahead();
        loop {
            w.flush_mail();
            let Some(t_min) = w.shards.iter().filter_map(ShardState::next_time).min() else {
                break;
            };
            // Conservative window: nothing committed at or after t_min
            // can affect another shard before t_min + lookahead, so
            // each shard may pop its own backlog below that bound
            // independently. Unbounded when nothing crosses shards.
            let window_end = lookahead.map(|la| t_min + la);
            stage_all(&mut w.shards, window_end);

            // Commit serially in global (time, seq) order, considering
            // both staged fronts and heap heads (commits emit new
            // events, possibly inside the current window).
            loop {
                w.flush_mail();
                let mut best: Option<(SimTime, u64, usize, bool)> = None;
                let mut any_staged = false;
                for (si, sh) in w.shards.iter().enumerate() {
                    if let Some(&(t, seq, _)) = sh.staged.get(sh.cursor) {
                        any_staged = true;
                        if best.is_none_or(|(bt, bs, _, _)| (t, seq) < (bt, bs)) {
                            best = Some((t, seq, si, true));
                        }
                    }
                    if let Some(&Reverse((t, seq, _))) = sh.heap.peek() {
                        if best.is_none_or(|(bt, bs, _, _)| (t, seq) < (bt, bs)) {
                            best = Some((t, seq, si, false));
                        }
                    }
                }
                let Some((_, _, si, from_staged)) = best else {
                    break;
                };
                if !from_staged && !any_staged {
                    // Window exhausted and the next event sits in a
                    // heap: re-window so its shard's peers can stage
                    // their (possibly earlier-than-lookahead) backlog
                    // around it first.
                    break;
                }
                let (at, _, kind) = if from_staged {
                    let sh = &mut w.shards[si];
                    let e = sh.staged[sh.cursor];
                    sh.cursor += 1;
                    e
                } else {
                    let Reverse(e) = w.shards[si].heap.pop().expect("peeked above");
                    e
                };
                w.current = si;
                commit(rt, &mut w, &jobs, at, kind)?;
            }
        }
    }
    assert_eq!(
        w.report.tasks.len() + w.failed_tasks,
        total_tasks,
        "event heap drained with tasks unrun; DAG validation should prevent this"
    );

    // End of wave: flush the remaining task exits in merged time order,
    // then release job-scoped regions; App-scoped (persistent) regions
    // survive.
    flush_exits(rt, &mut w.shards, &mut w.exit_lanes, &mut w.exit_scratch, None);
    for &jid in &w.job_ids {
        let _ = rt.mgr.release_all(OwnerId::Job(jid.0));
    }

    // Feed the wave's accesses into the hotness tracker (one decay tick
    // per wave so old heat fades).
    rt.hotness.decay();
    for e in &rt.trace.events()[trace_mark..] {
        match *e {
            TraceEvent::Access { region, bytes, at, .. } => {
                rt.hotness.record(RegionId(region), bytes, at);
            }
            TraceEvent::Free { region, .. } => {
                rt.hotness.forget(RegionId(region));
            }
            _ => {}
        }
    }

    let end = w.finish_at.iter().copied().fold(t0, SimTime::max);
    rt.clock = end;
    let mut report = w.report;
    report.events = w.events;
    report.makespan = end - t0;
    report.bytes_moved = rt.trace.bytes_moved();
    report.bytes_ownership_transferred = rt.trace.bytes_transferred_by_ownership();
    report.placements = std::mem::take(&mut rt.engine.decisions);
    report.violations = rt.auditor.violations[audit_mark..].to_vec();
    report.denials = rt.auditor.denials - denial_mark;
    report.devices = rt
        .topo
        .mem_ids()
        .map(|dev| DeviceSummary {
            dev,
            peak_bytes: rt.mgr.pool().peak(dev),
            capacity: rt.mgr.pool().capacity(dev),
            bytes_transferred: rt.ledger.stats(ResourceKey::Mem(dev)).bytes.round() as u64,
        })
        .collect();
    report.tasks.sort_by_key(|t| (t.finish, t.job, t.task));
    // The DAG the wave honored, for critical-path analysis.
    for (ji, spec) in jobs.iter().enumerate() {
        let jid = w.job_ids[ji];
        for ti in 0..spec.dag.len() {
            let task = TaskId(ti as u32);
            for &succ in spec.dag.successors(task) {
                report.edges.push((jid, task, succ));
            }
        }
    }
    report.metrics = rt.config.observer.metrics();
    Ok(report)
}
