//! Per-shard event-loop state.
//!
//! Each [`ShardState`] owns everything that belongs to its slice of the
//! topology: the shard's event heap, its devices' ready queues and lane
//! bookkeeping, its deferred task exits, and one outbox per peer shard
//! for cross-shard events. The coordinator in [`super::run_wave`]
//! *commits* events serially in global `(SimTime, seq)` order; the
//! shards' job is to hold state partitioned so the staging phase — the
//! part that scales — can run on all shards at once without sharing.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use disagg_hwsim::shard::ShardMap;
use disagg_hwsim::time::SimTime;
use disagg_hwsim::topology::Topology;
use disagg_obs::sharded::{ShardLanes, Stamped};
use disagg_region::region::OwnerId;

use crate::runtime::Runtime;

use super::task::QueueEntry;
use super::EventKind;

/// A stamped event: `(time, global seq, kind)`. The `seq` is assigned
/// by the coordinator at push time from one wave-global counter, so the
/// union of all shard heaps is totally ordered exactly like the old
/// single heap.
pub(crate) type Event = (SimTime, u64, EventKind);

/// One shard's slice of the wave state.
pub(crate) struct ShardState {
    /// This shard's event heap (min on `(time, seq)`).
    pub heap: BinaryHeap<Reverse<Event>>,
    /// Events staged for the current virtual-time window, ascending.
    pub staged: Vec<Event>,
    /// Consumed prefix of `staged`.
    pub cursor: usize,
    /// Ready queues for this shard's compute devices, indexed by the
    /// shard-local device index (min-heap on [`QueueEntry`]).
    pub queues: Vec<BinaryHeap<Reverse<QueueEntry>>>,
    /// Lane free times for this shard's compute devices (local index).
    pub lane_free: Vec<Vec<SimTime>>,
    /// Task-exit cleanup deferred until virtual time passes the task's
    /// finish. Min-heap on `(finish, seq)`; the seq is *wave-global*,
    /// so the merged drain across shards reproduces the old single
    /// heap's pop order exactly.
    pub pending_exits: BinaryHeap<Reverse<(SimTime, u64, OwnerId)>>,
    /// Outgoing cross-shard events, one mailbox per destination shard.
    /// Flushed into the destinations' heaps by the coordinator between
    /// commits; heap order restores the total order, so flush order is
    /// irrelevant.
    pub outboxes: Vec<VecDeque<Event>>,
}

impl ShardState {
    pub fn new(map: &ShardMap, s: usize, topo: &Topology, t0: SimTime) -> ShardState {
        let computes = map.computes(s);
        ShardState {
            heap: BinaryHeap::new(),
            staged: Vec::new(),
            cursor: 0,
            queues: computes.iter().map(|_| BinaryHeap::new()).collect(),
            lane_free: computes
                .iter()
                .map(|&c| vec![t0; topo.compute(c).slots as usize])
                .collect(),
            pending_exits: BinaryHeap::new(),
            outboxes: (0..map.shards()).map(|_| VecDeque::new()).collect(),
        }
    }

    /// The earliest pending event on this shard (staged front or heap
    /// head), if any.
    pub fn next_time(&self) -> Option<SimTime> {
        let staged = self.staged.get(self.cursor).map(|&(t, _, _)| t);
        let heaped = self.heap.peek().map(|&Reverse((t, _, _))| t);
        match (staged, heaped) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Moves every event strictly before `window_end` (or all of them
    /// when unbounded) from the heap into `staged`, ascending by
    /// construction. This is the phase that runs on all shards in
    /// parallel: it touches only this shard's heap.
    pub fn stage(&mut self, window_end: Option<SimTime>) {
        debug_assert_eq!(self.cursor, self.staged.len());
        self.staged.clear();
        self.cursor = 0;
        while let Some(&Reverse((t, _, _))) = self.heap.peek() {
            if window_end.is_some_and(|end| t >= end) {
                break;
            }
            let Reverse(e) = self.heap.pop().expect("peeked");
            self.staged.push(e);
        }
    }
}

/// Drains deferred task exits across all shards in merged global
/// `(finish, seq)` order — exactly the old single-heap pop order — and
/// applies each exit to the pool. `upto = Some(t)` flushes exits with
/// `finish <= t` (the pre-allocation flush in
/// [`super::task::run_task`]); `None` flushes everything (end of
/// wave). `lanes`/`scratch` are reusable merge buffers owned by the
/// wave.
pub(crate) fn flush_exits(
    rt: &mut Runtime,
    shards: &mut [ShardState],
    lanes: &mut ShardLanes<OwnerId>,
    scratch: &mut Vec<Stamped<OwnerId>>,
    upto: Option<SimTime>,
) {
    for (s, shard) in shards.iter_mut().enumerate() {
        while let Some(&Reverse((t, seq, who))) = shard.pending_exits.peek() {
            if upto.is_some_and(|b| t > b) {
                break;
            }
            shard.pending_exits.pop();
            lanes.push(s, t, seq, who);
        }
    }
    if lanes.is_empty() {
        return;
    }
    lanes.merge_into(scratch);
    for &(t, _, who) in scratch.iter() {
        rt.lifetime.task_exit(&mut rt.mgr, &mut rt.trace, who, t);
    }
}
