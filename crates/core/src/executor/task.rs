//! Task-level execution: dispatch, region allocation, body execution,
//! fault retries, and successor handover.
//!
//! Everything here runs inside the coordinator's serial commit step
//! (see the module docs in [`super`]): handlers may freely mutate the
//! shared [`Runtime`] — the pool, ledger, trace, and auditor — because
//! exactly one event is ever being committed at a time, in global
//! `(SimTime, seq)` order.

use std::cmp::Reverse;

use disagg_dataflow::ctx::{Placer, TaskCtx, TaskRegions};
use disagg_dataflow::job::JobSpec;
use disagg_dataflow::task::{TaskError, TaskId, TaskSpec};
use disagg_hwsim::compute::WorkClass;
use disagg_hwsim::device::{AccessOp, AccessPattern};
use disagg_hwsim::fault::FaultKind;
use disagg_hwsim::fx::FxHashMap;
use disagg_hwsim::ids::{ComputeId, LinkId, MemDeviceId, NodeId};
use disagg_hwsim::time::{SimDuration, SimTime};
use disagg_hwsim::topology::Topology;
use disagg_hwsim::trace::TraceEvent;
use disagg_region::access::{AccessStats, Accessor};
use disagg_region::pool::{MemoryPool, RegionId};
use disagg_region::props::PropertySet;
use disagg_region::region::OwnerId;
use disagg_region::typed::RegionType;
use disagg_sched::enforce::needs_encryption;
use disagg_sched::placement::PlacementEngine;
use disagg_sched::schedule::{QueuePolicy, Scheduler};

use crate::breaker::BreakerState;
use crate::error::DisaggError;
use crate::report::{FailReason, FailedJob, TaskReport};
use crate::runtime::Runtime;

use super::shard::flush_exits;
use super::{EventKind, Wave};

/// Streaming producers release their first chunk after 1/DEPTH of their
/// runtime: a streaming consumer on a pure ownership-transfer edge may
/// start that early instead of waiting for the whole batch — the
/// paper's stream-vs-batch property made operational.
pub(crate) const PIPELINE_DEPTH: u64 = 8;

/// A ready-queue entry: `(policy key, queue time, ji, task, est)`.
///
/// The tuple's lexicographic `Ord` *is* the dispatch order, so the
/// per-device ready queue can be a binary heap (O(log n) pop) instead
/// of the old linear `pick()` scan. The leading `u64` encodes the
/// active [`QueuePolicy`]'s primary criterion (see [`queue_key`]); the
/// `(queue time, ji, task)` tail reproduces `pick()`'s deterministic
/// tie-break exactly. `est` rides along for the straggler check and
/// never influences ordering — `(ji, task)` is unique per queue.
pub(crate) type QueueEntry = (u64, SimTime, usize, TaskId, SimDuration);

/// The heap key's primary criterion under a queue policy (smallest
/// pops first):
///
/// - `CostRank`: `!rank.to_bits()`. Upward ranks are finite and
///   non-negative, where `f64::to_bits` is monotone increasing, so the
///   bitwise complement is monotone *decreasing* — the min-heap pops
///   the highest rank first, matching `total_cmp` descending.
/// - `Fifo`: constant; ordering falls through to queue-arrival time.
/// - `ShortestFirst`: the estimated duration in nanoseconds.
pub(crate) fn queue_key(
    policy: QueuePolicy,
    rank: f64,
    est: SimDuration,
    queued_at: SimTime,
    ji: usize,
    task: TaskId,
) -> QueueEntry {
    let primary = match policy {
        QueuePolicy::CostRank => !rank.to_bits(),
        QueuePolicy::Fifo => 0,
        QueuePolicy::ShortestFirst => est.0,
    };
    (primary, queued_at, ji, task, est)
}

/// A dispatched queue entry, decoded.
pub(crate) struct Queued {
    pub ji: usize,
    pub task: TaskId,
    pub queued_at: SimTime,
    pub est: SimDuration,
}

/// Adapter exposing the placement engine as the programming model's
/// [`Placer`] trait (for ad-hoc allocations inside task bodies).
struct EnginePlacer<'e> {
    engine: &'e mut PlacementEngine,
}

impl Placer for EnginePlacer<'_> {
    fn place(
        &mut self,
        topo: &Topology,
        pool: &MemoryPool,
        compute: ComputeId,
        props: &PropertySet,
        size: u64,
    ) -> Option<MemDeviceId> {
        self.engine.choose(topo, pool, compute, props, size)
    }
}

/// Runs the task body once on `compute`, starting at `at` plus the
/// device's launch overhead. Returns the attempt's virtual finish time,
/// its access statistics, and the body's result.
fn run_body_once(
    rt: &mut Runtime,
    published: &mut FxHashMap<String, RegionId>,
    tspec: &TaskSpec,
    regions: TaskRegions,
    compute: ComputeId,
    who: OwnerId,
    at: SimTime,
) -> (SimTime, AccessStats, Result<(), TaskError>) {
    let launch = SimDuration::from_nanos_f64(rt.topo.compute(compute).launch_overhead_ns);
    let mut acc = Accessor::new(
        &rt.topo,
        &mut rt.ledger,
        &mut rt.mgr,
        &mut rt.trace,
        compute,
        who,
        at + launch,
    );
    // Fault awareness costs a per-access schedule query, so the calm
    // path skips it entirely and stays bit-for-bit identical.
    if !rt.config.faults.is_empty() {
        acc = acc.with_faults(&rt.config.faults);
    }
    let mut placer = EnginePlacer { engine: &mut rt.engine };
    let mut ctx = TaskCtx::new(&mut acc, regions, &mut placer, published, &mut rt.app_published);
    let result = (tspec.body)(&mut ctx);
    (acc.now, acc.stats, result)
}

/// The first fault event in the closed attempt window `[from, to]`,
/// past the progress cursor `after`, that interrupts an attempt running
/// on `compute`: the node hosting it crashing, a device backing one of
/// the task's fresh placements failing, or the bottleneck link to such
/// a device going down. Returns the event's index in the schedule and
/// its strike time; advancing the cursor past handled events keeps the
/// retry loop making progress even under a zero-delay, zero-backoff
/// policy.
fn first_interrupt(
    rt: &Runtime,
    compute: ComputeId,
    placements: &[(&'static str, RegionId, MemDeviceId)],
    after: Option<usize>,
    from: SimTime,
    to: SimTime,
) -> Option<(usize, SimTime)> {
    let node = rt.topo.node_of_compute(compute);
    let links: Vec<LinkId> = placements
        .iter()
        .filter_map(|&(_, _, dev)| {
            rt.topo
                .access_cost_parts(compute, dev, 1, AccessOp::Read, AccessPattern::Sequential)
                .and_then(|p| p.bottleneck_link)
        })
        .collect();
    for (i, e) in rt.config.faults.events().iter().enumerate() {
        if e.at > to {
            break;
        }
        if e.at < from || after.is_some_and(|h| i <= h) {
            continue;
        }
        let hits = match e.kind {
            FaultKind::NodeCrash(n) => n == node,
            FaultKind::DeviceFail(d) => placements.iter().any(|&(_, _, pd)| pd == d),
            FaultKind::LinkDown(l) => links.contains(&l),
            _ => false,
        };
        if hits {
            return Some((i, e.at));
        }
    }
    None
}

/// The cheapest live candidate for (re)placing `task` at `at`,
/// consulting the circuit-breaker bank when one is configured: nodes
/// with open breakers are excluded from the ranking, a cooled-down
/// breaker grants `key` its half-open probe slot (traced), and when
/// *every* live candidate is breaker-blocked the pick falls back to
/// plain liveness — breakers degrade placement quality, never
/// availability. With breakers off this is exactly the legacy
/// "cheapest candidate whose node is up" walk.
fn pick_candidate(
    rt: &mut Runtime,
    spec: &JobSpec,
    task: TaskId,
    at: SimTime,
    key: (u64, u64),
) -> Option<ComputeId> {
    let live: Vec<(ComputeId, NodeId)> =
        Scheduler::ranked_candidates_where(&rt.topo, spec, task, |c| {
            !rt.config.faults.node_down(rt.topo.node_of_compute(c), at)
        })
        .into_iter()
        .map(|(c, _)| (c, rt.topo.node_of_compute(c)))
        .collect();
    if let Some(bank) = rt.breakers.as_mut() {
        let mut chosen = None;
        for &(c, n) in &live {
            let (ok, probe) = bank.allows(n, at, key);
            if ok {
                chosen = Some((c, n, probe.is_some()));
                break;
            }
        }
        if let Some((c, n, probed)) = chosen {
            if probed {
                rt.trace.push(TraceEvent::BreakerProbe { node: n, at });
            }
            return Some(c);
        }
    }
    live.first().map(|&(c, _)| c)
}

/// Fails a whole job fast under
/// [`isolate_failures`](crate::FaultControlPolicy::isolate_failures):
/// the wave keeps draining, every not-yet-run task of the job is
/// cancelled (its pending events commit as no-ops), the regions already
/// handed over to cancelled tasks are scheduled for release, and the
/// report records why. The lane the failing task held is freed at the
/// fail time so the device keeps serving other jobs.
#[allow(clippy::too_many_arguments)]
fn fail_job(
    w: &mut Wave,
    spec: &JobSpec,
    ji: usize,
    task: TaskId,
    compute: ComputeId,
    lane: usize,
    at: SimTime,
    reason: FailReason,
) {
    let jid = w.job_ids[ji];
    w.failed[ji] = true;
    for t in 0..spec.tasks.len() {
        let t_id = TaskId(t as u32);
        if w.ran[w.gx(ji, t_id)] {
            continue;
        }
        w.failed_tasks += 1;
        // Handed-over inputs awaiting a task that will never run are
        // owned by that task; schedule their release at the fail time.
        // (The failing task's own exit below also covers its placements.)
        w.defer_exit(at, OwnerId::Task { job: jid.0, task: u64::from(t_id.0) }, compute);
    }
    let (fsi, fli) = w.map.local_compute(compute);
    let lanes = &mut w.shards[fsi].lane_free[fli];
    let lane = lane.min(lanes.len() - 1);
    lanes[lane] = at;
    w.push_event(at, EventKind::LaneFree { compute });
    w.report.failed_jobs.push(FailedJob {
        job: jid,
        task,
        tenant: w.tenants[ji],
        at,
        reason,
    });
}

/// A ready task joins its assigned device's queue (rerouted if the
/// node is down), then the device tries to dispatch.
pub(crate) fn enqueue(
    rt: &mut Runtime,
    w: &mut Wave,
    jobs: &[JobSpec],
    ji: usize,
    task: TaskId,
    at: SimTime,
) -> Result<(), DisaggError> {
    let jid = w.job_ids[ji];
    let entry = *w.schedule.entry(jid, task).expect("every task is scheduled");

    // Fault-aware admission: fall back to the cheapest live eligible
    // device if the assigned one's node is down at ready time, or (when
    // breakers are configured) if its node's breaker is open.
    let mut compute = entry.compute;
    let key = (jid.0, u64::from(task.0));
    if rt
        .config
        .faults
        .node_down(rt.topo.node_of_compute(compute), at)
    {
        compute = pick_candidate(rt, &jobs[ji], task, at, key)
            .ok_or(DisaggError::NoComputeAvailable { job: jid, task })?;
    } else if rt.breakers.is_some() {
        let node = rt.topo.node_of_compute(compute);
        let (ok, probed) = {
            let bank = rt.breakers.as_mut().expect("checked above");
            let (ok, probe) = bank.allows(node, at, key);
            (ok, probe.is_some())
        };
        if probed {
            rt.trace.push(TraceEvent::BreakerProbe { node, at });
        }
        if !ok {
            compute = pick_candidate(rt, &jobs[ji], task, at, key)
                .ok_or(DisaggError::NoComputeAvailable { job: jid, task })?;
        }
    }

    rt.trace.push(TraceEvent::TaskQueued {
        job: jid.0,
        task: task.0 as u64,
        on: compute,
        at,
    });
    let (si, li) = w.map.local_compute(compute);
    w.shards[si].queues[li].push(Reverse(queue_key(
        rt.config.queue,
        entry.rank,
        entry.est_duration(),
        at,
        ji,
        task,
    )));
    service(rt, w, jobs, compute, at)
}

/// Dispatches queued tasks into free lanes until the device runs out
/// of either. The ready queue is a min-heap on [`QueueEntry`], so the
/// pop *is* the policy decision.
pub(crate) fn service(
    rt: &mut Runtime,
    w: &mut Wave,
    jobs: &[JobSpec],
    compute: ComputeId,
    now: SimTime,
) -> Result<(), DisaggError> {
    let (si, li) = w.map.local_compute(compute);
    loop {
        if w.shards[si].queues[li].is_empty() {
            return Ok(());
        }
        let Some(lane) = w.shards[si].lane_free[li]
            .iter()
            .enumerate()
            .filter(|&(_, &f)| f <= now)
            .min_by_key(|&(i, &f)| (f, i))
            .map(|(i, _)| i)
        else {
            return Ok(());
        };
        let Reverse((_, queued_at, ji, task, est)) =
            w.shards[si].queues[li].pop().expect("checked non-empty");
        if w.failed[ji] {
            // The job failed fast after this entry was queued; discard
            // it without consuming the lane.
            continue;
        }
        run_task(rt, w, jobs, Queued { ji, task, queued_at, est }, compute, lane, now)?;
    }
}

/// Executes one task at `start`: allocates its declared regions, runs
/// the body against the virtual clock, survives mid-task crashes, then
/// hands its output over to successors and emits their edge events.
#[allow(clippy::too_many_lines)]
pub(crate) fn run_task(
    rt: &mut Runtime,
    w: &mut Wave,
    jobs: &[JobSpec],
    q: Queued,
    mut compute: ComputeId,
    lane: usize,
    start: SimTime,
) -> Result<(), DisaggError> {
    let ji = q.ji;
    let task = q.task;
    let jid = w.job_ids[ji];
    let spec = &jobs[ji];
    let tspec = &spec.tasks[task.index()];
    let eff = tspec.props.effective(&spec.defaults);
    let who = OwnerId::Task {
        job: jid.0,
        task: task.0 as u64,
    };

    rt.trace.push(TraceEvent::TaskDispatch {
        job: jid.0,
        task: task.0 as u64,
        on: compute,
        at: start,
        waited: start - q.queued_at,
    });

    // Flush exits whose virtual finish precedes this start: their
    // regions are genuinely gone by the time this task allocates.
    flush_exits(
        rt,
        &mut w.shards,
        &mut w.exit_lanes,
        &mut w.exit_scratch,
        Some(start),
    );

    // --- Region allocation, by declared properties. ---
    let g = w.gx(ji, task);
    let mut placements: Vec<(&'static str, RegionId, MemDeviceId)> = Vec::new();
    let mut regions = TaskRegions {
        inputs: std::mem::take(&mut w.inputs[g]),
        global_state: w.global_state[ji],
        ..TaskRegions::default()
    };

    if tspec.private_scratch > 0 {
        let mut props = RegionType::PrivateScratch.properties();
        if let Some(latency) = eff.mem_latency {
            props.latency = latency;
        }
        props.confidential = eff.confidential;
        let dev = rt
            .engine
            .choose(&rt.topo, rt.mgr.pool(), compute, &props, tspec.private_scratch)
            .ok_or(DisaggError::Placement { job: jid, task, what: "private scratch" })?;
        let id = rt.mgr.alloc(
            dev,
            tspec.private_scratch,
            RegionType::PrivateScratch,
            props.clone(),
            who,
            start,
        )?;
        rt.auditor.check_placement(&rt.topo, compute, id, dev, &props);
        rt.trace.push(TraceEvent::Alloc { region: id.0, dev, bytes: tspec.private_scratch, at: start });
        placements.push(("private_scratch", id, dev));
        regions.private_scratch = Some(id);
    }

    if tspec.output_bytes > 0 {
        let mut props = RegionType::Output.properties();
        props.persistent = eff.persistent;
        props.confidential = eff.confidential;
        // Co-placement: every consumer must be able to address the
        // output for handover to be a pure transfer.
        let mut accessors = vec![compute];
        for &s in spec.dag.successors(task) {
            if let Some(c) = w.schedule.assignment(jid, s) {
                if !accessors.contains(&c) {
                    accessors.push(c);
                }
            }
        }
        let dev = rt
            .engine
            .choose_shared(&rt.topo, rt.mgr.pool(), &accessors, &props, tspec.output_bytes)
            .or_else(|| {
                // Fall back to producer-only placement (handover will
                // copy).
                rt.engine
                    .choose(&rt.topo, rt.mgr.pool(), compute, &props, tspec.output_bytes)
            })
            .ok_or(DisaggError::Placement { job: jid, task, what: "output" })?;
        let id = rt.mgr.alloc(
            dev,
            tspec.output_bytes,
            RegionType::Output,
            props.clone(),
            who,
            start,
        )?;
        rt.auditor.check_placement(&rt.topo, compute, id, dev, &props);
        rt.trace.push(TraceEvent::Alloc { region: id.0, dev, bytes: tspec.output_bytes, at: start });
        placements.push(("output", id, dev));
        regions.output = Some(id);
    }

    if tspec.global_scratch > 0 {
        let mut props = RegionType::GlobalScratch.properties();
        props.confidential = eff.confidential;
        let mut computes: Vec<ComputeId> = (0..spec.tasks.len())
            .filter_map(|t| w.schedule.assignment(jid, TaskId(t as u32)))
            .collect();
        computes.dedup();
        let dev = rt
            .engine
            .choose_shared(&rt.topo, rt.mgr.pool(), &computes, &props, tspec.global_scratch)
            .ok_or(DisaggError::Placement { job: jid, task, what: "global scratch" })?;
        let id = rt.mgr.alloc(
            dev,
            tspec.global_scratch,
            RegionType::GlobalScratch,
            props.clone(),
            who,
            start,
        )?;
        rt.auditor.check_placement(&rt.topo, compute, id, dev, &props);
        rt.trace.push(TraceEvent::Alloc { region: id.0, dev, bytes: tspec.global_scratch, at: start });
        placements.push(("global_scratch", id, dev));
        regions.global_scratch = Some(id);
    }

    // --- Execute the body. ---
    rt.trace.push(TraceEvent::TaskStart {
        job: jid.0,
        task: task.0 as u64,
        on: compute,
        at: start,
    });
    let policy = rt.config.recovery;
    let (mut finish, mut stats, mut body_result) =
        run_body_once(rt, &mut w.published[ji], tspec, regions.clone(), compute, who, start);

    // Mid-task fault recovery: if a fault interrupted the attempt while
    // it ran — the executing node crashing, a backing device failing,
    // the bottleneck link dropping — that attempt's work is lost. Task
    // bodies are re-runnable (`Fn`), so after the virtual-time
    // detection delay and the policy's exponential backoff the task is
    // re-placed on the cheapest surviving candidate from the
    // scheduler's cost ranking and executed again; the makespan pays
    // for every attempt. The retry budget bounds how much work a
    // flapping resource can waste before the run fails cleanly.
    let mut attempt_start = start;
    let mut retries: u32 = 0;
    let mut handled = None;
    if !rt.config.faults.is_empty() {
        let key = (jid.0, u64::from(task.0));
        while body_result.is_ok() {
            let Some((idx, fault_at)) =
                first_interrupt(rt, compute, &placements, handled, attempt_start, finish)
            else {
                break;
            };
            handled = Some(idx);
            retries += 1;
            let detect_at = fault_at + policy.detection_delay;
            // Exhaustion checks, in contract order: the per-task retry
            // cap first (the legacy `RecoveryPolicy` contract), then the
            // tenant's retry budget — a failed charge fails the request
            // fast instead of burning another attempt.
            let tenant = w.tenants[ji];
            let exhausted = if policy.exhausted(retries) {
                Some(FailReason::RetriesExhausted)
            } else if let (Some(t), Some(budgets)) = (tenant, rt.retry_budgets.as_mut()) {
                (!budgets.charge(t, detect_at)).then_some(FailReason::RetryBudgetExhausted)
            } else {
                None
            };
            if let Some(reason) = exhausted {
                if rt.config.fault_control.isolate_failures && tenant.is_some() {
                    fail_job(w, spec, ji, task, compute, lane, detect_at, reason);
                    return Ok(());
                }
                return Err(match reason {
                    FailReason::RetriesExhausted => {
                        DisaggError::RetriesExhausted { job: jid, task, attempts: retries }
                    }
                    FailReason::RetryBudgetExhausted => DisaggError::RetryBudgetExhausted {
                        job: jid,
                        task,
                        tenant: tenant.unwrap_or(0),
                        attempts: retries,
                    },
                });
            }
            rt.trace.push(TraceEvent::FaultDetected {
                job: jid.0,
                task: task.0 as u64,
                on: compute,
                at: detect_at,
            });
            // Charge the node that faulted; a trip excludes it from the
            // replacement ranking below (and from everyone else's).
            if rt.breakers.is_some() {
                let node = rt.topo.node_of_compute(compute);
                let tripped = rt.breakers.as_mut().and_then(|b| b.on_fault(node, detect_at));
                if tripped.is_some() {
                    rt.trace.push(TraceEvent::BreakerTrip { node, at: detect_at });
                }
            }
            let replacement = pick_candidate(rt, spec, task, detect_at, key)
                .ok_or(DisaggError::NoComputeAvailable { job: jid, task })?;
            let relaunch_at = detect_at + policy.backoff_for(retries);
            rt.trace.push(TraceEvent::TaskRetry {
                job: jid.0,
                task: task.0 as u64,
                from: compute,
                to: replacement,
                attempt: u64::from(retries),
                at: relaunch_at,
                lost: detect_at - attempt_start,
            });
            compute = replacement;
            attempt_start = relaunch_at;
            let (f, s, r) = run_body_once(
                rt,
                &mut w.published[ji],
                tspec,
                regions.clone(),
                compute,
                who,
                attempt_start,
            );
            finish = f;
            stats = s;
            body_result = r;
        }
    }

    // Straggler mitigation: when enabled, an attempt that overran `k`
    // times its cost-model estimate gets a speculative twin on the
    // next-best surviving device, and the task finishes with whichever
    // attempt completes first (the loser's work is sunk cost).
    if let Some(k) = policy.straggler_factor {
        let allowance = SimDuration::from_nanos_f64(q.est.0 as f64 * k);
        if body_result.is_ok()
            && allowance > SimDuration::ZERO
            && finish - attempt_start > allowance
        {
            let spawn_at = attempt_start + allowance;
            // Speculation is optional work: when breakers are active a
            // backup only goes to a fully healthy node (read-only check;
            // probe slots are reserved for mandatory retries).
            let backup = Scheduler::ranked_candidates(&rt.topo, spec, task)
                .into_iter()
                .map(|(c, _)| c)
                .find(|&c| {
                    let node = rt.topo.node_of_compute(c);
                    c != compute
                        && !rt.config.faults.node_down(node, spawn_at)
                        && rt
                            .breakers
                            .as_ref()
                            .is_none_or(|b| b.state(node) == BreakerState::Closed)
                });
            if let Some(backup) = backup {
                retries += 1;
                rt.trace.push(TraceEvent::TaskRetry {
                    job: jid.0,
                    task: task.0 as u64,
                    from: compute,
                    to: backup,
                    attempt: u64::from(retries),
                    at: spawn_at,
                    lost: SimDuration::ZERO,
                });
                let (f, s, r) = run_body_once(
                    rt,
                    &mut w.published[ji],
                    tspec,
                    regions.clone(),
                    backup,
                    who,
                    spawn_at,
                );
                if r.is_ok() && f < finish {
                    compute = backup;
                    finish = f;
                    stats = s;
                    body_result = r;
                }
            }
        }
    }

    if let Err(error) = body_result {
        // Record the denial if it was a confidentiality rejection.
        if error.is_confidentiality_denial() {
            rt.auditor.record_denial(RegionId(u64::MAX), None, Some(jid.0));
        }
        return Err(DisaggError::Task {
            job: jid,
            task,
            name: tspec.name.clone(),
            error,
        });
    }

    // Confidential data leaving the trust boundary pays the encryption
    // toll on every written byte.
    if eff.confidential {
        let crypto_bytes: u64 = placements
            .iter()
            .filter(|(_, _, dev)| needs_encryption(&rt.topo, *dev))
            .map(|_| stats.bytes_written)
            .sum();
        if crypto_bytes > 0 {
            finish += rt
                .topo
                .compute(compute)
                .exec_cost(WorkClass::Crypto, crypto_bytes);
        }
    }

    rt.trace.push(TraceEvent::TaskFinish {
        job: jid.0,
        task: task.0 as u64,
        on: compute,
        at: finish,
    });
    // A clean finish heals: the node's strike count resets, and any
    // breaker this task held a half-open probe slot on closes — even
    // when speculation moved the winning attempt to a different node.
    if rt.breakers.is_some() {
        let node = rt.topo.node_of_compute(compute);
        let closed = rt
            .breakers
            .as_mut()
            .map(|b| b.on_success(node, (jid.0, u64::from(task.0)), finish))
            .unwrap_or_default();
        for t in closed {
            rt.trace.push(TraceEvent::BreakerClose { node: t.node, at: finish });
        }
    }
    // A crash retry may have moved the task to a device with fewer
    // lanes (possibly on another shard); clamp the lane index before
    // booking, and free the lane by event so queued work dispatches the
    // instant it opens.
    let (fsi, fli) = w.map.local_compute(compute);
    let lanes = &mut w.shards[fsi].lane_free[fli];
    let lane = lane.min(lanes.len() - 1);
    lanes[lane] = finish;
    w.push_event(finish, EventKind::LaneFree { compute });
    w.start_at[g] = start;
    w.finish_at[g] = finish;

    // --- Handover to successors: emit one EdgeDone per outgoing edge
    // at the instant the consumer can actually address the data. ---
    let succs = spec.dag.successors(task);
    if let Some(out) = regions.output {
        if succs.is_empty() {
            if eff.persistent {
                // Persistent results outlive the job (App scope).
                rt.mgr.transfer(out, who, OwnerId::App)?;
                // Fault tolerance: keep extra copies on persistent
                // devices in other failure domains.
                if rt.config.persistent_replicas > 1 {
                    let copies = rt.replicate_persistent(
                        out,
                        compute,
                        rt.config.persistent_replicas - 1,
                        finish,
                    )?;
                    w.report.persistent_replicas.push((out, copies));
                }
            }
        } else {
            // Copies for fan-out consumers beyond the first...
            for &s in &succs[1..] {
                let cons = w.schedule.assignment(jid, s).unwrap_or(compute);
                let to = OwnerId::Task { job: jid.0, task: s.0 as u64 };
                let o = rt
                    .lifetime
                    .copy_to(
                        &mut rt.mgr,
                        &rt.topo,
                        &mut rt.ledger,
                        &mut rt.trace,
                        &mut rt.engine,
                        out,
                        None,
                        to,
                        cons,
                        finish,
                    )
                    .map_err(DisaggError::Region)?;
                w.report.handover_copies += 1;
                let gs = w.gx(ji, s);
                w.inputs[gs].push(o.region);
                w.push_event(finish + o.took, EventKind::EdgeDone { ji, task: s });
            }
            // ...then the transfer (or copy) to the first.
            let s0 = succs[0];
            let cons = w.schedule.assignment(jid, s0).unwrap_or(compute);
            let to = OwnerId::Task { job: jid.0, task: s0.0 as u64 };
            let o = rt
                .lifetime
                .handover(
                    &mut rt.mgr,
                    &rt.topo,
                    &mut rt.ledger,
                    &mut rt.trace,
                    &mut rt.engine,
                    out,
                    who,
                    to,
                    cons,
                    finish,
                )
                .map_err(DisaggError::Region)?;
            if o.transferred {
                w.report.ownership_transfers += 1;
            } else {
                w.report.handover_copies += 1;
            }
            let gs0 = w.gx(ji, s0);
            w.inputs[gs0].push(o.region);
            let consumer_streams =
                spec.tasks[s0.index()].props.effective(&spec.defaults).streaming;
            let release = if o.transferred && eff.streaming && consumer_streams {
                // Pipelined edge: the consumer may start on the first
                // chunk while the producer's tail is still streaming.
                start + (finish - start) / PIPELINE_DEPTH
            } else {
                finish
            };
            w.push_event(release + o.took, EventKind::EdgeDone { ji, task: s0 });
        }
    } else {
        // No output region: successors are gated on (pipelined) finish
        // alone.
        for &s in succs {
            let consumer_streams =
                spec.tasks[s.index()].props.effective(&spec.defaults).streaming;
            let release = if eff.streaming && consumer_streams {
                start + (finish - start) / PIPELINE_DEPTH
            } else {
                finish
            };
            w.push_event(release, EventKind::EdgeDone { ji, task: s });
        }
    }

    // Published global-scratch regions get job scope so later tasks can
    // use them; app-published ones get App scope so later *jobs* can.
    // Everything else the task still owns is released (the §2.3
    // lifetime rule) when virtual time passes its finish.
    for &r in rt.app_published.values() {
        if rt.mgr.is_live(r)
            && rt.mgr.meta(r).map(|m| m.ownership.is_owner(who)).unwrap_or(false)
        {
            rt.mgr.transfer(r, who, OwnerId::App)?;
        }
    }
    let job_published: Vec<RegionId> = w.published[ji].values().copied().collect();
    for r in job_published {
        if rt.mgr.is_live(r)
            && rt.mgr.meta(r).map(|m| m.ownership.is_owner(who)).unwrap_or(false)
        {
            rt.mgr.transfer(r, who, OwnerId::Job(jid.0))?;
        }
    }
    w.defer_exit(finish, who, compute);

    w.ran[g] = true;
    w.report.tasks.push(TaskReport {
        job: jid,
        task,
        name: tspec.name.clone(),
        compute,
        start,
        finish,
        stats,
        placements,
    });
    Ok(())
}
