//! The runtime: placement + scheduling + execution of dataflow jobs.
//!
//! [`Runtime::run`] is where the paper's vision comes together. For each
//! submitted batch of jobs it:
//!
//! 1. plans a schedule (HEFT by default) mapping tasks to compute devices;
//! 2. allocates every declared Memory Region by *properties* — private
//!    scratch near the executing device, outputs placed so that all
//!    consumers can address them, job-wide global state on coherent
//!    memory;
//! 3. executes task bodies against the virtual clock, charging every
//!    access (with contention) and compute step;
//! 4. hands outputs to successors — as a pure ownership transfer whenever
//!    the consumer's device can address the memory, as a physical copy
//!    otherwise;
//! 5. releases each region when its last owner finishes (the lifetime
//!    rule of §2.3), audits every placement against its declared
//!    properties, and reports utilization, movement, and makespan.

use std::collections::HashMap;

use disagg_dataflow::ctx::{Placer, TaskCtx, TaskRegions};
use disagg_dataflow::job::{JobId, JobSpec};
use disagg_dataflow::task::{TaskError, TaskId};
use disagg_hwsim::compute::WorkClass;
use disagg_hwsim::contention::{BandwidthLedger, ResourceKey};
use disagg_hwsim::ids::{ComputeId, MemDeviceId};
use disagg_hwsim::time::{SimDuration, SimTime};
use disagg_hwsim::topology::Topology;
use disagg_hwsim::trace::{Trace, TraceEvent};
use disagg_region::access::Accessor;
use disagg_region::hotness::HotnessTracker;
use disagg_region::migrate::{migrate, TieringPolicy};
use disagg_region::pool::{MemoryPool, RegionId};
use disagg_region::props::PropertySet;
use disagg_region::region::{OwnerId, RegionError, RegionManager};
use disagg_region::typed::RegionType;
use disagg_sched::enforce::{needs_encryption, Auditor};
use disagg_sched::lifetime::LifetimeManager;
use disagg_sched::placement::PlacementEngine;
use disagg_sched::schedule::{SchedError, Scheduler};

use crate::config::RuntimeConfig;
use crate::report::{DeviceSummary, RunReport, TaskReport};

/// Errors surfaced by the runtime.
#[derive(Debug)]
pub enum RuntimeError {
    /// Scheduling failed.
    Sched(SchedError),
    /// A region operation failed outside a task body.
    Region(RegionError),
    /// No feasible device for one of a task's declared regions.
    Placement {
        /// The job.
        job: JobId,
        /// The task.
        task: TaskId,
        /// Which region kind could not be placed.
        what: &'static str,
    },
    /// Every eligible compute device for a task is down.
    NoComputeAvailable {
        /// The job.
        job: JobId,
        /// The task.
        task: TaskId,
    },
    /// A task body returned an error.
    Task {
        /// The job.
        job: JobId,
        /// The task.
        task: TaskId,
        /// Task name.
        name: String,
        /// The body's error.
        error: TaskError,
    },
}

impl From<SchedError> for RuntimeError {
    fn from(e: SchedError) -> Self {
        RuntimeError::Sched(e)
    }
}

impl From<RegionError> for RuntimeError {
    fn from(e: RegionError) -> Self {
        RuntimeError::Region(e)
    }
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::Sched(e) => write!(f, "scheduling failed: {e}"),
            RuntimeError::Region(e) => write!(f, "region operation failed: {e}"),
            RuntimeError::Placement { job, task, what } => {
                write!(f, "no feasible placement for {what} of {job}/{task}")
            }
            RuntimeError::NoComputeAvailable { job, task } => {
                write!(f, "no live compute device for {job}/{task}")
            }
            RuntimeError::Task { job, task, name, error } => {
                write!(f, "{job}/{task} ('{name}') failed: {error}")
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

/// Adapter exposing the placement engine as the programming model's
/// [`Placer`] trait (for ad-hoc allocations inside task bodies).
struct EnginePlacer<'e> {
    engine: &'e mut PlacementEngine,
}

impl Placer for EnginePlacer<'_> {
    fn place(
        &mut self,
        topo: &Topology,
        pool: &MemoryPool,
        compute: ComputeId,
        props: &PropertySet,
        size: u64,
    ) -> Option<MemDeviceId> {
        self.engine.choose(topo, pool, compute, props, size)
    }
}

/// The runtime system: owns the topology, the memory pool, and all the
/// RTS machinery; executes submitted jobs.
pub struct Runtime {
    topo: Topology,
    config: RuntimeConfig,
    mgr: RegionManager,
    ledger: BandwidthLedger,
    trace: Trace,
    engine: PlacementEngine,
    lifetime: LifetimeManager,
    auditor: Auditor,
    hotness: HotnessTracker,
    /// Application-scope named regions published across jobs.
    app_published: HashMap<String, RegionId>,
    next_job: u64,
    clock: SimTime,
}

impl Runtime {
    /// Creates a runtime over a topology.
    pub fn new(topo: Topology, config: RuntimeConfig) -> Self {
        let mut engine = PlacementEngine::new(config.placement);
        engine.model.awareness = config.awareness;
        let trace = if config.trace {
            Trace::enabled()
        } else {
            Trace::disabled()
        };
        Runtime {
            mgr: RegionManager::new(&topo),
            ledger: BandwidthLedger::default_buckets(),
            trace,
            engine,
            lifetime: LifetimeManager::new(config.handover),
            auditor: Auditor::new(),
            hotness: HotnessTracker::new(),
            app_published: HashMap::new(),
            next_job: 0,
            clock: SimTime::ZERO,
            topo,
            config,
        }
    }

    /// The hardware topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The region manager (for inspection by tests and experiments).
    pub fn manager(&self) -> &RegionManager {
        &self.mgr
    }

    /// Mutable region-manager access (for experiments composing with the
    /// fault-tolerance layer).
    pub fn manager_mut(&mut self) -> &mut RegionManager {
        &mut self.mgr
    }

    /// The event trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// The decayed hotness statistics accumulated from traced accesses.
    /// Only populated when the runtime is configured with `trace: true`.
    pub fn hotness(&self) -> &HotnessTracker {
        &self.hotness
    }

    /// Runs one hotness-driven tiering pass over the surviving regions
    /// (the RTS "optimize the placement of memory regions" duty,
    /// Challenges 1-3): hot regions promote toward fast tiers, cold ones
    /// demote, declared properties are never violated. Returns what moved.
    pub fn run_tiering(
        &mut self,
        policy: &TieringPolicy,
    ) -> Result<Vec<(RegionId, MemDeviceId, SimDuration)>, RuntimeError> {
        let planned = policy.plan(&self.mgr, &self.topo, &self.hotness);
        let mut done = Vec::with_capacity(planned.len());
        let mut longest = SimDuration::ZERO;
        for (id, to) in planned {
            let (_, took) = migrate(
                &mut self.mgr,
                &self.topo,
                &mut self.ledger,
                &mut self.trace,
                id,
                to,
                self.clock,
            )?;
            longest = longest.max(took);
            done.push((id, to, took));
        }
        // Migrations of distinct regions proceed in parallel; the pass
        // costs the longest copy.
        self.clock += longest;
        Ok(done)
    }

    /// Convenience: run a single job.
    pub fn submit(&mut self, job: JobSpec) -> Result<RunReport, RuntimeError> {
        self.run(vec![job])
    }

    /// Predicted memory footprint of a job: every declared region, all
    /// assumed live at once (the conservative bound admission needs).
    fn job_footprint(spec: &JobSpec) -> u64 {
        spec.global_state_bytes
            + spec
                .tasks
                .iter()
                .map(|t| t.private_scratch + t.output_bytes + t.global_scratch)
                .sum::<u64>()
    }

    /// Runs a batch of jobs concurrently and returns the report.
    ///
    /// With [`RuntimeConfig::admission_watermark`] set, the batch is
    /// split into admission waves: jobs whose combined predicted
    /// footprint would overflow the watermark wait for the previous wave
    /// to finish — resource-aware scheduling instead of a hard placement
    /// failure.
    pub fn run(&mut self, jobs: Vec<JobSpec>) -> Result<RunReport, RuntimeError> {
        let Some(watermark) = self.config.admission_watermark else {
            let n = jobs.len();
            return self.run_wave(jobs, vec![SimDuration::ZERO; n]);
        };
        let free: u64 = self
            .topo
            .mem_ids()
            .map(|d| self.mgr.pool().capacity(d) - self.mgr.pool().allocated(d))
            .sum();
        let budget = (free as f64 * watermark.clamp(0.05, 1.0)) as u64;

        let mut combined = RunReport::default();
        let mut wave: Vec<JobSpec> = Vec::new();
        let mut wave_bytes = 0u64;
        let mut queue: std::collections::VecDeque<JobSpec> = jobs.into();
        while let Some(job) = queue.pop_front() {
            let fp = Self::job_footprint(&job);
            if !wave.is_empty() && wave_bytes + fp > budget {
                let n = wave.len();
                let report =
                    self.run_wave(std::mem::take(&mut wave), vec![SimDuration::ZERO; n])?;
                merge_reports(&mut combined, report);
                wave_bytes = 0;
            }
            wave_bytes += fp;
            wave.push(job);
        }
        if !wave.is_empty() {
            let n = wave.len();
            let report = self.run_wave(wave, vec![SimDuration::ZERO; n])?;
            merge_reports(&mut combined, report);
        }
        Ok(combined)
    }

    /// Runs jobs that *arrive over time*: each job's tasks may not start
    /// before its arrival offset (relative to the current virtual time).
    /// Models an online stream of submissions — "dataflow systems that
    /// serve thousands of jobs in parallel" — rather than a closed batch.
    /// Admission control does not apply; arrivals are their own pacing.
    pub fn run_arrivals(
        &mut self,
        arrivals: Vec<(SimDuration, JobSpec)>,
    ) -> Result<RunReport, RuntimeError> {
        let (offsets, jobs): (Vec<_>, Vec<_>) = arrivals.into_iter().unzip();
        self.run_wave(jobs, offsets)
    }


    /// Creates `n` App-owned copies of a persistent region, each on a
    /// persistent device in a failure domain different from the primary
    /// (and from each other, as far as the topology allows). Charges the
    /// copies on the bandwidth ledger.
    fn replicate_persistent(
        &mut self,
        primary: RegionId,
        compute: ComputeId,
        n: usize,
        now: SimTime,
    ) -> Result<Vec<RegionId>, RuntimeError> {
        let placement = self.mgr.placement(primary)?;
        let props = self.mgr.meta(primary)?.props.clone();
        let mut used_nodes = vec![self.topo.node_of_mem(placement.dev)];
        let mut copies = Vec::new();
        for _ in 0..n {
            let ranked =
                self.engine
                    .model
                    .rank(&self.topo, self.mgr.pool(), compute, &props, placement.size);
            let Some((dev, _)) = ranked
                .into_iter()
                .find(|&(d, _)| !used_nodes.contains(&self.topo.node_of_mem(d)))
            else {
                // No further failure domain available: keep what we have.
                break;
            };
            used_nodes.push(self.topo.node_of_mem(dev));
            let copy = self.mgr.alloc(
                dev,
                placement.size,
                RegionType::GlobalScratch,
                props.clone(),
                OwnerId::App,
                now,
            )?;
            self.mgr.copy_contents(primary, copy)?;
            let f1 = self.ledger.reserve(
                ResourceKey::Mem(placement.dev),
                now,
                placement.size as f64,
                self.topo.mem(placement.dev).read_bw_bpns,
            );
            let f2 = self.ledger.reserve(
                ResourceKey::Mem(dev),
                now,
                placement.size as f64,
                self.topo.mem(dev).write_bw_bpns,
            );
            let took = (f1.max(f2)) - now;
            self.trace.push(TraceEvent::Migrate {
                region: primary.0,
                from: placement.dev,
                to: dev,
                bytes: placement.size,
                at: now,
                took,
            });
            copies.push(copy);
        }
        Ok(copies)
    }

    /// Runs one admission wave (the whole batch when admission is off).
    /// `offsets` are per-job arrival delays relative to the wave start.
    fn run_wave(
        &mut self,
        jobs: Vec<JobSpec>,
        offsets: Vec<SimDuration>,
    ) -> Result<RunReport, RuntimeError> {
        let t0 = self.clock;
        let trace_mark = self.trace.len();
        // Report only this run's audit findings, not the runtime's whole
        // history.
        let audit_mark = self.auditor.violations.len();
        let denial_mark = self.auditor.denials;
        let job_ids: Vec<JobId> = jobs
            .iter()
            .map(|_| {
                let id = JobId(self.next_job);
                self.next_job += 1;
                id
            })
            .collect();
        let pairs: Vec<(JobId, &JobSpec)> =
            job_ids.iter().copied().zip(jobs.iter()).collect();
        let schedule = Scheduler::new(self.config.sched).plan(&self.topo, &pairs)?;

        // Job-wide published-region maps and global state.
        let mut published: Vec<HashMap<String, RegionId>> =
            jobs.iter().map(|_| HashMap::new()).collect();
        let mut global_state: Vec<Option<RegionId>> = vec![None; jobs.len()];
        for (ji, (&jid, spec)) in job_ids.iter().zip(jobs.iter()).enumerate() {
            if spec.global_state_bytes == 0 {
                continue;
            }
            let mut computes: Vec<ComputeId> = (0..spec.tasks.len())
                .filter_map(|t| schedule.assignment(jid, TaskId(t as u32)))
                .collect();
            computes.dedup();
            let props = RegionType::GlobalState.properties();
            let dev = self
                .engine
                .choose_shared(&self.topo, self.mgr.pool(), &computes, &props, spec.global_state_bytes)
                .ok_or(RuntimeError::Placement {
                    job: jid,
                    task: TaskId(0),
                    what: "global state",
                })?;
            let id = self.mgr.alloc(
                dev,
                spec.global_state_bytes,
                RegionType::GlobalState,
                props.clone(),
                OwnerId::Job(jid.0),
                t0,
            )?;
            self.auditor
                .check_placement(&self.topo, computes[0], id, dev, &props);
            self.trace.push(TraceEvent::Alloc {
                region: id.0,
                dev,
                bytes: spec.global_state_bytes,
                at: t0,
            });
            global_state[ji] = Some(id);
        }

        // Execution state.
        let mut lane_free: Vec<Vec<SimTime>> = self
            .topo
            .compute_devices()
            .iter()
            .map(|m| vec![t0; m.slots as usize])
            .collect();
        let mut finish_at: HashMap<(JobId, TaskId), SimTime> = HashMap::new();
        let mut start_at: HashMap<(JobId, TaskId), SimTime> = HashMap::new();
        // When a dataflow edge connects two *streaming* tasks and the
        // handover is a pure ownership transfer, the consumer may start
        // once the producer's first chunk is out (1/PIPELINE_DEPTH of the
        // producer's runtime) instead of waiting for the whole batch —
        // the paper's stream-vs-batch property made operational.
        const PIPELINE_DEPTH: u64 = 8;
        let mut input_ready: HashMap<(JobId, TaskId), SimTime> = HashMap::new();
        // Task-exit cleanup is deferred until virtual time passes the
        // task's finish: tasks that overlap in virtual time must have
        // overlapping footprints in the pool, even though the executor
        // simulates them one after another.
        let mut pending_exits: Vec<(SimTime, OwnerId)> = Vec::new();
        let mut inputs: HashMap<(JobId, TaskId), Vec<RegionId>> = HashMap::new();
        let mut report = RunReport::default();
        let ji_of: HashMap<JobId, usize> = job_ids.iter().enumerate().map(|(i, &j)| (j, i)).collect();

        // Process in estimated start order, deferring entries whose
        // predecessors have not yet run.
        let mut queue: std::collections::VecDeque<usize> = (0..schedule.entries.len()).collect();
        let mut stall_guard = 0usize;
        while let Some(ei) = queue.pop_front() {
            let entry = schedule.entries[ei];
            let jid = entry.job;
            let ji = ji_of[&jid];
            let spec = &jobs[ji];
            let task = entry.task;
            let tspec = &spec.tasks[task.index()];
            let preds = spec.dag.predecessors(task);
            if !preds.iter().all(|p| finish_at.contains_key(&(jid, *p))) {
                queue.push_back(ei);
                stall_guard += 1;
                assert!(
                    stall_guard <= schedule.entries.len() * schedule.entries.len() + 16,
                    "executor made no progress; schedule must order a valid DAG"
                );
                continue;
            }
            stall_guard = 0;

            let eff = tspec.props.effective(&spec.defaults);
            let who = OwnerId::Task {
                job: jid.0,
                task: task.0 as u64,
            };

            // Readiness: predecessors done and their outputs handed over.
            // Per-edge release times (pipelined for streaming edges) are
            // accumulated in `input_ready` when each predecessor finishes;
            // predecessors without outputs contribute their release there
            // too. Fall back to plain finish for safety.
            let streaming_consumer = eff.streaming;
            let arrival = t0 + offsets[ji];
            let ready = preds
                .iter()
                .map(|p| {
                    if streaming_consumer
                        && spec.tasks[p.index()].props.effective(&spec.defaults).streaming
                    {
                        // Pipelined edge: first-chunk latency.
                        let ps = start_at[&(jid, *p)];
                        let pf = finish_at[&(jid, *p)];
                        ps + (pf - ps) / PIPELINE_DEPTH
                    } else {
                        finish_at[&(jid, *p)]
                    }
                })
                .chain(input_ready.get(&(jid, task)).copied())
                .fold(arrival, SimTime::max);

            // Fault-aware compute selection: fall back to any live
            // eligible device if the assigned one's node is down.
            let mut compute = entry.compute;
            if self
                .config
                .faults
                .node_down(self.topo.node_of_compute(compute), ready)
            {
                let replacement = self
                    .topo
                    .compute_ids()
                    .find(|&c| {
                        tspec.compute.allows(self.topo.compute(c).kind)
                            && !self
                                .config
                                .faults
                                .node_down(self.topo.node_of_compute(c), ready)
                    })
                    .ok_or(RuntimeError::NoComputeAvailable { job: jid, task })?;
                compute = replacement;
            }

            // Lane assignment on the (possibly replaced) device.
            let (lane, free) = lane_free[compute.index()]
                .iter()
                .copied()
                .enumerate()
                .min_by_key(|&(_, t)| t)
                .expect("compute devices have at least one slot");
            let start = ready.max(free);

            // Flush exits whose virtual finish precedes this start: their
            // regions are genuinely gone by the time this task allocates.
            pending_exits.sort_by_key(|&(t, _)| t);
            while let Some(&(t, who_exited)) = pending_exits.first() {
                if t <= start {
                    self.lifetime
                        .task_exit(&mut self.mgr, &mut self.trace, who_exited, t);
                    pending_exits.remove(0);
                } else {
                    break;
                }
            }

            // --- Region allocation, by declared properties. ---
            let mut placements: Vec<(&'static str, RegionId, MemDeviceId)> = Vec::new();
            let mut regions = TaskRegions {
                inputs: inputs.remove(&(jid, task)).unwrap_or_default(),
                global_state: global_state[ji],
                ..TaskRegions::default()
            };

            if tspec.private_scratch > 0 {
                let mut props = RegionType::PrivateScratch.properties();
                if let Some(latency) = eff.mem_latency {
                    props.latency = latency;
                }
                props.confidential = eff.confidential;
                let dev = self
                    .engine
                    .choose(&self.topo, self.mgr.pool(), compute, &props, tspec.private_scratch)
                    .ok_or(RuntimeError::Placement { job: jid, task, what: "private scratch" })?;
                let id = self.mgr.alloc(
                    dev,
                    tspec.private_scratch,
                    RegionType::PrivateScratch,
                    props.clone(),
                    who,
                    start,
                )?;
                self.auditor.check_placement(&self.topo, compute, id, dev, &props);
                self.trace.push(TraceEvent::Alloc { region: id.0, dev, bytes: tspec.private_scratch, at: start });
                placements.push(("private_scratch", id, dev));
                regions.private_scratch = Some(id);
            }

            if tspec.output_bytes > 0 {
                let mut props = RegionType::Output.properties();
                props.persistent = eff.persistent;
                props.confidential = eff.confidential;
                // Co-placement: every consumer must be able to address the
                // output for handover to be a pure transfer.
                let mut accessors = vec![compute];
                for &s in spec.dag.successors(task) {
                    if let Some(c) = schedule.assignment(jid, s) {
                        if !accessors.contains(&c) {
                            accessors.push(c);
                        }
                    }
                }
                let dev = self
                    .engine
                    .choose_shared(&self.topo, self.mgr.pool(), &accessors, &props, tspec.output_bytes)
                    .or_else(|| {
                        // Fall back to producer-only placement (handover
                        // will copy).
                        self.engine
                            .choose(&self.topo, self.mgr.pool(), compute, &props, tspec.output_bytes)
                    })
                    .ok_or(RuntimeError::Placement { job: jid, task, what: "output" })?;
                let id = self.mgr.alloc(
                    dev,
                    tspec.output_bytes,
                    RegionType::Output,
                    props.clone(),
                    who,
                    start,
                )?;
                self.auditor.check_placement(&self.topo, compute, id, dev, &props);
                self.trace.push(TraceEvent::Alloc { region: id.0, dev, bytes: tspec.output_bytes, at: start });
                placements.push(("output", id, dev));
                regions.output = Some(id);
            }

            if tspec.global_scratch > 0 {
                let mut props = RegionType::GlobalScratch.properties();
                props.confidential = eff.confidential;
                let mut computes: Vec<ComputeId> = (0..spec.tasks.len())
                    .filter_map(|t| schedule.assignment(jid, TaskId(t as u32)))
                    .collect();
                computes.dedup();
                let dev = self
                    .engine
                    .choose_shared(&self.topo, self.mgr.pool(), &computes, &props, tspec.global_scratch)
                    .ok_or(RuntimeError::Placement { job: jid, task, what: "global scratch" })?;
                let id = self.mgr.alloc(
                    dev,
                    tspec.global_scratch,
                    RegionType::GlobalScratch,
                    props.clone(),
                    who,
                    start,
                )?;
                self.auditor.check_placement(&self.topo, compute, id, dev, &props);
                self.trace.push(TraceEvent::Alloc { region: id.0, dev, bytes: tspec.global_scratch, at: start });
                placements.push(("global_scratch", id, dev));
                regions.global_scratch = Some(id);
            }

            // --- Execute the body. ---
            let launch =
                SimDuration::from_nanos_f64(self.topo.compute(compute).launch_overhead_ns);
            self.trace.push(TraceEvent::TaskStart {
                job: jid.0,
                task: task.0 as u64,
                on: compute,
                at: start,
            });
            let regions_snapshot = regions.clone();
            let (finish, stats, body_result) = {
                let mut acc = Accessor::new(
                    &self.topo,
                    &mut self.ledger,
                    &mut self.mgr,
                    &mut self.trace,
                    compute,
                    who,
                    start + launch,
                );
                let mut placer = EnginePlacer { engine: &mut self.engine };
                let mut ctx = TaskCtx::new(
                    &mut acc,
                    regions.clone(),
                    &mut placer,
                    &mut published[ji],
                    &mut self.app_published,
                );
                let result = (tspec.body)(&mut ctx);
                (acc.now, acc.stats, result)
            };

            // Mid-task crash recovery: if the node executing this task
            // died while it ran, the attempt is lost. Task bodies are
            // re-runnable (`Fn`), so re-place on a surviving device and
            // execute again — the makespan pays for both attempts.
            let (finish, stats, body_result) = {
                let my_node = self.topo.node_of_compute(compute);
                let crashed_midway = self
                    .config
                    .faults
                    .events_between(start, finish)
                    .iter()
                    .any(|e| {
                        matches!(e.kind,
                            disagg_hwsim::fault::FaultKind::NodeCrash(n) if n == my_node)
                    });
                if crashed_midway && body_result.is_ok() {
                    let crash_at = self
                        .config
                        .faults
                        .first_node_crash(my_node)
                        .expect("crash detected above")
                        .max(start);
                    let replacement = self
                        .topo
                        .compute_ids()
                        .find(|&c| {
                            tspec.compute.allows(self.topo.compute(c).kind)
                                && !self
                                    .config
                                    .faults
                                    .node_down(self.topo.node_of_compute(c), crash_at)
                        })
                        .ok_or(RuntimeError::NoComputeAvailable { job: jid, task })?;
                    compute = replacement;
                    let relaunch = SimDuration::from_nanos_f64(
                        self.topo.compute(compute).launch_overhead_ns,
                    );
                    let mut acc = Accessor::new(
                        &self.topo,
                        &mut self.ledger,
                        &mut self.mgr,
                        &mut self.trace,
                        compute,
                        who,
                        crash_at + relaunch,
                    );
                    let mut placer = EnginePlacer { engine: &mut self.engine };
                    let mut ctx = TaskCtx::new(
                        &mut acc,
                        regions,
                        &mut placer,
                        &mut published[ji],
                        &mut self.app_published,
                    );
                    let result = (tspec.body)(&mut ctx);
                    (acc.now, acc.stats, result)
                } else {
                    (finish, stats, body_result)
                }
            };
            if let Err(error) = body_result {
                // Record the denial if it was a confidentiality rejection.
                if error.0.contains("confidential") {
                    self.auditor.record_denial(RegionId(u64::MAX), None, Some(jid.0));
                }
                return Err(RuntimeError::Task {
                    job: jid,
                    task,
                    name: tspec.name.clone(),
                    error,
                });
            }

            // Confidential data leaving the trust boundary pays the
            // encryption toll on every written byte.
            let mut finish = finish;
            if eff.confidential {
                let crypto_bytes: u64 = placements
                    .iter()
                    .filter(|(_, _, dev)| needs_encryption(&self.topo, *dev))
                    .map(|_| stats.bytes_written)
                    .sum();
                if crypto_bytes > 0 {
                    finish += self
                        .topo
                        .compute(compute)
                        .exec_cost(WorkClass::Crypto, crypto_bytes);
                }
            }

            self.trace.push(TraceEvent::TaskFinish {
                job: jid.0,
                task: task.0 as u64,
                on: compute,
                at: finish,
            });
            // A crash retry may have moved the task to a device with
            // fewer lanes; clamp the lane index before recording.
            let lane = lane.min(lane_free[compute.index()].len() - 1);
            lane_free[compute.index()][lane] = finish;
            start_at.insert((jid, task), start);
            finish_at.insert((jid, task), finish);

            // --- Handover to successors. ---
            if let Some(out) = regions_snapshot.output {
                let succs = spec.dag.successors(task).to_vec();
                if succs.is_empty() {
                    if eff.persistent {
                        // Persistent results outlive the job (App scope).
                        self.mgr.transfer(out, who, OwnerId::App)?;
                        // Fault tolerance: keep extra copies on persistent
                        // devices in other failure domains.
                        if self.config.persistent_replicas > 1 {
                            let copies = self.replicate_persistent(
                                out,
                                compute,
                                self.config.persistent_replicas - 1,
                                finish,
                            )?;
                            report.persistent_replicas.push((out, copies));
                        }
                    }
                } else {
                    // Copies for fan-out consumers beyond the first...
                    for &s in &succs[1..] {
                        let cons = schedule.assignment(jid, s).unwrap_or(compute);
                        let to = OwnerId::Task { job: jid.0, task: s.0 as u64 };
                        let o = self
                            .lifetime
                            .copy_to(
                                &mut self.mgr,
                                &self.topo,
                                &mut self.ledger,
                                &mut self.trace,
                                &mut self.engine,
                                out,
                                None,
                                to,
                                cons,
                                finish,
                            )
                            .map_err(RuntimeError::Region)?;
                        report.handover_copies += 1;
                        inputs.entry((jid, s)).or_default().push(o.region);
                        let r = input_ready.entry((jid, s)).or_insert(t0);
                        *r = (*r).max(finish + o.took);
                    }
                    // ...then the transfer (or copy) to the first.
                    let s0 = succs[0];
                    let cons = schedule.assignment(jid, s0).unwrap_or(compute);
                    let to = OwnerId::Task { job: jid.0, task: s0.0 as u64 };
                    let o = self
                        .lifetime
                        .handover(
                            &mut self.mgr,
                            &self.topo,
                            &mut self.ledger,
                            &mut self.trace,
                            &mut self.engine,
                            out,
                            who,
                            to,
                            cons,
                            finish,
                        )
                        .map_err(RuntimeError::Region)?;
                    if o.transferred {
                        report.ownership_transfers += 1;
                    } else {
                        report.handover_copies += 1;
                    }
                    inputs.entry((jid, s0)).or_default().push(o.region);
                    let consumer_streams =
                        spec.tasks[s0.index()].props.effective(&spec.defaults).streaming;
                    let release = if o.transferred && eff.streaming && consumer_streams {
                        start + (finish - start) / PIPELINE_DEPTH
                    } else {
                        finish
                    };
                    let r = input_ready.entry((jid, s0)).or_insert(t0);
                    *r = (*r).max(release + o.took);
                }
            }

            // Published global-scratch regions get job scope so later
            // tasks can use them; app-published ones get App scope so
            // later *jobs* can. Everything else the task still owns is
            // released (the §2.3 lifetime rule).
            for &r in self.app_published.values() {
                if self.mgr.is_live(r)
                    && self.mgr.meta(r).map(|m| m.ownership.is_owner(who)).unwrap_or(false)
                {
                    self.mgr.transfer(r, who, OwnerId::App)?;
                }
            }
            for &r in published[ji].values() {
                if self.mgr.is_live(r) && self.mgr.meta(r).map(|m| m.ownership.is_owner(who)).unwrap_or(false) {
                    self.mgr.transfer(r, who, OwnerId::Job(jid.0))?;
                }
            }
            pending_exits.push((finish, who));

            report.tasks.push(TaskReport {
                job: jid,
                task,
                name: tspec.name.clone(),
                compute,
                start,
                finish,
                stats,
                placements,
            });
        }

        // End of batch: flush the remaining task exits in time order,
        // then release job-scoped regions; App-scoped (persistent)
        // regions survive.
        pending_exits.sort_by_key(|&(t, _)| t);
        for (t, who_exited) in pending_exits {
            self.lifetime
                .task_exit(&mut self.mgr, &mut self.trace, who_exited, t);
        }
        for &jid in &job_ids {
            let freed = self.mgr.release_all(OwnerId::Job(jid.0));
            for _ in freed {
                // Free events are recorded by release paths when traced;
                // job-scope cleanup is bookkeeping only.
            }
        }

        // Feed the batch's accesses into the hotness tracker (one decay
        // tick per batch so old heat fades). Only this batch's events are
        // walked; the trace is append-only.
        self.hotness.decay();
        for e in &self.trace.events()[trace_mark..] {
            match *e {
                TraceEvent::Access { region, bytes, at, .. } => {
                    self.hotness.record(RegionId(region), bytes, at);
                }
                TraceEvent::Free { region, .. } => {
                    self.hotness.forget(RegionId(region));
                }
                _ => {}
            }
        }

        let end = finish_at.values().copied().fold(t0, SimTime::max);
        self.clock = end;
        report.makespan = end - t0;
        report.bytes_moved = self.trace.bytes_moved();
        report.bytes_ownership_transferred = self.trace.bytes_transferred_by_ownership();
        report.placements = std::mem::take(&mut self.engine.decisions);
        report.violations = self.auditor.violations[audit_mark..].to_vec();
        report.denials = self.auditor.denials - denial_mark;
        report.devices = self
            .topo
            .mem_ids()
            .map(|dev| DeviceSummary {
                dev,
                peak_bytes: self.mgr.pool().peak(dev),
                capacity: self.mgr.pool().capacity(dev),
                bytes_transferred: self.ledger.stats(ResourceKey::Mem(dev)).bytes,
            })
            .collect();
        report.tasks.sort_by_key(|t| (t.finish, t.job, t.task));
        Ok(report)
    }
}

/// Folds a wave's report into the combined batch report (waves run
/// back-to-back, so makespans add).
fn merge_reports(into: &mut RunReport, wave: RunReport) {
    into.makespan += wave.makespan;
    into.tasks.extend(wave.tasks);
    into.bytes_moved += wave.bytes_moved;
    into.bytes_ownership_transferred += wave.bytes_ownership_transferred;
    into.ownership_transfers += wave.ownership_transfers;
    into.handover_copies += wave.handover_copies;
    into.placements.extend(wave.placements);
    into.violations.extend(wave.violations);
    into.denials += wave.denials;
    into.devices = wave.devices;
    into.persistent_replicas.extend(wave.persistent_replicas);
}
