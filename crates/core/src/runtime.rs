//! The runtime: placement + scheduling + execution of dataflow jobs.
//!
//! [`Runtime::run`] is where the paper's vision comes together. For each
//! submitted batch of jobs it:
//!
//! 1. plans a schedule (HEFT by default) mapping tasks to compute devices;
//! 2. allocates every declared Memory Region by *properties* — private
//!    scratch near the executing device, outputs placed so that all
//!    consumers can address them, job-wide global state on coherent
//!    memory;
//! 3. executes task bodies against the virtual clock out of order, via
//!    the discrete-event executor in [`crate::executor`]: per-device
//!    ready queues, dependency-counting dispatch, compute overlapped
//!    with region transfers;
//! 4. hands outputs to successors — as a pure ownership transfer whenever
//!    the consumer's device can address the memory, as a physical copy
//!    otherwise;
//! 5. releases each region when its last owner finishes (the lifetime
//!    rule of §2.3), audits every placement against its declared
//!    properties, and reports utilization, movement, and makespan.

use disagg_hwsim::fx::FxHashMap;

use disagg_dataflow::job::JobSpec;
use disagg_hwsim::contention::{BandwidthLedger, ResourceKey};
use disagg_hwsim::ids::{ComputeId, MemDeviceId};
use disagg_hwsim::shard::ShardMap;
use disagg_hwsim::time::{SimDuration, SimTime};
use disagg_hwsim::topology::Topology;
use disagg_hwsim::trace::{Trace, TraceEvent};
use disagg_region::hotness::HotnessTracker;
use disagg_region::migrate::{migrate, TieringPolicy};
use disagg_region::pool::RegionId;
use disagg_region::region::{OwnerId, RegionManager};
use disagg_region::typed::RegionType;
use disagg_sched::enforce::Auditor;
use disagg_sched::lifetime::LifetimeManager;
use disagg_sched::placement::PlacementEngine;

use crate::breaker::{BreakerBank, BreakerState, BreakerTransition, RetryBudgets};
use crate::config::RuntimeConfig;
use crate::report::RunReport;
use crate::submission::{AdmissionPolicy, Submission};

pub use crate::error::{DisaggError, RuntimeError};

/// The runtime system: owns the topology, the memory pool, and all the
/// RTS machinery; executes submitted jobs.
pub struct Runtime {
    pub(crate) topo: Topology,
    pub(crate) config: RuntimeConfig,
    pub(crate) mgr: RegionManager,
    pub(crate) ledger: BandwidthLedger,
    pub(crate) trace: Trace,
    pub(crate) engine: PlacementEngine,
    pub(crate) lifetime: LifetimeManager,
    pub(crate) auditor: Auditor,
    pub(crate) hotness: HotnessTracker,
    /// Application-scope named regions published across jobs.
    pub(crate) app_published: FxHashMap<String, RegionId>,
    /// Node-aligned topology partition for the sharded event loop
    /// (built once; the topology is immutable for the runtime's life).
    pub(crate) shard_map: ShardMap,
    /// Per-node circuit breakers — `Some` only when
    /// [`crate::FaultControlPolicy::breakers`] is configured. Mutated
    /// exclusively from the executor's serial commit path.
    pub(crate) breakers: Option<BreakerBank>,
    /// Per-tenant retry-budget buckets — `Some` only when
    /// [`crate::FaultControlPolicy::retry_budget`] is configured.
    pub(crate) retry_budgets: Option<RetryBudgets>,
    pub(crate) next_job: u64,
    pub(crate) clock: SimTime,
}

impl Runtime {
    /// Creates a runtime over a topology.
    pub fn new(topo: Topology, config: RuntimeConfig) -> Self {
        let mut engine = PlacementEngine::new(config.placement);
        engine.model.awareness = config.awareness;
        let mut trace = if config.trace {
            Trace::enabled()
        } else {
            Trace::disabled()
        };
        // Stream events to the configured observer as they are emitted.
        // The null slot installs no tap at all, so observability-off
        // costs exactly one untaken branch per event.
        if config.observer.is_active() {
            let slot = config.observer.clone();
            trace.set_tap(Box::new(move |e| slot.emit(e)));
        }
        Runtime {
            mgr: RegionManager::new(&topo),
            ledger: BandwidthLedger::default_buckets(),
            trace,
            engine,
            lifetime: LifetimeManager::new(config.handover),
            auditor: Auditor::new(),
            hotness: HotnessTracker::new(),
            app_published: FxHashMap::default(),
            shard_map: ShardMap::partition(&topo, config.shards),
            breakers: config.fault_control.breakers.map(BreakerBank::new),
            retry_budgets: config.fault_control.retry_budget.map(RetryBudgets::new),
            next_job: 0,
            clock: SimTime::ZERO,
            topo,
            config,
        }
    }

    /// The effective shard count of the event loop (the configured
    /// count clamped to the topology's node count).
    pub fn shards(&self) -> usize {
        self.shard_map.shards()
    }

    /// The hardware topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The region manager (for inspection by tests and experiments).
    pub fn manager(&self) -> &RegionManager {
        &self.mgr
    }

    /// Mutable region-manager access (for experiments composing with the
    /// fault-tolerance layer).
    pub fn manager_mut(&mut self) -> &mut RegionManager {
        &mut self.mgr
    }

    /// The event trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// The decayed hotness statistics accumulated from traced accesses.
    /// Only populated when the runtime is configured with `trace: true`.
    pub fn hotness(&self) -> &HotnessTracker {
        &self.hotness
    }

    /// Pushes an externally produced event into the runtime's trace —
    /// the serving layer uses this to annotate shed and degraded
    /// requests so the observer pipeline sees them in order.
    pub fn annotate(&mut self, e: TraceEvent) {
        self.trace.push(e);
    }

    /// Every circuit-breaker transition so far, in commit order (empty
    /// when breakers are not configured).
    pub fn breaker_transitions(&self) -> &[BreakerTransition] {
        self.breakers.as_ref().map(|b| b.transitions()).unwrap_or(&[])
    }

    /// Nodes whose breakers are currently Open or HalfOpen, sorted.
    pub fn unhealthy_nodes(&self) -> Vec<disagg_hwsim::ids::NodeId> {
        self.breakers.as_ref().map(|b| b.unhealthy()).unwrap_or_default()
    }

    /// The breaker state of `node` (Closed when breakers are off).
    pub fn breaker_state(&self, node: disagg_hwsim::ids::NodeId) -> BreakerState {
        self.breakers
            .as_ref()
            .map(|b| b.state(node))
            .unwrap_or(BreakerState::Closed)
    }

    /// Runs one hotness-driven tiering pass over the surviving regions
    /// (the RTS "optimize the placement of memory regions" duty,
    /// Challenges 1-3): hot regions promote toward fast tiers, cold ones
    /// demote, declared properties are never violated. Returns what moved.
    pub fn run_tiering(
        &mut self,
        policy: &TieringPolicy,
    ) -> Result<Vec<(RegionId, MemDeviceId, SimDuration)>, RuntimeError> {
        let planned = policy.plan(&self.mgr, &self.topo, &self.hotness);
        let mut done = Vec::with_capacity(planned.len());
        let mut longest = SimDuration::ZERO;
        for (id, to) in planned {
            let (_, took) = migrate(
                &mut self.mgr,
                &self.topo,
                &mut self.ledger,
                &mut self.trace,
                id,
                to,
                self.clock,
            )?;
            longest = longest.max(took);
            done.push((id, to, took));
        }
        // Migrations of distinct regions proceed in parallel; the pass
        // costs the longest copy.
        self.clock += longest;
        Ok(done)
    }

    /// Predicted memory footprint of a job: every declared region, all
    /// assumed live at once (the conservative bound admission needs).
    /// Public so higher layers (e.g. the serving layer's per-tenant
    /// quotas) charge the same estimate the runtime's own admission
    /// waves use.
    pub fn predicted_footprint(spec: &JobSpec) -> u64 {
        spec.global_state_bytes
            + spec
                .tasks
                .iter()
                .map(|t| t.private_scratch + t.output_bytes + t.global_scratch)
                .sum::<u64>()
    }

    /// Executes a [`Submission`] — the one entry point for every
    /// submission shape.
    ///
    /// A closed batch runs at the current virtual time; with arrival
    /// offsets attached, each job's tasks may not start before its
    /// offset — an open stream of submissions rather than a closed
    /// batch. Admission control (the submission's
    /// [`AdmissionPolicy`] override, falling back to
    /// [`RuntimeConfig::admission_watermark`]) applies to both shapes:
    /// jobs whose combined predicted footprint would overflow the
    /// watermark wait for the previous wave to finish, with arrival
    /// offsets preserved across waves — resource-aware scheduling
    /// instead of a hard placement failure.
    pub fn execute(&mut self, sub: impl Into<Submission>) -> Result<RunReport, RuntimeError> {
        let Submission { jobs, offsets, admission, tags } = sub.into();
        if let Some(offs) = &offsets {
            if offs.len() != jobs.len() {
                return Err(DisaggError::Submission {
                    jobs: jobs.len(),
                    offsets: offs.len(),
                });
            }
        }
        if let Some(tags) = &tags {
            if tags.len() != jobs.len() {
                return Err(DisaggError::Submission {
                    jobs: jobs.len(),
                    offsets: tags.len(),
                });
            }
        }
        let n = jobs.len();
        let offsets = offsets.unwrap_or_else(|| vec![SimDuration::ZERO; n]);
        let tags: Vec<Option<(u64, u64)>> = match tags {
            Some(t) => t.into_iter().map(Some).collect(),
            None => vec![None; n],
        };
        let watermark = match admission {
            Some(AdmissionPolicy::Open) => None,
            Some(AdmissionPolicy::Watermark(w)) => Some(w),
            None => self.config.admission_watermark,
        };
        let report = self.run_waves(jobs, offsets, tags, watermark)?;
        // Online reconstruction: heal persistent regions whose device
        // died during the run (a no-op without scheduled faults).
        if !self.config.faults.is_empty() {
            self.heal_failed_persistent()?;
        }
        Ok(report)
    }

    fn run_waves(
        &mut self,
        jobs: Vec<JobSpec>,
        offsets: Vec<SimDuration>,
        tags: Vec<Option<(u64, u64)>>,
        watermark: Option<f64>,
    ) -> Result<RunReport, RuntimeError> {
        let Some(watermark) = watermark else {
            return crate::executor::run_wave(self, jobs, offsets, tags);
        };
        let free: u64 = self
            .topo
            .mem_ids()
            .map(|d| self.mgr.pool().capacity(d) - self.mgr.pool().allocated(d))
            .sum();
        let budget = (free as f64 * watermark.clamp(0.05, 1.0)) as u64;

        // Arrival offsets are anchored at submission time; a job held
        // back to a later wave keeps its *absolute* arrival, re-expressed
        // relative to that wave's start (zero once the wave starts after
        // the arrival — the job was ready, admission was the gate).
        let t0 = self.clock;
        let mut combined = RunReport::default();
        let mut wave: Vec<JobSpec> = Vec::new();
        let mut wave_offsets: Vec<SimDuration> = Vec::new();
        let mut wave_tags: Vec<Option<(u64, u64)>> = Vec::new();
        let mut wave_bytes = 0u64;
        type Pending = (JobSpec, SimDuration, Option<(u64, u64)>);
        let mut queue: std::collections::VecDeque<Pending> = jobs
            .into_iter()
                .zip(offsets)
                .zip(tags)
                .map(|((j, o), t)| (j, o, t))
                .collect();
        while let Some((job, offset, tag)) = queue.pop_front() {
            let fp = Self::predicted_footprint(&job);
            if !wave.is_empty() && wave_bytes + fp > budget {
                let start = self.clock;
                let offs: Vec<SimDuration> =
                    wave_offsets.drain(..).map(|o| (t0 + o) - start).collect();
                let report = crate::executor::run_wave(
                    self,
                    std::mem::take(&mut wave),
                    offs,
                    std::mem::take(&mut wave_tags),
                )?;
                merge_reports(&mut combined, report);
                wave_bytes = 0;
            }
            wave_bytes += fp;
            wave.push(job);
            wave_offsets.push(offset);
            wave_tags.push(tag);
        }
        if !wave.is_empty() {
            let start = self.clock;
            let offs: Vec<SimDuration> =
                wave_offsets.drain(..).map(|o| (t0 + o) - start).collect();
            let report = crate::executor::run_wave(self, wave, offs, wave_tags)?;
            merge_reports(&mut combined, report);
        }
        Ok(combined)
    }

    /// Convenience: run a single job.
    #[deprecated(note = "use `Runtime::execute(Submission::job(job))`")]
    pub fn submit(&mut self, job: JobSpec) -> Result<RunReport, RuntimeError> {
        self.execute(Submission::job(job))
    }

    /// Runs a batch of jobs concurrently and returns the report.
    #[deprecated(note = "use `Runtime::execute(Submission::batch(jobs))`")]
    pub fn run(&mut self, jobs: Vec<JobSpec>) -> Result<RunReport, RuntimeError> {
        self.execute(Submission::batch(jobs))
    }

    /// Runs jobs that *arrive over time*: each job's tasks may not start
    /// before its arrival offset (relative to the current virtual time).
    /// Admission control composes with arrivals exactly as in
    /// [`Runtime::execute`]: with a configured watermark, an arrival
    /// stream too big for the pool degrades into admission waves that
    /// preserve each job's absolute arrival.
    #[deprecated(note = "use `Runtime::execute(Submission::arriving(arrivals))`")]
    pub fn run_arrivals(
        &mut self,
        arrivals: Vec<(SimDuration, JobSpec)>,
    ) -> Result<RunReport, RuntimeError> {
        self.execute(Submission::arriving(arrivals))
    }

    /// Modelled repair arithmetic for online reconstruction, mirroring
    /// the region layer's host-side decode cost.
    const HEAL_DECODE_NS_PER_BYTE: f64 = 0.5;

    /// Online reconstruction after device loss (Challenge 8(3)): every
    /// App-scoped region whose backing device has failed by the current
    /// virtual time is rebuilt onto a live device in another failure
    /// domain. The pool rebinds the region id in place, the destination
    /// pays write bandwidth plus a decode toll on the ledger, and a
    /// [`TraceEvent::Reconstruct`] records the repair. In the simulation
    /// the manager still holds the bytes, which stands in for restoring
    /// from a surviving replica or erasure-coded stripe. Regions with no
    /// reachable failure domain left are skipped (still lost). Returns
    /// `(region, new device)` for everything healed.
    pub fn heal_failed_persistent(
        &mut self,
    ) -> Result<Vec<(RegionId, MemDeviceId)>, RuntimeError> {
        if self.config.faults.is_empty() {
            return Ok(Vec::new());
        }
        let now = self.clock;
        let Some(vantage) = self.topo.compute_ids().next() else {
            return Ok(Vec::new());
        };
        let mut healed = Vec::new();
        let mut longest = SimDuration::ZERO;
        for id in self.mgr.owned_by(OwnerId::App) {
            if !self.mgr.is_live(id) {
                continue;
            }
            let placement = self.mgr.placement(id)?;
            if !self.config.faults.device_failed(placement.dev, now) {
                continue;
            }
            let failed_node = self.topo.node_of_mem(placement.dev);
            let props = self.mgr.meta(id)?.props.clone();
            let ranked =
                self.engine
                    .model
                    .rank(&self.topo, self.mgr.pool(), vantage, &props, placement.size);
            let Some((dev, _)) = ranked.into_iter().find(|&(d, _)| {
                self.topo.node_of_mem(d) != failed_node
                    && !self.config.faults.device_failed(d, now)
                    && !self.config.faults.node_down(self.topo.node_of_mem(d), now)
            }) else {
                continue;
            };
            self.mgr.pool_mut().rebind(id, dev)?;
            let fin = self.ledger.reserve(
                ResourceKey::Mem(dev),
                now,
                placement.size as f64,
                self.topo.mem(dev).write_bw_bpns,
            );
            let decode = SimDuration::from_nanos_f64(
                placement.size as f64 * Self::HEAL_DECODE_NS_PER_BYTE,
            );
            let took = (fin - now) + decode;
            self.trace.push(TraceEvent::Reconstruct {
                region: id.0,
                dev,
                bytes: placement.size,
                at: now,
                took,
                job: None,
                task: None,
            });
            longest = longest.max(took);
            healed.push((id, dev));
        }
        // Rebuilds of distinct regions proceed in parallel; the pass
        // costs the longest one.
        self.clock += longest;
        Ok(healed)
    }

    /// Creates `n` App-owned copies of a persistent region, each on a
    /// persistent device in a failure domain different from the primary
    /// (and from each other, as far as the topology allows). Charges the
    /// copies on the bandwidth ledger.
    pub(crate) fn replicate_persistent(
        &mut self,
        primary: RegionId,
        compute: ComputeId,
        n: usize,
        now: SimTime,
    ) -> Result<Vec<RegionId>, RuntimeError> {
        let placement = self.mgr.placement(primary)?;
        let props = self.mgr.meta(primary)?.props.clone();
        let mut used_nodes = vec![self.topo.node_of_mem(placement.dev)];
        let mut copies = Vec::new();
        for _ in 0..n {
            let ranked =
                self.engine
                    .model
                    .rank(&self.topo, self.mgr.pool(), compute, &props, placement.size);
            let Some((dev, _)) = ranked
                .into_iter()
                .find(|&(d, _)| !used_nodes.contains(&self.topo.node_of_mem(d)))
            else {
                // No further failure domain available: keep what we have.
                break;
            };
            used_nodes.push(self.topo.node_of_mem(dev));
            let copy = self.mgr.alloc(
                dev,
                placement.size,
                RegionType::GlobalScratch,
                props.clone(),
                OwnerId::App,
                now,
            )?;
            self.mgr.copy_contents(primary, copy)?;
            let f1 = self.ledger.reserve(
                ResourceKey::Mem(placement.dev),
                now,
                placement.size as f64,
                self.topo.mem(placement.dev).read_bw_bpns,
            );
            let f2 = self.ledger.reserve(
                ResourceKey::Mem(dev),
                now,
                placement.size as f64,
                self.topo.mem(dev).write_bw_bpns,
            );
            let took = (f1.max(f2)) - now;
            self.trace.push(TraceEvent::Migrate {
                region: primary.0,
                from: placement.dev,
                to: dev,
                bytes: placement.size,
                at: now,
                took,
            });
            copies.push(copy);
        }
        Ok(copies)
    }
}

/// Folds a wave's report into the combined batch report (waves run
/// back-to-back, so makespans add).
fn merge_reports(into: &mut RunReport, wave: RunReport) {
    into.makespan += wave.makespan;
    into.tasks.extend(wave.tasks);
    into.bytes_moved += wave.bytes_moved;
    into.bytes_ownership_transferred += wave.bytes_ownership_transferred;
    into.ownership_transfers += wave.ownership_transfers;
    into.handover_copies += wave.handover_copies;
    into.placements.extend(wave.placements);
    into.violations.extend(wave.violations);
    into.denials += wave.denials;
    into.devices = wave.devices;
    into.persistent_replicas.extend(wave.persistent_replicas);
    into.events += wave.events;
    into.edges.extend(wave.edges);
    into.failed_jobs.extend(wave.failed_jobs);
    // Metrics accumulate in the observer across waves; the last wave's
    // snapshot is the complete one.
    if wave.metrics.is_some() {
        into.metrics = wave.metrics;
    }
}
