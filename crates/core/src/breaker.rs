//! Fault-aware control-plane state: per-node circuit breakers and
//! per-tenant retry budgets.
//!
//! Both live on the [`crate::Runtime`] and are mutated **only from the
//! executor's serial commit path**, so every transition lands in the
//! same wave-global `(time, seq)` order at every shard count — the
//! breaker log is as deterministic as the trace itself.
//!
//! The breaker state machine is the classic three-state one, driven
//! entirely by virtual time:
//!
//! ```text
//!            trip_after consecutive FaultDetected
//!   Closed ────────────────────────────────────────▶ Open
//!     ▲                                               │ cooldown
//!     │ probe task finishes cleanly                   ▼ elapses
//!     └───────────────────────────────────────── HalfOpen
//!                       (a probe-time fault re-opens)
//! ```

use disagg_hwsim::fx::FxHashMap;
use disagg_hwsim::ids::NodeId;
use disagg_hwsim::time::SimTime;

use crate::config::{BreakerPolicy, RetryBudgetPolicy};

/// One breaker's position in the state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: the node is offered to placement, strikes reset on any
    /// clean task finish.
    Closed,
    /// Tripped: the node is excluded from candidate ranking until the
    /// cool-down elapses.
    Open,
    /// Cooling down: exactly one probe task (identified by its
    /// `(job, task)` key) is allowed through; everyone else still sees
    /// the node as excluded.
    HalfOpen,
}

/// One recorded state transition, in commit order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerTransition {
    /// The node whose breaker moved.
    pub node: NodeId,
    /// Virtual time of the transition.
    pub at: SimTime,
    /// The state entered.
    pub to: BreakerState,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    state: BreakerState,
    /// Consecutive detected faults while Closed.
    strikes: u32,
    /// When the breaker last opened (cool-down anchor).
    opened_at: SimTime,
    /// The `(job, task)` holding the half-open probe slot.
    probe: Option<(u64, u64)>,
}

impl Entry {
    fn new() -> Self {
        Entry {
            state: BreakerState::Closed,
            strikes: 0,
            opened_at: SimTime::ZERO,
            probe: None,
        }
    }
}

/// All per-node breakers of one runtime.
#[derive(Debug)]
pub struct BreakerBank {
    policy: BreakerPolicy,
    entries: FxHashMap<NodeId, Entry>,
    transitions: Vec<BreakerTransition>,
}

impl BreakerBank {
    /// An empty bank under `policy`; every node starts Closed.
    pub fn new(policy: BreakerPolicy) -> Self {
        BreakerBank {
            policy,
            entries: FxHashMap::default(),
            transitions: Vec::new(),
        }
    }

    fn entry(&mut self, node: NodeId) -> &mut Entry {
        self.entries.entry(node).or_insert_with(Entry::new)
    }

    /// Charges one detected fault against `node`. Returns the
    /// transition if the breaker opened (first trip or a failed probe).
    pub fn on_fault(&mut self, node: NodeId, now: SimTime) -> Option<BreakerTransition> {
        let trip_after = self.policy.trip_after;
        let e = self.entry(node);
        match e.state {
            BreakerState::Closed => {
                e.strikes += 1;
                if e.strikes >= trip_after {
                    e.state = BreakerState::Open;
                    e.opened_at = now;
                    e.probe = None;
                    let t = BreakerTransition { node, at: now, to: BreakerState::Open };
                    self.transitions.push(t);
                    return Some(t);
                }
                None
            }
            BreakerState::HalfOpen => {
                // The probe hit a fault: straight back to Open, with a
                // fresh cool-down from now.
                e.state = BreakerState::Open;
                e.opened_at = now;
                e.probe = None;
                e.strikes = trip_after;
                let t = BreakerTransition { node, at: now, to: BreakerState::Open };
                self.transitions.push(t);
                Some(t)
            }
            // Already open: tasks still draining on the node may keep
            // faulting; the breaker cannot get more open.
            BreakerState::Open => None,
        }
    }

    /// Asks whether `node` may take the task identified by `key`.
    /// Open breakers whose cool-down has elapsed move to HalfOpen and
    /// hand `key` the single probe slot — the returned transition lets
    /// the caller trace the probe admission.
    pub fn allows(
        &mut self,
        node: NodeId,
        now: SimTime,
        key: (u64, u64),
    ) -> (bool, Option<BreakerTransition>) {
        let cooldown = self.policy.cooldown;
        let e = self.entry(node);
        match e.state {
            BreakerState::Closed => (true, None),
            BreakerState::Open => {
                if now >= e.opened_at + cooldown {
                    e.state = BreakerState::HalfOpen;
                    e.probe = Some(key);
                    let t = BreakerTransition { node, at: now, to: BreakerState::HalfOpen };
                    self.transitions.push(t);
                    (true, Some(t))
                } else {
                    (false, None)
                }
            }
            BreakerState::HalfOpen => (e.probe == Some(key), None),
        }
    }

    /// Reports a clean task finish of `key` on `node`. A closed breaker
    /// on `node` forgets its strikes, and **any** half-open breaker whose
    /// probe was `key` closes — speculative re-execution can finish a
    /// probe task on a different node than the one being probed, and a
    /// probe that ran to completion anywhere proves the retry path is
    /// healthy again. Returns the close transitions (nodes in id order).
    pub fn on_success(
        &mut self,
        node: NodeId,
        key: (u64, u64),
        now: SimTime,
    ) -> Vec<BreakerTransition> {
        if let Some(e) = self.entries.get_mut(&node) {
            if e.state == BreakerState::Closed {
                e.strikes = 0;
            }
        }
        let mut probed: Vec<NodeId> = self
            .entries
            .iter()
            .filter(|(_, e)| e.state == BreakerState::HalfOpen && e.probe == Some(key))
            .map(|(&n, _)| n)
            .collect();
        probed.sort();
        let mut out = Vec::new();
        for n in probed {
            let e = self.entry(n);
            e.state = BreakerState::Closed;
            e.strikes = 0;
            e.probe = None;
            let t = BreakerTransition { node: n, at: now, to: BreakerState::Closed };
            self.transitions.push(t);
            out.push(t);
        }
        out
    }

    /// The state of `node`'s breaker (Closed if it never tripped).
    pub fn state(&self, node: NodeId) -> BreakerState {
        self.entries.get(&node).map(|e| e.state).unwrap_or(BreakerState::Closed)
    }

    /// Nodes whose breakers are currently not Closed, sorted by id.
    pub fn unhealthy(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self
            .entries
            .iter()
            .filter(|(_, e)| e.state != BreakerState::Closed)
            .map(|(&n, _)| n)
            .collect();
        v.sort();
        v
    }

    /// Every transition so far, in commit order.
    pub fn transitions(&self) -> &[BreakerTransition] {
        &self.transitions
    }
}

/// Per-tenant retry budgets: continuous-refill token buckets in virtual
/// time, charged once per executor retry.
#[derive(Debug)]
pub struct RetryBudgets {
    policy: RetryBudgetPolicy,
    /// tenant -> (tokens, refill anchor). The anchor only advances by
    /// whole refill intervals so fractional refill time is never lost.
    buckets: FxHashMap<u64, (u32, SimTime)>,
}

impl RetryBudgets {
    /// Fresh buckets under `policy`; every tenant starts full.
    pub fn new(policy: RetryBudgetPolicy) -> Self {
        RetryBudgets { policy, buckets: FxHashMap::default() }
    }

    /// Tries to spend one retry token for `tenant` at `now`. Returns
    /// false when the bucket is empty — the caller fails the request
    /// fast instead of retrying.
    pub fn charge(&mut self, tenant: u64, now: SimTime) -> bool {
        let (capacity, interval) = (self.policy.capacity, self.policy.refill_interval);
        let (tokens, anchor) = self
            .buckets
            .entry(tenant)
            .or_insert((capacity, SimTime::ZERO));
        if interval.0 > 0 && now > *anchor {
            let refills = now.since(*anchor).0 / interval.0;
            let refill = refills.min(capacity as u64) as u32;
            if *tokens < capacity {
                *tokens = (*tokens + refill).min(capacity);
            }
            *anchor = SimTime(anchor.0 + refills * interval.0);
        }
        if *tokens > 0 {
            *tokens -= 1;
            true
        } else {
            false
        }
    }

    /// Remaining tokens for `tenant` without refilling or charging.
    pub fn remaining(&self, tenant: u64) -> u32 {
        self.buckets
            .get(&tenant)
            .map(|&(t, _)| t)
            .unwrap_or(self.policy.capacity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disagg_hwsim::time::SimDuration;

    #[test]
    fn breaker_trips_after_consecutive_strikes_and_probes_after_cooldown() {
        let mut b = BreakerBank::new(
            BreakerPolicy::default()
                .with_trip_after(2)
                .with_cooldown(SimDuration(100)),
        );
        let n = NodeId(3);
        assert_eq!(b.state(n), BreakerState::Closed);
        assert!(b.on_fault(n, SimTime(10)).is_none(), "one strike stays closed");
        let trip = b.on_fault(n, SimTime(20)).expect("second strike trips");
        assert_eq!(trip.to, BreakerState::Open);
        assert_eq!(b.state(n), BreakerState::Open);
        // Too early: excluded, no transition.
        let (ok, t) = b.allows(n, SimTime(50), (0, 0));
        assert!(!ok);
        assert!(t.is_none());
        // Cool-down elapsed: exactly one probe gets through.
        let (ok, t) = b.allows(n, SimTime(120), (7, 1));
        assert!(ok);
        assert_eq!(t.unwrap().to, BreakerState::HalfOpen);
        let (other, _) = b.allows(n, SimTime(121), (8, 0));
        assert!(!other, "only the probe holder passes while half-open");
        // Clean probe closes; strikes are forgotten. The close fires even
        // when the probe task finished on a *different* node (stragglers).
        let close = b.on_success(NodeId(9), (7, 1), SimTime(150));
        assert_eq!(close.len(), 1, "probe closes");
        assert_eq!(close[0].node, n);
        assert_eq!(close[0].to, BreakerState::Closed);
        assert!(b.unhealthy().is_empty());
        assert!(b.on_fault(n, SimTime(200)).is_none(), "strike count restarted");
    }

    #[test]
    fn failed_probe_reopens_with_fresh_cooldown() {
        let mut b = BreakerBank::new(
            BreakerPolicy::default()
                .with_trip_after(1)
                .with_cooldown(SimDuration(100)),
        );
        let n = NodeId(0);
        b.on_fault(n, SimTime(0)).expect("trips immediately");
        let (ok, _) = b.allows(n, SimTime(100), (1, 0));
        assert!(ok);
        let reopen = b.on_fault(n, SimTime(110)).expect("probe fault re-opens");
        assert_eq!(reopen.to, BreakerState::Open);
        let (ok, _) = b.allows(n, SimTime(150), (2, 0));
        assert!(!ok, "cool-down restarted at the probe failure");
        let (ok, _) = b.allows(n, SimTime(210), (2, 0));
        assert!(ok);
        assert_eq!(b.transitions().len(), 4, "trip, probe, re-trip, re-probe");
    }

    #[test]
    fn retry_budget_spends_and_refills_in_virtual_time() {
        let mut r = RetryBudgets::new(
            RetryBudgetPolicy::default()
                .with_capacity(2)
                .with_refill_interval(SimDuration(1_000)),
        );
        assert_eq!(r.remaining(5), 2);
        assert!(r.charge(5, SimTime(0)));
        assert!(r.charge(5, SimTime(10)));
        assert!(!r.charge(5, SimTime(20)), "bucket empty");
        assert!(!r.charge(5, SimTime(999)), "not a full interval yet");
        assert!(r.charge(5, SimTime(1_001)), "one token refilled");
        assert!(!r.charge(5, SimTime(1_100)));
        // Refill caps at capacity no matter how long the idle gap.
        assert!(r.charge(5, SimTime(1_000_000)));
        assert!(r.charge(5, SimTime(1_000_000)));
        assert!(!r.charge(5, SimTime(1_000_000)));
        // Tenants are independent.
        assert!(r.charge(6, SimTime(0)));
    }
}
