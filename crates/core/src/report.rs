//! Execution reports: what the runtime tells you after a run.
//!
//! Experiments regenerate the paper's tables from these reports: makespan,
//! bytes physically moved vs handed over by ownership transfer, per-device
//! bandwidth and capacity utilization, placement decisions, and the
//! property audit.

use disagg_dataflow::job::JobId;
use disagg_dataflow::task::TaskId;
use disagg_hwsim::ids::{ComputeId, MemDeviceId};
use disagg_hwsim::time::{SimDuration, SimTime};
use disagg_obs::MetricsSnapshot;
use disagg_region::access::AccessStats;
use disagg_region::pool::RegionId;
use disagg_sched::enforce::Violation;
use disagg_sched::placement::PlacementDecision;

/// Where one task ran and what it did.
#[derive(Debug, Clone)]
pub struct TaskReport {
    /// The job.
    pub job: JobId,
    /// The task.
    pub task: TaskId,
    /// Task name.
    pub name: String,
    /// Compute device it ran on.
    pub compute: ComputeId,
    /// Actual start time.
    pub start: SimTime,
    /// Actual finish time.
    pub finish: SimTime,
    /// Access statistics from the task's accessor.
    pub stats: AccessStats,
    /// Devices chosen for the task's regions: (kind, region, device).
    pub placements: Vec<(&'static str, RegionId, MemDeviceId)>,
}

impl TaskReport {
    /// Wall-clock (virtual) duration of the task.
    pub fn duration(&self) -> SimDuration {
        self.finish - self.start
    }
}

/// Why a fault-isolated job failed (see
/// [`crate::FaultControlPolicy::isolate_failures`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailReason {
    /// The task burned through the [`crate::RecoveryPolicy`] retry cap.
    RetriesExhausted,
    /// The tenant's retry-budget token bucket was empty.
    RetryBudgetExhausted,
}

/// One request-tagged job that failed fast under failure isolation
/// instead of erroring the whole submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailedJob {
    /// The job.
    pub job: JobId,
    /// The task whose retries ran out.
    pub task: TaskId,
    /// The tenant the job's request belongs to (`None` for untagged
    /// jobs — only possible when isolation is extended beyond serving).
    pub tenant: Option<u64>,
    /// Virtual time the job was declared failed.
    pub at: SimTime,
    /// What exhausted it.
    pub reason: FailReason,
}

/// Per-device usage summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceSummary {
    /// The device.
    pub dev: MemDeviceId,
    /// Peak bytes allocated during the run.
    pub peak_bytes: u64,
    /// Device capacity.
    pub capacity: u64,
    /// Total bytes transferred through the device.
    pub bytes_transferred: u64,
}

impl DeviceSummary {
    /// Peak capacity utilization in `[0, 1]`.
    pub fn peak_utilization(&self) -> f64 {
        if self.capacity == 0 {
            0.0
        } else {
            self.peak_bytes as f64 / self.capacity as f64
        }
    }
}

/// The full result of running a batch of jobs.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// Virtual time from submission to last task finish.
    pub makespan: SimDuration,
    /// One report per executed task, in completion order.
    pub tasks: Vec<TaskReport>,
    /// Bytes physically moved (accesses, copies, migrations).
    pub bytes_moved: u64,
    /// Bytes whose movement was avoided by ownership transfer.
    pub bytes_ownership_transferred: u64,
    /// Number of pure ownership transfers.
    pub ownership_transfers: u64,
    /// Number of physical handover copies.
    pub handover_copies: u64,
    /// Every placement decision the engine made.
    pub placements: Vec<PlacementDecision>,
    /// Property-audit findings (empty placements-clean run ⇒ all good).
    pub violations: Vec<Violation>,
    /// Denied confidential accesses (enforcement events).
    pub denials: u64,
    /// Per-device usage.
    pub devices: Vec<DeviceSummary>,
    /// Replicas created for persistent outputs: `(primary, copies)`.
    pub persistent_replicas: Vec<(RegionId, Vec<RegionId>)>,
    /// Simulation events processed by the executor's event loop (ready,
    /// edge-done, and lane-free events across all waves). Dividing by
    /// wall-clock gives the simulator's events/sec throughput.
    pub events: u64,
    /// Dataflow edges the executor honored, as `(job, from, to)` — the
    /// DAG the critical-path analyzer walks.
    pub edges: Vec<(JobId, TaskId, TaskId)>,
    /// Metrics snapshot from the attached observer, if it keeps one
    /// (see [`crate::RuntimeConfig::with_observer`]).
    pub metrics: Option<MetricsSnapshot>,
    /// Request-tagged jobs that failed fast under failure isolation
    /// ([`crate::FaultControlPolicy::isolate_failures`]); empty on every
    /// run that completes normally or does not isolate.
    pub failed_jobs: Vec<FailedJob>,
}

impl RunReport {
    /// Reports for one job.
    pub fn job_tasks(&self, job: JobId) -> impl Iterator<Item = &TaskReport> {
        self.tasks.iter().filter(move |t| t.job == job)
    }

    /// The task report by job and name.
    pub fn task_by_name(&self, job: JobId, name: &str) -> Option<&TaskReport> {
        self.tasks.iter().find(|t| t.job == job && t.name == name)
    }

    /// Fraction of handovers that were pure ownership transfers.
    pub fn transfer_ratio(&self) -> f64 {
        let total = self.ownership_transfers + self.handover_copies;
        if total == 0 {
            0.0
        } else {
            self.ownership_transfers as f64 / total as f64
        }
    }

    /// Aggregate peak memory utilization across devices with capacity.
    pub fn aggregate_peak_utilization(&self) -> f64 {
        let (used, cap) = self
            .devices
            .iter()
            .fold((0u64, 0u64), |(u, c), d| (u + d.peak_bytes, c + d.capacity));
        if cap == 0 {
            0.0
        } else {
            used as f64 / cap as f64
        }
    }

    /// True if every placement honored its declared properties.
    pub fn placements_clean(&self) -> bool {
        self.violations
            .iter()
            .all(|v| matches!(v, Violation::ConfidentialAccessDenied { .. }))
    }

    /// Total virtual time tasks spent stalled on synchronous memory.
    pub fn total_sync_stall(&self) -> SimDuration {
        self.tasks.iter().map(|t| t.stats.sync_stall).sum()
    }

    /// Device summary for one device.
    pub fn device(&self, dev: MemDeviceId) -> Option<&DeviceSummary> {
        self.devices.iter().find(|d| d.dev == dev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with(transfers: u64, copies: u64) -> RunReport {
        RunReport {
            ownership_transfers: transfers,
            handover_copies: copies,
            ..RunReport::default()
        }
    }

    #[test]
    fn transfer_ratio_handles_empty_runs() {
        assert_eq!(report_with(0, 0).transfer_ratio(), 0.0);
        assert_eq!(report_with(3, 1).transfer_ratio(), 0.75);
        assert_eq!(report_with(4, 0).transfer_ratio(), 1.0);
    }

    #[test]
    fn device_summary_utilization() {
        let d = DeviceSummary {
            dev: MemDeviceId(0),
            peak_bytes: 50,
            capacity: 200,
            bytes_transferred: 0,
        };
        assert_eq!(d.peak_utilization(), 0.25);
        let empty = DeviceSummary {
            dev: MemDeviceId(1),
            peak_bytes: 0,
            capacity: 0,
            bytes_transferred: 0,
        };
        assert_eq!(empty.peak_utilization(), 0.0);
    }

    #[test]
    fn aggregate_utilization_weights_by_capacity() {
        let mut r = RunReport::default();
        r.devices.push(DeviceSummary {
            dev: MemDeviceId(0),
            peak_bytes: 100,
            capacity: 100,
            bytes_transferred: 0,
        });
        r.devices.push(DeviceSummary {
            dev: MemDeviceId(1),
            peak_bytes: 0,
            capacity: 300,
            bytes_transferred: 0,
        });
        assert_eq!(r.aggregate_peak_utilization(), 0.25);
    }

    #[test]
    fn clean_report_with_denials_is_still_clean() {
        let mut r = RunReport::default();
        assert!(r.placements_clean());
        r.violations.push(Violation::ConfidentialAccessDenied {
            region: RegionId(1),
            owner_job: Some(0),
            accessor_job: Some(1),
        });
        assert!(r.placements_clean());
        r.violations.push(Violation::Persistence {
            region: RegionId(2),
            dev: MemDeviceId(0),
        });
        assert!(!r.placements_clean());
    }
}
