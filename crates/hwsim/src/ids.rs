//! Strongly typed identifiers for simulated hardware entities.
//!
//! Raw `u32` indices are easy to mix up in a system that juggles memory
//! devices, compute devices, nodes, and links at the same time. Each entity
//! class gets its own newtype so the compiler catches cross-class confusion.

use std::fmt;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the raw index for use as a `Vec` subscript.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Builds an id from a raw index.
            ///
            /// # Panics
            ///
            /// Panics if `index` does not fit in `u32`; entity tables in the
            /// simulator are always far smaller than that.
            #[inline]
            pub fn from_index(index: usize) -> Self {
                Self(u32::try_from(index).expect("entity index exceeds u32"))
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifies a memory device (one row instance of Table 1) in a topology.
    MemDeviceId,
    "mem"
);
id_type!(
    /// Identifies a compute device (CPU, GPU, ...) in a topology.
    ComputeId,
    "cpu"
);
id_type!(
    /// Identifies a physical node (server / memory blade) grouping devices.
    NodeId,
    "node"
);
id_type!(
    /// Identifies an interconnect link in the topology graph.
    LinkId,
    "link"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip_through_indices() {
        let id = MemDeviceId::from_index(7);
        assert_eq!(id, MemDeviceId(7));
        assert_eq!(id.index(), 7);
    }

    #[test]
    fn ids_display_with_prefix() {
        assert_eq!(MemDeviceId(3).to_string(), "mem3");
        assert_eq!(ComputeId(0).to_string(), "cpu0");
        assert_eq!(NodeId(1).to_string(), "node1");
        assert_eq!(LinkId(9).to_string(), "link9");
    }

    #[test]
    fn ids_are_ordered_by_raw_value() {
        assert!(MemDeviceId(1) < MemDeviceId(2));
        assert!(NodeId(0) < NodeId(10));
    }

    #[test]
    fn distinct_id_types_do_not_unify() {
        // Compile-time property: this test documents that MemDeviceId and
        // ComputeId are distinct types; equality across them does not exist.
        let m = MemDeviceId(1);
        let c = ComputeId(1);
        assert_eq!(m.index(), c.index());
    }
}
