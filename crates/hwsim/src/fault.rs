//! Deterministic fault injection.
//!
//! The paper's Challenge 8(3) asks how the runtime mitigates "network
//! errors, corrupted memory, and planned and unplanned node faults". The
//! [`FaultInjector`] holds a pre-planned, time-ordered schedule of fault
//! events; the runtime and the fault-tolerance layer query it at simulated
//! times. Because the schedule is data, every failure experiment is
//! reproducible.

use crate::ids::{LinkId, MemDeviceId, NodeId};
use crate::time::SimTime;

/// What kind of fault occurs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A whole node (and all devices on it) stops responding.
    NodeCrash(NodeId),
    /// A previously crashed node comes back (contents of volatile devices
    /// are lost; persistent devices retain data).
    NodeRecover(NodeId),
    /// A single memory device fails (until a later [`FaultKind::DeviceRecover`]).
    DeviceFail(MemDeviceId),
    /// A previously failed memory device is serviced and comes back
    /// empty (contents were lost with the failure).
    DeviceRecover(MemDeviceId),
    /// A link goes down (until a later [`FaultKind::LinkUp`]).
    LinkDown(LinkId),
    /// A previously down or degraded link returns to full health.
    LinkUp(LinkId),
    /// A link keeps carrying traffic but at a fraction of its nominal
    /// bandwidth (flaky optics, a failed lane, congestion collapse)
    /// until the next [`FaultKind::LinkUp`]. The factor is fixed-point
    /// so fault schedules stay `Eq`/hashable.
    LinkDegraded {
        /// The affected link.
        link: LinkId,
        /// Remaining bandwidth in percent of nominal (e.g. 25 = quarter
        /// speed). Clamped to at least 1% when queried.
        factor_pct: u32,
    },
    /// A range of bytes on a device is silently corrupted.
    Corrupt {
        /// The affected device.
        dev: MemDeviceId,
        /// First corrupted byte offset within the device.
        offset: u64,
        /// Number of corrupted bytes.
        len: u64,
    },
}

/// A fault scheduled at a point in virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// When the fault strikes.
    pub at: SimTime,
    /// What happens.
    pub kind: FaultKind,
}

/// A time-ordered fault schedule with point-in-time liveness queries.
#[derive(Debug, Clone, Default)]
pub struct FaultInjector {
    events: Vec<FaultEvent>,
}

impl FaultInjector {
    /// An injector with no faults.
    pub fn none() -> Self {
        FaultInjector::default()
    }

    /// Builds an injector from a list of events (sorted internally).
    pub fn with_events(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| e.at);
        FaultInjector { events }
    }

    /// Schedules one more event.
    pub fn schedule(&mut self, at: SimTime, kind: FaultKind) {
        let pos = self.events.partition_point(|e| e.at <= at);
        self.events.insert(pos, FaultEvent { at, kind });
    }

    /// All events, time-ordered.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// True if no faults are scheduled at all. The runtime uses this to
    /// skip every per-access fault query on the (common) calm path.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events in the half-open window `[from, to)`.
    pub fn events_between(&self, from: SimTime, to: SimTime) -> &[FaultEvent] {
        let lo = self.events.partition_point(|e| e.at < from);
        let hi = self.events.partition_point(|e| e.at < to);
        &self.events[lo..hi]
    }

    /// Events in the closed window `[from, to]` — what a task that ran
    /// from `from` to `to` could have been interrupted by.
    pub fn events_in_window(&self, from: SimTime, to: SimTime) -> &[FaultEvent] {
        let lo = self.events.partition_point(|e| e.at < from);
        let hi = self.events.partition_point(|e| e.at <= to);
        &self.events[lo..hi]
    }

    /// True if `node` is down at time `t` (crashed without a later
    /// recovery at or before `t`).
    pub fn node_down(&self, node: NodeId, t: SimTime) -> bool {
        let mut down = false;
        for e in &self.events {
            if e.at > t {
                break;
            }
            match e.kind {
                FaultKind::NodeCrash(n) if n == node => down = true,
                FaultKind::NodeRecover(n) if n == node => down = false,
                _ => {}
            }
        }
        down
    }

    /// True if `dev` is failed at time `t` (failed without a later
    /// recovery at or before `t`).
    pub fn device_failed(&self, dev: MemDeviceId, t: SimTime) -> bool {
        let mut failed = false;
        for e in &self.events {
            if e.at > t {
                break;
            }
            match e.kind {
                FaultKind::DeviceFail(d) if d == dev => failed = true,
                FaultKind::DeviceRecover(d) if d == dev => failed = false,
                _ => {}
            }
        }
        failed
    }

    /// True if `link` is down at time `t` (down without a later
    /// [`FaultKind::LinkUp`] at or before `t`).
    pub fn link_down(&self, link: LinkId, t: SimTime) -> bool {
        let mut down = false;
        for e in &self.events {
            if e.at > t {
                break;
            }
            match e.kind {
                FaultKind::LinkDown(l) if l == link => down = true,
                FaultKind::LinkUp(l) if l == link => down = false,
                _ => {}
            }
        }
        down
    }

    /// The bandwidth multiplier in effect on `link` at time `t`: 1.0
    /// when healthy, `factor_pct / 100` while degraded. A
    /// [`FaultKind::LinkUp`] restores full bandwidth. Going down and
    /// back up also clears any degradation.
    pub fn link_degradation(&self, link: LinkId, t: SimTime) -> f64 {
        let mut factor = 1.0f64;
        for e in &self.events {
            if e.at > t {
                break;
            }
            match e.kind {
                FaultKind::LinkDegraded { link: l, factor_pct } if l == link => {
                    factor = f64::from(factor_pct.clamp(1, 100)) / 100.0;
                }
                FaultKind::LinkUp(l) if l == link => factor = 1.0,
                _ => {}
            }
        }
        factor
    }

    /// Returns the corrupted byte ranges on `dev` visible at time `t`.
    pub fn corrupted_ranges(&self, dev: MemDeviceId, t: SimTime) -> Vec<(u64, u64)> {
        self.events
            .iter()
            .take_while(|e| e.at <= t)
            .filter_map(|e| match e.kind {
                FaultKind::Corrupt { dev: d, offset, len } if d == dev => Some((offset, len)),
                _ => None,
            })
            .collect()
    }

    /// The time of the first fault affecting the given node, if any.
    pub fn first_node_crash(&self, node: NodeId) -> Option<SimTime> {
        self.events.iter().find_map(|e| match e.kind {
            FaultKind::NodeCrash(n) if n == node => Some(e.at),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_faults_means_everything_up() {
        let inj = FaultInjector::none();
        assert!(!inj.node_down(NodeId(0), SimTime(1_000)));
        assert!(!inj.device_failed(MemDeviceId(0), SimTime(1_000)));
        assert!(!inj.link_down(LinkId(0), SimTime(1_000)));
    }

    #[test]
    fn crash_takes_effect_at_its_time() {
        let inj = FaultInjector::with_events(vec![FaultEvent {
            at: SimTime(500),
            kind: FaultKind::NodeCrash(NodeId(1)),
        }]);
        assert!(!inj.node_down(NodeId(1), SimTime(499)));
        assert!(inj.node_down(NodeId(1), SimTime(500)));
        assert!(inj.node_down(NodeId(1), SimTime(10_000)));
        assert!(!inj.node_down(NodeId(0), SimTime(10_000)));
    }

    #[test]
    fn recovery_clears_a_crash() {
        let inj = FaultInjector::with_events(vec![
            FaultEvent {
                at: SimTime(500),
                kind: FaultKind::NodeCrash(NodeId(1)),
            },
            FaultEvent {
                at: SimTime(900),
                kind: FaultKind::NodeRecover(NodeId(1)),
            },
        ]);
        assert!(inj.node_down(NodeId(1), SimTime(700)));
        assert!(!inj.node_down(NodeId(1), SimTime(900)));
    }

    #[test]
    fn events_are_sorted_regardless_of_insertion_order() {
        let mut inj = FaultInjector::none();
        inj.schedule(SimTime(900), FaultKind::DeviceFail(MemDeviceId(2)));
        inj.schedule(SimTime(100), FaultKind::LinkDown(LinkId(0)));
        inj.schedule(SimTime(500), FaultKind::NodeCrash(NodeId(0)));
        let times: Vec<u64> = inj.events().iter().map(|e| e.at.as_nanos()).collect();
        assert_eq!(times, vec![100, 500, 900]);
    }

    #[test]
    fn events_between_is_half_open() {
        let inj = FaultInjector::with_events(vec![
            FaultEvent {
                at: SimTime(100),
                kind: FaultKind::LinkDown(LinkId(0)),
            },
            FaultEvent {
                at: SimTime(200),
                kind: FaultKind::LinkDown(LinkId(1)),
            },
        ]);
        assert_eq!(inj.events_between(SimTime(100), SimTime(200)).len(), 1);
        assert_eq!(inj.events_between(SimTime(0), SimTime(300)).len(), 2);
        assert_eq!(inj.events_between(SimTime(201), SimTime(300)).len(), 0);
    }

    #[test]
    fn corruption_ranges_accumulate() {
        let inj = FaultInjector::with_events(vec![
            FaultEvent {
                at: SimTime(10),
                kind: FaultKind::Corrupt {
                    dev: MemDeviceId(0),
                    offset: 0,
                    len: 64,
                },
            },
            FaultEvent {
                at: SimTime(20),
                kind: FaultKind::Corrupt {
                    dev: MemDeviceId(0),
                    offset: 128,
                    len: 64,
                },
            },
        ]);
        assert_eq!(inj.corrupted_ranges(MemDeviceId(0), SimTime(15)).len(), 1);
        assert_eq!(inj.corrupted_ranges(MemDeviceId(0), SimTime(25)).len(), 2);
        assert!(inj.corrupted_ranges(MemDeviceId(1), SimTime(25)).is_empty());
    }

    #[test]
    fn device_recovery_clears_a_failure() {
        let inj = FaultInjector::with_events(vec![
            FaultEvent {
                at: SimTime(100),
                kind: FaultKind::DeviceFail(MemDeviceId(2)),
            },
            FaultEvent {
                at: SimTime(400),
                kind: FaultKind::DeviceRecover(MemDeviceId(2)),
            },
        ]);
        assert!(!inj.device_failed(MemDeviceId(2), SimTime(99)));
        assert!(inj.device_failed(MemDeviceId(2), SimTime(100)));
        assert!(inj.device_failed(MemDeviceId(2), SimTime(399)));
        assert!(!inj.device_failed(MemDeviceId(2), SimTime(400)));
        assert!(!inj.device_failed(MemDeviceId(3), SimTime(200)));
    }

    #[test]
    fn link_up_clears_down_and_degradation() {
        let inj = FaultInjector::with_events(vec![
            FaultEvent {
                at: SimTime(10),
                kind: FaultKind::LinkDown(LinkId(5)),
            },
            FaultEvent {
                at: SimTime(20),
                kind: FaultKind::LinkUp(LinkId(5)),
            },
            FaultEvent {
                at: SimTime(30),
                kind: FaultKind::LinkDegraded { link: LinkId(5), factor_pct: 25 },
            },
            FaultEvent {
                at: SimTime(40),
                kind: FaultKind::LinkUp(LinkId(5)),
            },
        ]);
        assert!(inj.link_down(LinkId(5), SimTime(15)));
        assert!(!inj.link_down(LinkId(5), SimTime(20)));
        assert_eq!(inj.link_degradation(LinkId(5), SimTime(25)), 1.0);
        assert_eq!(inj.link_degradation(LinkId(5), SimTime(35)), 0.25);
        assert_eq!(inj.link_degradation(LinkId(5), SimTime(40)), 1.0);
        assert_eq!(inj.link_degradation(LinkId(6), SimTime(35)), 1.0);
    }

    #[test]
    fn degradation_factor_is_clamped_to_a_sane_range() {
        let inj = FaultInjector::with_events(vec![FaultEvent {
            at: SimTime(0),
            kind: FaultKind::LinkDegraded { link: LinkId(0), factor_pct: 0 },
        }]);
        assert_eq!(inj.link_degradation(LinkId(0), SimTime(1)), 0.01);
    }

    #[test]
    fn window_queries_and_emptiness() {
        assert!(FaultInjector::none().is_empty());
        let inj = FaultInjector::with_events(vec![
            FaultEvent {
                at: SimTime(100),
                kind: FaultKind::LinkDown(LinkId(0)),
            },
            FaultEvent {
                at: SimTime(200),
                kind: FaultKind::LinkUp(LinkId(0)),
            },
        ]);
        assert!(!inj.is_empty());
        // Closed window includes both endpoints, unlike events_between.
        assert_eq!(inj.events_in_window(SimTime(100), SimTime(200)).len(), 2);
        assert_eq!(inj.events_between(SimTime(100), SimTime(200)).len(), 1);
        assert_eq!(inj.events_in_window(SimTime(101), SimTime(199)).len(), 0);
    }

    #[test]
    fn first_node_crash_reports_earliest() {
        let inj = FaultInjector::with_events(vec![
            FaultEvent {
                at: SimTime(700),
                kind: FaultKind::NodeCrash(NodeId(3)),
            },
            FaultEvent {
                at: SimTime(300),
                kind: FaultKind::NodeCrash(NodeId(3)),
            },
        ]);
        assert_eq!(inj.first_node_crash(NodeId(3)), Some(SimTime(300)));
        assert_eq!(inj.first_node_crash(NodeId(4)), None);
    }
}
