//! Deterministic fault injection.
//!
//! The paper's Challenge 8(3) asks how the runtime mitigates "network
//! errors, corrupted memory, and planned and unplanned node faults". The
//! [`FaultInjector`] holds a pre-planned, time-ordered schedule of fault
//! events; the runtime and the fault-tolerance layer query it at simulated
//! times. Because the schedule is data, every failure experiment is
//! reproducible.

use crate::ids::{LinkId, MemDeviceId, NodeId};
use crate::time::SimTime;

/// What kind of fault occurs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A whole node (and all devices on it) stops responding.
    NodeCrash(NodeId),
    /// A previously crashed node comes back (contents of volatile devices
    /// are lost; persistent devices retain data).
    NodeRecover(NodeId),
    /// A single memory device fails permanently.
    DeviceFail(MemDeviceId),
    /// A link goes down permanently.
    LinkDown(LinkId),
    /// A range of bytes on a device is silently corrupted.
    Corrupt {
        /// The affected device.
        dev: MemDeviceId,
        /// First corrupted byte offset within the device.
        offset: u64,
        /// Number of corrupted bytes.
        len: u64,
    },
}

/// A fault scheduled at a point in virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// When the fault strikes.
    pub at: SimTime,
    /// What happens.
    pub kind: FaultKind,
}

/// A time-ordered fault schedule with point-in-time liveness queries.
#[derive(Debug, Clone, Default)]
pub struct FaultInjector {
    events: Vec<FaultEvent>,
}

impl FaultInjector {
    /// An injector with no faults.
    pub fn none() -> Self {
        FaultInjector::default()
    }

    /// Builds an injector from a list of events (sorted internally).
    pub fn with_events(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| e.at);
        FaultInjector { events }
    }

    /// Schedules one more event.
    pub fn schedule(&mut self, at: SimTime, kind: FaultKind) {
        let pos = self.events.partition_point(|e| e.at <= at);
        self.events.insert(pos, FaultEvent { at, kind });
    }

    /// All events, time-ordered.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Events in the half-open window `[from, to)`.
    pub fn events_between(&self, from: SimTime, to: SimTime) -> &[FaultEvent] {
        let lo = self.events.partition_point(|e| e.at < from);
        let hi = self.events.partition_point(|e| e.at < to);
        &self.events[lo..hi]
    }

    /// True if `node` is down at time `t` (crashed without a later
    /// recovery at or before `t`).
    pub fn node_down(&self, node: NodeId, t: SimTime) -> bool {
        let mut down = false;
        for e in &self.events {
            if e.at > t {
                break;
            }
            match e.kind {
                FaultKind::NodeCrash(n) if n == node => down = true,
                FaultKind::NodeRecover(n) if n == node => down = false,
                _ => {}
            }
        }
        down
    }

    /// True if `dev` has failed at or before `t`.
    pub fn device_failed(&self, dev: MemDeviceId, t: SimTime) -> bool {
        self.events
            .iter()
            .take_while(|e| e.at <= t)
            .any(|e| matches!(e.kind, FaultKind::DeviceFail(d) if d == dev))
    }

    /// True if `link` is down at or before `t`.
    pub fn link_down(&self, link: LinkId, t: SimTime) -> bool {
        self.events
            .iter()
            .take_while(|e| e.at <= t)
            .any(|e| matches!(e.kind, FaultKind::LinkDown(l) if l == link))
    }

    /// Returns the corrupted byte ranges on `dev` visible at time `t`.
    pub fn corrupted_ranges(&self, dev: MemDeviceId, t: SimTime) -> Vec<(u64, u64)> {
        self.events
            .iter()
            .take_while(|e| e.at <= t)
            .filter_map(|e| match e.kind {
                FaultKind::Corrupt { dev: d, offset, len } if d == dev => Some((offset, len)),
                _ => None,
            })
            .collect()
    }

    /// The time of the first fault affecting the given node, if any.
    pub fn first_node_crash(&self, node: NodeId) -> Option<SimTime> {
        self.events.iter().find_map(|e| match e.kind {
            FaultKind::NodeCrash(n) if n == node => Some(e.at),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_faults_means_everything_up() {
        let inj = FaultInjector::none();
        assert!(!inj.node_down(NodeId(0), SimTime(1_000)));
        assert!(!inj.device_failed(MemDeviceId(0), SimTime(1_000)));
        assert!(!inj.link_down(LinkId(0), SimTime(1_000)));
    }

    #[test]
    fn crash_takes_effect_at_its_time() {
        let inj = FaultInjector::with_events(vec![FaultEvent {
            at: SimTime(500),
            kind: FaultKind::NodeCrash(NodeId(1)),
        }]);
        assert!(!inj.node_down(NodeId(1), SimTime(499)));
        assert!(inj.node_down(NodeId(1), SimTime(500)));
        assert!(inj.node_down(NodeId(1), SimTime(10_000)));
        assert!(!inj.node_down(NodeId(0), SimTime(10_000)));
    }

    #[test]
    fn recovery_clears_a_crash() {
        let inj = FaultInjector::with_events(vec![
            FaultEvent {
                at: SimTime(500),
                kind: FaultKind::NodeCrash(NodeId(1)),
            },
            FaultEvent {
                at: SimTime(900),
                kind: FaultKind::NodeRecover(NodeId(1)),
            },
        ]);
        assert!(inj.node_down(NodeId(1), SimTime(700)));
        assert!(!inj.node_down(NodeId(1), SimTime(900)));
    }

    #[test]
    fn events_are_sorted_regardless_of_insertion_order() {
        let mut inj = FaultInjector::none();
        inj.schedule(SimTime(900), FaultKind::DeviceFail(MemDeviceId(2)));
        inj.schedule(SimTime(100), FaultKind::LinkDown(LinkId(0)));
        inj.schedule(SimTime(500), FaultKind::NodeCrash(NodeId(0)));
        let times: Vec<u64> = inj.events().iter().map(|e| e.at.as_nanos()).collect();
        assert_eq!(times, vec![100, 500, 900]);
    }

    #[test]
    fn events_between_is_half_open() {
        let inj = FaultInjector::with_events(vec![
            FaultEvent {
                at: SimTime(100),
                kind: FaultKind::LinkDown(LinkId(0)),
            },
            FaultEvent {
                at: SimTime(200),
                kind: FaultKind::LinkDown(LinkId(1)),
            },
        ]);
        assert_eq!(inj.events_between(SimTime(100), SimTime(200)).len(), 1);
        assert_eq!(inj.events_between(SimTime(0), SimTime(300)).len(), 2);
        assert_eq!(inj.events_between(SimTime(201), SimTime(300)).len(), 0);
    }

    #[test]
    fn corruption_ranges_accumulate() {
        let inj = FaultInjector::with_events(vec![
            FaultEvent {
                at: SimTime(10),
                kind: FaultKind::Corrupt {
                    dev: MemDeviceId(0),
                    offset: 0,
                    len: 64,
                },
            },
            FaultEvent {
                at: SimTime(20),
                kind: FaultKind::Corrupt {
                    dev: MemDeviceId(0),
                    offset: 128,
                    len: 64,
                },
            },
        ]);
        assert_eq!(inj.corrupted_ranges(MemDeviceId(0), SimTime(15)).len(), 1);
        assert_eq!(inj.corrupted_ranges(MemDeviceId(0), SimTime(25)).len(), 2);
        assert!(inj.corrupted_ranges(MemDeviceId(1), SimTime(25)).is_empty());
    }

    #[test]
    fn first_node_crash_reports_earliest() {
        let inj = FaultInjector::with_events(vec![
            FaultEvent {
                at: SimTime(700),
                kind: FaultKind::NodeCrash(NodeId(3)),
            },
            FaultEvent {
                at: SimTime(300),
                kind: FaultKind::NodeCrash(NodeId(3)),
            },
        ]);
        assert_eq!(inj.first_node_crash(NodeId(3)), Some(SimTime(300)));
        assert_eq!(inj.first_node_crash(NodeId(4)), None);
    }
}
