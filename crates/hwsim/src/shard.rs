//! Topology sharding for the parallel event loop.
//!
//! Conservative parallel discrete-event simulation partitions the
//! simulated hardware into **shards** and lets each shard's event loop
//! run ahead independently inside a bounded *virtual-time window*. The
//! bound — the **lookahead** — comes from the physics of the model:
//! an event committed on one shard at time `t` can only influence
//! another shard through a cross-shard interconnect link, and the
//! cheapest such link adds `L` nanoseconds, so no cross-shard effect
//! can land before `t + L`. Within a window of width `L` the shards'
//! event streams are causally independent and may be staged in
//! parallel.
//!
//! [`ShardMap::partition`] cuts the topology along **node** (failure
//! domain) boundaries: a node's compute devices, memory devices, and
//! routing hub always land in the same shard, so every intra-node
//! interaction (lane dispatch, local allocation) is shard-local and
//! only explicit cross-node traffic crosses shards. Nodes are assigned
//! to shards in contiguous, balanced blocks of the builder's node
//! order, which keeps rack presets' compute nodes and their pool
//! blades grouped the way the failure-domain experiments expect — and,
//! being a pure function of `(topology, shard count)`, the partition
//! is deterministic.

use crate::ids::{ComputeId, MemDeviceId, NodeId};
use crate::time::SimDuration;
use crate::topology::{Endpoint, Topology};

/// A deterministic node→shard partition plus the conservative
/// lookahead derived from the cheapest cross-shard link.
#[derive(Debug, Clone)]
pub struct ShardMap {
    shards: usize,
    node_shard: Vec<u32>,
    compute_shard: Vec<u32>,
    /// Index of each compute device within its shard's device list.
    compute_local: Vec<u32>,
    /// Compute devices per shard, in id order.
    shard_computes: Vec<Vec<ComputeId>>,
    mem_shard: Vec<u32>,
    /// Minimum latency over links whose endpoints live in different
    /// shards. `None` when nothing crosses (single shard, or a
    /// degenerate partition): windows are then unbounded.
    lookahead: Option<SimDuration>,
}

impl ShardMap {
    /// Partitions `topo` into (at most) `shards` shards along node
    /// boundaries. The effective shard count is clamped to the node
    /// count and to at least 1; node `i` of `n` goes to shard
    /// `i * s / n` (contiguous balanced blocks).
    pub fn partition(topo: &Topology, shards: usize) -> ShardMap {
        let n = topo.nodes().len().max(1);
        let s = shards.clamp(1, n);
        let node_shard: Vec<u32> = (0..topo.nodes().len())
            .map(|i| (i * s / n) as u32)
            .collect();
        let shard_of_node = |id: NodeId| node_shard[id.index()];

        let compute_shard: Vec<u32> = topo
            .compute_ids()
            .map(|c| shard_of_node(topo.node_of_compute(c)))
            .collect();
        let mem_shard: Vec<u32> = topo
            .mem_ids()
            .map(|m| shard_of_node(topo.node_of_mem(m)))
            .collect();

        let mut shard_computes: Vec<Vec<ComputeId>> = vec![Vec::new(); s];
        let mut compute_local = vec![0u32; compute_shard.len()];
        for (i, &sh) in compute_shard.iter().enumerate() {
            let list = &mut shard_computes[sh as usize];
            compute_local[i] = list.len() as u32;
            list.push(ComputeId(i as u32));
        }

        // Any path that leaves a shard traverses at least one link whose
        // endpoints resolve to nodes in different shards; the cheapest
        // such link bounds how soon one shard can affect another.
        let resolve = |e: Endpoint| -> u32 {
            match e {
                Endpoint::Compute(c) => shard_of_node(topo.node_of_compute(c)),
                Endpoint::Mem(m) => shard_of_node(topo.node_of_mem(m)),
                Endpoint::Hub(nd) => shard_of_node(nd),
            }
        };
        let lookahead = topo
            .links()
            .iter()
            .filter(|l| resolve(l.a) != resolve(l.b))
            .map(|l| l.latency_ns)
            .fold(None::<f64>, |acc, l| {
                Some(acc.map_or(l, |a| a.min(l)))
            })
            // A zero-latency cross link still permits single-instant
            // windows; clamp so windows always make progress.
            .map(|ns| SimDuration::from_nanos((ns as u64).max(1)));

        ShardMap {
            shards: s,
            node_shard,
            compute_shard,
            compute_local,
            shard_computes,
            mem_shard,
            lookahead,
        }
    }

    /// Effective shard count (≥ 1, ≤ node count).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning a node.
    pub fn shard_of_node(&self, id: NodeId) -> usize {
        self.node_shard[id.index()] as usize
    }

    /// The shard owning a compute device.
    pub fn shard_of_compute(&self, id: ComputeId) -> usize {
        self.compute_shard[id.index()] as usize
    }

    /// The shard owning a memory device.
    pub fn shard_of_mem(&self, id: MemDeviceId) -> usize {
        self.mem_shard[id.index()] as usize
    }

    /// `(shard, local index)` of a compute device: its position within
    /// the shard's ready-queue/lane arrays.
    pub fn local_compute(&self, id: ComputeId) -> (usize, usize) {
        (
            self.compute_shard[id.index()] as usize,
            self.compute_local[id.index()] as usize,
        )
    }

    /// The compute devices a shard owns, in id order.
    pub fn computes(&self, shard: usize) -> &[ComputeId] {
        &self.shard_computes[shard]
    }

    /// The conservative window width: the cheapest cross-shard link
    /// latency. `None` means no link crosses shards and windows are
    /// unbounded (the single-shard fast path).
    pub fn lookahead(&self) -> Option<SimDuration> {
        self.lookahead
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::{disaggregated_rack, single_server};

    #[test]
    fn single_shard_owns_everything_with_unbounded_windows() {
        let (topo, _) = single_server();
        let map = ShardMap::partition(&topo, 1);
        assert_eq!(map.shards(), 1);
        assert!(topo.compute_ids().all(|c| map.shard_of_compute(c) == 0));
        assert!(topo.mem_ids().all(|m| map.shard_of_mem(m) == 0));
        assert_eq!(map.lookahead(), None);
    }

    #[test]
    fn partition_is_node_aligned_and_balanced() {
        let (topo, rack) = disaggregated_rack(4, 16, 4, 256);
        let map = ShardMap::partition(&topo, 4);
        assert_eq!(map.shards(), 4);
        // Devices co-located on a node share its shard.
        for c in topo.compute_ids() {
            assert_eq!(
                map.shard_of_compute(c),
                map.shard_of_node(topo.node_of_compute(c))
            );
        }
        for m in topo.mem_ids() {
            assert_eq!(map.shard_of_mem(m), map.shard_of_node(topo.node_of_mem(m)));
        }
        // Every shard owns at least one node; blocks are contiguous.
        let shards: Vec<usize> = topo.nodes().iter().map(|n| map.shard_of_node(n.id)).collect();
        assert!(shards.windows(2).all(|w| w[0] <= w[1]), "contiguous blocks");
        assert_eq!(*shards.last().unwrap(), 3);
        let _ = rack;
    }

    #[test]
    fn local_compute_indexes_are_dense_per_shard() {
        let (topo, _) = disaggregated_rack(3, 16, 3, 128);
        let map = ShardMap::partition(&topo, 2);
        for s in 0..map.shards() {
            for (li, &c) in map.computes(s).iter().enumerate() {
                assert_eq!(map.local_compute(c), (s, li));
            }
        }
    }

    #[test]
    fn lookahead_is_the_cheapest_cross_shard_link() {
        let (topo, _) = disaggregated_rack(4, 16, 4, 256);
        let map = ShardMap::partition(&topo, 4);
        let la = map.lookahead().expect("rack has cross-shard links");
        // Must be a real bound: no cross-shard link is cheaper.
        let min_cross = topo
            .links()
            .iter()
            .filter(|l| {
                let resolve = |e: Endpoint| match e {
                    Endpoint::Compute(c) => map.shard_of_compute(c),
                    Endpoint::Mem(m) => map.shard_of_mem(m),
                    Endpoint::Hub(n) => map.shard_of_node(n),
                };
                resolve(l.a) != resolve(l.b)
            })
            .map(|l| l.latency_ns as u64)
            .min()
            .unwrap()
            .max(1);
        assert_eq!(la, SimDuration::from_nanos(min_cross));
        assert!(la > SimDuration::ZERO);
    }

    #[test]
    fn oversized_shard_request_clamps_to_node_count() {
        let (topo, _) = single_server();
        let nodes = topo.nodes().len();
        let map = ShardMap::partition(&topo, 64);
        assert_eq!(map.shards(), nodes);
    }
}
