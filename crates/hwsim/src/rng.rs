//! Deterministic random-number generation for reproducible experiments.
//!
//! The bench harness must regenerate the paper's tables bit-for-bit across
//! runs and machines, so randomness comes from an explicitly seeded,
//! self-contained generator rather than ambient entropy. [`SimRng`] is a
//! `xoshiro256**` generator seeded through SplitMix64, the standard
//! recommendation for seeding xoshiro state.

/// A small, fast, deterministic PRNG (`xoshiro256**`).
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        SimRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Derives an independent child stream; used to give each job/task its
    /// own generator without correlated sequences.
    pub fn fork(&mut self, tag: u64) -> SimRng {
        SimRng::new(self.next_u64() ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Returns the next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniform value in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-shift rejection method for unbiased sampling.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below bound must be positive");
        // Lemire's method: unbiased and branch-light.
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound {
                return (m >> 64) as u64;
            }
            // Rejection zone: only entered for low < bound.
            let threshold = bound.wrapping_neg() % bound;
            if low >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Returns a uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "range requires lo < hi");
        lo + self.next_below(hi - lo)
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits give the full double mantissa.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Picks a uniform element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn pick<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        assert!(!slice.is_empty(), "pick from empty slice");
        &slice[self.next_below(slice.len() as u64) as usize]
    }

    /// Fills a byte buffer with pseudo-random data.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        let mut chunks = buf.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = SimRng::new(7);
        for _ in 0..10_000 {
            assert!(rng.next_below(13) < 13);
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut rng = SimRng::new(9);
        for _ in 0..10_000 {
            let v = rng.range(100, 110);
            assert!((100..110).contains(&v));
        }
    }

    #[test]
    fn next_f64_is_unit_interval() {
        let mut rng = SimRng::new(11);
        for _ in 0..10_000 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn next_below_is_roughly_uniform() {
        let mut rng = SimRng::new(3);
        let mut buckets = [0u32; 10];
        let n = 100_000;
        for _ in 0..n {
            buckets[rng.next_below(10) as usize] += 1;
        }
        let expected = n as f64 / 10.0;
        for &b in &buckets {
            let dev = (b as f64 - expected).abs() / expected;
            assert!(dev < 0.05, "bucket deviates {dev:.3} from uniform");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::new(5);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "100-element shuffle should not be identity");
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut parent = SimRng::new(123);
        let mut c1 = parent.fork(1);
        let mut c2 = parent.fork(2);
        let same = (0..64).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = SimRng::new(77);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::new(8);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        // Out-of-range probabilities clamp instead of panicking.
        assert!(rng.chance(2.0));
        assert!(!rng.chance(-1.0));
    }

    #[test]
    fn pick_selects_from_the_slice() {
        let mut rng = SimRng::new(4);
        let items = [10, 20, 30];
        for _ in 0..100 {
            assert!(items.contains(rng.pick(&items)));
        }
    }
}
