//! Deterministic, SipHash-free hashing for hot lookup paths.
//!
//! `std::collections::HashMap` defaults to SipHash-1-3 with per-map
//! random keys: robust against adversarial keys, but (a) slow for the
//! tiny fixed-width keys the simulator hashes on its hot paths
//! (resource keys, region ids, short interned names) and (b)
//! *nondeterministically ordered* when iterated — poison for a
//! simulator whose whole contract is bit-for-bit reproducibility.
//!
//! [`FxHasher`] is the well-known multiply-xor hash used by rustc
//! (Firefox's original "FxHash"), reimplemented here so the workspace
//! stays dependency-free. It is not DoS-resistant; every key hashed in
//! this workspace comes from the simulation itself, never from
//! untrusted input. [`FxHashMap`] iteration order is a pure function of
//! the insertion sequence, so replacing a `HashMap` on an
//! order-insensitive path can never *introduce* nondeterminism, and on
//! an order-sensitive path it *removes* the per-process seed.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the 64-bit Fx hash (`pi`-derived, odd).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc/Firefox Fx hash: `state = (state.rotate_left(5) ^ word) * SEED`
/// per input word. Fixed seed, no per-instance state.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// `BuildHasher` for [`FxHasher`] (zero-sized, fixed seed).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Drop-in `HashMap` with the deterministic Fx hasher.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// Drop-in `HashSet` with the deterministic Fx hasher.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_insertions_iterate_identically() {
        let build = || {
            let mut m: FxHashMap<u64, u64> = FxHashMap::default();
            for i in 0..1000 {
                m.insert(i * 7919 % 257, i);
            }
            m.iter().map(|(&k, &v)| (k, v)).collect::<Vec<_>>()
        };
        assert_eq!(build(), build(), "iteration order must be reproducible");
    }

    #[test]
    fn hashes_are_stable_values() {
        // Pin a few hashes so an accidental algorithm change is visible.
        let h = |bytes: &[u8]| {
            let mut hasher = FxHasher::default();
            hasher.write(bytes);
            hasher.finish()
        };
        assert_ne!(h(b"mem0"), h(b"mem1"));
        assert_eq!(h(b"link42"), h(b"link42"));
        let mut a = FxHasher::default();
        a.write_u64(42);
        let mut b = FxHasher::default();
        b.write_u64(42);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn map_behaves_like_std() {
        let mut m: FxHashMap<String, u32> = FxHashMap::default();
        m.insert("a".into(), 1);
        m.insert("b".into(), 2);
        assert_eq!(m.get("a"), Some(&1));
        assert_eq!(m.remove("b"), Some(2));
        assert!(m.get("b").is_none());
        assert_eq!(m.len(), 1);
    }
}
