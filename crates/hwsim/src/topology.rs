//! Interconnect topology: the graph connecting compute and memory devices.
//!
//! A topology is a set of *nodes* (servers, memory blades) holding compute
//! and memory devices, wired together by *links* (memory bus, NUMA
//! interconnect, PCIe/CXL, NIC, rack fabric). Placement quality in the
//! paper hinges on topology awareness: the cost of an access is the
//! device's own latency/bandwidth *plus* every interconnect hop between the
//! executing compute device and the memory.
//!
//! Device presets in [`crate::device`] are calibrated "as seen from a local
//! CPU" (matching Table 1), so attachment links carry near-zero extra
//! latency; only *additional* hops — a NUMA crossing, a rack switch — add
//! cost. This avoids double-counting while letting remote placements pay
//! realistic penalties.

use std::collections::BinaryHeap;

use crate::compute::ComputeModel;
use crate::device::{AccessOp, AccessPattern, MemDeviceModel};
use crate::ids::{ComputeId, LinkId, MemDeviceId, NodeId};
use crate::time::SimDuration;

/// A vertex in the topology graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Endpoint {
    /// A compute device.
    Compute(ComputeId),
    /// A memory device.
    Mem(MemDeviceId),
    /// A node-internal hub or rack-level switch (routing vertex only).
    Hub(NodeId),
}

impl From<ComputeId> for Endpoint {
    fn from(id: ComputeId) -> Self {
        Endpoint::Compute(id)
    }
}

impl From<MemDeviceId> for Endpoint {
    fn from(id: MemDeviceId) -> Self {
        Endpoint::Mem(id)
    }
}

/// The physical technology of a link, with calibrated default latency and
/// bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkKind {
    /// On-package memory bus (CPU ↔ cache/HBM/DRAM/PMem).
    MemBus,
    /// GPU ↔ GDDR bus.
    GpuBus,
    /// Socket-to-socket NUMA interconnect (UPI/Infinity Fabric).
    Numa,
    /// PCIe/CXL attachment as seen from the host CPU (root-complex side;
    /// the attached device's latency already includes one traversal).
    PcieCxl,
    /// A peer PCIe device's path to the root complex (a discrete GPU or
    /// DPU crossing PCIe to reach host-side memory pays this per hop).
    PciePeer,
    /// CXL switch fabric hop (memory pooling).
    CxlFabric,
    /// Network link through the NIC.
    Nic,
    /// Rack-level switch hop.
    RackSwitch,
    /// SATA attachment.
    Sata,
}

impl LinkKind {
    /// Default (added) latency of one traversal, in nanoseconds.
    pub fn default_latency_ns(self) -> f64 {
        match self {
            LinkKind::MemBus | LinkKind::GpuBus => 0.0,
            LinkKind::Numa => 70.0,
            LinkKind::PcieCxl => 20.0,
            LinkKind::PciePeer => 400.0,
            LinkKind::CxlFabric => 90.0,
            LinkKind::Nic => 300.0,
            LinkKind::RackSwitch => 500.0,
            LinkKind::Sata => 1_000.0,
        }
    }

    /// Default bandwidth in bytes per nanosecond (== GB/s).
    pub fn default_bandwidth_bpns(self) -> f64 {
        match self {
            LinkKind::MemBus | LinkKind::GpuBus => 1_000.0,
            LinkKind::Numa => 40.0,
            LinkKind::PcieCxl => 32.0,
            LinkKind::PciePeer => 32.0,
            LinkKind::CxlFabric => 28.0,
            LinkKind::Nic => 12.0,
            LinkKind::RackSwitch => 50.0,
            LinkKind::Sata => 0.6,
        }
    }
}

/// One bidirectional link in the topology graph.
#[derive(Debug, Clone)]
pub struct Link {
    /// Link id.
    pub id: LinkId,
    /// One endpoint.
    pub a: Endpoint,
    /// The other endpoint.
    pub b: Endpoint,
    /// Added latency per traversal, nanoseconds.
    pub latency_ns: f64,
    /// Bandwidth, bytes per nanosecond.
    pub bandwidth_bpns: f64,
    /// Technology class.
    pub kind: LinkKind,
}

/// A node groups devices that fail together (a server or memory blade).
#[derive(Debug, Clone)]
pub struct Node {
    /// Node id.
    pub id: NodeId,
    /// Human-readable name for reports.
    pub name: String,
    /// Compute devices hosted on this node.
    pub compute: Vec<ComputeId>,
    /// Memory devices hosted on this node.
    pub mem: Vec<MemDeviceId>,
}

/// Resolved cost of the path between two endpoints.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathCost {
    /// Sum of link latencies along the path, nanoseconds.
    pub latency_ns: f64,
    /// Bottleneck (minimum) bandwidth along the path, bytes/ns. Paths with
    /// no links (device local to itself) report `f64::INFINITY`.
    pub bandwidth_bpns: f64,
    /// Number of links traversed.
    pub hops: u32,
    /// The link providing the bottleneck bandwidth, when the path has
    /// one. Shared interconnects (a PCIe uplink, the CXL fabric) contend
    /// through this id in the bandwidth ledger.
    pub bottleneck_link: Option<LinkId>,
}

impl PathCost {
    /// The zero-cost path (endpoint to itself).
    pub const LOCAL: PathCost = PathCost {
        latency_ns: 0.0,
        bandwidth_bpns: f64::INFINITY,
        hops: 0,
        bottleneck_link: None,
    };
}

/// An access cost split into its latency and bandwidth components (see
/// [`Topology::access_cost_parts`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccessCostParts {
    /// Total latency charged for the access(es), nanoseconds.
    pub latency_ns: f64,
    /// Bytes that occupy the device/path after granularity rounding.
    pub eff_bytes: u64,
    /// Bottleneck bandwidth for the transfer, bytes/ns.
    pub bandwidth_bpns: f64,
    /// The narrowest interconnect link along the path (if any): shared
    /// uplinks and fabric hops contend through this id in the bandwidth
    /// ledger even when a single stream is device-bound.
    pub bottleneck_link: Option<LinkId>,
    /// That link's own bandwidth, bytes/ns (`INFINITY` when no link).
    pub link_bandwidth_bpns: f64,
}

impl AccessCostParts {
    /// The uncontended total cost implied by the parts.
    pub fn total(&self) -> SimDuration {
        if self.eff_bytes == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_nanos_f64(
            self.latency_ns + self.eff_bytes as f64 / self.bandwidth_bpns,
        )
    }
}

/// Errors raised while constructing a topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// A link references an endpoint that was never declared.
    UnknownEndpoint(String),
    /// The topology has no compute devices.
    NoCompute,
    /// The topology has no memory devices.
    NoMemory,
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyError::UnknownEndpoint(e) => write!(f, "link references unknown endpoint {e}"),
            TopologyError::NoCompute => write!(f, "topology declares no compute devices"),
            TopologyError::NoMemory => write!(f, "topology declares no memory devices"),
        }
    }
}

impl std::error::Error for TopologyError {}

/// An immutable, validated hardware topology.
#[derive(Debug, Clone)]
pub struct Topology {
    nodes: Vec<Node>,
    compute: Vec<ComputeModel>,
    mem: Vec<MemDeviceModel>,
    links: Vec<Link>,
    /// Node owning each compute device.
    compute_node: Vec<NodeId>,
    /// Node owning each memory device.
    mem_node: Vec<NodeId>,
    /// `paths[c][m]`: resolved compute→memory path, `None` if unreachable.
    paths: Vec<Vec<Option<PathCost>>>,
    /// `mem_paths[a][b]`: resolved memory→memory path (for copies).
    mem_paths: Vec<Vec<Option<PathCost>>>,
}

impl Topology {
    /// Starts building a topology.
    pub fn builder() -> TopologyBuilder {
        TopologyBuilder::default()
    }

    /// All nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// All compute-device models, indexed by [`ComputeId`].
    pub fn compute_devices(&self) -> &[ComputeModel] {
        &self.compute
    }

    /// All memory-device models, indexed by [`MemDeviceId`].
    pub fn mem_devices(&self) -> &[MemDeviceModel] {
        &self.mem
    }

    /// All links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// The model for one compute device.
    pub fn compute(&self, id: ComputeId) -> &ComputeModel {
        &self.compute[id.index()]
    }

    /// The model for one memory device.
    pub fn mem(&self, id: MemDeviceId) -> &MemDeviceModel {
        &self.mem[id.index()]
    }

    /// The node hosting a compute device.
    pub fn node_of_compute(&self, id: ComputeId) -> NodeId {
        self.compute_node[id.index()]
    }

    /// The node hosting a memory device.
    pub fn node_of_mem(&self, id: MemDeviceId) -> NodeId {
        self.mem_node[id.index()]
    }

    /// Iterator over compute ids.
    pub fn compute_ids(&self) -> impl Iterator<Item = ComputeId> + '_ {
        (0..self.compute.len()).map(ComputeId::from_index)
    }

    /// Iterator over memory-device ids.
    pub fn mem_ids(&self) -> impl Iterator<Item = MemDeviceId> + '_ {
        (0..self.mem.len()).map(MemDeviceId::from_index)
    }

    /// The resolved path from a compute device to a memory device, or
    /// `None` if the memory is not addressable from there.
    pub fn path(&self, from: ComputeId, to: MemDeviceId) -> Option<PathCost> {
        self.paths[from.index()][to.index()]
    }

    /// The resolved path between two memory devices (for copies and
    /// migrations), or `None` if no route exists.
    pub fn mem_path(&self, from: MemDeviceId, to: MemDeviceId) -> Option<PathCost> {
        self.mem_paths[from.index()][to.index()]
    }

    /// True if `mem` is addressable from `compute`.
    pub fn reachable(&self, compute: ComputeId, mem: MemDeviceId) -> bool {
        self.path(compute, mem).is_some()
    }

    /// Decomposed cost of an access from `compute` to `mem`: the latency
    /// component (paid per access), the effective bytes after granularity
    /// rounding, and the bottleneck bandwidth. The contention layer charges
    /// the bandwidth component against the device's ledger; latency is
    /// uncontended.
    ///
    /// Returns `None` if the memory is unreachable from the compute device.
    pub fn access_cost_parts(
        &self,
        compute: ComputeId,
        mem: MemDeviceId,
        bytes: u64,
        op: AccessOp,
        pattern: AccessPattern,
    ) -> Option<AccessCostParts> {
        let path = self.path(compute, mem)?;
        let dev = self.mem(mem);
        if bytes == 0 {
            return Some(AccessCostParts {
                latency_ns: 0.0,
                eff_bytes: 0,
                bandwidth_bpns: f64::INFINITY,
                bottleneck_link: None,
                link_bandwidth_bpns: f64::INFINITY,
            });
        }
        let eff = dev.effective_bytes(bytes);
        let bw = dev.bandwidth(op).min(path.bandwidth_bpns);
        let per_access_lat = dev.latency(op) + path.latency_ns;
        let latency_ns = match pattern {
            AccessPattern::Random => {
                let unit = dev.granularity.max(64) as f64;
                let accesses = (eff as f64 / unit).max(1.0).ceil();
                accesses * per_access_lat
            }
            AccessPattern::Sequential => per_access_lat,
        };
        Some(AccessCostParts {
            latency_ns,
            eff_bytes: eff,
            bandwidth_bpns: bw,
            bottleneck_link: path.bottleneck_link,
            link_bandwidth_bpns: path.bandwidth_bpns,
        })
    }

    /// Uncontended cost of an access from `compute` to `mem`, including
    /// interconnect hops. This is the canonical cost primitive used by the
    /// region access interfaces and the scheduler's cost model.
    ///
    /// Returns `None` if the memory is unreachable from the compute device.
    pub fn access_cost(
        &self,
        compute: ComputeId,
        mem: MemDeviceId,
        bytes: u64,
        op: AccessOp,
        pattern: AccessPattern,
    ) -> Option<SimDuration> {
        let path = self.path(compute, mem)?;
        let dev = self.mem(mem);
        if bytes == 0 {
            return Some(SimDuration::ZERO);
        }
        let eff = dev.effective_bytes(bytes) as f64;
        let bw = dev.bandwidth(op).min(path.bandwidth_bpns);
        let transfer = eff / bw;
        let per_access_lat = dev.latency(op) + path.latency_ns;
        let ns = match pattern {
            AccessPattern::Random => {
                // Unit floored at a cache line, matching the device model.
                let unit = dev.granularity.max(64) as f64;
                let accesses = (eff / unit).max(1.0).ceil();
                accesses * per_access_lat + transfer
            }
            AccessPattern::Sequential => per_access_lat + transfer,
        };
        Some(SimDuration::from_nanos_f64(ns))
    }

    /// Uncontended cost of copying `bytes` from one memory device to
    /// another (read at the source, traverse the path, write at the
    /// destination). Returns `None` if no route exists.
    pub fn transfer_cost(
        &self,
        from: MemDeviceId,
        to: MemDeviceId,
        bytes: u64,
    ) -> Option<SimDuration> {
        if bytes == 0 {
            return Some(SimDuration::ZERO);
        }
        if from == to {
            // Same-device copy: read + write at device bandwidth.
            let dev = self.mem(from);
            let eff = dev.effective_bytes(bytes) as f64;
            let ns = dev.latency(AccessOp::Read)
                + dev.latency(AccessOp::Write)
                + eff / dev.bandwidth(AccessOp::Read)
                + eff / dev.bandwidth(AccessOp::Write);
            return Some(SimDuration::from_nanos_f64(ns));
        }
        let path = self.mem_path(from, to)?;
        let src = self.mem(from);
        let dst = self.mem(to);
        let eff = src.effective_bytes(bytes).max(dst.effective_bytes(bytes)) as f64;
        let bw = src
            .bandwidth(AccessOp::Read)
            .min(dst.bandwidth(AccessOp::Write))
            .min(path.bandwidth_bpns);
        let ns = src.latency(AccessOp::Read)
            + dst.latency(AccessOp::Write)
            + path.latency_ns
            + eff / bw;
        Some(SimDuration::from_nanos_f64(ns))
    }

    /// Total capacity of all memory devices, in bytes.
    pub fn total_mem_capacity(&self) -> u64 {
        self.mem.iter().map(|m| m.capacity).sum()
    }

    /// Total purchase cost of all memory, in dollars (drives E11).
    pub fn total_mem_cost(&self) -> f64 {
        self.mem
            .iter()
            .map(|m| m.cost_per_gib * (m.capacity as f64 / (1u64 << 30) as f64))
            .sum()
    }
}

/// Incrementally builds a [`Topology`].
#[derive(Debug, Default)]
pub struct TopologyBuilder {
    nodes: Vec<Node>,
    compute: Vec<ComputeModel>,
    mem: Vec<MemDeviceModel>,
    links: Vec<Link>,
    compute_node: Vec<NodeId>,
    mem_node: Vec<NodeId>,
}

impl TopologyBuilder {
    /// Declares a node (server or memory blade) and returns its id.
    pub fn node(&mut self, name: impl Into<String>) -> NodeId {
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(Node {
            id,
            name: name.into(),
            compute: Vec::new(),
            mem: Vec::new(),
        });
        id
    }

    /// Adds a compute device to a node.
    pub fn compute(&mut self, node: NodeId, model: ComputeModel) -> ComputeId {
        let id = ComputeId::from_index(self.compute.len());
        self.compute.push(model);
        self.compute_node.push(node);
        self.nodes[node.index()].compute.push(id);
        id
    }

    /// Adds a memory device to a node.
    pub fn mem(&mut self, node: NodeId, model: MemDeviceModel) -> MemDeviceId {
        let id = MemDeviceId::from_index(self.mem.len());
        self.mem.push(model);
        self.mem_node.push(node);
        self.nodes[node.index()].mem.push(id);
        id
    }

    /// Connects two endpoints with a link of the given kind's default
    /// latency and bandwidth.
    pub fn link(&mut self, a: impl Into<Endpoint>, b: impl Into<Endpoint>, kind: LinkKind) -> LinkId {
        self.link_custom(
            a,
            b,
            kind,
            kind.default_latency_ns(),
            kind.default_bandwidth_bpns(),
        )
    }

    /// Connects two endpoints with explicit latency/bandwidth.
    pub fn link_custom(
        &mut self,
        a: impl Into<Endpoint>,
        b: impl Into<Endpoint>,
        kind: LinkKind,
        latency_ns: f64,
        bandwidth_bpns: f64,
    ) -> LinkId {
        let id = LinkId::from_index(self.links.len());
        self.links.push(Link {
            id,
            a: a.into(),
            b: b.into(),
            latency_ns,
            bandwidth_bpns,
            kind,
        });
        id
    }

    fn endpoint_index(&self, e: Endpoint) -> Result<usize, TopologyError> {
        // Vertex numbering: [compute | mem | hubs].
        let nc = self.compute.len();
        let nm = self.mem.len();
        match e {
            Endpoint::Compute(c) if c.index() < nc => Ok(c.index()),
            Endpoint::Mem(m) if m.index() < nm => Ok(nc + m.index()),
            Endpoint::Hub(n) if n.index() < self.nodes.len() => Ok(nc + nm + n.index()),
            other => Err(TopologyError::UnknownEndpoint(format!("{other:?}"))),
        }
    }

    /// Validates the graph and resolves all-pairs compute→memory and
    /// memory→memory paths.
    pub fn build(self) -> Result<Topology, TopologyError> {
        if self.compute.is_empty() {
            return Err(TopologyError::NoCompute);
        }
        if self.mem.is_empty() {
            return Err(TopologyError::NoMemory);
        }
        let nc = self.compute.len();
        let nm = self.mem.len();
        let nv = nc + nm + self.nodes.len();

        // Adjacency: vertex → [(neighbor, lat, bw, link)].
        let mut adj: Vec<Vec<(usize, f64, f64, LinkId)>> = vec![Vec::new(); nv];
        for link in &self.links {
            let ai = self.endpoint_index(link.a)?;
            let bi = self.endpoint_index(link.b)?;
            adj[ai].push((bi, link.latency_ns, link.bandwidth_bpns, link.id));
            adj[bi].push((ai, link.latency_ns, link.bandwidth_bpns, link.id));
        }

        // Dijkstra by latency from every source vertex; bottleneck
        // bandwidth and hop count ride along the chosen shortest path.
        let dijkstra = |src: usize| -> Vec<Option<PathCost>> {
            #[derive(PartialEq)]
            struct Entry(f64, usize);
            impl Eq for Entry {}
            impl PartialOrd for Entry {
                fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                    Some(self.cmp(other))
                }
            }
            impl Ord for Entry {
                fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                    // Reverse for a min-heap on latency.
                    other.0.total_cmp(&self.0)
                }
            }
            let mut best: Vec<Option<PathCost>> = vec![None; nv];
            let mut heap = BinaryHeap::new();
            best[src] = Some(PathCost::LOCAL);
            heap.push(Entry(0.0, src));
            while let Some(Entry(lat, v)) = heap.pop() {
                let cur = best[v].expect("popped vertex must be reached");
                if lat > cur.latency_ns {
                    continue;
                }
                for &(w, l, bw, link) in &adj[v] {
                    let cand = PathCost {
                        latency_ns: cur.latency_ns + l,
                        bandwidth_bpns: cur.bandwidth_bpns.min(bw),
                        hops: cur.hops + 1,
                        bottleneck_link: if bw < cur.bandwidth_bpns {
                            Some(link)
                        } else {
                            cur.bottleneck_link
                        },
                    };
                    let better = match best[w] {
                        None => true,
                        Some(prev) => cand.latency_ns < prev.latency_ns,
                    };
                    if better {
                        best[w] = Some(cand);
                        heap.push(Entry(cand.latency_ns, w));
                    }
                }
            }
            best
        };

        let mut paths = vec![vec![None; nm]; nc];
        for (c, row) in paths.iter_mut().enumerate() {
            let best = dijkstra(c);
            row.copy_from_slice(&best[nc..nc + nm]);
        }
        let mut mem_paths = vec![vec![None; nm]; nm];
        for (a, row) in mem_paths.iter_mut().enumerate() {
            let best = dijkstra(nc + a);
            row.copy_from_slice(&best[nc..nc + nm]);
        }

        // Fill in compute-local memory lists: a memory device is local to a
        // compute device iff they share a direct memory-bus link (the
        // socket/package attachment, not a routed path through hubs).
        let mut compute = self.compute;
        for (c, model) in compute.iter_mut().enumerate() {
            model.local_mem.clear();
            for link in &self.links {
                if !matches!(link.kind, LinkKind::MemBus | LinkKind::GpuBus) {
                    continue;
                }
                let pair = match (link.a, link.b) {
                    (Endpoint::Compute(cc), Endpoint::Mem(mm))
                    | (Endpoint::Mem(mm), Endpoint::Compute(cc)) => Some((cc, mm)),
                    _ => None,
                };
                if let Some((cc, mm)) = pair {
                    if cc.index() == c && !model.local_mem.contains(&mm) {
                        model.local_mem.push(mm);
                    }
                }
            }
        }

        Ok(Topology {
            nodes: self.nodes,
            compute,
            mem: self.mem,
            links: self.links,
            compute_node: self.compute_node,
            mem_node: self.mem_node,
            paths,
            mem_paths,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compute::ComputeKind;
    use crate::device::MemDeviceKind;

    fn tiny() -> Topology {
        // cpu0 —membus— dram0 ; cpu0 —pcie— cxl0 ; gpu0 —gpubus— gddr0 ;
        // cpu0 —pcie— hub — gpu0 (so cpu can reach gddr through the hub).
        let mut b = Topology::builder();
        let n = b.node("host");
        let cpu = b.compute(n, ComputeModel::preset(ComputeKind::Cpu));
        let gpu = b.compute(n, ComputeModel::preset(ComputeKind::Gpu));
        let dram = b.mem(n, MemDeviceModel::preset(MemDeviceKind::Dram));
        let cxl = b.mem(n, MemDeviceModel::preset(MemDeviceKind::CxlDram));
        let gddr = b.mem(n, MemDeviceModel::preset(MemDeviceKind::Gddr));
        b.link(cpu, dram, LinkKind::MemBus);
        b.link(cpu, cxl, LinkKind::PcieCxl);
        b.link(gpu, gddr, LinkKind::GpuBus);
        b.link(cpu, Endpoint::Hub(n), LinkKind::PcieCxl);
        b.link(gpu, Endpoint::Hub(n), LinkKind::PcieCxl);
        b.build().expect("valid topology")
    }

    #[test]
    fn build_rejects_empty_topologies() {
        assert_eq!(
            Topology::builder().build().unwrap_err(),
            TopologyError::NoCompute
        );
        let mut b = Topology::builder();
        let n = b.node("x");
        b.compute(n, ComputeModel::preset(ComputeKind::Cpu));
        assert_eq!(b.build().unwrap_err(), TopologyError::NoMemory);
    }

    #[test]
    fn local_path_is_zero_hops_direct() {
        let t = tiny();
        let p = t.path(ComputeId(0), MemDeviceId(0)).unwrap();
        assert_eq!(p.hops, 1);
        assert_eq!(p.latency_ns, 0.0);
    }

    #[test]
    fn cross_device_path_routes_through_hub() {
        let t = tiny();
        // CPU → GDDR: cpu —hub— gpu —gpubus— gddr = 3 hops.
        let p = t.path(ComputeId(0), MemDeviceId(2)).unwrap();
        assert_eq!(p.hops, 3);
        assert!(p.latency_ns >= 2.0 * LinkKind::PcieCxl.default_latency_ns());
    }

    #[test]
    fn unreachable_memory_reports_none() {
        let mut b = Topology::builder();
        let n = b.node("host");
        let island = b.node("island");
        let cpu = b.compute(n, ComputeModel::preset(ComputeKind::Cpu));
        let dram = b.mem(n, MemDeviceModel::preset(MemDeviceKind::Dram));
        let far = b.mem(island, MemDeviceModel::preset(MemDeviceKind::FarMemory));
        b.link(cpu, dram, LinkKind::MemBus);
        let t = b.build().unwrap();
        assert!(t.reachable(ComputeId(0), MemDeviceId(0)));
        assert!(!t.reachable(ComputeId(0), far));
        assert!(t.access_cost(ComputeId(0), far, 64, AccessOp::Read, AccessPattern::Random).is_none());
    }

    #[test]
    fn bottleneck_bandwidth_is_path_minimum() {
        let t = tiny();
        let p = t.path(ComputeId(0), MemDeviceId(1)).unwrap();
        assert_eq!(p.bandwidth_bpns, LinkKind::PcieCxl.default_bandwidth_bpns());
    }

    #[test]
    fn access_cost_adds_path_latency() {
        let t = tiny();
        let cpu = ComputeId(0);
        let dram = MemDeviceId(0);
        let cxl = MemDeviceId(1);
        let near = t
            .access_cost(cpu, dram, 64, AccessOp::Read, AccessPattern::Random)
            .unwrap();
        let far = t
            .access_cost(cpu, cxl, 64, AccessOp::Read, AccessPattern::Random)
            .unwrap();
        assert!(far > near, "CXL access {far} should exceed DRAM access {near}");
    }

    #[test]
    fn local_mem_lists_reflect_attachment() {
        let t = tiny();
        let cpu = t.compute(ComputeId(0));
        let gpu = t.compute(ComputeId(1));
        assert!(cpu.is_local(MemDeviceId(0)), "DRAM local to CPU");
        assert!(!cpu.is_local(MemDeviceId(2)), "GDDR not local to CPU");
        assert!(gpu.is_local(MemDeviceId(2)), "GDDR local to GPU");
        assert!(!gpu.is_local(MemDeviceId(0)), "DRAM not local to GPU");
    }

    #[test]
    fn transfer_cost_same_device_and_cross_device() {
        let t = tiny();
        let same = t.transfer_cost(MemDeviceId(0), MemDeviceId(0), 1 << 20).unwrap();
        let cross = t.transfer_cost(MemDeviceId(0), MemDeviceId(1), 1 << 20).unwrap();
        assert!(same > SimDuration::ZERO);
        // Cross-device copy bottlenecked by CXL bandwidth, so slower.
        assert!(cross > same);
        assert_eq!(
            t.transfer_cost(MemDeviceId(0), MemDeviceId(1), 0).unwrap(),
            SimDuration::ZERO
        );
    }

    #[test]
    fn sequential_access_amortizes_path_latency() {
        let t = tiny();
        let cpu = ComputeId(0);
        let cxl = MemDeviceId(1);
        let bytes = 1 << 20;
        let seq = t
            .access_cost(cpu, cxl, bytes, AccessOp::Read, AccessPattern::Sequential)
            .unwrap();
        let rnd = t
            .access_cost(cpu, cxl, bytes, AccessOp::Read, AccessPattern::Random)
            .unwrap();
        assert!(rnd.as_nanos() > 5 * seq.as_nanos());
    }

    #[test]
    fn capacity_and_cost_sums() {
        let t = tiny();
        let cap: u64 = t.mem_devices().iter().map(|m| m.capacity).sum();
        assert_eq!(t.total_mem_capacity(), cap);
        assert!(t.total_mem_cost() > 0.0);
    }

    #[test]
    fn access_cost_parts_total_matches_access_cost() {
        let t = tiny();
        let parts = t
            .access_cost_parts(ComputeId(0), MemDeviceId(1), 1 << 20, AccessOp::Read, AccessPattern::Sequential)
            .unwrap();
        let total = t
            .access_cost(ComputeId(0), MemDeviceId(1), 1 << 20, AccessOp::Read, AccessPattern::Sequential)
            .unwrap();
        assert_eq!(parts.total(), total);
        let zero = t
            .access_cost_parts(ComputeId(0), MemDeviceId(1), 0, AccessOp::Read, AccessPattern::Random)
            .unwrap();
        assert_eq!(zero.total(), SimDuration::ZERO);
    }
}
