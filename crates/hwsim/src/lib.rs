//! Simulated disaggregated hardware substrate.
//!
//! The HotOS '23 paper "Programming Fully Disaggregated Systems" assumes a
//! hardware landscape we cannot buy off the shelf: CXL memory expanders and
//! pooled appliances, persistent memory, heterogeneous accelerators, and
//! rack-scale fabrics. This crate provides a deterministic, laptop-scale
//! software model of that landscape:
//!
//! - [`device`]: memory-device models for every row of the paper's Table 1
//!   (cache, HBM, DRAM, PMem, CXL-DRAM, disaggregated/far memory, SSD, HDD),
//!   parameterized by latency, bandwidth, access granularity, attachment,
//!   coherence, and persistence.
//! - [`compute`]: compute-device models (CPU, GPU, TPU, FPGA, DPU).
//! - [`topology`]: an explicit link graph (NUMA, PCIe, CXL, NIC) connecting
//!   compute and memory devices, with shortest-path cost resolution and
//!   ready-made presets for the paper's Figure 1 architectures.
//! - [`time`]: virtual nanosecond time. Nothing in this crate sleeps or
//!   reads a wall clock; simulated work *charges* simulated nanoseconds.
//! - [`contention`]: time-bucketed bandwidth accounting that inflates
//!   transfer costs when a device or link is oversubscribed.
//! - [`fault`]: deterministic fault injection (node crashes, device
//!   failures, link loss, corruption) used by the fault-tolerance
//!   experiments.
//! - [`trace`]: a structured event log consumed by the benchmark harness.
//! - [`rng`]: small, deterministic random-number generators so every
//!   experiment is reproducible bit-for-bit.
//!
//! The models preserve the *relative* properties that the paper's
//! programming model reasons about (which device is faster, closer,
//! persistent, coherent), which is what placement decisions depend on.

pub mod compute;
pub mod contention;
pub mod device;
pub mod fault;
pub mod fx;
pub mod ids;
pub mod presets;
pub mod rng;
pub mod shard;
pub mod time;
pub mod topology;
pub mod trace;

pub use compute::{ComputeKind, ComputeModel};
pub use contention::BandwidthLedger;
pub use device::{AccessOp, AccessPattern, Attachment, MemDeviceKind, MemDeviceModel, SyncSupport};
pub use fault::{FaultEvent, FaultInjector, FaultKind};
pub use fx::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use ids::{ComputeId, LinkId, MemDeviceId, NodeId};
pub use rng::SimRng;
pub use shard::ShardMap;
pub use time::{SimDuration, SimTime};
pub use topology::{LinkKind, PathCost, Topology, TopologyBuilder};
pub use trace::{Trace, TraceEvent};
