//! Ready-made topologies for the paper's experiments.
//!
//! - [`single_server`]: one Sapphire-Rapids-style host with every Table 1
//!   device reachable from the CPU — the viewpoint Table 1 is written from.
//! - [`two_socket`]: a two-socket NUMA box for the "NUMA costs up to 3×"
//!   claim (E8).
//! - [`hetero_storage_server`]: DRAM + PMem + SSD + HDD under one CPU for
//!   the "naïve placement costs up to 3×" claim (E9).
//! - [`compute_centric_rack`]: Figure 1a — every server owns its private
//!   memory; remote memory only via the network.
//! - [`disaggregated_rack`]: Figure 1b — lean compute nodes in front of a
//!   CXL-switched memory pool plus NIC-attached far memory.

use crate::compute::{ComputeKind, ComputeModel};
use crate::device::{MemDeviceKind, MemDeviceModel};
use crate::ids::{ComputeId, MemDeviceId, NodeId};
use crate::topology::{Endpoint, LinkKind, Topology};

const GIB: u64 = 1 << 30;

/// Handles into a [`single_server`] topology.
#[derive(Debug, Clone, Copy)]
pub struct SingleServer {
    /// The host node.
    pub node: NodeId,
    /// The far-memory blade node.
    pub far_node: NodeId,
    /// The CPU.
    pub cpu: ComputeId,
    /// The GPU.
    pub gpu: ComputeId,
    /// On-die cache scratchpad.
    pub cache: MemDeviceId,
    /// CPU-attached HBM.
    pub hbm: MemDeviceId,
    /// Socket DRAM.
    pub dram: MemDeviceId,
    /// GPU-attached GDDR.
    pub gddr: MemDeviceId,
    /// Persistent memory DIMMs.
    pub pmem: MemDeviceId,
    /// CXL-attached DRAM expander.
    pub cxl: MemDeviceId,
    /// NIC-attached disaggregated memory.
    pub far: MemDeviceId,
    /// NVMe SSD.
    pub ssd: MemDeviceId,
    /// SATA HDD.
    pub hdd: MemDeviceId,
}

/// Builds one fully equipped server: CPU with cache/HBM/DRAM/PMem, a GPU
/// with GDDR, a CXL expander, NVMe SSD, SATA HDD, and a far-memory blade
/// behind the NIC. Every Table 1 row is present and reachable from the CPU.
pub fn single_server() -> (Topology, SingleServer) {
    let mut b = Topology::builder();
    let node = b.node("host0");
    let far_node = b.node("memblade0");

    let cpu = b.compute(node, ComputeModel::preset(ComputeKind::Cpu));
    let gpu = b.compute(node, ComputeModel::preset(ComputeKind::Gpu));

    let cache = b.mem(node, MemDeviceModel::preset(MemDeviceKind::Cache));
    let hbm = b.mem(node, MemDeviceModel::preset(MemDeviceKind::Hbm));
    let dram = b.mem(node, MemDeviceModel::preset(MemDeviceKind::Dram));
    let gddr = b.mem(node, MemDeviceModel::preset(MemDeviceKind::Gddr));
    let pmem = b.mem(node, MemDeviceModel::preset(MemDeviceKind::Pmem));
    let cxl = b.mem(node, MemDeviceModel::preset(MemDeviceKind::CxlDram));
    let ssd = b.mem(node, MemDeviceModel::preset(MemDeviceKind::Ssd));
    let hdd = b.mem(node, MemDeviceModel::preset(MemDeviceKind::Hdd));
    let far = b.mem(far_node, MemDeviceModel::preset(MemDeviceKind::FarMemory));

    // CPU-local devices.
    b.link(cpu, cache, LinkKind::MemBus);
    b.link(cpu, hbm, LinkKind::MemBus);
    b.link(cpu, dram, LinkKind::MemBus);
    b.link(cpu, pmem, LinkKind::MemBus);
    // PCIe/CXL devices hang off the host hub, reachable from CPU and GPU.
    b.link(cpu, Endpoint::Hub(node), LinkKind::PcieCxl);
    b.link(gpu, Endpoint::Hub(node), LinkKind::PciePeer);
    b.link(Endpoint::Hub(node), cxl, LinkKind::PcieCxl);
    b.link(Endpoint::Hub(node), ssd, LinkKind::PcieCxl);
    b.link(Endpoint::Hub(node), hdd, LinkKind::Sata);
    // GPU-local memory.
    b.link(gpu, gddr, LinkKind::GpuBus);
    // Far memory behind the NIC.
    b.link(Endpoint::Hub(node), Endpoint::Hub(far_node), LinkKind::Nic);
    b.link(Endpoint::Hub(far_node), far, LinkKind::MemBus);

    let topo = b.build().expect("single_server preset is valid");
    (
        topo,
        SingleServer {
            node,
            far_node,
            cpu,
            gpu,
            cache,
            hbm,
            dram,
            gddr,
            pmem,
            cxl,
            far,
            ssd,
            hdd,
        },
    )
}

/// Handles into an [`accelerator_server`] topology.
#[derive(Debug, Clone, Copy)]
pub struct AcceleratorServer {
    /// General-purpose CPU.
    pub cpu: ComputeId,
    /// GPU with local GDDR.
    pub gpu: ComputeId,
    /// TPU with local HBM.
    pub tpu: ComputeId,
    /// FPGA (PCIe peer, no local memory of its own).
    pub fpga: ComputeId,
    /// SmartNIC DPU sitting on the path to far memory.
    pub dpu: ComputeId,
    /// Socket DRAM.
    pub dram: MemDeviceId,
    /// GPU-local GDDR.
    pub gddr: MemDeviceId,
    /// TPU-local HBM.
    pub hbm: MemDeviceId,
    /// CXL expander shared over the hub.
    pub cxl: MemDeviceId,
    /// NIC-attached far memory (one hop from the DPU).
    pub far: MemDeviceId,
}

/// Builds the "accelerator zoo": one host with a CPU, GPU, TPU, FPGA,
/// and DPU, each next to the memory that suits it — the heterogeneous
/// pool of the paper's Figure 1b in a single chassis. Exercises
/// scheduling across all five compute classes.
pub fn accelerator_server() -> (Topology, AcceleratorServer) {
    let mut b = Topology::builder();
    let node = b.node("host");
    let far_node = b.node("memblade");

    let cpu = b.compute(node, ComputeModel::preset(ComputeKind::Cpu));
    let gpu = b.compute(node, ComputeModel::preset(ComputeKind::Gpu));
    let tpu = b.compute(node, ComputeModel::preset(ComputeKind::Tpu));
    let fpga = b.compute(node, ComputeModel::preset(ComputeKind::Fpga));
    let dpu = b.compute(far_node, ComputeModel::preset(ComputeKind::Dpu));

    let dram = b.mem(node, MemDeviceModel::preset(MemDeviceKind::Dram));
    let gddr = b.mem(node, MemDeviceModel::preset(MemDeviceKind::Gddr));
    let hbm = b.mem(node, MemDeviceModel::preset(MemDeviceKind::Hbm));
    let cxl = b.mem(node, MemDeviceModel::preset(MemDeviceKind::CxlDram));
    let far = b.mem(far_node, MemDeviceModel::preset(MemDeviceKind::FarMemory));

    b.link(cpu, dram, LinkKind::MemBus);
    b.link(gpu, gddr, LinkKind::GpuBus);
    b.link(tpu, hbm, LinkKind::GpuBus);
    b.link(cpu, Endpoint::Hub(node), LinkKind::PcieCxl);
    b.link(gpu, Endpoint::Hub(node), LinkKind::PciePeer);
    b.link(tpu, Endpoint::Hub(node), LinkKind::PciePeer);
    b.link(fpga, Endpoint::Hub(node), LinkKind::PciePeer);
    b.link(Endpoint::Hub(node), cxl, LinkKind::PcieCxl);
    b.link(Endpoint::Hub(node), dram, LinkKind::MemBus);
    // The DPU lives on the memory blade: far memory is local to it.
    b.link(Endpoint::Hub(node), Endpoint::Hub(far_node), LinkKind::Nic);
    b.link(Endpoint::Hub(far_node), far, LinkKind::MemBus);
    b.link(dpu, far, LinkKind::MemBus);
    b.link(dpu, Endpoint::Hub(far_node), LinkKind::MemBus);

    let topo = b.build().expect("accelerator_server preset is valid");
    (
        topo,
        AcceleratorServer {
            cpu,
            gpu,
            tpu,
            fpga,
            dpu,
            dram,
            gddr,
            hbm,
            cxl,
            far,
        },
    )
}

/// Handles into a [`two_socket`] topology.
#[derive(Debug, Clone, Copy)]
pub struct TwoSocket {
    /// Socket-0 CPU.
    pub cpu0: ComputeId,
    /// Socket-1 CPU.
    pub cpu1: ComputeId,
    /// Socket-0 DRAM.
    pub dram0: MemDeviceId,
    /// Socket-1 DRAM.
    pub dram1: MemDeviceId,
}

/// Builds a classic two-socket NUMA server: each socket has a CPU and its
/// local DRAM; sockets connect over a NUMA interconnect. Used by the
/// "NUMA can slow down algorithms by up to 3×" experiment.
pub fn two_socket() -> (Topology, TwoSocket) {
    let mut b = Topology::builder();
    let s0 = b.node("socket0");
    let s1 = b.node("socket1");
    let cpu0 = b.compute(s0, ComputeModel::preset(ComputeKind::Cpu));
    let cpu1 = b.compute(s1, ComputeModel::preset(ComputeKind::Cpu));
    let dram0 = b.mem(s0, MemDeviceModel::preset(MemDeviceKind::Dram));
    let dram1 = b.mem(s1, MemDeviceModel::preset(MemDeviceKind::Dram));
    b.link(cpu0, dram0, LinkKind::MemBus);
    b.link(cpu1, dram1, LinkKind::MemBus);
    // The NUMA interconnect joins the sockets; remote DRAM is reached
    // through the peer socket.
    b.link(cpu0, Endpoint::Hub(s0), LinkKind::MemBus);
    b.link(cpu1, Endpoint::Hub(s1), LinkKind::MemBus);
    b.link(Endpoint::Hub(s0), Endpoint::Hub(s1), LinkKind::Numa);
    b.link(Endpoint::Hub(s0), dram0, LinkKind::MemBus);
    b.link(Endpoint::Hub(s1), dram1, LinkKind::MemBus);
    let topo = b.build().expect("two_socket preset is valid");
    (topo, TwoSocket { cpu0, cpu1, dram0, dram1 })
}

/// Handles into a [`hetero_storage_server`] topology.
#[derive(Debug, Clone, Copy)]
pub struct HeteroStorage {
    /// The CPU.
    pub cpu: ComputeId,
    /// DRAM tier.
    pub dram: MemDeviceId,
    /// PMem tier.
    pub pmem: MemDeviceId,
    /// SSD tier.
    pub ssd: MemDeviceId,
    /// HDD tier.
    pub hdd: MemDeviceId,
}

/// Builds a server with a heterogeneous storage landscape (DRAM, PMem,
/// SSD, HDD) for the naïve-placement experiment (Mosaic-style).
pub fn hetero_storage_server() -> (Topology, HeteroStorage) {
    let mut b = Topology::builder();
    let n = b.node("host");
    let cpu = b.compute(n, ComputeModel::preset(ComputeKind::Cpu));
    let dram = b.mem(n, MemDeviceModel::preset_with_capacity(MemDeviceKind::Dram, 64 * GIB));
    let pmem = b.mem(n, MemDeviceModel::preset(MemDeviceKind::Pmem));
    let ssd = b.mem(n, MemDeviceModel::preset(MemDeviceKind::Ssd));
    let hdd = b.mem(n, MemDeviceModel::preset(MemDeviceKind::Hdd));
    b.link(cpu, dram, LinkKind::MemBus);
    b.link(cpu, pmem, LinkKind::MemBus);
    b.link(cpu, Endpoint::Hub(n), LinkKind::PcieCxl);
    b.link(Endpoint::Hub(n), ssd, LinkKind::PcieCxl);
    b.link(Endpoint::Hub(n), hdd, LinkKind::Sata);
    let topo = b.build().expect("hetero_storage preset is valid");
    (topo, HeteroStorage { cpu, dram, pmem, ssd, hdd })
}

/// Handles into a rack topology.
#[derive(Debug, Clone)]
pub struct Rack {
    /// Per-server CPUs.
    pub cpus: Vec<ComputeId>,
    /// Per-server GPUs (empty slots possible in future variants).
    pub gpus: Vec<ComputeId>,
    /// Per-server local DRAM.
    pub drams: Vec<MemDeviceId>,
    /// Per-server GDDR (parallel to `gpus`).
    pub gddrs: Vec<MemDeviceId>,
    /// Pooled memory devices (empty for the compute-centric rack).
    pub pool: Vec<MemDeviceId>,
    /// Server nodes.
    pub nodes: Vec<NodeId>,
    /// Pool nodes (memory blades), if any.
    pub pool_nodes: Vec<NodeId>,
}

/// Figure 1a: a compute-centric rack. Each of `servers` nodes owns
/// `dram_gib` GiB of private DRAM (provisioned for peak); the only remote
/// memory is a peer's DRAM over the network.
pub fn compute_centric_rack(servers: usize, dram_gib: u64) -> (Topology, Rack) {
    assert!(servers >= 1, "rack needs at least one server");
    let mut b = Topology::builder();
    let mut rack = Rack {
        cpus: Vec::new(),
        gpus: Vec::new(),
        drams: Vec::new(),
        gddrs: Vec::new(),
        pool: Vec::new(),
        nodes: Vec::new(),
        pool_nodes: Vec::new(),
    };
    let switch = b.node("rack-switch");
    for i in 0..servers {
        let n = b.node(format!("server{i}"));
        let cpu = b.compute(n, ComputeModel::preset(ComputeKind::Cpu));
        let gpu = b.compute(n, ComputeModel::preset(ComputeKind::Gpu));
        let dram = b.mem(
            n,
            MemDeviceModel::preset_with_capacity(MemDeviceKind::Dram, dram_gib * GIB),
        );
        let gddr = b.mem(n, MemDeviceModel::preset(MemDeviceKind::Gddr));
        b.link(cpu, dram, LinkKind::MemBus);
        b.link(gpu, gddr, LinkKind::GpuBus);
        b.link(cpu, Endpoint::Hub(n), LinkKind::PcieCxl);
        b.link(gpu, Endpoint::Hub(n), LinkKind::PciePeer);
        b.link(Endpoint::Hub(n), dram, LinkKind::MemBus);
        // NIC to the rack switch: remote access is possible but slow.
        b.link(Endpoint::Hub(n), Endpoint::Hub(switch), LinkKind::Nic);
        rack.nodes.push(n);
        rack.cpus.push(cpu);
        rack.gpus.push(gpu);
        rack.drams.push(dram);
        rack.gddrs.push(gddr);
    }
    let topo = b.build().expect("compute_centric_rack preset is valid");
    (topo, rack)
}

/// A pure CXL-pool rack for the pooling-economics experiment: lean
/// compute nodes and `pool_blades` CXL blades behind the fabric, and
/// nothing else — so provisioned capacity is exactly what you count.
pub fn cxl_pool_rack(
    servers: usize,
    local_dram_gib: u64,
    pool_blades: usize,
    blade_gib: u64,
) -> (Topology, Rack) {
    assert!(servers >= 1 && pool_blades >= 1, "rack needs servers and blades");
    let mut b = Topology::builder();
    let mut rack = Rack {
        cpus: Vec::new(),
        gpus: Vec::new(),
        drams: Vec::new(),
        gddrs: Vec::new(),
        pool: Vec::new(),
        nodes: Vec::new(),
        pool_nodes: Vec::new(),
    };
    let fabric = b.node("cxl-fabric");
    for i in 0..servers {
        let n = b.node(format!("compute{i}"));
        let cpu = b.compute(n, ComputeModel::preset(ComputeKind::Cpu));
        let dram = b.mem(
            n,
            MemDeviceModel::preset_with_capacity(MemDeviceKind::Dram, local_dram_gib * GIB),
        );
        b.link(cpu, dram, LinkKind::MemBus);
        b.link(cpu, Endpoint::Hub(n), LinkKind::PcieCxl);
        b.link(Endpoint::Hub(n), Endpoint::Hub(fabric), LinkKind::CxlFabric);
        rack.nodes.push(n);
        rack.cpus.push(cpu);
        rack.drams.push(dram);
    }
    for i in 0..pool_blades {
        let n = b.node(format!("memblade{i}"));
        let cxl = b.mem(
            n,
            MemDeviceModel::preset_with_capacity(MemDeviceKind::CxlDram, blade_gib * GIB),
        );
        b.link(Endpoint::Hub(fabric), cxl, LinkKind::CxlFabric);
        rack.pool_nodes.push(n);
        rack.pool.push(cxl);
    }
    let topo = b.build().expect("cxl_pool_rack preset is valid");
    (topo, rack)
}

/// Figure 1b: a memory-centric (disaggregated) rack. Lean compute nodes
/// (small local DRAM) in front of a CXL-switched pool of `pool_blades`
/// memory blades with `blade_gib` GiB of CXL-DRAM each, plus one
/// PMem blade and one NIC-attached far-memory blade.
pub fn disaggregated_rack(
    servers: usize,
    local_dram_gib: u64,
    pool_blades: usize,
    blade_gib: u64,
) -> (Topology, Rack) {
    assert!(servers >= 1 && pool_blades >= 1, "rack needs servers and blades");
    let mut b = Topology::builder();
    let mut rack = Rack {
        cpus: Vec::new(),
        gpus: Vec::new(),
        drams: Vec::new(),
        gddrs: Vec::new(),
        pool: Vec::new(),
        nodes: Vec::new(),
        pool_nodes: Vec::new(),
    };
    // The CXL switch every compute node and pool blade plugs into.
    let fabric = b.node("cxl-fabric");
    for i in 0..servers {
        let n = b.node(format!("compute{i}"));
        let cpu = b.compute(n, ComputeModel::preset(ComputeKind::Cpu));
        let gpu = b.compute(n, ComputeModel::preset(ComputeKind::Gpu));
        let dram = b.mem(
            n,
            MemDeviceModel::preset_with_capacity(MemDeviceKind::Dram, local_dram_gib * GIB),
        );
        let gddr = b.mem(n, MemDeviceModel::preset(MemDeviceKind::Gddr));
        b.link(cpu, dram, LinkKind::MemBus);
        b.link(gpu, gddr, LinkKind::GpuBus);
        b.link(cpu, Endpoint::Hub(n), LinkKind::PcieCxl);
        b.link(gpu, Endpoint::Hub(n), LinkKind::PciePeer);
        b.link(Endpoint::Hub(n), Endpoint::Hub(fabric), LinkKind::CxlFabric);
        rack.nodes.push(n);
        rack.cpus.push(cpu);
        rack.gpus.push(gpu);
        rack.drams.push(dram);
        rack.gddrs.push(gddr);
    }
    for i in 0..pool_blades {
        let n = b.node(format!("memblade{i}"));
        let cxl = b.mem(
            n,
            MemDeviceModel::preset_with_capacity(MemDeviceKind::CxlDram, blade_gib * GIB),
        );
        b.link(Endpoint::Hub(fabric), cxl, LinkKind::CxlFabric);
        rack.pool_nodes.push(n);
        rack.pool.push(cxl);
    }
    // One persistent blade and one far-memory blade round out the pool.
    let pmem_blade = b.node("pmem-blade");
    let pmem = b.mem(pmem_blade, MemDeviceModel::preset(MemDeviceKind::Pmem));
    b.link(Endpoint::Hub(fabric), pmem, LinkKind::CxlFabric);
    rack.pool_nodes.push(pmem_blade);
    rack.pool.push(pmem);

    let far_blade = b.node("far-blade");
    let far = b.mem(far_blade, MemDeviceModel::preset(MemDeviceKind::FarMemory));
    b.link(Endpoint::Hub(fabric), Endpoint::Hub(far_blade), LinkKind::Nic);
    b.link(Endpoint::Hub(far_blade), far, LinkKind::MemBus);
    rack.pool_nodes.push(far_blade);
    rack.pool.push(far);

    let topo = b.build().expect("disaggregated_rack preset is valid");
    (topo, rack)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{AccessOp, AccessPattern};

    #[test]
    fn single_server_reaches_every_table1_device_from_cpu() {
        let (topo, h) = single_server();
        for dev in [h.cache, h.hbm, h.dram, h.pmem, h.cxl, h.far, h.ssd, h.hdd] {
            assert!(topo.reachable(h.cpu, dev), "CPU cannot reach {dev}");
        }
        assert!(topo.reachable(h.gpu, h.gddr));
        assert!(topo.reachable(h.gpu, h.cxl), "GPU must reach CXL pool");
    }

    #[test]
    fn single_server_latency_ordering_matches_table1_from_cpu() {
        let (topo, h) = single_server();
        let lat = |dev| {
            topo.access_cost(h.cpu, dev, 64, AccessOp::Read, AccessPattern::Random)
                .unwrap()
                .as_nanos()
        };
        assert!(lat(h.cache) < lat(h.dram));
        assert!(lat(h.dram) < lat(h.pmem));
        assert!(lat(h.dram) < lat(h.cxl));
        assert!(lat(h.cxl) < lat(h.far));
        assert!(lat(h.far) < lat(h.ssd));
        assert!(lat(h.ssd) < lat(h.hdd));
    }

    #[test]
    fn two_socket_remote_access_is_slower() {
        let (topo, h) = two_socket();
        let local = topo
            .access_cost(h.cpu0, h.dram0, 64, AccessOp::Read, AccessPattern::Random)
            .unwrap();
        let remote = topo
            .access_cost(h.cpu0, h.dram1, 64, AccessOp::Read, AccessPattern::Random)
            .unwrap();
        assert!(remote.as_nanos() > local.as_nanos());
        // The remote penalty should land in the NUMA ballpark (~1.5-3x).
        let ratio = remote.as_nanos() as f64 / local.as_nanos() as f64;
        assert!((1.3..4.0).contains(&ratio), "NUMA ratio {ratio}");
    }

    #[test]
    fn gpu_local_memory_is_gddr_not_dram() {
        let (topo, h) = single_server();
        let gpu = topo.compute(h.gpu);
        assert!(gpu.is_local(h.gddr));
        assert!(!gpu.is_local(h.dram));
        let cpu = topo.compute(h.cpu);
        assert!(cpu.is_local(h.dram));
        assert!(!cpu.is_local(h.gddr));
    }

    #[test]
    fn compute_centric_rack_reaches_peer_memory_via_network() {
        let (topo, rack) = compute_centric_rack(3, 256);
        // Local DRAM is cheap; a peer's DRAM is reachable but much slower.
        let local = topo
            .access_cost(rack.cpus[0], rack.drams[0], 64, AccessOp::Read, AccessPattern::Random)
            .unwrap();
        let remote = topo
            .access_cost(rack.cpus[0], rack.drams[1], 64, AccessOp::Read, AccessPattern::Random)
            .unwrap();
        assert!(remote.as_nanos() > 5 * local.as_nanos());
    }

    #[test]
    fn disaggregated_rack_pool_is_shared_and_closer_than_network() {
        let (topo, rack) = disaggregated_rack(2, 32, 2, 512);
        let cxl = rack.pool[0];
        for &cpu in &rack.cpus {
            assert!(topo.reachable(cpu, cxl), "every CPU reaches the pool");
        }
        let far = *rack.pool.last().unwrap();
        let via_cxl = topo
            .access_cost(rack.cpus[0], cxl, 64, AccessOp::Read, AccessPattern::Random)
            .unwrap();
        let via_nic = topo
            .access_cost(rack.cpus[0], far, 64, AccessOp::Read, AccessPattern::Random)
            .unwrap();
        assert!(via_cxl < via_nic, "CXL pool must beat NIC far memory");
    }

    #[test]
    fn disaggregated_rack_has_more_pooled_than_local_capacity() {
        let (topo, rack) = disaggregated_rack(4, 32, 4, 512);
        let local: u64 = rack.drams.iter().map(|&d| topo.mem(d).capacity).sum();
        let pooled: u64 = rack.pool.iter().map(|&d| topo.mem(d).capacity).sum();
        assert!(pooled > local);
    }

    #[test]
    fn accelerator_server_gives_each_device_its_local_memory() {
        let (topo, h) = accelerator_server();
        assert!(topo.compute(h.gpu).is_local(h.gddr));
        assert!(topo.compute(h.tpu).is_local(h.hbm));
        assert!(topo.compute(h.dpu).is_local(h.far));
        assert!(topo.compute(h.cpu).is_local(h.dram));
        assert!(!topo.compute(h.fpga).is_local(h.dram));
        // Everyone reaches the CXL pool.
        for c in [h.cpu, h.gpu, h.tpu, h.fpga] {
            assert!(topo.reachable(c, h.cxl));
        }
    }

    #[test]
    fn dpu_reaches_far_memory_cheaply_and_the_cpu_does_not() {
        let (topo, h) = accelerator_server();
        let from_dpu = topo
            .access_cost(h.dpu, h.far, 4096, AccessOp::Read, AccessPattern::Sequential)
            .unwrap();
        let from_cpu = topo
            .access_cost(h.cpu, h.far, 4096, AccessOp::Read, AccessPattern::Sequential)
            .unwrap();
        assert!(from_dpu.as_nanos() * 10 < from_cpu.as_nanos() * 12,
            "DPU {from_dpu} should be comfortably cheaper than CPU {from_cpu}");
        assert!(from_dpu < from_cpu);
    }
}
