//! Virtual time.
//!
//! All simulated work is accounted in **virtual nanoseconds**. Nothing in
//! the simulator sleeps or consults a wall clock; executing a task means
//! running its (real) Rust body while *charging* the cost of each memory
//! access and compute step to a virtual clock. This keeps experiments
//! deterministic, independent of the host machine, and fast: simulating an
//! hour of rack time takes however long the arithmetic takes.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A point in virtual time, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of virtual time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Returns the raw nanosecond count.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the duration elapsed since `earlier`, saturating at zero.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Returns the later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a duration from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Builds a duration from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Builds a duration from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Builds a duration from seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Builds a duration from a floating-point nanosecond cost, rounding to
    /// the nearest whole nanosecond. Negative and non-finite inputs clamp
    /// to zero so cost arithmetic can never move time backwards.
    #[inline]
    pub fn from_nanos_f64(ns: f64) -> Self {
        if ns.is_finite() && ns > 0.0 {
            SimDuration(ns.round() as u64)
        } else {
            SimDuration(0)
        }
    }

    /// Returns the raw nanosecond count.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the duration as floating-point nanoseconds.
    #[inline]
    pub fn as_nanos_f64(self) -> f64 {
        self.0 as f64
    }

    /// Returns the duration in seconds as a float (for report output).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the larger of two durations.
    #[inline]
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// Returns the smaller of two durations.
    #[inline]
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// Saturating subtraction: the remaining span after `other` overlaps it.
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        SimDuration(iter.map(|d| d.0).sum())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_plus_duration_advances() {
        let t = SimTime(100) + SimDuration(50);
        assert_eq!(t, SimTime(150));
    }

    #[test]
    fn time_difference_saturates() {
        assert_eq!(SimTime(10) - SimTime(30), SimDuration::ZERO);
        assert_eq!(SimTime(30) - SimTime(10), SimDuration(20));
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_micros(2), SimDuration(2_000));
        assert_eq!(SimDuration::from_millis(2), SimDuration(2_000_000));
        assert_eq!(SimDuration::from_secs(2), SimDuration(2_000_000_000));
    }

    #[test]
    fn float_conversion_clamps_garbage() {
        assert_eq!(SimDuration::from_nanos_f64(-5.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_nanos_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_nanos_f64(f64::INFINITY), SimDuration::ZERO);
        assert_eq!(SimDuration::from_nanos_f64(1.6), SimDuration(2));
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(SimDuration(999).to_string(), "999ns");
        assert_eq!(SimDuration(1_500).to_string(), "1.500us");
        assert_eq!(SimDuration(2_500_000).to_string(), "2.500ms");
        assert_eq!(SimDuration(3_000_000_000).to_string(), "3.000s");
    }

    #[test]
    fn durations_sum() {
        let total: SimDuration = [SimDuration(1), SimDuration(2), SimDuration(3)]
            .into_iter()
            .sum();
        assert_eq!(total, SimDuration(6));
    }

    #[test]
    fn saturating_sub_never_underflows() {
        assert_eq!(SimDuration(5).saturating_sub(SimDuration(9)), SimDuration::ZERO);
        assert_eq!(SimDuration(9).saturating_sub(SimDuration(5)), SimDuration(4));
    }
}
