//! Structured event tracing.
//!
//! The benchmark harness regenerates the paper's tables from what actually
//! happened during a run: which devices served which regions, how many
//! bytes moved physically versus how many handovers were pure ownership
//! transfers, when tasks started and finished. The [`Trace`] collects those
//! events. Job/task identifiers are plain integers here because the
//! dataflow layer sits above this crate.

use crate::device::AccessOp;
use crate::ids::{ComputeId, MemDeviceId, NodeId};
use crate::time::{SimDuration, SimTime};

/// One traced event.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A region was allocated on a device.
    Alloc {
        /// Region identifier (assigned by the memory pool).
        region: u64,
        /// Backing device.
        dev: MemDeviceId,
        /// Region size in bytes.
        bytes: u64,
        /// When.
        at: SimTime,
    },
    /// A region was freed.
    Free {
        /// Region identifier.
        region: u64,
        /// Backing device.
        dev: MemDeviceId,
        /// Region size in bytes.
        bytes: u64,
        /// When.
        at: SimTime,
    },
    /// A memory access completed.
    Access {
        /// The accessed region.
        region: u64,
        /// Backing device.
        dev: MemDeviceId,
        /// Bytes logically accessed.
        bytes: u64,
        /// Read or write.
        op: AccessOp,
        /// When the access was issued.
        at: SimTime,
        /// How long it took (after contention).
        took: SimDuration,
    },
    /// A region migrated between devices (physical copy).
    Migrate {
        /// Region identifier.
        region: u64,
        /// Source device.
        from: MemDeviceId,
        /// Destination device.
        to: MemDeviceId,
        /// Bytes copied.
        bytes: u64,
        /// When.
        at: SimTime,
        /// How long the copy took.
        took: SimDuration,
    },
    /// A region's ownership moved between tasks without a physical copy.
    OwnershipTransfer {
        /// Region identifier.
        region: u64,
        /// Handing-over task (job-local index).
        from_task: u64,
        /// Receiving task (job-local index).
        to_task: u64,
        /// Region size (bytes that did *not* need to move).
        bytes: u64,
        /// When.
        at: SimTime,
    },
    /// A task began executing.
    TaskStart {
        /// Job identifier.
        job: u64,
        /// Task index within the job.
        task: u64,
        /// Where it runs.
        on: ComputeId,
        /// When.
        at: SimTime,
    },
    /// A task finished.
    TaskFinish {
        /// Job identifier.
        job: u64,
        /// Task index within the job.
        task: u64,
        /// Where it ran.
        on: ComputeId,
        /// When.
        at: SimTime,
    },
    /// A task's dependencies were all satisfied and it entered a
    /// compute device's ready queue.
    TaskQueued {
        /// Job identifier.
        job: u64,
        /// Task index within the job.
        task: u64,
        /// The device whose queue it joined.
        on: ComputeId,
        /// When it became ready.
        at: SimTime,
    },
    /// A queued task was picked by the dispatcher and occupied a lane.
    TaskDispatch {
        /// Job identifier.
        job: u64,
        /// Task index within the job.
        task: u64,
        /// The dispatching device.
        on: ComputeId,
        /// Dispatch time.
        at: SimTime,
        /// Time spent waiting in the ready queue.
        waited: SimDuration,
    },
    /// The recovery layer noticed a fault that interrupted a running
    /// task (emitted at detection time, i.e. fault time + detection
    /// delay — not at the instant the fault struck).
    FaultDetected {
        /// Job identifier.
        job: u64,
        /// Task index within the job.
        task: u64,
        /// The device the interrupted attempt was running on.
        on: ComputeId,
        /// Detection time.
        at: SimTime,
    },
    /// A task attempt was abandoned and the task re-placed elsewhere
    /// (crash retry or straggler speculation).
    TaskRetry {
        /// Job identifier.
        job: u64,
        /// Task index within the job.
        task: u64,
        /// Device of the abandoned attempt.
        from: ComputeId,
        /// Device of the new attempt.
        to: ComputeId,
        /// Retry number (1 = first retry).
        attempt: u64,
        /// When the new attempt was launched.
        at: SimTime,
        /// Virtual time burned on the abandoned attempt (including
        /// detection delay and backoff).
        lost: SimDuration,
    },
    /// Lost or corrupted region bytes were transparently rebuilt from
    /// redundancy (replica copy or Reed-Solomon decode).
    Reconstruct {
        /// Region identifier.
        region: u64,
        /// Device the reconstructed bytes were served from / written to.
        dev: MemDeviceId,
        /// Bytes reconstructed.
        bytes: u64,
        /// When reconstruction started.
        at: SimTime,
        /// Simulated transfer + decode cost.
        took: SimDuration,
        /// Job of the task whose access triggered the rebuild (`None`
        /// when the rebuild ran outside any task, e.g. post-wave heal).
        job: Option<u64>,
        /// Task index of the triggering task, if any.
        task: Option<u64>,
    },
    /// A circuit breaker opened: enough `FaultDetected` strikes landed
    /// on one node that placement stops offering it candidates until the
    /// cool-down elapses. Emitted serially from the commit path, so the
    /// transition order is deterministic at every shard count.
    BreakerTrip {
        /// The node the breaker guards.
        node: NodeId,
        /// When the breaker opened.
        at: SimTime,
    },
    /// An open breaker's cool-down elapsed and one probe task was
    /// admitted onto the node (half-open state).
    BreakerProbe {
        /// The node the breaker guards.
        node: NodeId,
        /// When the probe was admitted.
        at: SimTime,
    },
    /// A half-open breaker's probe task finished cleanly and the breaker
    /// closed; the node is back in the candidate set.
    BreakerClose {
        /// The node the breaker guards.
        node: NodeId,
        /// When the breaker closed.
        at: SimTime,
    },
    /// The serving control plane shed a request at admission because its
    /// deadline (arrival + calibrated service estimate under the current
    /// queue depth) could not be met. Distinct from quota rejection.
    RequestShed {
        /// Request identifier (the serving layer's request index).
        request: u64,
        /// Tenant the request belongs to.
        tenant: u64,
        /// Arrival time of the shed request.
        at: SimTime,
    },
    /// The serving control plane instantiated a request from its
    /// tenant's *degraded* template (brownout mode) instead of the
    /// normal one.
    RequestDegraded {
        /// Request identifier (the serving layer's request index).
        request: u64,
        /// Tenant the request belongs to.
        tenant: u64,
        /// Arrival time of the degraded request.
        at: SimTime,
    },
    /// A served request's identity, stamped once per job at submission
    /// time so every later `job`-carrying event in the same trace can be
    /// attributed back to the request (and tenant) that caused it.
    /// Emitted only for request-annotated submissions: plain batch runs
    /// never see it, so their traces are unchanged.
    RequestTag {
        /// Request identifier (the serving layer's request index).
        request: u64,
        /// Tenant the request belongs to.
        tenant: u64,
        /// The job instantiated for the request.
        job: u64,
        /// The job's arrival time.
        at: SimTime,
    },
}

impl TraceEvent {
    /// The timestamp of the event.
    pub fn at(&self) -> SimTime {
        match *self {
            TraceEvent::Alloc { at, .. }
            | TraceEvent::Free { at, .. }
            | TraceEvent::Access { at, .. }
            | TraceEvent::Migrate { at, .. }
            | TraceEvent::OwnershipTransfer { at, .. }
            | TraceEvent::TaskStart { at, .. }
            | TraceEvent::TaskFinish { at, .. }
            | TraceEvent::TaskQueued { at, .. }
            | TraceEvent::TaskDispatch { at, .. }
            | TraceEvent::FaultDetected { at, .. }
            | TraceEvent::TaskRetry { at, .. }
            | TraceEvent::Reconstruct { at, .. }
            | TraceEvent::BreakerTrip { at, .. }
            | TraceEvent::BreakerProbe { at, .. }
            | TraceEvent::BreakerClose { at, .. }
            | TraceEvent::RequestShed { at, .. }
            | TraceEvent::RequestDegraded { at, .. }
            | TraceEvent::RequestTag { at, .. } => at,
        }
    }
}

/// A streaming hook called once per event, at emission time, before the
/// event is (maybe) buffered. Observability layers above this crate
/// install one to see events as they happen instead of post-mortem.
pub type TraceTap = Box<dyn FnMut(&TraceEvent) + Send>;

/// An append-only event log with aggregate queries.
#[derive(Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
    enabled: bool,
    tap: Option<TraceTap>,
}

impl std::fmt::Debug for Trace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Trace")
            .field("events", &self.events)
            .field("enabled", &self.enabled)
            .field("tap", &self.tap.as_ref().map(|_| "..."))
            .finish()
    }
}

impl Trace {
    /// A trace that records events.
    pub fn enabled() -> Self {
        Trace {
            events: Vec::new(),
            enabled: true,
            tap: None,
        }
    }

    /// A trace that drops everything (zero overhead for large runs).
    pub fn disabled() -> Self {
        Trace::default()
    }

    /// Installs a streaming tap. The tap sees every pushed event even
    /// when buffering is disabled, so a streaming observer does not
    /// require paying for the in-memory event log.
    pub fn set_tap(&mut self, tap: TraceTap) {
        self.tap = Some(tap);
    }

    /// Removes the streaming tap, if any.
    pub fn clear_tap(&mut self) {
        self.tap = None;
    }

    /// True if a streaming tap is installed.
    pub fn has_tap(&self) -> bool {
        self.tap.is_some()
    }

    /// Records an event: streams it to the tap (if installed), then
    /// buffers it (if enabled).
    pub fn push(&mut self, event: TraceEvent) {
        if let Some(tap) = &mut self.tap {
            tap(&event);
        }
        if self.enabled {
            self.events.push(event);
        }
    }

    /// All recorded events in insertion order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total bytes physically moved (accesses + migrations).
    pub fn bytes_moved(&self) -> u64 {
        self.events
            .iter()
            .map(|e| match *e {
                TraceEvent::Access { bytes, .. } | TraceEvent::Migrate { bytes, .. } => bytes,
                _ => 0,
            })
            .sum()
    }

    /// Total bytes whose movement was *avoided* by ownership transfer.
    pub fn bytes_transferred_by_ownership(&self) -> u64 {
        self.events
            .iter()
            .map(|e| match *e {
                TraceEvent::OwnershipTransfer { bytes, .. } => bytes,
                _ => 0,
            })
            .sum()
    }

    /// Count of events matching a predicate.
    pub fn count(&self, pred: impl Fn(&TraceEvent) -> bool) -> usize {
        self.events.iter().filter(|e| pred(e)).count()
    }

    /// Bytes accessed per device, as `(device, bytes)` pairs sorted by id.
    pub fn bytes_per_device(&self) -> Vec<(MemDeviceId, u64)> {
        let mut acc: std::collections::BTreeMap<MemDeviceId, u64> = Default::default();
        for e in &self.events {
            match *e {
                TraceEvent::Access { dev, bytes, .. } => *acc.entry(dev).or_default() += bytes,
                TraceEvent::Migrate { from, to, bytes, .. } => {
                    *acc.entry(from).or_default() += bytes;
                    *acc.entry(to).or_default() += bytes;
                }
                _ => {}
            }
        }
        acc.into_iter().collect()
    }

    /// Clears all events.
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Renders the trace as CSV (`kind,at_ns,detail...`) for offline
    /// debugging — the paper's Challenge 8(1) asks how to debug across
    /// abstraction layers; the answer starts with being able to get the
    /// events out.
    pub fn to_csv(&self) -> String {
        // Request attribution pre-pass: `RequestTag` events map jobs to
        // the serving request that instantiated them, so every
        // job-carrying row can be grepped per request.
        let mut req_of_job: std::collections::BTreeMap<u64, u64> = Default::default();
        for e in &self.events {
            if let TraceEvent::RequestTag { request, job, .. } = *e {
                req_of_job.insert(job, request);
            }
        }
        let req = |job: u64| req_of_job.get(&job).map(|r| r.to_string()).unwrap_or_default();
        let mut out = String::from(
            "kind,at_ns,took_ns,region,dev_from,dev_to,bytes,job,task,from_task,to_task,op,request\n",
        );
        for e in &self.events {
            let request = match *e {
                TraceEvent::TaskStart { job, .. }
                | TraceEvent::TaskFinish { job, .. }
                | TraceEvent::TaskQueued { job, .. }
                | TraceEvent::TaskDispatch { job, .. }
                | TraceEvent::FaultDetected { job, .. }
                | TraceEvent::TaskRetry { job, .. }
                | TraceEvent::Reconstruct { job: Some(job), .. } => req(job),
                TraceEvent::RequestTag { request, .. }
                | TraceEvent::RequestShed { request, .. }
                | TraceEvent::RequestDegraded { request, .. } => request.to_string(),
                _ => String::new(),
            };
            let line = match *e {
                TraceEvent::Alloc { region, dev, bytes, at } => {
                    format!("alloc,{},,{region},{},,{bytes},,,,,", at.as_nanos(), dev.0)
                }
                TraceEvent::Free { region, dev, bytes, at } => {
                    format!("free,{},,{region},{},,{bytes},,,,,", at.as_nanos(), dev.0)
                }
                TraceEvent::Access { region, dev, bytes, op, at, took } => {
                    let opn = match op {
                        AccessOp::Read => "read",
                        AccessOp::Write => "write",
                    };
                    format!(
                        "access,{},{},{region},{},,{bytes},,,,,{opn}",
                        at.as_nanos(),
                        took.as_nanos(),
                        dev.0
                    )
                }
                TraceEvent::Migrate { region, from, to, bytes, at, took } => {
                    format!(
                        "migrate,{},{},{region},{},{},{bytes},,,,,",
                        at.as_nanos(),
                        took.as_nanos(),
                        from.0,
                        to.0
                    )
                }
                TraceEvent::OwnershipTransfer { region, from_task, to_task, bytes, at } => {
                    format!(
                        "transfer,{},,{region},,,{bytes},,,{from_task},{to_task},",
                        at.as_nanos()
                    )
                }
                TraceEvent::TaskStart { job, task, on, at } => {
                    format!("task_start,{},,,{},,,{job},{task},,,", at.as_nanos(), on.0)
                }
                TraceEvent::TaskFinish { job, task, on, at } => {
                    format!("task_finish,{},,,{},,,{job},{task},,,", at.as_nanos(), on.0)
                }
                TraceEvent::TaskQueued { job, task, on, at } => {
                    format!("task_queued,{},,,{},,,{job},{task},,,", at.as_nanos(), on.0)
                }
                TraceEvent::TaskDispatch { job, task, on, at, waited } => {
                    format!(
                        "task_dispatch,{},{},,{},,,{job},{task},,,",
                        at.as_nanos(),
                        waited.as_nanos(),
                        on.0
                    )
                }
                TraceEvent::FaultDetected { job, task, on, at } => {
                    format!("fault_detected,{},,,{},,,{job},{task},,,", at.as_nanos(), on.0)
                }
                TraceEvent::TaskRetry { job, task, from, to, attempt, at, lost } => {
                    format!(
                        "task_retry,{},{},,{},{},,{job},{task},,,attempt{attempt}",
                        at.as_nanos(),
                        lost.as_nanos(),
                        from.0,
                        to.0
                    )
                }
                TraceEvent::Reconstruct { region, dev, bytes, at, took, job, task } => {
                    format!(
                        "reconstruct,{},{},{region},{},,{bytes},{},{},,,",
                        at.as_nanos(),
                        took.as_nanos(),
                        dev.0,
                        job.map(|j| j.to_string()).unwrap_or_default(),
                        task.map(|t| t.to_string()).unwrap_or_default()
                    )
                }
                TraceEvent::BreakerTrip { node, at } => {
                    format!("breaker_trip,{},,,,,,,,,,node{}", at.as_nanos(), node.0)
                }
                TraceEvent::BreakerProbe { node, at } => {
                    format!("breaker_probe,{},,,,,,,,,,node{}", at.as_nanos(), node.0)
                }
                TraceEvent::BreakerClose { node, at } => {
                    format!("breaker_close,{},,,,,,,,,,node{}", at.as_nanos(), node.0)
                }
                TraceEvent::RequestShed { request: _, tenant, at } => {
                    format!("request_shed,{},,,,,,,,,,tenant{tenant}", at.as_nanos())
                }
                TraceEvent::RequestDegraded { request: _, tenant, at } => {
                    format!("request_degraded,{},,,,,,,,,,tenant{tenant}", at.as_nanos())
                }
                TraceEvent::RequestTag { request: _, tenant, job, at } => {
                    format!("request_tag,{},,,,,,{job},,,,tenant{tenant}", at.as_nanos())
                }
            };
            out.push_str(&line);
            out.push(',');
            out.push_str(&request);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn access(dev: u32, bytes: u64) -> TraceEvent {
        TraceEvent::Access {
            region: 0,
            dev: MemDeviceId(dev),
            bytes,
            op: AccessOp::Read,
            at: SimTime(0),
            took: SimDuration(10),
        }
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::disabled();
        t.push(access(0, 64));
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn enabled_trace_records_in_order() {
        let mut t = Trace::enabled();
        t.push(access(0, 64));
        t.push(access(1, 128));
        assert_eq!(t.len(), 2);
        assert_eq!(t.bytes_moved(), 192);
    }

    #[test]
    fn ownership_transfers_tracked_separately_from_physical_moves() {
        let mut t = Trace::enabled();
        t.push(access(0, 100));
        t.push(TraceEvent::OwnershipTransfer {
            region: 1,
            from_task: 0,
            to_task: 1,
            bytes: 1_000,
            at: SimTime(5),
        });
        assert_eq!(t.bytes_moved(), 100);
        assert_eq!(t.bytes_transferred_by_ownership(), 1_000);
    }

    #[test]
    fn migrations_count_on_both_devices() {
        let mut t = Trace::enabled();
        t.push(TraceEvent::Migrate {
            region: 1,
            from: MemDeviceId(0),
            to: MemDeviceId(1),
            bytes: 50,
            at: SimTime(0),
            took: SimDuration(1),
        });
        let per_dev = t.bytes_per_device();
        assert_eq!(per_dev, vec![(MemDeviceId(0), 50), (MemDeviceId(1), 50)]);
        assert_eq!(t.bytes_moved(), 50);
    }

    #[test]
    fn count_filters_events() {
        let mut t = Trace::enabled();
        t.push(access(0, 1));
        t.push(access(0, 1));
        t.push(TraceEvent::TaskStart {
            job: 0,
            task: 0,
            on: ComputeId(0),
            at: SimTime(0),
        });
        assert_eq!(t.count(|e| matches!(e, TraceEvent::Access { .. })), 2);
        assert_eq!(t.count(|e| matches!(e, TraceEvent::TaskStart { .. })), 1);
    }

    #[test]
    fn event_timestamps_accessible() {
        let e = access(0, 1);
        assert_eq!(e.at(), SimTime(0));
        let mut t = Trace::enabled();
        t.push(e);
        t.clear();
        assert!(t.is_empty());
    }

    #[test]
    fn csv_export_covers_every_event_kind() {
        let mut t = Trace::enabled();
        t.push(TraceEvent::RequestTag { request: 7, tenant: 2, job: 0, at: SimTime(0) });
        t.push(TraceEvent::Alloc { region: 1, dev: MemDeviceId(0), bytes: 64, at: SimTime(1) });
        t.push(access(0, 64));
        t.push(TraceEvent::Migrate {
            region: 1,
            from: MemDeviceId(0),
            to: MemDeviceId(1),
            bytes: 64,
            at: SimTime(2),
            took: SimDuration(3),
        });
        t.push(TraceEvent::OwnershipTransfer {
            region: 1,
            from_task: 0,
            to_task: 1,
            bytes: 64,
            at: SimTime(3),
        });
        t.push(TraceEvent::TaskQueued { job: 0, task: 1, on: ComputeId(0), at: SimTime(3) });
        t.push(TraceEvent::TaskDispatch {
            job: 0,
            task: 1,
            on: ComputeId(0),
            at: SimTime(4),
            waited: SimDuration(1),
        });
        t.push(TraceEvent::TaskStart { job: 0, task: 1, on: ComputeId(0), at: SimTime(4) });
        t.push(TraceEvent::FaultDetected { job: 0, task: 1, on: ComputeId(0), at: SimTime(4) });
        t.push(TraceEvent::TaskRetry {
            job: 0,
            task: 1,
            from: ComputeId(0),
            to: ComputeId(1),
            attempt: 1,
            at: SimTime(5),
            lost: SimDuration(2),
        });
        t.push(TraceEvent::Reconstruct {
            region: 1,
            dev: MemDeviceId(1),
            bytes: 64,
            at: SimTime(5),
            took: SimDuration(7),
            job: Some(0),
            task: Some(1),
        });
        t.push(TraceEvent::TaskFinish { job: 0, task: 1, on: ComputeId(0), at: SimTime(5) });
        t.push(TraceEvent::Free { region: 1, dev: MemDeviceId(1), bytes: 64, at: SimTime(6) });
        t.push(TraceEvent::BreakerTrip { node: NodeId(0), at: SimTime(6) });
        t.push(TraceEvent::BreakerProbe { node: NodeId(0), at: SimTime(7) });
        t.push(TraceEvent::BreakerClose { node: NodeId(0), at: SimTime(8) });
        t.push(TraceEvent::RequestShed { request: 9, tenant: 3, at: SimTime(8) });
        t.push(TraceEvent::RequestDegraded { request: 10, tenant: 3, at: SimTime(9) });
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 19, "header + 18 events");
        assert!(lines[0].starts_with("kind,at_ns"));
        for kind in [
            "request_tag",
            "alloc",
            "access",
            "migrate",
            "transfer",
            "task_queued",
            "task_dispatch",
            "task_start",
            "fault_detected",
            "task_retry",
            "reconstruct",
            "task_finish",
            "free",
            "breaker_trip",
            "breaker_probe",
            "breaker_close",
            "request_shed",
            "request_degraded",
        ] {
            assert!(csv.lines().any(|l| l.starts_with(kind)), "missing {kind}");
        }
        // Every row has the header's arity.
        let cols = lines[0].matches(',').count();
        for l in &lines[1..] {
            assert_eq!(l.matches(',').count(), cols, "bad row: {l}");
        }
        // Ownership transfers carry their endpoints in dedicated
        // columns, not stuffed into the task field.
        let header: Vec<&str> = lines[0].split(',').collect();
        let from_col = header.iter().position(|&h| h == "from_task").unwrap();
        let to_col = header.iter().position(|&h| h == "to_task").unwrap();
        let transfer = lines.iter().find(|l| l.starts_with("transfer")).unwrap();
        let fields: Vec<&str> = transfer.split(',').collect();
        assert_eq!(fields[from_col], "0");
        assert_eq!(fields[to_col], "1");
        assert!(!transfer.contains("->"), "no packed endpoints: {transfer}");
        // The request column resolves every job-0 row to request 7 via
        // the tag, including the reconstruct's owning task.
        let req_col = header.iter().position(|&h| h == "request").unwrap();
        for kind in ["task_start", "task_retry", "fault_detected", "reconstruct", "request_tag"] {
            let row = lines.iter().find(|l| l.starts_with(kind)).unwrap();
            let fields: Vec<&str> = row.split(',').collect();
            assert_eq!(fields[req_col], "7", "{kind} row carries its owning request");
        }
        // Non-job rows leave the column empty.
        let alloc = lines.iter().find(|l| l.starts_with("alloc")).unwrap();
        assert_eq!(alloc.split(',').nth(req_col).unwrap(), "");
        // Shed/degraded requests carry their own request id; breaker
        // rows carry the node in the op column and no request.
        let shed = lines.iter().find(|l| l.starts_with("request_shed")).unwrap();
        assert_eq!(shed.split(',').nth(req_col).unwrap(), "9");
        let trip = lines.iter().find(|l| l.starts_with("breaker_trip")).unwrap();
        assert!(trip.contains("node0"), "breaker row names its node: {trip}");
        assert_eq!(trip.split(',').nth(req_col).unwrap(), "");
    }

    #[test]
    fn tap_streams_every_event_even_when_buffering_is_off() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let seen = Arc::new(AtomicUsize::new(0));
        for (mut t, buffered) in [(Trace::enabled(), 2), (Trace::disabled(), 0)] {
            let n = seen.clone();
            t.set_tap(Box::new(move |_| {
                n.fetch_add(1, Ordering::Relaxed);
            }));
            assert!(t.has_tap());
            t.push(access(0, 64));
            t.push(access(1, 64));
            assert_eq!(t.len(), buffered);
            t.clear_tap();
            t.push(access(0, 64)); // not streamed
            assert!(!t.has_tap());
        }
        assert_eq!(seen.load(Ordering::Relaxed), 4, "2 taps x 2 pushes");
    }
}
