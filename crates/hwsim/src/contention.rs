//! Bandwidth contention accounting.
//!
//! Devices and links have finite bandwidth; when many tasks stream against
//! the same CXL expander the paper's placement problem gets interesting.
//! The [`BandwidthLedger`] models contention deterministically: virtual
//! time is divided into fixed buckets, every transfer reserves bytes in the
//! buckets it spans, and a bucket that is already fully subscribed pushes
//! the remainder of a transfer into later buckets (FIFO queueing). The
//! resulting slowdown is a pure function of the sequence of reservations,
//! so experiment output is reproducible.
//!
//! # Hot-path layout
//!
//! Bucket state lives in per-resource **ring buffers** indexed by quantum
//! (bucket number), not in a `(resource, bucket) → f64` hash map: one
//! resource lookup per reservation, then O(1) direct indexing per bucket.
//! Slots are tagged with the quantum they hold and **lazily evicted** —
//! a slot is reset the first time a newer quantum that aliases onto it is
//! touched, so quanta the simulation has moved past cost nothing to
//! retire. The ring guarantees exact accounting for any two live quanta
//! less than its capacity apart (it grows to cover the span of any single
//! reservation); an access that lands on a quantum already evicted by a
//! newer alias falls back to a spill map, so accounting never corrupts
//! newer buckets.

use crate::fx::FxHashMap;
use crate::ids::{ComputeId, LinkId, MemDeviceId};
use crate::time::{SimDuration, SimTime};

/// A contended resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResourceKey {
    /// A memory device's internal bandwidth.
    Mem(MemDeviceId),
    /// An interconnect link.
    Link(LinkId),
    /// A compute device's execution slots.
    Compute(ComputeId),
}

/// Per-resource usage statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ResourceStats {
    /// Total bytes transferred through the resource.
    pub bytes: f64,
    /// Total busy time accumulated (may exceed wall time when parallel).
    pub busy: SimDuration,
    /// Number of reservations made.
    pub reservations: u64,
    /// Most reservations sharing any one time bucket: how many accessors
    /// the resource was charged for at its most contended instant.
    pub peak_overlap: u32,
}

/// Sentinel quantum for a ring slot that holds nothing.
const EMPTY: u64 = u64::MAX;

/// Initial ring capacity per resource (quanta). At the default 10 µs
/// bucket this retains ~41 ms of virtual time, far beyond any live
/// reservation window in practice; the ring grows when a single
/// reservation spans more.
const INITIAL_SLOTS: usize = 4096;

/// One time bucket of one resource.
#[derive(Debug, Clone, Copy)]
struct Slot {
    /// Which quantum this slot currently holds ([`EMPTY`] if none).
    quantum: u64,
    /// Bytes already reserved in the quantum.
    used: f64,
    /// Reservations touching the quantum.
    accessors: u32,
}

impl Slot {
    const fn empty() -> Slot {
        Slot { quantum: EMPTY, used: 0.0, accessors: 0 }
    }
}

/// Per-resource ring of bucket state plus aggregate statistics.
#[derive(Debug)]
struct Lane {
    /// Power-of-two ring; slot for quantum `q` is `q & mask`.
    slots: Vec<Slot>,
    mask: u64,
    /// Spill storage for quanta whose ring slot was already claimed by a
    /// *newer* alias (only reachable if a reservation jumps further back
    /// in virtual time than the ring retains — pathological, but must
    /// not corrupt the newer bucket).
    spill: FxHashMap<u64, Slot>,
    stats: ResourceStats,
}

impl Lane {
    fn new() -> Lane {
        Lane {
            slots: vec![Slot::empty(); INITIAL_SLOTS],
            mask: INITIAL_SLOTS as u64 - 1,
            spill: FxHashMap::default(),
            stats: ResourceStats::default(),
        }
    }

    /// Ensures the ring can hold `span` consecutive quanta without
    /// self-aliasing (grows geometrically, re-laying out live slots).
    fn reserve_span(&mut self, span: u64) {
        let mut cap = self.mask + 1;
        if span.saturating_mul(2) <= cap {
            return;
        }
        while span.saturating_mul(2) > cap {
            cap = cap.saturating_mul(2);
        }
        let mut slots = vec![Slot::empty(); cap as usize];
        let mask = cap - 1;
        for s in self.slots.drain(..) {
            if s.quantum != EMPTY {
                slots[(s.quantum & mask) as usize] = s;
            }
        }
        self.slots = slots;
        self.mask = mask;
    }

    /// The live bucket state for quantum `q`, lazily evicting an expired
    /// older occupant of the same ring slot.
    fn slot_mut(&mut self, q: u64) -> &mut Slot {
        let i = (q & self.mask) as usize;
        let held = self.slots[i].quantum;
        if held == q {
            return &mut self.slots[i];
        }
        if held == EMPTY || held < q {
            // Lazy eviction: the older quantum can never affect a future
            // reservation once a newer alias claims the slot.
            self.slots[i] = Slot { quantum: q, ..Slot::empty() };
            return &mut self.slots[i];
        }
        // The slot holds a *newer* quantum: serve the old one from spill
        // so we never clobber live future state.
        self.spill.entry(q).or_insert(Slot { quantum: q, ..Slot::empty() })
    }
}

/// Deterministic, bucketed bandwidth ledger.
#[derive(Debug)]
pub struct BandwidthLedger {
    bucket_ns: u64,
    /// Resource → dense lane index.
    lane_of: FxHashMap<ResourceKey, u32>,
    lanes: Vec<Lane>,
}

impl BandwidthLedger {
    /// Creates a ledger with the given bucket width. Smaller buckets model
    /// contention more precisely but cost more to simulate; 10 µs is a good
    /// default for rack-scale experiments.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_ns` is zero.
    pub fn new(bucket_ns: u64) -> Self {
        assert!(bucket_ns > 0, "bucket width must be positive");
        BandwidthLedger {
            bucket_ns,
            lane_of: FxHashMap::default(),
            lanes: Vec::new(),
        }
    }

    /// Default ledger (10 µs buckets).
    pub fn default_buckets() -> Self {
        BandwidthLedger::new(10_000)
    }

    fn lane_mut(&mut self, resource: ResourceKey) -> &mut Lane {
        let idx = *self.lane_of.entry(resource).or_insert_with(|| {
            self.lanes.push(Lane::new());
            (self.lanes.len() - 1) as u32
        });
        &mut self.lanes[idx as usize]
    }

    /// Reserves `bytes` of transfer on `resource` starting at `start`,
    /// given the resource's bandwidth in bytes/ns. Returns the *finish
    /// time* of the transfer after queueing behind earlier reservations.
    ///
    /// A transfer through an empty ledger finishes exactly `bytes / bw`
    /// after `start`; oversubscribed buckets stretch it.
    pub fn reserve(
        &mut self,
        resource: ResourceKey,
        start: SimTime,
        bytes: f64,
        bw_bpns: f64,
    ) -> SimTime {
        if bytes <= 0.0 || !bw_bpns.is_finite() || bw_bpns <= 0.0 {
            return start;
        }
        let bucket_ns = self.bucket_ns;
        let cap_per_bucket = bw_bpns * bucket_ns as f64;
        // Upper bound on the bucket span of this reservation assuming it
        // finds every bucket empty is bytes/cap; contention can stretch it
        // further, so the span is re-checked as the loop advances.
        let lane = self.lane_mut(resource);
        lane.reserve_span((bytes / cap_per_bucket) as u64 + 2);

        let mut remaining = bytes;
        let first_bucket = start.as_nanos() / bucket_ns;
        let mut bucket = first_bucket;
        // Fractional headroom of the first bucket: the transfer only
        // occupies the part of the bucket after `start`.
        let mut first_fraction =
            1.0 - (start.as_nanos() % bucket_ns) as f64 / bucket_ns as f64;
        // Time this op's own bytes take at rated bandwidth (accumulated
        // across buckets): the floor below which no finish can fall.
        let mut own_ns = 0.0f64;
        let finish;
        loop {
            lane.reserve_span(bucket - first_bucket + 2);
            let cap = cap_per_bucket * first_fraction;
            first_fraction = 1.0;
            let slot = lane.slot_mut(bucket);
            let avail = (cap - slot.used).max(0.0);
            if remaining <= avail {
                slot.used += remaining;
                own_ns += remaining / bw_bpns;
                // Two bounds on the completion instant: the op's own
                // serial transfer time from `start`, and the FIFO position
                // implied by everything reserved in this bucket.
                let own_finish = start.as_nanos() + own_ns.ceil() as u64;
                let consumed_fraction = (slot.used / cap_per_bucket).min(1.0);
                let fifo_finish = bucket * bucket_ns
                    + (consumed_fraction * bucket_ns as f64).ceil() as u64;
                finish = SimTime(own_finish.max(fifo_finish).max(start.as_nanos()));
                break;
            }
            slot.used += avail;
            remaining -= avail;
            own_ns += avail / bw_bpns;
            bucket += 1;
        }
        // Charge the overlap: every bucket this transfer touched gains
        // one accessor, and the resource's peak concurrent-accessor
        // count is the contention actually experienced.
        let mut peak = 0u32;
        for b in first_bucket..=bucket {
            let slot = lane.slot_mut(b);
            slot.accessors += 1;
            peak = peak.max(slot.accessors);
        }
        let st = &mut lane.stats;
        st.bytes += bytes;
        st.busy += finish - start;
        st.reservations += 1;
        st.peak_overlap = st.peak_overlap.max(peak);
        finish
    }

    /// Statistics for one resource (zeroes if never used).
    pub fn stats(&self, resource: ResourceKey) -> ResourceStats {
        self.lane_of
            .get(&resource)
            .map(|&i| self.lanes[i as usize].stats)
            .unwrap_or_default()
    }

    /// Fraction of a resource's bandwidth consumed over `[0, horizon)`.
    pub fn utilization(&self, resource: ResourceKey, bw_bpns: f64, horizon: SimDuration) -> f64 {
        if horizon == SimDuration::ZERO || bw_bpns <= 0.0 {
            return 0.0;
        }
        let bytes = self.stats(resource).bytes;
        (bytes / (bw_bpns * horizon.as_nanos_f64())).min(1.0)
    }

    /// Clears all reservations and statistics.
    pub fn reset(&mut self) {
        self.lane_of.clear();
        self.lanes.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DEV: ResourceKey = ResourceKey::Mem(MemDeviceId(0));

    #[test]
    fn uncontended_transfer_finishes_at_rated_bandwidth() {
        let mut ledger = BandwidthLedger::new(1_000);
        // 10 GB/s, 10_000 bytes → 1_000 ns.
        let finish = ledger.reserve(DEV, SimTime(0), 10_000.0, 10.0);
        assert_eq!(finish, SimTime(1_000));
    }

    #[test]
    fn second_flow_queues_behind_first() {
        let mut ledger = BandwidthLedger::new(1_000);
        let f1 = ledger.reserve(DEV, SimTime(0), 10_000.0, 10.0);
        let f2 = ledger.reserve(DEV, SimTime(0), 10_000.0, 10.0);
        assert_eq!(f1, SimTime(1_000));
        // Second transfer finds the first bucket full and lands in the next.
        assert_eq!(f2, SimTime(2_000));
    }

    #[test]
    fn disjoint_resources_do_not_contend() {
        let mut ledger = BandwidthLedger::new(1_000);
        let other = ResourceKey::Mem(MemDeviceId(1));
        let f1 = ledger.reserve(DEV, SimTime(0), 10_000.0, 10.0);
        let f2 = ledger.reserve(other, SimTime(0), 10_000.0, 10.0);
        assert_eq!(f1, f2);
    }

    #[test]
    fn mid_bucket_start_has_partial_headroom() {
        let mut ledger = BandwidthLedger::new(1_000);
        // Start halfway into a bucket: only half the bucket's capacity
        // remains, so a 10_000-byte transfer at 10 B/ns spills over.
        let finish = ledger.reserve(DEV, SimTime(500), 10_000.0, 10.0);
        assert!(finish > SimTime(1_000));
        assert!(finish <= SimTime(2_000));
    }

    #[test]
    fn zero_bytes_is_instant() {
        let mut ledger = BandwidthLedger::new(1_000);
        assert_eq!(ledger.reserve(DEV, SimTime(42), 0.0, 10.0), SimTime(42));
    }

    #[test]
    fn infinite_bandwidth_is_instant() {
        let mut ledger = BandwidthLedger::new(1_000);
        assert_eq!(
            ledger.reserve(DEV, SimTime(42), 1e9, f64::INFINITY),
            SimTime(42)
        );
    }

    #[test]
    fn stats_accumulate() {
        let mut ledger = BandwidthLedger::new(1_000);
        ledger.reserve(DEV, SimTime(0), 5_000.0, 10.0);
        ledger.reserve(DEV, SimTime(0), 5_000.0, 10.0);
        let st = ledger.stats(DEV);
        assert_eq!(st.bytes, 10_000.0);
        assert_eq!(st.reservations, 2);
        assert!(st.busy > SimDuration::ZERO);
    }

    #[test]
    fn utilization_is_bounded() {
        let mut ledger = BandwidthLedger::new(1_000);
        ledger.reserve(DEV, SimTime(0), 10_000.0, 10.0);
        let u = ledger.utilization(DEV, 10.0, SimDuration::from_nanos(2_000));
        assert!((u - 0.5).abs() < 1e-9, "expected 50% utilization, got {u}");
        assert_eq!(ledger.utilization(DEV, 10.0, SimDuration::ZERO), 0.0);
    }

    #[test]
    fn reset_clears_reservations() {
        let mut ledger = BandwidthLedger::new(1_000);
        ledger.reserve(DEV, SimTime(0), 10_000.0, 10.0);
        ledger.reset();
        let finish = ledger.reserve(DEV, SimTime(0), 10_000.0, 10.0);
        assert_eq!(finish, SimTime(1_000));
        assert_eq!(ledger.stats(DEV).reservations, 1);
    }

    #[test]
    fn peak_overlap_counts_concurrent_accessors() {
        let mut ledger = BandwidthLedger::new(1_000);
        // Three small transfers share the first bucket.
        for _ in 0..3 {
            ledger.reserve(DEV, SimTime(0), 100.0, 10.0);
        }
        // A fourth lands in a later, empty window.
        ledger.reserve(DEV, SimTime(50_000), 100.0, 10.0);
        assert_eq!(ledger.stats(DEV).peak_overlap, 3);
    }

    #[test]
    fn many_flows_slow_down_linearly() {
        let mut ledger = BandwidthLedger::new(1_000);
        let mut last = SimTime(0);
        for _ in 0..8 {
            last = ledger.reserve(DEV, SimTime(0), 10_000.0, 10.0);
        }
        // Eight serialized 1_000 ns transfers → 8_000 ns.
        assert_eq!(last, SimTime(8_000));
    }

    #[test]
    fn single_reservation_spanning_many_buckets_grows_the_ring() {
        let mut ledger = BandwidthLedger::new(1_000);
        // 100M bytes at 10 B/ns = 10M ns = 10_000 buckets (> INITIAL_SLOTS).
        let finish = ledger.reserve(DEV, SimTime(0), 100_000_000.0, 10.0);
        assert_eq!(finish, SimTime(10_000_000));
        // A second flow queues behind the entire first transfer.
        let f2 = ledger.reserve(DEV, SimTime(0), 10_000.0, 10.0);
        assert_eq!(f2, SimTime(10_001_000));
    }

    #[test]
    fn far_future_then_far_past_reservations_stay_isolated() {
        let mut ledger = BandwidthLedger::new(1_000);
        // Touch a quantum far in the future, then come back to a quantum
        // that aliases onto an evicted slot: the old quantum must see a
        // clean bucket (spill path) and must not disturb the future one.
        let far = SimTime(INITIAL_SLOTS as u64 * 1_000 * 3);
        let f1 = ledger.reserve(DEV, far, 10_000.0, 10.0);
        assert_eq!(f1, SimTime(far.as_nanos() + 1_000));
        let f2 = ledger.reserve(DEV, SimTime(0), 10_000.0, 10.0);
        assert_eq!(f2, SimTime(1_000));
        let f3 = ledger.reserve(DEV, far, 10_000.0, 10.0);
        assert_eq!(f3, SimTime(far.as_nanos() + 2_000), "future bucket kept its charge");
    }

    #[test]
    fn forward_progress_reuses_slots_without_leaking_charge() {
        let mut ledger = BandwidthLedger::new(1_000);
        // March far past the ring capacity; every bucket must look fresh.
        for i in 0..(INITIAL_SLOTS as u64 * 4) {
            let at = SimTime(i * 1_000);
            let f = ledger.reserve(DEV, at, 5_000.0, 10.0);
            assert_eq!(f, SimTime(at.as_nanos() + 500), "bucket {i} had stale charge");
        }
    }
}
