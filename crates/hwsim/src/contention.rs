//! Bandwidth contention accounting.
//!
//! Devices and links have finite bandwidth; when many tasks stream against
//! the same CXL expander the paper's placement problem gets interesting.
//! The [`BandwidthLedger`] models contention deterministically: virtual
//! time is divided into fixed buckets, every transfer reserves bytes in the
//! buckets it spans, and a bucket that is already fully subscribed pushes
//! the remainder of a transfer into later buckets (FIFO queueing). The
//! resulting slowdown is a pure function of the sequence of reservations,
//! so experiment output is reproducible.

use std::collections::HashMap;

use crate::ids::{ComputeId, LinkId, MemDeviceId};
use crate::time::{SimDuration, SimTime};

/// A contended resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResourceKey {
    /// A memory device's internal bandwidth.
    Mem(MemDeviceId),
    /// An interconnect link.
    Link(LinkId),
    /// A compute device's execution slots.
    Compute(ComputeId),
}

/// Per-resource usage statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ResourceStats {
    /// Total bytes transferred through the resource.
    pub bytes: f64,
    /// Total busy time accumulated (may exceed wall time when parallel).
    pub busy: SimDuration,
    /// Number of reservations made.
    pub reservations: u64,
    /// Most reservations sharing any one time bucket: how many accessors
    /// the resource was charged for at its most contended instant.
    pub peak_overlap: u32,
}

/// Deterministic, bucketed bandwidth ledger.
#[derive(Debug)]
pub struct BandwidthLedger {
    bucket_ns: u64,
    /// `(resource, bucket index) → bytes already reserved`.
    used: HashMap<(ResourceKey, u64), f64>,
    /// `(resource, bucket index) → reservations touching the bucket`.
    accessors: HashMap<(ResourceKey, u64), u32>,
    stats: HashMap<ResourceKey, ResourceStats>,
}

impl BandwidthLedger {
    /// Creates a ledger with the given bucket width. Smaller buckets model
    /// contention more precisely but cost more to simulate; 10 µs is a good
    /// default for rack-scale experiments.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_ns` is zero.
    pub fn new(bucket_ns: u64) -> Self {
        assert!(bucket_ns > 0, "bucket width must be positive");
        BandwidthLedger {
            bucket_ns,
            used: HashMap::new(),
            accessors: HashMap::new(),
            stats: HashMap::new(),
        }
    }

    /// Default ledger (10 µs buckets).
    pub fn default_buckets() -> Self {
        BandwidthLedger::new(10_000)
    }

    /// Reserves `bytes` of transfer on `resource` starting at `start`,
    /// given the resource's bandwidth in bytes/ns. Returns the *finish
    /// time* of the transfer after queueing behind earlier reservations.
    ///
    /// A transfer through an empty ledger finishes exactly `bytes / bw`
    /// after `start`; oversubscribed buckets stretch it.
    pub fn reserve(
        &mut self,
        resource: ResourceKey,
        start: SimTime,
        bytes: f64,
        bw_bpns: f64,
    ) -> SimTime {
        if bytes <= 0.0 || !bw_bpns.is_finite() || bw_bpns <= 0.0 {
            return start;
        }
        let cap_per_bucket = bw_bpns * self.bucket_ns as f64;
        let mut remaining = bytes;
        let first_bucket = start.as_nanos() / self.bucket_ns;
        let mut bucket = first_bucket;
        // Fractional headroom of the first bucket: the transfer only
        // occupies the part of the bucket after `start`.
        let mut first_fraction =
            1.0 - (start.as_nanos() % self.bucket_ns) as f64 / self.bucket_ns as f64;
        // Time this op's own bytes take at rated bandwidth (accumulated
        // across buckets): the floor below which no finish can fall.
        let mut own_ns = 0.0f64;
        let finish;
        loop {
            let cap = cap_per_bucket * first_fraction;
            first_fraction = 1.0;
            let used = self.used.entry((resource, bucket)).or_insert(0.0);
            let avail = (cap - *used).max(0.0);
            if remaining <= avail {
                *used += remaining;
                own_ns += remaining / bw_bpns;
                // Two bounds on the completion instant: the op's own
                // serial transfer time from `start`, and the FIFO position
                // implied by everything reserved in this bucket.
                let own_finish = start.as_nanos() + own_ns.ceil() as u64;
                let consumed_fraction = (*used / cap_per_bucket).min(1.0);
                let fifo_finish = bucket * self.bucket_ns
                    + (consumed_fraction * self.bucket_ns as f64).ceil() as u64;
                finish = SimTime(own_finish.max(fifo_finish).max(start.as_nanos()));
                break;
            }
            *used += avail;
            remaining -= avail;
            own_ns += avail / bw_bpns;
            bucket += 1;
        }
        // Charge the overlap: every bucket this transfer touched gains
        // one accessor, and the resource's peak concurrent-accessor
        // count is the contention actually experienced.
        let mut peak = 0u32;
        for b in first_bucket..=bucket {
            let n = self.accessors.entry((resource, b)).or_insert(0);
            *n += 1;
            peak = peak.max(*n);
        }
        let st = self.stats.entry(resource).or_default();
        st.bytes += bytes;
        st.busy += finish - start;
        st.reservations += 1;
        st.peak_overlap = st.peak_overlap.max(peak);
        finish
    }

    /// Statistics for one resource (zeroes if never used).
    pub fn stats(&self, resource: ResourceKey) -> ResourceStats {
        self.stats.get(&resource).copied().unwrap_or_default()
    }

    /// Fraction of a resource's bandwidth consumed over `[0, horizon)`.
    pub fn utilization(&self, resource: ResourceKey, bw_bpns: f64, horizon: SimDuration) -> f64 {
        if horizon == SimDuration::ZERO || bw_bpns <= 0.0 {
            return 0.0;
        }
        let bytes = self.stats(resource).bytes;
        (bytes / (bw_bpns * horizon.as_nanos_f64())).min(1.0)
    }

    /// Clears all reservations and statistics.
    pub fn reset(&mut self) {
        self.used.clear();
        self.accessors.clear();
        self.stats.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DEV: ResourceKey = ResourceKey::Mem(MemDeviceId(0));

    #[test]
    fn uncontended_transfer_finishes_at_rated_bandwidth() {
        let mut ledger = BandwidthLedger::new(1_000);
        // 10 GB/s, 10_000 bytes → 1_000 ns.
        let finish = ledger.reserve(DEV, SimTime(0), 10_000.0, 10.0);
        assert_eq!(finish, SimTime(1_000));
    }

    #[test]
    fn second_flow_queues_behind_first() {
        let mut ledger = BandwidthLedger::new(1_000);
        let f1 = ledger.reserve(DEV, SimTime(0), 10_000.0, 10.0);
        let f2 = ledger.reserve(DEV, SimTime(0), 10_000.0, 10.0);
        assert_eq!(f1, SimTime(1_000));
        // Second transfer finds the first bucket full and lands in the next.
        assert_eq!(f2, SimTime(2_000));
    }

    #[test]
    fn disjoint_resources_do_not_contend() {
        let mut ledger = BandwidthLedger::new(1_000);
        let other = ResourceKey::Mem(MemDeviceId(1));
        let f1 = ledger.reserve(DEV, SimTime(0), 10_000.0, 10.0);
        let f2 = ledger.reserve(other, SimTime(0), 10_000.0, 10.0);
        assert_eq!(f1, f2);
    }

    #[test]
    fn mid_bucket_start_has_partial_headroom() {
        let mut ledger = BandwidthLedger::new(1_000);
        // Start halfway into a bucket: only half the bucket's capacity
        // remains, so a 10_000-byte transfer at 10 B/ns spills over.
        let finish = ledger.reserve(DEV, SimTime(500), 10_000.0, 10.0);
        assert!(finish > SimTime(1_000));
        assert!(finish <= SimTime(2_000));
    }

    #[test]
    fn zero_bytes_is_instant() {
        let mut ledger = BandwidthLedger::new(1_000);
        assert_eq!(ledger.reserve(DEV, SimTime(42), 0.0, 10.0), SimTime(42));
    }

    #[test]
    fn infinite_bandwidth_is_instant() {
        let mut ledger = BandwidthLedger::new(1_000);
        assert_eq!(
            ledger.reserve(DEV, SimTime(42), 1e9, f64::INFINITY),
            SimTime(42)
        );
    }

    #[test]
    fn stats_accumulate() {
        let mut ledger = BandwidthLedger::new(1_000);
        ledger.reserve(DEV, SimTime(0), 5_000.0, 10.0);
        ledger.reserve(DEV, SimTime(0), 5_000.0, 10.0);
        let st = ledger.stats(DEV);
        assert_eq!(st.bytes, 10_000.0);
        assert_eq!(st.reservations, 2);
        assert!(st.busy > SimDuration::ZERO);
    }

    #[test]
    fn utilization_is_bounded() {
        let mut ledger = BandwidthLedger::new(1_000);
        ledger.reserve(DEV, SimTime(0), 10_000.0, 10.0);
        let u = ledger.utilization(DEV, 10.0, SimDuration::from_nanos(2_000));
        assert!((u - 0.5).abs() < 1e-9, "expected 50% utilization, got {u}");
        assert_eq!(ledger.utilization(DEV, 10.0, SimDuration::ZERO), 0.0);
    }

    #[test]
    fn reset_clears_reservations() {
        let mut ledger = BandwidthLedger::new(1_000);
        ledger.reserve(DEV, SimTime(0), 10_000.0, 10.0);
        ledger.reset();
        let finish = ledger.reserve(DEV, SimTime(0), 10_000.0, 10.0);
        assert_eq!(finish, SimTime(1_000));
        assert_eq!(ledger.stats(DEV).reservations, 1);
    }

    #[test]
    fn peak_overlap_counts_concurrent_accessors() {
        let mut ledger = BandwidthLedger::new(1_000);
        // Three small transfers share the first bucket.
        for _ in 0..3 {
            ledger.reserve(DEV, SimTime(0), 100.0, 10.0);
        }
        // A fourth lands in a later, empty window.
        ledger.reserve(DEV, SimTime(50_000), 100.0, 10.0);
        assert_eq!(ledger.stats(DEV).peak_overlap, 3);
    }

    #[test]
    fn many_flows_slow_down_linearly() {
        let mut ledger = BandwidthLedger::new(1_000);
        let mut last = SimTime(0);
        for _ in 0..8 {
            last = ledger.reserve(DEV, SimTime(0), 10_000.0, 10.0);
        }
        // Eight serialized 1_000 ns transfers → 8_000 ns.
        assert_eq!(last, SimTime(8_000));
    }
}

