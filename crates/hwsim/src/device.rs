//! Memory-device models: one per row of the paper's Table 1.
//!
//! Table 1 ("Memory device properties as seen from a CPU") characterizes
//! each device by bandwidth, latency, access granularity, attachment point,
//! synchronous-access capability, and persistence. We turn each row into a
//! calibrated quantitative model. Absolute numbers follow public
//! measurements (Intel/CXL consortium figures, PMem and NVMe datasheets);
//! what the experiments rely on — and what we assert in tests — are the
//! *orderings and ratios* Table 1 expresses with `++`/`--` symbols.

use crate::time::SimDuration;

/// The device classes of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MemDeviceKind {
    /// On-die SRAM cache (modelled as a scratchpad the runtime can target).
    Cache,
    /// High-bandwidth memory stacked on the package (CPU- or GPU-attached).
    Hbm,
    /// Plain DDR DRAM on the local socket.
    Dram,
    /// GDDR attached to a GPU; fast and local *to the GPU*.
    Gddr,
    /// Byte-addressable persistent memory (Optane-class) on the memory bus.
    Pmem,
    /// DRAM behind a CXL.mem expander (PCIe-attached, cache-coherent).
    CxlDram,
    /// Network-attached disaggregated memory (RDMA far memory).
    FarMemory,
    /// NVMe solid-state storage.
    Ssd,
    /// Rotational storage.
    Hdd,
}

impl MemDeviceKind {
    /// All kinds, in Table 1 row order (GDDR inserted after DRAM; the paper
    /// introduces it in Figure 3 rather than Table 1).
    pub const ALL: [MemDeviceKind; 9] = [
        MemDeviceKind::Cache,
        MemDeviceKind::Hbm,
        MemDeviceKind::Dram,
        MemDeviceKind::Gddr,
        MemDeviceKind::Pmem,
        MemDeviceKind::CxlDram,
        MemDeviceKind::FarMemory,
        MemDeviceKind::Ssd,
        MemDeviceKind::Hdd,
    ];

    /// The Table 1 row order without GDDR (exactly the paper's rows).
    pub const TABLE1: [MemDeviceKind; 8] = [
        MemDeviceKind::Cache,
        MemDeviceKind::Hbm,
        MemDeviceKind::Dram,
        MemDeviceKind::Pmem,
        MemDeviceKind::CxlDram,
        MemDeviceKind::FarMemory,
        MemDeviceKind::Ssd,
        MemDeviceKind::Hdd,
    ];

    /// Human-readable name matching the paper's table.
    pub fn name(self) -> &'static str {
        match self {
            MemDeviceKind::Cache => "Cache",
            MemDeviceKind::Hbm => "HBM",
            MemDeviceKind::Dram => "DRAM",
            MemDeviceKind::Gddr => "GDDR",
            MemDeviceKind::Pmem => "PMem",
            MemDeviceKind::CxlDram => "CXL-DRAM",
            MemDeviceKind::FarMemory => "Disagg. Mem.",
            MemDeviceKind::Ssd => "SSD",
            MemDeviceKind::Hdd => "HDD",
        }
    }
}

/// How a device is physically attached, as listed in Table 1's
/// "Attached" column. Attachment determines which interconnect hops an
/// access must traverse and whether loads/stores can be synchronous.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Attachment {
    /// Directly on the CPU memory bus (cache, HBM, DRAM, PMem).
    Cpu,
    /// On a GPU's local memory bus.
    Gpu,
    /// Behind PCIe/CXL (CXL-DRAM, SSD).
    Pcie,
    /// Behind the NIC (disaggregated far memory).
    Nic,
    /// Behind SATA (HDD).
    Sata,
}

impl Attachment {
    /// Name used when printing Table 1.
    pub fn name(self) -> &'static str {
        match self {
            Attachment::Cpu => "CPU",
            Attachment::Gpu => "GPU",
            Attachment::Pcie => "PCIe",
            Attachment::Nic => "NIC",
            Attachment::Sata => "SATA",
        }
    }
}

/// Whether synchronous (load/store) access is possible — Table 1's "Sync"
/// column, which has three states: always, configurable, and never.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SyncSupport {
    /// Plain loads/stores complete synchronously (near memory).
    Sync,
    /// Either mode; the interface choice is up to the runtime (CXL memory).
    Either,
    /// Only asynchronous/block access makes sense (far memory, storage).
    AsyncOnly,
}

impl SyncSupport {
    /// Returns true if the device can serve synchronous loads/stores.
    pub fn allows_sync(self) -> bool {
        !matches!(self, SyncSupport::AsyncOnly)
    }

    /// Symbol used when printing Table 1 (matches the paper's glyphs).
    pub fn symbol(self) -> &'static str {
        match self {
            SyncSupport::Sync => "yes",
            SyncSupport::Either => "yes/no",
            SyncSupport::AsyncOnly => "no",
        }
    }
}

/// Is an access random or sequential? Granularity rounding penalizes random
/// small accesses on coarse-grained devices; sequential streams amortize
/// per-access latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessPattern {
    /// Independent accesses; each pays full latency and granularity rounding.
    Random,
    /// Streaming accesses; latency amortized, bandwidth-bound.
    Sequential,
}

/// Read or write. Some devices (PMem, SSD) are markedly asymmetric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessOp {
    /// A read access.
    Read,
    /// A write access.
    Write,
}

/// A calibrated memory-device model: one Table 1 row instance.
#[derive(Debug, Clone)]
pub struct MemDeviceModel {
    /// Which Table 1 row this device instantiates.
    pub kind: MemDeviceKind,
    /// Device read latency for one access, in nanoseconds (device only; the
    /// topology adds interconnect hops on top).
    pub read_lat_ns: f64,
    /// Device write latency for one access, in nanoseconds.
    pub write_lat_ns: f64,
    /// Read bandwidth in bytes per nanosecond (== GB/s).
    pub read_bw_bpns: f64,
    /// Write bandwidth in bytes per nanosecond (== GB/s).
    pub write_bw_bpns: f64,
    /// Access granularity in bytes (Table 1's "Gran." column): the smallest
    /// unit the device transfers; smaller accesses are rounded up.
    pub granularity: u64,
    /// Physical attachment point.
    pub attachment: Attachment,
    /// Whether synchronous loads/stores are possible.
    pub sync: SyncSupport,
    /// Whether contents survive power loss (Table 1's "Persist." column).
    pub persistent: bool,
    /// Whether the device participates in the cache-coherence domain.
    pub coherent: bool,
    /// Usable capacity in bytes.
    pub capacity: u64,
    /// Acquisition cost per GiB in dollars; drives the pooling-economics
    /// experiment (E11).
    pub cost_per_gib: f64,
}

const KIB: u64 = 1024;
const MIB: u64 = 1024 * KIB;
const GIB: u64 = 1024 * MIB;
const TIB: u64 = 1024 * GIB;

impl MemDeviceModel {
    /// Returns the calibrated default model for a device kind.
    ///
    /// Calibration sources: CXL consortium and Pond (ASPLOS '23) for
    /// CXL-DRAM (roughly NUMA-remote latency, x8 PCIe 5.0 bandwidth);
    /// Optane DC characterization for PMem (256 B granularity, asymmetric
    /// read/write); typical DDR5/HBM2e/GDDR6 datasheet figures; NVMe and
    /// 7200-rpm HDD datasheets for storage.
    pub fn preset(kind: MemDeviceKind) -> MemDeviceModel {
        match kind {
            MemDeviceKind::Cache => MemDeviceModel {
                kind,
                read_lat_ns: 10.0,
                write_lat_ns: 10.0,
                read_bw_bpns: 400.0,
                write_bw_bpns: 400.0,
                granularity: 1,
                attachment: Attachment::Cpu,
                sync: SyncSupport::Sync,
                persistent: false,
                coherent: true,
                capacity: 96 * MIB,
                cost_per_gib: 0.0, // Comes with the CPU; not separately purchasable.
            },
            MemDeviceKind::Hbm => MemDeviceModel {
                kind,
                read_lat_ns: 110.0,
                write_lat_ns: 110.0,
                read_bw_bpns: 800.0,
                write_bw_bpns: 800.0,
                granularity: 64,
                attachment: Attachment::Cpu,
                sync: SyncSupport::Sync,
                persistent: false,
                coherent: true,
                capacity: 16 * GIB,
                cost_per_gib: 25.0,
            },
            MemDeviceKind::Dram => MemDeviceModel {
                kind,
                read_lat_ns: 90.0,
                write_lat_ns: 90.0,
                read_bw_bpns: 100.0,
                write_bw_bpns: 100.0,
                granularity: 64,
                attachment: Attachment::Cpu,
                sync: SyncSupport::Sync,
                persistent: false,
                coherent: true,
                capacity: 256 * GIB,
                cost_per_gib: 4.0,
            },
            MemDeviceKind::Gddr => MemDeviceModel {
                kind,
                read_lat_ns: 120.0,
                write_lat_ns: 120.0,
                read_bw_bpns: 600.0,
                write_bw_bpns: 600.0,
                granularity: 64,
                attachment: Attachment::Gpu,
                sync: SyncSupport::Sync,
                persistent: false,
                coherent: false,
                capacity: 24 * GIB,
                cost_per_gib: 15.0,
            },
            MemDeviceKind::Pmem => MemDeviceModel {
                kind,
                read_lat_ns: 300.0,
                write_lat_ns: 450.0,
                read_bw_bpns: 8.0,
                write_bw_bpns: 3.0,
                granularity: 256,
                attachment: Attachment::Cpu,
                sync: SyncSupport::Sync,
                persistent: true,
                coherent: true,
                capacity: TIB,
                cost_per_gib: 2.0,
            },
            MemDeviceKind::CxlDram => MemDeviceModel {
                kind,
                read_lat_ns: 250.0,
                write_lat_ns: 250.0,
                read_bw_bpns: 30.0,
                write_bw_bpns: 30.0,
                granularity: 64,
                attachment: Attachment::Pcie,
                sync: SyncSupport::Either,
                persistent: false,
                coherent: true,
                capacity: 512 * GIB,
                cost_per_gib: 4.5,
            },
            MemDeviceKind::FarMemory => MemDeviceModel {
                kind,
                read_lat_ns: 2_000.0,
                write_lat_ns: 2_000.0,
                read_bw_bpns: 12.0,
                write_bw_bpns: 12.0,
                granularity: 256,
                attachment: Attachment::Nic,
                sync: SyncSupport::AsyncOnly,
                persistent: false,
                coherent: false,
                capacity: 4 * TIB,
                cost_per_gib: 3.0,
            },
            MemDeviceKind::Ssd => MemDeviceModel {
                kind,
                read_lat_ns: 80_000.0,
                write_lat_ns: 20_000.0,
                read_bw_bpns: 3.5,
                write_bw_bpns: 2.5,
                granularity: 4 * KIB,
                attachment: Attachment::Pcie,
                sync: SyncSupport::AsyncOnly,
                persistent: true,
                coherent: false,
                capacity: 8 * TIB,
                cost_per_gib: 0.10,
            },
            MemDeviceKind::Hdd => MemDeviceModel {
                kind,
                read_lat_ns: 4_000_000.0,
                write_lat_ns: 4_000_000.0,
                read_bw_bpns: 0.2,
                write_bw_bpns: 0.2,
                granularity: 4 * KIB,
                attachment: Attachment::Sata,
                sync: SyncSupport::AsyncOnly,
                persistent: true,
                coherent: false,
                capacity: 16 * TIB,
                cost_per_gib: 0.02,
            },
        }
    }

    /// Same preset with a different capacity (for building small test
    /// topologies whose capacity bounds are easy to exercise).
    pub fn preset_with_capacity(kind: MemDeviceKind, capacity: u64) -> MemDeviceModel {
        MemDeviceModel {
            capacity,
            ..MemDeviceModel::preset(kind)
        }
    }

    /// A persistent CXL expander (Table 1 marks CXL persistence "yes/no";
    /// this is the "yes" variant, e.g. a battery-backed or NV-DIMM device).
    pub fn cxl_persistent() -> MemDeviceModel {
        MemDeviceModel {
            persistent: true,
            write_lat_ns: 300.0,
            cost_per_gib: 5.5,
            ..MemDeviceModel::preset(MemDeviceKind::CxlDram)
        }
    }

    /// Device latency for a single access, before interconnect hops.
    pub fn latency(&self, op: AccessOp) -> f64 {
        match op {
            AccessOp::Read => self.read_lat_ns,
            AccessOp::Write => self.write_lat_ns,
        }
    }

    /// Device bandwidth for an operation, in bytes per nanosecond.
    pub fn bandwidth(&self, op: AccessOp) -> f64 {
        match op {
            AccessOp::Read => self.read_bw_bpns,
            AccessOp::Write => self.write_bw_bpns,
        }
    }

    /// Bytes actually transferred for a logical access of `bytes`, after
    /// rounding up to the device granularity.
    pub fn effective_bytes(&self, bytes: u64) -> u64 {
        if bytes == 0 {
            return 0;
        }
        bytes.div_ceil(self.granularity) * self.granularity
    }

    /// Uncontended cost of one access at the device itself.
    ///
    /// Random accesses pay full latency plus the (granularity-rounded)
    /// transfer; sequential accesses amortize latency over the stream and
    /// are bandwidth-bound, paying latency once.
    pub fn access_cost(&self, bytes: u64, op: AccessOp, pattern: AccessPattern) -> SimDuration {
        if bytes == 0 {
            return SimDuration::ZERO;
        }
        let eff = self.effective_bytes(bytes) as f64;
        let transfer = eff / self.bandwidth(op);
        let ns = match pattern {
            AccessPattern::Random => {
                // Each access unit pays device latency independently. The
                // unit is the device granularity, floored at a cache line:
                // byte-granular devices still move whole lines per access.
                let unit = self.granularity.max(64) as f64;
                let accesses = (eff / unit).max(1.0).ceil();
                accesses * self.latency(op) + transfer
            }
            AccessPattern::Sequential => self.latency(op) + transfer,
        };
        SimDuration::from_nanos_f64(ns)
    }

    /// Measured-style bandwidth for a large sequential transfer (bytes/ns),
    /// used by the Table 1 experiment to report observable bandwidth.
    pub fn observed_bandwidth(&self, op: AccessOp, bytes: u64) -> f64 {
        let cost = self.access_cost(bytes, op, AccessPattern::Sequential);
        if cost == SimDuration::ZERO {
            return 0.0;
        }
        bytes as f64 / cost.as_nanos_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lat(kind: MemDeviceKind) -> f64 {
        MemDeviceModel::preset(kind).read_lat_ns
    }

    fn bw(kind: MemDeviceKind) -> f64 {
        MemDeviceModel::preset(kind).read_bw_bpns
    }

    #[test]
    fn table1_latency_ordering_holds() {
        // Table 1's "Lat." column: Cache ++, HBM/DRAM +, PMem/CXL o,
        // far memory -, SSD -, HDD --.
        use MemDeviceKind::*;
        assert!(lat(Cache) < lat(Dram));
        assert!(lat(Dram) <= lat(Hbm));
        assert!(lat(Hbm) < lat(Pmem));
        assert!(lat(CxlDram) < lat(FarMemory));
        assert!(lat(Pmem) < lat(FarMemory));
        assert!(lat(FarMemory) < lat(Ssd));
        assert!(lat(Ssd) < lat(Hdd));
    }

    #[test]
    fn table1_bandwidth_ordering_holds() {
        // Table 1's "Bw." column: Cache/HBM ++, DRAM +, PMem/CXL/far o,
        // SSD -, HDD --.
        use MemDeviceKind::*;
        assert!(bw(Cache) > bw(Dram));
        assert!(bw(Hbm) > bw(Dram));
        assert!(bw(Dram) > bw(Pmem));
        assert!(bw(CxlDram) > bw(Ssd));
        assert!(bw(Ssd) > bw(Hdd));
    }

    #[test]
    fn table1_persistence_flags_match() {
        use MemDeviceKind::*;
        assert!(!MemDeviceModel::preset(Cache).persistent);
        assert!(!MemDeviceModel::preset(Hbm).persistent);
        assert!(!MemDeviceModel::preset(Dram).persistent);
        assert!(MemDeviceModel::preset(Pmem).persistent);
        assert!(MemDeviceModel::preset(Ssd).persistent);
        assert!(MemDeviceModel::preset(Hdd).persistent);
        // CXL is "yes/no": the default is volatile, the variant persistent.
        assert!(!MemDeviceModel::preset(CxlDram).persistent);
        assert!(MemDeviceModel::cxl_persistent().persistent);
    }

    #[test]
    fn table1_granularities_match() {
        use MemDeviceKind::*;
        assert_eq!(MemDeviceModel::preset(Cache).granularity, 1);
        assert_eq!(MemDeviceModel::preset(Hbm).granularity, 64);
        assert_eq!(MemDeviceModel::preset(Dram).granularity, 64);
        assert_eq!(MemDeviceModel::preset(Pmem).granularity, 256);
        assert_eq!(MemDeviceModel::preset(CxlDram).granularity, 64);
        assert_eq!(MemDeviceModel::preset(Ssd).granularity, 4096);
        assert_eq!(MemDeviceModel::preset(Hdd).granularity, 4096);
    }

    #[test]
    fn table1_sync_column_matches() {
        use MemDeviceKind::*;
        assert_eq!(MemDeviceModel::preset(Dram).sync, SyncSupport::Sync);
        assert_eq!(MemDeviceModel::preset(CxlDram).sync, SyncSupport::Either);
        assert_eq!(MemDeviceModel::preset(FarMemory).sync, SyncSupport::AsyncOnly);
        assert!(MemDeviceModel::preset(CxlDram).sync.allows_sync());
        assert!(!MemDeviceModel::preset(Ssd).sync.allows_sync());
    }

    #[test]
    fn effective_bytes_rounds_to_granularity() {
        let pmem = MemDeviceModel::preset(MemDeviceKind::Pmem);
        assert_eq!(pmem.effective_bytes(0), 0);
        assert_eq!(pmem.effective_bytes(1), 256);
        assert_eq!(pmem.effective_bytes(256), 256);
        assert_eq!(pmem.effective_bytes(257), 512);
    }

    #[test]
    fn zero_byte_access_is_free() {
        let dram = MemDeviceModel::preset(MemDeviceKind::Dram);
        assert_eq!(
            dram.access_cost(0, AccessOp::Read, AccessPattern::Random),
            SimDuration::ZERO
        );
    }

    #[test]
    fn sequential_beats_random_for_bulk() {
        let dram = MemDeviceModel::preset(MemDeviceKind::Dram);
        let seq = dram.access_cost(1 << 20, AccessOp::Read, AccessPattern::Sequential);
        let rnd = dram.access_cost(1 << 20, AccessOp::Read, AccessPattern::Random);
        assert!(
            rnd.as_nanos() > 10 * seq.as_nanos(),
            "random {rnd} should dwarf sequential {seq}"
        );
    }

    #[test]
    fn pmem_writes_cost_more_than_reads() {
        let pmem = MemDeviceModel::preset(MemDeviceKind::Pmem);
        let r = pmem.access_cost(1 << 20, AccessOp::Read, AccessPattern::Sequential);
        let w = pmem.access_cost(1 << 20, AccessOp::Write, AccessPattern::Sequential);
        assert!(w > r);
    }

    #[test]
    fn observed_bandwidth_approaches_rated_for_large_transfers() {
        let dram = MemDeviceModel::preset(MemDeviceKind::Dram);
        let obs = dram.observed_bandwidth(AccessOp::Read, 1 << 30);
        assert!((obs - dram.read_bw_bpns).abs() / dram.read_bw_bpns < 0.01);
    }

    #[test]
    fn small_random_access_latency_dominated() {
        let far = MemDeviceModel::preset(MemDeviceKind::FarMemory);
        let c = far.access_cost(8, AccessOp::Read, AccessPattern::Random);
        // One 8-byte read rounds to one 256 B granule: latency + ~21 ns.
        assert!(c.as_nanos() >= 2_000);
        assert!(c.as_nanos() < 2_100);
    }

    #[test]
    fn storage_costs_reflect_capacity_tiering() {
        use MemDeviceKind::*;
        assert!(MemDeviceModel::preset(Dram).cost_per_gib > MemDeviceModel::preset(Ssd).cost_per_gib);
        assert!(MemDeviceModel::preset(Ssd).cost_per_gib > MemDeviceModel::preset(Hdd).cost_per_gib);
    }
}
