//! Compute-device models.
//!
//! The paper's Figure 1 pools CPUs, GPUs, TPUs, and FPGAs behind a runtime
//! system. For placement and scheduling, what matters about a compute
//! device is (a) how fast it executes a given class of work, (b) how many
//! concurrent tasks it can host, and (c) which memories are *local* to it —
//! the crux of Figure 3, where the "fast and local" region maps to DRAM for
//! a CPU but GDDR for a GPU.

use crate::ids::MemDeviceId;
use crate::time::SimDuration;

/// The classes of compute devices in the disaggregated pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ComputeKind {
    /// General-purpose CPU.
    Cpu,
    /// Throughput-oriented GPU.
    Gpu,
    /// Matrix-multiply accelerator.
    Tpu,
    /// Reconfigurable fabric.
    Fpga,
    /// SmartNIC / data processing unit (near-network compute).
    Dpu,
}

impl ComputeKind {
    /// All compute kinds.
    pub const ALL: [ComputeKind; 5] = [
        ComputeKind::Cpu,
        ComputeKind::Gpu,
        ComputeKind::Tpu,
        ComputeKind::Fpga,
        ComputeKind::Dpu,
    ];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            ComputeKind::Cpu => "CPU",
            ComputeKind::Gpu => "GPU",
            ComputeKind::Tpu => "TPU",
            ComputeKind::Fpga => "FPGA",
            ComputeKind::Dpu => "DPU",
        }
    }
}

/// The class of work a task performs, used to pick the per-element cost on
/// a given compute device. Mirrors the workloads of the paper's Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkClass {
    /// Pointer-chasing / branchy scalar code (DBMS operators, parsing).
    Scalar,
    /// Data-parallel elementwise work (filters, transforms, codecs).
    Vector,
    /// Dense linear algebra (ML training/inference).
    Tensor,
    /// Cryptographic / bit-level transforms.
    Crypto,
}

/// A calibrated compute-device model.
#[derive(Debug, Clone)]
pub struct ComputeModel {
    /// Device class.
    pub kind: ComputeKind,
    /// Number of tasks the device can execute concurrently without slowdown
    /// (cores for a CPU, SM groups for a GPU, ...).
    pub slots: u32,
    /// Per-element execution cost in nanoseconds for each work class:
    /// `[Scalar, Vector, Tensor, Crypto]`.
    pub ns_per_elem: [f64; 4],
    /// Memory devices that are *local* to this compute device (attached to
    /// the same socket/package). Filled in by the topology builder.
    pub local_mem: Vec<MemDeviceId>,
    /// Fixed cost to launch a task on this device (kernel-launch /
    /// reconfiguration overhead), in nanoseconds.
    pub launch_overhead_ns: f64,
}

impl ComputeModel {
    /// Returns the calibrated default model for a compute kind.
    ///
    /// The per-element costs encode *relative* strengths: GPUs/TPUs are an
    /// order of magnitude faster on data-parallel and tensor work but
    /// slower and launch-heavy for scalar work; DPUs are modest but sit
    /// next to the network.
    pub fn preset(kind: ComputeKind) -> ComputeModel {
        match kind {
            ComputeKind::Cpu => ComputeModel {
                kind,
                slots: 32,
                ns_per_elem: [1.0, 0.25, 1.0, 2.0],
                local_mem: Vec::new(),
                launch_overhead_ns: 200.0,
            },
            ComputeKind::Gpu => ComputeModel {
                kind,
                slots: 8,
                ns_per_elem: [8.0, 0.02, 0.05, 0.5],
                local_mem: Vec::new(),
                launch_overhead_ns: 10_000.0,
            },
            ComputeKind::Tpu => ComputeModel {
                kind,
                slots: 4,
                ns_per_elem: [20.0, 0.10, 0.01, 4.0],
                local_mem: Vec::new(),
                launch_overhead_ns: 20_000.0,
            },
            ComputeKind::Fpga => ComputeModel {
                kind,
                slots: 4,
                ns_per_elem: [4.0, 0.05, 0.20, 0.05],
                local_mem: Vec::new(),
                launch_overhead_ns: 50_000.0,
            },
            ComputeKind::Dpu => ComputeModel {
                kind,
                slots: 8,
                ns_per_elem: [2.0, 0.50, 4.0, 0.8],
                local_mem: Vec::new(),
                launch_overhead_ns: 1_000.0,
            },
        }
    }

    /// Per-element cost in nanoseconds for a work class.
    pub fn elem_cost(&self, class: WorkClass) -> f64 {
        let idx = match class {
            WorkClass::Scalar => 0,
            WorkClass::Vector => 1,
            WorkClass::Tensor => 2,
            WorkClass::Crypto => 3,
        };
        self.ns_per_elem[idx]
    }

    /// Cost of executing `elems` elements of `class` work, plus launch
    /// overhead. Use for whole-task estimates; inline work inside a
    /// running task uses [`ComputeModel::work_cost`].
    pub fn exec_cost(&self, class: WorkClass, elems: u64) -> SimDuration {
        SimDuration::from_nanos_f64(self.launch_overhead_ns + self.elem_cost(class) * elems as f64)
    }

    /// Cost of `elems` elements of `class` work with no launch overhead
    /// (the task is already running on the device).
    pub fn work_cost(&self, class: WorkClass, elems: u64) -> SimDuration {
        SimDuration::from_nanos_f64(self.elem_cost(class) * elems as f64)
    }

    /// True if the given memory device is local to this compute device.
    pub fn is_local(&self, mem: MemDeviceId) -> bool {
        self.local_mem.contains(&mem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_beats_cpu_on_vector_work() {
        let cpu = ComputeModel::preset(ComputeKind::Cpu);
        let gpu = ComputeModel::preset(ComputeKind::Gpu);
        assert!(gpu.elem_cost(WorkClass::Vector) < cpu.elem_cost(WorkClass::Vector));
        assert!(gpu.elem_cost(WorkClass::Tensor) < cpu.elem_cost(WorkClass::Tensor));
    }

    #[test]
    fn cpu_beats_gpu_on_scalar_work() {
        let cpu = ComputeModel::preset(ComputeKind::Cpu);
        let gpu = ComputeModel::preset(ComputeKind::Gpu);
        assert!(cpu.elem_cost(WorkClass::Scalar) < gpu.elem_cost(WorkClass::Scalar));
    }

    #[test]
    fn tpu_dominates_tensor_work() {
        let best = ComputeKind::ALL
            .iter()
            .map(|&k| (k, ComputeModel::preset(k).elem_cost(WorkClass::Tensor)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap()
            .0;
        assert_eq!(best, ComputeKind::Tpu);
    }

    #[test]
    fn fpga_dominates_crypto_work() {
        let best = ComputeKind::ALL
            .iter()
            .map(|&k| (k, ComputeModel::preset(k).elem_cost(WorkClass::Crypto)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap()
            .0;
        assert_eq!(best, ComputeKind::Fpga);
    }

    #[test]
    fn exec_cost_includes_launch_overhead() {
        let gpu = ComputeModel::preset(ComputeKind::Gpu);
        let zero = gpu.exec_cost(WorkClass::Vector, 0);
        assert_eq!(zero.as_nanos(), 10_000);
        let some = gpu.exec_cost(WorkClass::Vector, 1_000_000);
        assert!(some > zero);
    }

    #[test]
    fn accelerators_pay_higher_launch_overhead_than_cpu() {
        let cpu = ComputeModel::preset(ComputeKind::Cpu).launch_overhead_ns;
        for kind in [ComputeKind::Gpu, ComputeKind::Tpu, ComputeKind::Fpga] {
            assert!(ComputeModel::preset(kind).launch_overhead_ns > cpu);
        }
    }

    #[test]
    fn locality_checks_use_topology_fill_in() {
        let mut cpu = ComputeModel::preset(ComputeKind::Cpu);
        assert!(!cpu.is_local(MemDeviceId(0)));
        cpu.local_mem.push(MemDeviceId(0));
        assert!(cpu.is_local(MemDeviceId(0)));
        assert!(!cpu.is_local(MemDeviceId(1)));
    }
}
