//! Per-tenant memory-quota admission.
//!
//! The serving layer decides admission *before* handing the batch to
//! the executor, using the same footprint predictor the runtime's own
//! admission waves charge ([`disagg_core::Runtime::predicted_footprint`])
//! plus a calibrated per-template service-time estimate. Decisions are
//! therefore causal (made in arrival order, from information available
//! at the arrival instant) and independent of shard count — a rejected
//! request is rejected identically on every execution.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use disagg_hwsim::time::{SimDuration, SimTime};

/// Tracks each tenant's outstanding (admitted but not yet estimated to
/// have finished) memory footprint against its quota.
#[derive(Debug)]
pub struct QuotaTracker {
    /// Per-tenant quota in bytes (`u64::MAX` = unlimited).
    quotas: Vec<u64>,
    /// Per-tenant outstanding predicted bytes.
    outstanding: Vec<u64>,
    /// Per-tenant count of in-flight admitted requests — the queue-depth
    /// signal deadline shedding reads.
    depth: Vec<usize>,
    /// Admitted requests still in flight: (estimated finish, tenant,
    /// bytes), popped as the arrival clock passes their finish.
    inflight: BinaryHeap<Reverse<(SimTime, usize, u64)>>,
}

impl QuotaTracker {
    /// A tracker for `tenants` tenants, all starting at `quota` bytes
    /// (`None` = unlimited).
    pub fn new(tenants: usize, quota: Option<u64>) -> QuotaTracker {
        QuotaTracker {
            quotas: vec![quota.unwrap_or(u64::MAX); tenants],
            outstanding: vec![0; tenants],
            depth: vec![0; tenants],
            inflight: BinaryHeap::new(),
        }
    }

    /// Overrides one tenant's quota.
    pub fn set_quota(&mut self, tenant: usize, quota: u64) {
        if let Some(q) = self.quotas.get_mut(tenant) {
            *q = quota;
        }
    }

    /// The quota currently applied to a tenant.
    pub fn quota(&self, tenant: usize) -> u64 {
        self.quotas.get(tenant).copied().unwrap_or(u64::MAX)
    }

    /// Releases every in-flight request whose estimated finish is at or
    /// before `now`.
    pub fn release_until(&mut self, now: SimTime) {
        while let Some(&Reverse((finish, tenant, bytes))) = self.inflight.peek() {
            if finish > now {
                break;
            }
            self.inflight.pop();
            self.outstanding[tenant] = self.outstanding[tenant].saturating_sub(bytes);
            self.depth[tenant] = self.depth[tenant].saturating_sub(1);
        }
    }

    /// Admits or rejects a request arriving at `now`: admitted when the
    /// tenant's outstanding bytes plus this request stay within quota.
    /// On admission the request occupies the tenant's quota until
    /// `now + est_service`.
    pub fn admit(
        &mut self,
        tenant: usize,
        bytes: u64,
        now: SimTime,
        est_service: SimDuration,
    ) -> bool {
        self.release_until(now);
        let used = self.outstanding[tenant];
        if used.saturating_add(bytes) > self.quotas[tenant] {
            return false;
        }
        self.outstanding[tenant] = used + bytes;
        self.depth[tenant] += 1;
        self.inflight.push(Reverse((now + est_service, tenant, bytes)));
        true
    }

    /// A tenant's currently outstanding predicted bytes.
    pub fn outstanding(&self, tenant: usize) -> u64 {
        self.outstanding.get(tenant).copied().unwrap_or(0)
    }

    /// A tenant's current in-flight request count (admitted, not yet
    /// past its estimated finish). Call [`Self::release_until`] first to
    /// read the depth as of a given instant.
    pub fn inflight(&self, tenant: usize) -> usize {
        self.depth.get(tenant).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quota_rejects_over_budget_and_releases_on_finish() {
        let mut q = QuotaTracker::new(2, Some(100));
        let t0 = SimTime::ZERO;
        let svc = SimDuration::from_micros(10);
        assert!(q.admit(0, 60, t0, svc));
        assert!(!q.admit(0, 60, t0, svc), "second 60B request overflows tenant 0");
        assert!(q.admit(1, 60, t0, svc), "tenant 1 has its own budget");
        assert_eq!(q.outstanding(1), 60);
        // After the first requests' estimated finish, quota frees up.
        let later = t0 + SimDuration::from_micros(11);
        assert!(q.admit(0, 60, later, svc));
        assert_eq!(q.outstanding(1), 0, "tenant 1's request also finished by then");
    }

    #[test]
    fn unlimited_quota_admits_everything() {
        let mut q = QuotaTracker::new(1, None);
        let t0 = SimTime::ZERO;
        for i in 0..32 {
            assert!(q.admit(0, u64::MAX / 64, t0, SimDuration::from_nanos(i)));
        }
    }

    #[test]
    fn inflight_depth_tracks_admissions_and_releases() {
        let mut q = QuotaTracker::new(2, None);
        let svc = SimDuration::from_micros(10);
        assert_eq!(q.inflight(0), 0);
        assert!(q.admit(0, 10, SimTime::ZERO, svc));
        assert!(q.admit(0, 10, SimTime(1), svc));
        assert!(q.admit(1, 10, SimTime(2), svc));
        assert_eq!(q.inflight(0), 2);
        assert_eq!(q.inflight(1), 1);
        q.release_until(SimTime(10_000));
        assert_eq!(q.inflight(0), 1, "first request past its estimated finish");
        q.release_until(SimTime(20_000));
        assert_eq!(q.inflight(0), 0);
        assert_eq!(q.inflight(1), 0);
    }

    #[test]
    fn per_tenant_override_applies() {
        let mut q = QuotaTracker::new(2, Some(1000));
        q.set_quota(1, 10);
        assert!(q.admit(0, 500, SimTime::ZERO, SimDuration::ZERO));
        assert!(!q.admit(1, 500, SimTime::ZERO, SimDuration::ZERO));
        assert_eq!(q.quota(1), 10);
    }
}
