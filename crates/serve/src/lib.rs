//! # disagg-serve — open-loop request serving for the disagg runtime
//!
//! Every workload elsewhere in this repository is a pre-built DAG run
//! to completion. A production disaggregated runtime instead faces an
//! *open* stream of requests from many tenants — "disaggregation must
//! be evaluated against live application traffic, not beside it". This
//! crate puts that traffic in front of the sharded executor:
//!
//! - **Arrival processes** ([`ArrivalProcess`]): Poisson and bursty
//!   (two-phase MMPP) arrivals in virtual time, seeded via `SimRng`.
//! - **Tenant mix**: requests are attributed to tenants by a Zipf draw
//!   (`disagg_workloads::gen::Zipf`) — tenant 0 is the hottest.
//! - **Templates**: each tenant maps to a registered job template; a
//!   template instantiates a fresh DAG per request from a derived seed.
//! - **Admission** ([`QuotaTracker`]): per-tenant memory-pool quotas
//!   charged with the runtime's own footprint predictor and a
//!   calibrated service-time estimate; decisions are causal and
//!   identical at every shard count.
//! - **SLOs** ([`Slo`]): per-tenant p50/p99 sojourn targets in virtual
//!   time, extracted from `disagg-obs` log2 histograms.
//!
//! The whole pipeline is virtual-time-only: a seeded [`ServeConfig`]
//! produces a bit-for-bit identical [`ServeReport`] on every run.
//!
//! ```
//! use disagg_core::prelude::*;
//! use disagg_serve::{ArrivalProcess, ServeConfig, ServeLayer};
//!
//! let (topo, _ids) = disagg_hwsim::presets::single_server();
//! let mut rt = Runtime::new(topo, RuntimeConfig::default());
//!
//! let mut layer = ServeLayer::new();
//! layer.register("echo", |req| {
//!     let mut j = JobBuilder::new("echo");
//!     j.task(TaskSpec::new("work").work(WorkClass::Scalar, 10_000 + (req.seed % 1000)));
//!     j.build().unwrap()
//! });
//!
//! let cfg = ServeConfig {
//!     requests: 16,
//!     tenants: 2,
//!     arrivals: ArrivalProcess::Poisson { mean_gap: SimDuration::from_micros(5) },
//!     ..ServeConfig::default()
//! };
//! let report = layer.run(&mut rt, &cfg).unwrap();
//! assert_eq!(report.offered, 16);
//! assert_eq!(report.admitted + report.rejected, 16);
//! ```

pub mod admission;
pub mod arrival;
pub mod report;

pub use admission::QuotaTracker;
pub use arrival::ArrivalProcess;
pub use report::{RequestRecord, ServeReport, Slo, TenantStats, UtilSample, Verdict};

use disagg_core::report::RunReport;
use disagg_core::{Runtime, RuntimeConfig, RuntimeError, Submission};
use disagg_dataflow::job::JobSpec;
use disagg_hwsim::rng::SimRng;
use disagg_hwsim::time::{SimDuration, SimTime};
use disagg_hwsim::trace::TraceEvent;
use disagg_obs::Histogram;
use disagg_workloads::gen::Zipf;

/// Context handed to a job template when instantiating one request.
#[derive(Debug, Clone, Copy)]
pub struct Request {
    /// Position in the arrival sequence.
    pub index: usize,
    /// Issuing tenant (Zipf rank; 0 = hottest).
    pub tenant: usize,
    /// Arrival offset relative to the serving run's start.
    pub arrival: SimDuration,
    /// Per-request seed for sizing/body randomness inside the template.
    pub seed: u64,
}

/// Overload- and fault-aware serving controls, all deterministic in
/// virtual time. `None` on [`ServeConfig::control`] keeps the legacy
/// single-batch pipeline bit-for-bit unchanged.
///
/// The control plane splits the request stream into **epochs**: each
/// epoch's admitted jobs run as one submission, and at the epoch
/// boundary the layer reads the runtime's circuit-breaker state and the
/// epoch's per-tenant SLO outcomes to steer the next epoch (brownout).
/// Deadline shedding is per-arrival: a request whose completion
/// estimate — the calibrated service time inflated by the tenant's
/// in-flight queue depth — already misses its p99 SLO never enters the
/// system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControlPlane {
    /// Number of control epochs the request stream is split into
    /// (clamped to at least 1). More epochs react faster but batch
    /// less.
    pub epochs: usize,
    /// Shed requests whose completion estimate misses the tenant's p99
    /// SLO at arrival (no-op for tenants without an SLO).
    pub shed_deadlines: bool,
    /// Queue-depth sensitivity of the completion estimate: each
    /// in-flight request of the tenant inflates the estimate by this
    /// fraction of the calibrated service time.
    pub depth_factor: f64,
    /// Brownout trigger: at an epoch boundary a tenant switches to its
    /// degraded template when any breaker is open **or** the tenant's
    /// bad fraction (fast-failed or over-p99) in the closing epoch
    /// exceeded this threshold; it switches back when both clear.
    /// `None` disables brownout.
    pub brownout_bad_fraction: Option<f64>,
    /// Assumed service-time ratio of a tenant's degraded template
    /// relative to its primary. Deadline shedding degrades before it
    /// drops: a request whose full-template estimate misses its p99 is
    /// re-estimated at this ratio and admitted degraded if that fits.
    pub degraded_cost_ratio: f64,
}

impl Default for ControlPlane {
    fn default() -> ControlPlane {
        ControlPlane {
            epochs: 8,
            shed_deadlines: true,
            depth_factor: 0.5,
            brownout_bad_fraction: Some(0.25),
            degraded_cost_ratio: 0.25,
        }
    }
}

/// How one request left the serving loop (internal bookkeeping behind
/// [`Verdict`]; `Ran` becomes `Completed` once its finish is known).
#[derive(Clone, Copy)]
enum Fate {
    Rejected,
    Shed,
    Ran { degraded: bool },
    Failed { degraded: bool },
}

/// Describes one open-loop serving run.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// When requests arrive.
    pub arrivals: ArrivalProcess,
    /// How many requests the run offers.
    pub requests: usize,
    /// Number of tenants in the mix.
    pub tenants: usize,
    /// Zipf skew across tenants (0 = uniform, ~1 = classic).
    pub zipf_theta: f64,
    /// Root seed; everything downstream forks from it.
    pub seed: u64,
    /// Default per-tenant memory quota in bytes (`None` = unlimited).
    pub quota: Option<u64>,
    /// Per-tenant quota overrides as `(tenant, bytes)`.
    pub tenant_quotas: Vec<(usize, u64)>,
    /// Default per-tenant latency SLO (`None` = no SLO).
    pub slo: Option<Slo>,
    /// Per-tenant SLO overrides as `(tenant, slo)`.
    pub tenant_slos: Vec<(usize, Slo)>,
    /// Overload/fault controls; `None` keeps the legacy single-batch
    /// pipeline bit-for-bit unchanged.
    pub control: Option<ControlPlane>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            arrivals: ArrivalProcess::Poisson { mean_gap: SimDuration::from_micros(10) },
            requests: 64,
            tenants: 4,
            zipf_theta: 0.9,
            seed: 42,
            quota: None,
            tenant_quotas: Vec::new(),
            slo: None,
            tenant_slos: Vec::new(),
            control: None,
        }
    }
}

type TemplateFn = Box<dyn Fn(&Request) -> JobSpec>;

/// One registered template: the primary job builder plus an optional
/// degraded (brownout) variant serving cheaper answers under stress.
struct Template {
    name: String,
    make: TemplateFn,
    degraded: Option<TemplateFn>,
}

/// A registry of job templates plus the serving loop over them.
///
/// Tenant `t` is served by template `t % templates`, so one template
/// serves a uniform fleet and several templates make a heterogeneous
/// mix.
#[derive(Default)]
pub struct ServeLayer {
    templates: Vec<Template>,
}

impl ServeLayer {
    /// An empty registry.
    pub fn new() -> ServeLayer {
        ServeLayer { templates: Vec::new() }
    }

    /// Registers a job template under a name; returns `self` for
    /// chaining.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        template: impl Fn(&Request) -> JobSpec + 'static,
    ) -> &mut ServeLayer {
        self.templates.push(Template {
            name: name.into(),
            make: Box::new(template),
            degraded: None,
        });
        self
    }

    /// Attaches a degraded (brownout) variant to an already registered
    /// template: while a tenant is browned out, new requests
    /// instantiate this cheaper job instead of the primary one.
    ///
    /// # Panics
    ///
    /// Panics when no template named `name` is registered.
    pub fn register_degraded(
        &mut self,
        name: &str,
        template: impl Fn(&Request) -> JobSpec + 'static,
    ) -> &mut ServeLayer {
        let t = self
            .templates
            .iter_mut()
            .find(|t| t.name == name)
            .expect("register the primary template before its degraded variant");
        t.degraded = Some(Box::new(template));
        self
    }

    /// Number of registered templates.
    pub fn len(&self) -> usize {
        self.templates.len()
    }

    /// True when no template is registered.
    pub fn is_empty(&self) -> bool {
        self.templates.is_empty()
    }

    /// Template name serving a tenant.
    pub fn template_for(&self, tenant: usize) -> &str {
        &self.templates[tenant % self.templates.len()].name
    }

    /// Instantiates one request's job from the template serving
    /// `tenant` — what the serving loop does internally, exposed for
    /// calibration and tests.
    pub fn instantiate(&self, tenant: usize, req: &Request) -> JobSpec {
        (self.templates[tenant % self.templates.len()].make)(req)
    }

    /// Calibrates each template's service-time estimate: one
    /// representative request per template, run alone on a fresh
    /// single-shard runtime over a clone of `topo`-shaped hardware.
    /// Estimates feed quota admission only; measured latencies always
    /// come from the real run.
    fn calibrate(&self, rt: &Runtime, cfg: &ServeConfig) -> Vec<SimDuration> {
        let mut est = Vec::with_capacity(self.templates.len());
        for (ti, template) in self.templates.iter().enumerate() {
            let req = Request {
                index: 0,
                tenant: ti,
                arrival: SimDuration::ZERO,
                seed: SimRng::new(cfg.seed ^ ti as u64).next_u64(),
            };
            let mut probe = Runtime::new(rt.topology().clone(), RuntimeConfig::default());
            let makespan = probe
                .execute((template.make)(&req))
                .map(|r| r.makespan)
                .unwrap_or(SimDuration::ZERO);
            est.push(makespan);
        }
        est
    }

    /// Runs one open-loop serving pass: draws arrivals and the tenant
    /// mix, instantiates per-request DAGs, applies quota admission, and
    /// executes the admitted stream on `rt` with each request held to
    /// its arrival offset.
    ///
    /// # Panics
    ///
    /// Panics if no template is registered or `cfg.tenants == 0`.
    pub fn run(&self, rt: &mut Runtime, cfg: &ServeConfig) -> Result<ServeReport, RuntimeError> {
        assert!(!self.templates.is_empty(), "register at least one template");
        assert!(cfg.tenants > 0, "need at least one tenant");

        let mut rng = SimRng::new(cfg.seed);
        let offsets = cfg.arrivals.sample_offsets(cfg.requests, &mut rng.fork(0));
        let zipf = Zipf::new(cfg.tenants, cfg.zipf_theta);
        let mut tenant_rng = rng.fork(1);
        let mut seed_rng = rng.fork(2);

        // Draw the request stream.
        let mut requests = Vec::with_capacity(cfg.requests);
        for (index, &arrival) in offsets.iter().enumerate() {
            requests.push(Request {
                index,
                tenant: zipf.sample(&mut tenant_rng),
                arrival,
                seed: seed_rng.next_u64(),
            });
        }

        // Quota admission over the arrival sequence, using calibrated
        // service estimates and the runtime's own footprint predictor.
        let est_service = self.calibrate(rt, cfg);
        let mut quotas = QuotaTracker::new(cfg.tenants, cfg.quota);
        for &(tenant, bytes) in &cfg.tenant_quotas {
            quotas.set_quota(tenant, bytes);
        }

        // Utilization denominator: the admission-managed pool — the sum
        // of finite per-tenant quotas when any are configured, the
        // rack's total memory capacity otherwise. Measuring against the
        // managed pool keeps the curve legible: request footprints are
        // invisible against multi-TiB rack capacity. Snapshotted before
        // the run so `pool_at_start` reads pre-run residency.
        let quota_pool: u64 = (0..cfg.tenants)
            .map(|t| quotas.quota(t))
            .filter(|&q| q != u64::MAX)
            .sum();
        let pool_capacity: u64 = if quota_pool > 0 {
            quota_pool
        } else {
            rt.topology()
                .mem_ids()
                .map(|d| rt.manager().pool().capacity(d))
                .sum()
        };
        let pool_at_start: u64 = rt
            .topology()
            .mem_ids()
            .map(|d| rt.manager().pool().allocated(d))
            .sum();

        let t0 = rt.now();
        let cp = cfg.control;
        let epochs = cp.map_or(1, |c| c.epochs.max(1));
        let chunk_size = cfg.requests.div_ceil(epochs).max(1);
        let slo_for = |tenant: usize| -> Option<Slo> {
            cfg.tenant_slos
                .iter()
                .find(|(t, _)| *t == tenant)
                .map(|(_, s)| *s)
                .or(cfg.slo)
        };

        let mut fate: Vec<Fate> = vec![Fate::Rejected; cfg.requests];
        let mut finish_abs: Vec<SimTime> = vec![t0; cfg.requests];
        let mut browned: Vec<bool> = vec![false; cfg.tenants];
        let mut run_acc = RunReport::default();

        for chunk in requests.chunks(chunk_size) {
            // Admission over this epoch's arrivals, causal in arrival
            // order: deadline shedding first (a request whose completion
            // estimate already misses its p99 SLO never enters), then
            // quota admission; browned-out tenants instantiate their
            // degraded template.
            let epoch_start = rt.now();
            let mut jobs: Vec<JobSpec> = Vec::new();
            let mut offs: Vec<SimDuration> = Vec::new();
            let mut tags: Vec<(u64, u64)> = Vec::new();
            let mut epoch_slots: Vec<usize> = Vec::new();
            for req in chunk {
                let arrival_abs = t0 + req.arrival;
                let svc = est_service[req.tenant % est_service.len()];
                let template = &self.templates[req.tenant % self.templates.len()];
                let mut degrade = browned[req.tenant] && template.degraded.is_some();
                if let Some(c) = cp.filter(|c| c.shed_deadlines) {
                    if let Some(slo) = slo_for(req.tenant) {
                        quotas.release_until(arrival_abs);
                        let depth = quotas.inflight(req.tenant);
                        // Latency budget already burned waiting for this
                        // epoch: the request arrived at `arrival_abs` but
                        // is only being admitted now, at `epoch_start`.
                        // Under overload this lag, not the queue depth,
                        // is what makes a request hopeless.
                        let lag = if epoch_start > arrival_abs {
                            epoch_start - arrival_abs
                        } else {
                            SimDuration::ZERO
                        };
                        let est_at = |cost: f64| {
                            lag + SimDuration::from_nanos_f64(
                                cost * (1.0 + c.depth_factor * depth as f64),
                            )
                        };
                        if est_at(svc.as_nanos() as f64) > slo.p99 {
                            // Degrade before drop: a hopeless full
                            // request may still meet its deadline on
                            // the tenant's cheaper template.
                            let deg_cost =
                                svc.as_nanos() as f64 * c.degraded_cost_ratio;
                            if template.degraded.is_some()
                                && est_at(deg_cost) <= slo.p99
                            {
                                degrade = true;
                            } else {
                                fate[req.index] = Fate::Shed;
                                rt.annotate(TraceEvent::RequestShed {
                                    request: req.index as u64,
                                    tenant: req.tenant as u64,
                                    at: arrival_abs,
                                });
                                continue;
                            }
                        }
                    }
                }
                let job = if degrade {
                    (template.degraded.as_ref().expect("checked"))(req)
                } else {
                    (template.make)(req)
                };
                let footprint = Runtime::predicted_footprint(&job);
                if quotas.admit(req.tenant, footprint, arrival_abs, svc) {
                    if degrade {
                        rt.annotate(TraceEvent::RequestDegraded {
                            request: req.index as u64,
                            tenant: req.tenant as u64,
                            at: arrival_abs,
                        });
                    }
                    fate[req.index] = Fate::Ran { degraded: degrade };
                    epoch_slots.push(req.index);
                    jobs.push(job);
                    // Arrival offsets stay anchored at t0; an epoch
                    // starting after a request's arrival runs it
                    // immediately (the request was ready, batching was
                    // the gate).
                    offs.push(if arrival_abs > epoch_start {
                        arrival_abs - epoch_start
                    } else {
                        SimDuration::ZERO
                    });
                    tags.push((req.index as u64, req.tenant as u64));
                } else {
                    fate[req.index] = Fate::Rejected;
                }
            }
            if jobs.is_empty() {
                continue;
            }

            // Execute the epoch; runtime-level admission (watermark
            // waves) still applies underneath the quotas.
            let run: RunReport = rt.execute(
                Submission::batch(jobs).arrivals(offs).requests(tags),
            )?;

            // Map the epoch's requests back to their jobs: the executor
            // hands out sequential JobIds in submission order. Jobs that
            // failed fast may have run no task at all, so the base is
            // the minimum over completed *and* failed jobs.
            let base = run
                .tasks
                .iter()
                .map(|t| t.job.0)
                .chain(run.failed_jobs.iter().map(|f| f.job.0))
                .min()
                .unwrap_or(0);
            for t in &run.tasks {
                if let Some(&ri) = epoch_slots.get((t.job.0 - base) as usize) {
                    finish_abs[ri] = finish_abs[ri].max(t.finish);
                }
            }
            for f in &run.failed_jobs {
                if let Some(&ri) = epoch_slots.get((f.job.0 - base) as usize) {
                    let degraded = matches!(fate[ri], Fate::Ran { degraded: true });
                    fate[ri] = Fate::Failed { degraded };
                }
            }
            merge_runs(&mut run_acc, run);

            // Brownout decision at the epoch boundary: any open breaker
            // or a tenant burning SLO too fast switches that tenant's
            // *next* instantiations to the degraded template; both
            // clearing switches it back.
            if let Some(threshold) = cp.and_then(|c| c.brownout_bad_fraction) {
                let tripped = !rt.unhealthy_nodes().is_empty();
                let mut ran = vec![0usize; cfg.tenants];
                let mut bad = vec![0usize; cfg.tenants];
                for req in chunk {
                    match fate[req.index] {
                        // A shed admission is an SLO miss the control
                        // plane took pre-emptively: it must count
                        // toward the tenant's bad fraction, or heavy
                        // shedding masks the very overload brownout
                        // exists to relieve.
                        Fate::Failed { .. } | Fate::Shed => {
                            ran[req.tenant] += 1;
                            bad[req.tenant] += 1;
                        }
                        Fate::Ran { .. } => {
                            ran[req.tenant] += 1;
                            if let Some(slo) = slo_for(req.tenant) {
                                let lat = finish_abs[req.index] - (t0 + req.arrival);
                                if lat > slo.p99 {
                                    bad[req.tenant] += 1;
                                }
                            }
                        }
                        _ => {}
                    }
                }
                for t in 0..cfg.tenants {
                    browned[t] =
                        tripped || (ran[t] > 0 && bad[t] as f64 > threshold * ran[t] as f64);
                }
            }
        }

        // Per-request and per-tenant accounting.
        let mut records = Vec::with_capacity(cfg.requests);
        let mut sojourn = Histogram::default();
        let mut tenants: Vec<TenantStats> = (0..cfg.tenants)
            .map(|tenant| TenantStats {
                tenant,
                offered: 0,
                admitted: 0,
                rejected: 0,
                shed: 0,
                fast_failed: 0,
                degraded: 0,
                sojourn: Histogram::default(),
                p50: SimDuration::ZERO,
                p99: SimDuration::ZERO,
                slo: None,
                slo_met: true,
            })
            .collect();
        for req in &requests {
            let ts = &mut tenants[req.tenant];
            ts.offered += 1;
            let (verdict, degraded, latency) = match fate[req.index] {
                Fate::Rejected => {
                    ts.rejected += 1;
                    (Verdict::Rejected, false, None)
                }
                Fate::Shed => {
                    ts.shed += 1;
                    (Verdict::Shed, false, None)
                }
                Fate::Failed { degraded } => {
                    ts.admitted += 1;
                    ts.fast_failed += 1;
                    if degraded {
                        ts.degraded += 1;
                    }
                    (Verdict::FastFailed, degraded, None)
                }
                Fate::Ran { degraded } => {
                    ts.admitted += 1;
                    if degraded {
                        ts.degraded += 1;
                    }
                    let lat = finish_abs[req.index] - (t0 + req.arrival);
                    ts.sojourn.observe(lat.as_nanos());
                    sojourn.observe(lat.as_nanos());
                    (Verdict::Completed, degraded, Some(lat))
                }
            };
            records.push(RequestRecord {
                index: req.index,
                tenant: req.tenant,
                arrival: req.arrival,
                admitted: matches!(verdict, Verdict::Completed | Verdict::FastFailed),
                latency,
                verdict,
                degraded,
            });
        }
        for ts in &mut tenants {
            ts.p50 = SimDuration::from_nanos(ts.sojourn.quantile_bound(0.50));
            ts.p99 = SimDuration::from_nanos(ts.sojourn.quantile_bound(0.99));
            ts.slo = cfg
                .tenant_slos
                .iter()
                .find(|(t, _)| *t == ts.tenant)
                .map(|(_, s)| *s)
                .or(cfg.slo);
            ts.slo_met = match ts.slo {
                Some(slo) if ts.admitted > 0 => ts.p50 <= slo.p50 && ts.p99 <= slo.p99,
                _ => true,
            };
        }

        let (util_curve, peak_util) =
            util_curve(rt, t0, run_acc.makespan, pool_at_start, pool_capacity);

        // Request-centric observability, when the runtime traces: one
        // causal span per admitted request (assembled from the
        // `RequestTag`-stamped event stream), per-tenant tail
        // attribution, and SLO burn curves against each tenant's p99.
        let mut spans = disagg_obs::assemble_request_spans(rt.trace().events());
        spans.retain(|s| s.arrival >= t0); // this run only
        let tail = disagg_obs::tail_attribution(&spans);
        let slo_of = |tenant: u64| {
            tenants
                .get(tenant as usize)
                .and_then(|ts| ts.slo)
                .map(|slo| slo.p99)
        };
        let burn = disagg_obs::slo_burn_by(&spans, BURN_WINDOWS, slo_of);

        Ok(ServeReport {
            offered: cfg.requests,
            admitted: tenants.iter().map(|t| t.admitted).sum(),
            rejected: tenants.iter().map(|t| t.rejected).sum(),
            shed: tenants.iter().map(|t| t.shed).sum(),
            fast_failed: tenants.iter().map(|t| t.fast_failed).sum(),
            degraded: tenants.iter().map(|t| t.degraded).sum(),
            makespan: run_acc.makespan,
            sojourn,
            tenants,
            requests: records,
            util_curve,
            peak_util,
            spans,
            tail_attribution: tail,
            burn,
            breaker_transitions: rt.breaker_transitions().to_vec(),
            run: run_acc,
        })
    }
}

/// Folds one epoch's executor report into the run-wide accumulator,
/// mirroring the runtime's own cross-wave merge: counters add, lists
/// extend, per-device summaries and metrics snapshots are replaced by
/// the latest epoch's (they are cumulative inside the runtime).
fn merge_runs(into: &mut RunReport, epoch: RunReport) {
    into.makespan += epoch.makespan;
    into.tasks.extend(epoch.tasks);
    into.bytes_moved += epoch.bytes_moved;
    into.bytes_ownership_transferred += epoch.bytes_ownership_transferred;
    into.ownership_transfers += epoch.ownership_transfers;
    into.handover_copies += epoch.handover_copies;
    into.placements.extend(epoch.placements);
    into.violations.extend(epoch.violations);
    into.denials += epoch.denials;
    into.devices = epoch.devices;
    into.persistent_replicas.extend(epoch.persistent_replicas);
    into.events += epoch.events;
    into.edges.extend(epoch.edges);
    if epoch.metrics.is_some() {
        into.metrics = epoch.metrics;
    }
    into.failed_jobs.extend(epoch.failed_jobs);
}

/// Windows in a serving run's SLO burn curve — matches the granularity
/// of the utilization curve's sampling (one window per two samples).
const BURN_WINDOWS: usize = 16;

/// Samples pooled-memory utilization at 33 evenly spaced instants over
/// the run, reconstructed from the trace's Alloc/Free events; also
/// returns the *exact* peak fraction from the full event walk (the
/// sampled curve can miss allocations shorter than a sample gap).
/// Fractions are clamped to 1.0 — resident bytes can overshoot a
/// quota-denominated pool because quotas account predicted footprints,
/// not scratch allocations. Empty when the runtime traces nothing or
/// the run was empty.
fn util_curve(
    rt: &Runtime,
    t0: SimTime,
    makespan: SimDuration,
    at_start: u64,
    capacity: u64,
) -> (Vec<UtilSample>, f64) {
    if capacity == 0 || makespan == SimDuration::ZERO {
        return (Vec::new(), 0.0);
    }
    // (time, signed delta) of every pool movement inside the run.
    let mut deltas: Vec<(SimTime, i64)> = Vec::new();
    for e in rt.trace().events() {
        match *e {
            TraceEvent::Alloc { bytes, at, .. } if at >= t0 => {
                deltas.push((at, bytes as i64));
            }
            TraceEvent::Free { bytes, at, .. } if at >= t0 => {
                deltas.push((at, -(bytes as i64)));
            }
            _ => {}
        }
    }
    if deltas.is_empty() {
        return (Vec::new(), 0.0);
    }
    deltas.sort_by_key(|&(at, _)| at);

    let mut peak = at_start as i64;
    let mut walk = at_start as i64;
    for &(_, d) in &deltas {
        walk += d;
        peak = peak.max(walk);
    }

    const SAMPLES: usize = 33;
    let mut curve = Vec::with_capacity(SAMPLES);
    let span = makespan.as_nanos();
    let mut level = at_start as i64;
    let mut next = 0usize;
    for k in 0..SAMPLES {
        let off = SimDuration::from_nanos(span * k as u64 / (SAMPLES as u64 - 1));
        let cut = t0 + off;
        while next < deltas.len() && deltas[next].0 <= cut {
            level += deltas[next].1;
            next += 1;
        }
        curve.push(UtilSample {
            at: off,
            frac: ((level.max(0) as f64) / (capacity as f64)).min(1.0),
        });
    }
    (curve, ((peak.max(0) as f64) / (capacity as f64)).min(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use disagg_core::prelude::{JobBuilder, TaskSpec, WorkClass};
    use disagg_hwsim::presets::single_server;

    fn layer() -> ServeLayer {
        let mut l = ServeLayer::new();
        l.register("unit", |req: &Request| {
            let mut j = JobBuilder::new("unit");
            j.task(
                TaskSpec::new("work")
                    .work(WorkClass::Scalar, 5_000 + (req.seed % 5_000))
                    .output_bytes(1 << 16),
            );
            j.build().unwrap()
        });
        l
    }

    #[test]
    fn serving_run_accounts_every_request() {
        let (topo, _ids) = single_server();
        let mut rt = Runtime::new(topo, RuntimeConfig::default());
        let cfg = ServeConfig { requests: 24, tenants: 3, ..ServeConfig::default() };
        let report = layer().run(&mut rt, &cfg).unwrap();
        assert_eq!(report.offered, 24);
        assert_eq!(report.admitted, 24, "no quota — everything admitted");
        assert_eq!(report.requests.len(), 24);
        assert_eq!(report.tenants.iter().map(|t| t.offered).sum::<usize>(), 24);
        assert!(report.sojourn.count == 24);
        assert!(report.p99() >= report.p50());
        // Latency = finish − arrival is positive for every request.
        assert!(report
            .requests
            .iter()
            .all(|r| r.latency.unwrap() > SimDuration::ZERO));
    }

    #[test]
    fn zipf_mix_skews_toward_tenant_zero() {
        let (topo, _ids) = single_server();
        let mut rt = Runtime::new(topo, RuntimeConfig::default());
        let cfg = ServeConfig {
            requests: 200,
            tenants: 4,
            zipf_theta: 1.2,
            ..ServeConfig::default()
        };
        let report = layer().run(&mut rt, &cfg).unwrap();
        assert!(
            report.tenants[0].offered > report.tenants[3].offered,
            "hot tenant should dominate a skewed mix"
        );
    }

    #[test]
    fn seeded_runs_agree_exactly() {
        let cfg = ServeConfig { requests: 32, tenants: 3, ..ServeConfig::default() };
        let run = || {
            let (topo, _ids) = single_server();
            let mut rt = Runtime::new(topo, RuntimeConfig::default());
            layer().run(&mut rt, &cfg).unwrap()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.requests, b.requests);
        assert_eq!(a.sojourn, b.sojourn);
        assert_eq!(a.makespan, b.makespan);
    }

    #[test]
    fn tight_quota_rejects_but_never_starves_others() {
        let (topo, _ids) = single_server();
        let mut rt = Runtime::new(topo, RuntimeConfig::default());
        let cfg = ServeConfig {
            requests: 40,
            tenants: 2,
            zipf_theta: 1.0,
            // Quota below one request's footprint for tenant 1 only.
            tenant_quotas: vec![(1, 1)],
            ..ServeConfig::default()
        };
        let report = layer().run(&mut rt, &cfg).unwrap();
        assert_eq!(report.tenants[1].admitted, 0, "tenant 1 can never fit");
        assert!(report.tenants[0].admitted > 0, "tenant 0 unaffected");
        assert_eq!(report.admitted + report.rejected, 40);
    }

    #[test]
    fn slo_verdicts_follow_the_histograms() {
        let (topo, _ids) = single_server();
        let mut rt = Runtime::new(topo, RuntimeConfig::default());
        let generous = Slo {
            p50: SimDuration::from_secs(1),
            p99: SimDuration::from_secs(1),
        };
        let impossible = Slo {
            p50: SimDuration::from_nanos(1),
            p99: SimDuration::from_nanos(1),
        };
        let cfg = ServeConfig {
            requests: 16,
            tenants: 2,
            slo: Some(generous),
            tenant_slos: vec![(1, impossible)],
            ..ServeConfig::default()
        };
        let report = layer().run(&mut rt, &cfg).unwrap();
        assert!(report.tenants[0].slo_met);
        if report.tenants[1].admitted > 0 {
            assert!(!report.tenants[1].slo_met);
        }
    }

    #[test]
    fn traced_runtime_yields_a_utilization_curve() {
        let (topo, _ids) = single_server();
        let mut rt = Runtime::new(topo, RuntimeConfig::traced());
        let cfg = ServeConfig { requests: 16, tenants: 2, ..ServeConfig::default() };
        let report = layer().run(&mut rt, &cfg).unwrap();
        assert!(!report.util_curve.is_empty());
        assert!(report.peak_util > 0.0);
        assert!(report.util_curve.iter().all(|s| (0.0..=1.0).contains(&s.frac)));
    }

    #[test]
    fn traced_runtime_yields_conservative_request_spans() {
        let (topo, _ids) = single_server();
        let mut rt = Runtime::new(topo, RuntimeConfig::traced());
        let slo = Slo {
            p50: SimDuration::from_micros(20),
            p99: SimDuration::from_micros(60),
        };
        let cfg = ServeConfig {
            requests: 24,
            tenants: 3,
            slo: Some(slo),
            ..ServeConfig::default()
        };
        let report = layer().run(&mut rt, &cfg).unwrap();
        assert_eq!(report.spans.len(), report.admitted, "one span per admitted request");
        for s in &report.spans {
            // The span agrees exactly with the task-derived record.
            let rec = &report.requests[s.request as usize];
            assert_eq!(rec.tenant as u64, s.tenant);
            assert_eq!(rec.latency, Some(s.latency()), "span vs record for req {}", s.request);
            // Conservative and complete: the five components sum to the
            // end-to-end latency with no remainder.
            assert_eq!(s.attribution.total(), s.latency(), "req {}", s.request);
        }
        // Tail attribution covers every tenant that got work through.
        let served = report.tenants.iter().filter(|t| t.admitted > 0).count();
        assert_eq!(report.tail_attribution.len(), served);
        for ta in &report.tail_attribution {
            assert!(!ta.exemplars.is_empty());
        }
        // Burn curves: every admitted request lands in exactly one
        // window of its tenant's curve.
        assert_eq!(report.burn.len(), served);
        let counted: u64 = report
            .burn
            .iter()
            .flat_map(|b| b.windows.iter())
            .map(|w| w.good + w.bad)
            .sum();
        assert_eq!(counted, report.admitted as u64);
    }

    #[test]
    fn untraced_runtime_reports_no_spans() {
        let (topo, _ids) = single_server();
        let mut rt = Runtime::new(topo, RuntimeConfig::default());
        let cfg = ServeConfig { requests: 8, tenants: 2, ..ServeConfig::default() };
        let report = layer().run(&mut rt, &cfg).unwrap();
        assert!(report.spans.is_empty());
        assert!(report.tail_attribution.is_empty());
        assert!(report.burn.is_empty());
    }

    #[test]
    fn inert_control_plane_matches_legacy_exactly() {
        let run_with = |control: Option<ControlPlane>| {
            let (topo, _ids) = single_server();
            let mut rt = Runtime::new(topo, RuntimeConfig::default());
            let cfg = ServeConfig {
                requests: 24,
                tenants: 3,
                slo: Some(Slo {
                    p50: SimDuration::from_micros(50),
                    p99: SimDuration::from_millis(1),
                }),
                control,
                ..ServeConfig::default()
            };
            layer().run(&mut rt, &cfg).unwrap()
        };
        let legacy = run_with(None);
        // One epoch, no shedding, no brownout: the unified path must
        // reduce to the legacy single-batch pipeline bit-for-bit.
        let inert = run_with(Some(ControlPlane {
            epochs: 1,
            shed_deadlines: false,
            depth_factor: 0.0,
            brownout_bad_fraction: None,
            degraded_cost_ratio: 0.25,
        }));
        assert_eq!(legacy.requests, inert.requests);
        assert_eq!(legacy.sojourn, inert.sojourn);
        assert_eq!(legacy.makespan, inert.makespan);
        assert_eq!(legacy.tenants, inert.tenants);
        assert_eq!(legacy.shed, 0);
        assert_eq!(inert.shed, 0);
    }

    #[test]
    fn deadline_shedding_sheds_hopeless_requests() {
        let (topo, _ids) = single_server();
        let mut rt = Runtime::new(topo, RuntimeConfig::default());
        let cfg = ServeConfig {
            requests: 16,
            tenants: 2,
            // Even the calibrated estimate at depth 0 misses this SLO.
            slo: Some(Slo {
                p50: SimDuration::from_nanos(1),
                p99: SimDuration::from_nanos(1),
            }),
            control: Some(ControlPlane::default()),
            ..ServeConfig::default()
        };
        let report = layer().run(&mut rt, &cfg).unwrap();
        assert_eq!(report.shed, 16, "every request is hopeless at arrival");
        assert_eq!(report.admitted, 0);
        assert_eq!(report.rejected, 0, "shed is not a quota rejection");
        assert!(report.requests.iter().all(|r| r.verdict == Verdict::Shed));
        assert_eq!(report.tenants.iter().map(|t| t.shed).sum::<usize>(), 16);
    }

    #[test]
    fn queue_depth_inflates_the_shedding_estimate() {
        // SLO sits above the bare service estimate but below the
        // depth-inflated one: early (shallow-queue) requests pass the
        // check, later ones behind a standing queue are shed.
        let (topo, _ids) = single_server();
        let mut rt = Runtime::new(topo, RuntimeConfig::default());
        let probe_cfg = ServeConfig { requests: 1, tenants: 1, ..ServeConfig::default() };
        let svc = layer().calibrate(&rt, &probe_cfg)[0];

        let cfg = ServeConfig {
            // Arrivals far denser than the service time → queue builds.
            arrivals: ArrivalProcess::Poisson {
                mean_gap: SimDuration::from_nanos(svc.as_nanos() / 64),
            },
            requests: 64,
            tenants: 1,
            slo: Some(Slo {
                p50: svc,
                p99: SimDuration::from_nanos(svc.as_nanos() * 2),
            }),
            control: Some(ControlPlane { depth_factor: 1.0, ..ControlPlane::default() }),
            ..ServeConfig::default()
        };
        let report = layer().run(&mut rt, &cfg).unwrap();
        assert!(report.shed > 0, "standing queue must trigger sheds");
        assert!(report.admitted > 0, "shallow-queue arrivals still pass");
        assert_eq!(report.requests[0].verdict, Verdict::Completed, "first request sees depth 0");
    }

    #[test]
    fn brownout_switches_to_the_degraded_template() {
        let mut l = layer();
        l.register_degraded("unit", |req: &Request| {
            let mut j = JobBuilder::new("unit-lite");
            j.task(TaskSpec::new("work").work(WorkClass::Scalar, 500 + (req.seed % 500)));
            j.build().unwrap()
        });
        let (topo, _ids) = single_server();
        let mut rt = Runtime::new(topo, RuntimeConfig::default());
        let cfg = ServeConfig {
            requests: 32,
            tenants: 1,
            // An SLO every completed request misses, with shedding off:
            // the first epoch's 100% bad fraction browns the tenant out
            // for every later epoch.
            slo: Some(Slo {
                p50: SimDuration::from_nanos(1),
                p99: SimDuration::from_nanos(1),
            }),
            control: Some(ControlPlane {
                epochs: 4,
                shed_deadlines: false,
                brownout_bad_fraction: Some(0.5),
                ..ControlPlane::default()
            }),
            ..ServeConfig::default()
        };
        let report = l.run(&mut rt, &cfg).unwrap();
        assert!(report.degraded > 0, "later epochs must serve the degraded template");
        assert!(
            report.requests.iter().take(8).all(|r| !r.degraded),
            "the first epoch runs before any brownout signal exists"
        );
        assert_eq!(
            report.requests.iter().filter(|r| r.degraded).count(),
            report.degraded,
        );
        assert_eq!(report.tenants[0].degraded, report.degraded);
    }

    #[test]
    fn register_degraded_requires_the_primary() {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut l = ServeLayer::new();
            l.register_degraded("ghost", |_req: &Request| {
                JobBuilder::new("ghost").build().unwrap()
            });
        }));
        assert!(result.is_err(), "degraded variant without a primary must panic");
    }

    #[test]
    fn goodput_subtracts_fast_failures() {
        let r = ServeReport {
            offered: 10,
            admitted: 8,
            rejected: 1,
            shed: 1,
            fast_failed: 3,
            degraded: 0,
            makespan: SimDuration::ZERO,
            sojourn: Histogram::default(),
            tenants: Vec::new(),
            requests: Vec::new(),
            util_curve: Vec::new(),
            peak_util: 0.0,
            spans: Vec::new(),
            tail_attribution: Vec::new(),
            burn: Vec::new(),
            breaker_transitions: Vec::new(),
            run: RunReport::default(),
        };
        assert_eq!(r.goodput(), 5);
    }
}
