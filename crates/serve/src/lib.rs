//! # disagg-serve — open-loop request serving for the disagg runtime
//!
//! Every workload elsewhere in this repository is a pre-built DAG run
//! to completion. A production disaggregated runtime instead faces an
//! *open* stream of requests from many tenants — "disaggregation must
//! be evaluated against live application traffic, not beside it". This
//! crate puts that traffic in front of the sharded executor:
//!
//! - **Arrival processes** ([`ArrivalProcess`]): Poisson and bursty
//!   (two-phase MMPP) arrivals in virtual time, seeded via `SimRng`.
//! - **Tenant mix**: requests are attributed to tenants by a Zipf draw
//!   (`disagg_workloads::gen::Zipf`) — tenant 0 is the hottest.
//! - **Templates**: each tenant maps to a registered job template; a
//!   template instantiates a fresh DAG per request from a derived seed.
//! - **Admission** ([`QuotaTracker`]): per-tenant memory-pool quotas
//!   charged with the runtime's own footprint predictor and a
//!   calibrated service-time estimate; decisions are causal and
//!   identical at every shard count.
//! - **SLOs** ([`Slo`]): per-tenant p50/p99 sojourn targets in virtual
//!   time, extracted from `disagg-obs` log2 histograms.
//!
//! The whole pipeline is virtual-time-only: a seeded [`ServeConfig`]
//! produces a bit-for-bit identical [`ServeReport`] on every run.
//!
//! ```
//! use disagg_core::prelude::*;
//! use disagg_serve::{ArrivalProcess, ServeConfig, ServeLayer};
//!
//! let (topo, _ids) = disagg_hwsim::presets::single_server();
//! let mut rt = Runtime::new(topo, RuntimeConfig::default());
//!
//! let mut layer = ServeLayer::new();
//! layer.register("echo", |req| {
//!     let mut j = JobBuilder::new("echo");
//!     j.task(TaskSpec::new("work").work(WorkClass::Scalar, 10_000 + (req.seed % 1000)));
//!     j.build().unwrap()
//! });
//!
//! let cfg = ServeConfig {
//!     requests: 16,
//!     tenants: 2,
//!     arrivals: ArrivalProcess::Poisson { mean_gap: SimDuration::from_micros(5) },
//!     ..ServeConfig::default()
//! };
//! let report = layer.run(&mut rt, &cfg).unwrap();
//! assert_eq!(report.offered, 16);
//! assert_eq!(report.admitted + report.rejected, 16);
//! ```

pub mod admission;
pub mod arrival;
pub mod report;

pub use admission::QuotaTracker;
pub use arrival::ArrivalProcess;
pub use report::{RequestRecord, ServeReport, Slo, TenantStats, UtilSample};

use disagg_core::report::RunReport;
use disagg_core::{Runtime, RuntimeConfig, RuntimeError, Submission};
use disagg_dataflow::job::JobSpec;
use disagg_hwsim::rng::SimRng;
use disagg_hwsim::time::{SimDuration, SimTime};
use disagg_hwsim::trace::TraceEvent;
use disagg_obs::Histogram;
use disagg_workloads::gen::Zipf;

/// Context handed to a job template when instantiating one request.
#[derive(Debug, Clone, Copy)]
pub struct Request {
    /// Position in the arrival sequence.
    pub index: usize,
    /// Issuing tenant (Zipf rank; 0 = hottest).
    pub tenant: usize,
    /// Arrival offset relative to the serving run's start.
    pub arrival: SimDuration,
    /// Per-request seed for sizing/body randomness inside the template.
    pub seed: u64,
}

/// Describes one open-loop serving run.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// When requests arrive.
    pub arrivals: ArrivalProcess,
    /// How many requests the run offers.
    pub requests: usize,
    /// Number of tenants in the mix.
    pub tenants: usize,
    /// Zipf skew across tenants (0 = uniform, ~1 = classic).
    pub zipf_theta: f64,
    /// Root seed; everything downstream forks from it.
    pub seed: u64,
    /// Default per-tenant memory quota in bytes (`None` = unlimited).
    pub quota: Option<u64>,
    /// Per-tenant quota overrides as `(tenant, bytes)`.
    pub tenant_quotas: Vec<(usize, u64)>,
    /// Default per-tenant latency SLO (`None` = no SLO).
    pub slo: Option<Slo>,
    /// Per-tenant SLO overrides as `(tenant, slo)`.
    pub tenant_slos: Vec<(usize, Slo)>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            arrivals: ArrivalProcess::Poisson { mean_gap: SimDuration::from_micros(10) },
            requests: 64,
            tenants: 4,
            zipf_theta: 0.9,
            seed: 42,
            quota: None,
            tenant_quotas: Vec::new(),
            slo: None,
            tenant_slos: Vec::new(),
        }
    }
}

type TemplateFn = Box<dyn Fn(&Request) -> JobSpec>;

/// A registry of job templates plus the serving loop over them.
///
/// Tenant `t` is served by template `t % templates`, so one template
/// serves a uniform fleet and several templates make a heterogeneous
/// mix.
#[derive(Default)]
pub struct ServeLayer {
    templates: Vec<(String, TemplateFn)>,
}

impl ServeLayer {
    /// An empty registry.
    pub fn new() -> ServeLayer {
        ServeLayer { templates: Vec::new() }
    }

    /// Registers a job template under a name; returns `self` for
    /// chaining.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        template: impl Fn(&Request) -> JobSpec + 'static,
    ) -> &mut ServeLayer {
        self.templates.push((name.into(), Box::new(template)));
        self
    }

    /// Number of registered templates.
    pub fn len(&self) -> usize {
        self.templates.len()
    }

    /// True when no template is registered.
    pub fn is_empty(&self) -> bool {
        self.templates.is_empty()
    }

    /// Template name serving a tenant.
    pub fn template_for(&self, tenant: usize) -> &str {
        &self.templates[tenant % self.templates.len()].0
    }

    /// Instantiates one request's job from the template serving
    /// `tenant` — what the serving loop does internally, exposed for
    /// calibration and tests.
    pub fn instantiate(&self, tenant: usize, req: &Request) -> JobSpec {
        (self.templates[tenant % self.templates.len()].1)(req)
    }

    /// Calibrates each template's service-time estimate: one
    /// representative request per template, run alone on a fresh
    /// single-shard runtime over a clone of `topo`-shaped hardware.
    /// Estimates feed quota admission only; measured latencies always
    /// come from the real run.
    fn calibrate(&self, rt: &Runtime, cfg: &ServeConfig) -> Vec<SimDuration> {
        let mut est = Vec::with_capacity(self.templates.len());
        for (ti, (_, template)) in self.templates.iter().enumerate() {
            let req = Request {
                index: 0,
                tenant: ti,
                arrival: SimDuration::ZERO,
                seed: SimRng::new(cfg.seed ^ ti as u64).next_u64(),
            };
            let mut probe = Runtime::new(rt.topology().clone(), RuntimeConfig::default());
            let makespan = probe
                .execute(template(&req))
                .map(|r| r.makespan)
                .unwrap_or(SimDuration::ZERO);
            est.push(makespan);
        }
        est
    }

    /// Runs one open-loop serving pass: draws arrivals and the tenant
    /// mix, instantiates per-request DAGs, applies quota admission, and
    /// executes the admitted stream on `rt` with each request held to
    /// its arrival offset.
    ///
    /// # Panics
    ///
    /// Panics if no template is registered or `cfg.tenants == 0`.
    pub fn run(&self, rt: &mut Runtime, cfg: &ServeConfig) -> Result<ServeReport, RuntimeError> {
        assert!(!self.templates.is_empty(), "register at least one template");
        assert!(cfg.tenants > 0, "need at least one tenant");

        let mut rng = SimRng::new(cfg.seed);
        let offsets = cfg.arrivals.sample_offsets(cfg.requests, &mut rng.fork(0));
        let zipf = Zipf::new(cfg.tenants, cfg.zipf_theta);
        let mut tenant_rng = rng.fork(1);
        let mut seed_rng = rng.fork(2);

        // Draw the request stream.
        let mut requests = Vec::with_capacity(cfg.requests);
        for (index, &arrival) in offsets.iter().enumerate() {
            requests.push(Request {
                index,
                tenant: zipf.sample(&mut tenant_rng),
                arrival,
                seed: seed_rng.next_u64(),
            });
        }

        // Quota admission over the arrival sequence, using calibrated
        // service estimates and the runtime's own footprint predictor.
        let est_service = self.calibrate(rt, cfg);
        let mut quotas = QuotaTracker::new(cfg.tenants, cfg.quota);
        for &(tenant, bytes) in &cfg.tenant_quotas {
            quotas.set_quota(tenant, bytes);
        }

        let t0 = rt.now();
        let mut admitted_jobs: Vec<JobSpec> = Vec::new();
        let mut admitted_offsets: Vec<SimDuration> = Vec::new();
        let mut admitted_tags: Vec<(u64, u64)> = Vec::new();
        let mut admitted_of_request: Vec<Option<usize>> = Vec::with_capacity(cfg.requests);
        for req in &requests {
            let template = &self.templates[req.tenant % self.templates.len()].1;
            let job = template(req);
            let footprint = Runtime::predicted_footprint(&job);
            let svc = est_service[req.tenant % est_service.len()];
            if quotas.admit(req.tenant, footprint, t0 + req.arrival, svc) {
                admitted_of_request.push(Some(admitted_jobs.len()));
                admitted_jobs.push(job);
                admitted_offsets.push(req.arrival);
                admitted_tags.push((req.index as u64, req.tenant as u64));
            } else {
                admitted_of_request.push(None);
            }
        }

        // Utilization denominator: the admission-managed pool — the sum
        // of finite per-tenant quotas when any are configured, the
        // rack's total memory capacity otherwise. Measuring against the
        // managed pool keeps the curve legible: request footprints are
        // invisible against multi-TiB rack capacity.
        let quota_pool: u64 = (0..cfg.tenants)
            .map(|t| quotas.quota(t))
            .filter(|&q| q != u64::MAX)
            .sum();
        let pool_capacity: u64 = if quota_pool > 0 {
            quota_pool
        } else {
            rt.topology()
                .mem_ids()
                .map(|d| rt.manager().pool().capacity(d))
                .sum()
        };
        let pool_at_start: u64 = rt
            .topology()
            .mem_ids()
            .map(|d| rt.manager().pool().allocated(d))
            .sum();

        // Execute the admitted stream; runtime-level admission
        // (watermark waves) still applies underneath the quotas.
        let run: RunReport = if admitted_jobs.is_empty() {
            RunReport::default()
        } else {
            rt.execute(
                Submission::batch(admitted_jobs)
                    .arrivals(admitted_offsets)
                    .requests(admitted_tags),
            )?
        };

        // Map admitted requests back to their jobs: the executor hands
        // out sequential JobIds in submission order.
        let base = run.tasks.iter().map(|t| t.job.0).min().unwrap_or(0);
        let admitted_count = admitted_of_request.iter().flatten().count();
        let mut finish_of_admitted: Vec<SimTime> = vec![t0; admitted_count];
        for t in &run.tasks {
            let slot = (t.job.0 - base) as usize;
            if let Some(f) = finish_of_admitted.get_mut(slot) {
                *f = (*f).max(t.finish);
            }
        }

        // Per-request and per-tenant accounting.
        let mut records = Vec::with_capacity(cfg.requests);
        let mut sojourn = Histogram::default();
        let mut tenants: Vec<TenantStats> = (0..cfg.tenants)
            .map(|tenant| TenantStats {
                tenant,
                offered: 0,
                admitted: 0,
                rejected: 0,
                sojourn: Histogram::default(),
                p50: SimDuration::ZERO,
                p99: SimDuration::ZERO,
                slo: None,
                slo_met: true,
            })
            .collect();
        for (req, slot) in requests.iter().zip(&admitted_of_request) {
            let ts = &mut tenants[req.tenant];
            ts.offered += 1;
            let latency = match slot {
                Some(i) => {
                    ts.admitted += 1;
                    let lat = finish_of_admitted[*i] - (t0 + req.arrival);
                    ts.sojourn.observe(lat.as_nanos());
                    sojourn.observe(lat.as_nanos());
                    Some(lat)
                }
                None => {
                    ts.rejected += 1;
                    None
                }
            };
            records.push(RequestRecord {
                index: req.index,
                tenant: req.tenant,
                arrival: req.arrival,
                admitted: slot.is_some(),
                latency,
            });
        }
        for ts in &mut tenants {
            ts.p50 = SimDuration::from_nanos(ts.sojourn.quantile_bound(0.50));
            ts.p99 = SimDuration::from_nanos(ts.sojourn.quantile_bound(0.99));
            ts.slo = cfg
                .tenant_slos
                .iter()
                .find(|(t, _)| *t == ts.tenant)
                .map(|(_, s)| *s)
                .or(cfg.slo);
            ts.slo_met = match ts.slo {
                Some(slo) if ts.admitted > 0 => ts.p50 <= slo.p50 && ts.p99 <= slo.p99,
                _ => true,
            };
        }

        let (util_curve, peak_util) =
            util_curve(rt, t0, run.makespan, pool_at_start, pool_capacity);

        // Request-centric observability, when the runtime traces: one
        // causal span per admitted request (assembled from the
        // `RequestTag`-stamped event stream), per-tenant tail
        // attribution, and SLO burn curves against each tenant's p99.
        let mut spans = disagg_obs::assemble_request_spans(rt.trace().events());
        spans.retain(|s| s.arrival >= t0); // this run only
        let tail = disagg_obs::tail_attribution(&spans);
        let slo_of = |tenant: u64| {
            tenants
                .get(tenant as usize)
                .and_then(|ts| ts.slo)
                .map(|slo| slo.p99)
        };
        let burn = disagg_obs::slo_burn_by(&spans, BURN_WINDOWS, slo_of);

        Ok(ServeReport {
            offered: cfg.requests,
            admitted: admitted_count,
            rejected: cfg.requests - admitted_count,
            makespan: run.makespan,
            sojourn,
            tenants,
            requests: records,
            util_curve,
            peak_util,
            spans,
            tail_attribution: tail,
            burn,
            run,
        })
    }
}

/// Windows in a serving run's SLO burn curve — matches the granularity
/// of the utilization curve's sampling (one window per two samples).
const BURN_WINDOWS: usize = 16;

/// Samples pooled-memory utilization at 33 evenly spaced instants over
/// the run, reconstructed from the trace's Alloc/Free events; also
/// returns the *exact* peak fraction from the full event walk (the
/// sampled curve can miss allocations shorter than a sample gap).
/// Fractions are clamped to 1.0 — resident bytes can overshoot a
/// quota-denominated pool because quotas account predicted footprints,
/// not scratch allocations. Empty when the runtime traces nothing or
/// the run was empty.
fn util_curve(
    rt: &Runtime,
    t0: SimTime,
    makespan: SimDuration,
    at_start: u64,
    capacity: u64,
) -> (Vec<UtilSample>, f64) {
    if capacity == 0 || makespan == SimDuration::ZERO {
        return (Vec::new(), 0.0);
    }
    // (time, signed delta) of every pool movement inside the run.
    let mut deltas: Vec<(SimTime, i64)> = Vec::new();
    for e in rt.trace().events() {
        match *e {
            TraceEvent::Alloc { bytes, at, .. } if at >= t0 => {
                deltas.push((at, bytes as i64));
            }
            TraceEvent::Free { bytes, at, .. } if at >= t0 => {
                deltas.push((at, -(bytes as i64)));
            }
            _ => {}
        }
    }
    if deltas.is_empty() {
        return (Vec::new(), 0.0);
    }
    deltas.sort_by_key(|&(at, _)| at);

    let mut peak = at_start as i64;
    let mut walk = at_start as i64;
    for &(_, d) in &deltas {
        walk += d;
        peak = peak.max(walk);
    }

    const SAMPLES: usize = 33;
    let mut curve = Vec::with_capacity(SAMPLES);
    let span = makespan.as_nanos();
    let mut level = at_start as i64;
    let mut next = 0usize;
    for k in 0..SAMPLES {
        let off = SimDuration::from_nanos(span * k as u64 / (SAMPLES as u64 - 1));
        let cut = t0 + off;
        while next < deltas.len() && deltas[next].0 <= cut {
            level += deltas[next].1;
            next += 1;
        }
        curve.push(UtilSample {
            at: off,
            frac: ((level.max(0) as f64) / (capacity as f64)).min(1.0),
        });
    }
    (curve, ((peak.max(0) as f64) / (capacity as f64)).min(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use disagg_core::prelude::{JobBuilder, TaskSpec, WorkClass};
    use disagg_hwsim::presets::single_server;

    fn layer() -> ServeLayer {
        let mut l = ServeLayer::new();
        l.register("unit", |req: &Request| {
            let mut j = JobBuilder::new("unit");
            j.task(
                TaskSpec::new("work")
                    .work(WorkClass::Scalar, 5_000 + (req.seed % 5_000))
                    .output_bytes(1 << 16),
            );
            j.build().unwrap()
        });
        l
    }

    #[test]
    fn serving_run_accounts_every_request() {
        let (topo, _ids) = single_server();
        let mut rt = Runtime::new(topo, RuntimeConfig::default());
        let cfg = ServeConfig { requests: 24, tenants: 3, ..ServeConfig::default() };
        let report = layer().run(&mut rt, &cfg).unwrap();
        assert_eq!(report.offered, 24);
        assert_eq!(report.admitted, 24, "no quota — everything admitted");
        assert_eq!(report.requests.len(), 24);
        assert_eq!(report.tenants.iter().map(|t| t.offered).sum::<usize>(), 24);
        assert!(report.sojourn.count == 24);
        assert!(report.p99() >= report.p50());
        // Latency = finish − arrival is positive for every request.
        assert!(report
            .requests
            .iter()
            .all(|r| r.latency.unwrap() > SimDuration::ZERO));
    }

    #[test]
    fn zipf_mix_skews_toward_tenant_zero() {
        let (topo, _ids) = single_server();
        let mut rt = Runtime::new(topo, RuntimeConfig::default());
        let cfg = ServeConfig {
            requests: 200,
            tenants: 4,
            zipf_theta: 1.2,
            ..ServeConfig::default()
        };
        let report = layer().run(&mut rt, &cfg).unwrap();
        assert!(
            report.tenants[0].offered > report.tenants[3].offered,
            "hot tenant should dominate a skewed mix"
        );
    }

    #[test]
    fn seeded_runs_agree_exactly() {
        let cfg = ServeConfig { requests: 32, tenants: 3, ..ServeConfig::default() };
        let run = || {
            let (topo, _ids) = single_server();
            let mut rt = Runtime::new(topo, RuntimeConfig::default());
            layer().run(&mut rt, &cfg).unwrap()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.requests, b.requests);
        assert_eq!(a.sojourn, b.sojourn);
        assert_eq!(a.makespan, b.makespan);
    }

    #[test]
    fn tight_quota_rejects_but_never_starves_others() {
        let (topo, _ids) = single_server();
        let mut rt = Runtime::new(topo, RuntimeConfig::default());
        let cfg = ServeConfig {
            requests: 40,
            tenants: 2,
            zipf_theta: 1.0,
            // Quota below one request's footprint for tenant 1 only.
            tenant_quotas: vec![(1, 1)],
            ..ServeConfig::default()
        };
        let report = layer().run(&mut rt, &cfg).unwrap();
        assert_eq!(report.tenants[1].admitted, 0, "tenant 1 can never fit");
        assert!(report.tenants[0].admitted > 0, "tenant 0 unaffected");
        assert_eq!(report.admitted + report.rejected, 40);
    }

    #[test]
    fn slo_verdicts_follow_the_histograms() {
        let (topo, _ids) = single_server();
        let mut rt = Runtime::new(topo, RuntimeConfig::default());
        let generous = Slo {
            p50: SimDuration::from_secs(1),
            p99: SimDuration::from_secs(1),
        };
        let impossible = Slo {
            p50: SimDuration::from_nanos(1),
            p99: SimDuration::from_nanos(1),
        };
        let cfg = ServeConfig {
            requests: 16,
            tenants: 2,
            slo: Some(generous),
            tenant_slos: vec![(1, impossible)],
            ..ServeConfig::default()
        };
        let report = layer().run(&mut rt, &cfg).unwrap();
        assert!(report.tenants[0].slo_met);
        if report.tenants[1].admitted > 0 {
            assert!(!report.tenants[1].slo_met);
        }
    }

    #[test]
    fn traced_runtime_yields_a_utilization_curve() {
        let (topo, _ids) = single_server();
        let mut rt = Runtime::new(topo, RuntimeConfig::traced());
        let cfg = ServeConfig { requests: 16, tenants: 2, ..ServeConfig::default() };
        let report = layer().run(&mut rt, &cfg).unwrap();
        assert!(!report.util_curve.is_empty());
        assert!(report.peak_util > 0.0);
        assert!(report.util_curve.iter().all(|s| (0.0..=1.0).contains(&s.frac)));
    }

    #[test]
    fn traced_runtime_yields_conservative_request_spans() {
        let (topo, _ids) = single_server();
        let mut rt = Runtime::new(topo, RuntimeConfig::traced());
        let slo = Slo {
            p50: SimDuration::from_micros(20),
            p99: SimDuration::from_micros(60),
        };
        let cfg = ServeConfig {
            requests: 24,
            tenants: 3,
            slo: Some(slo),
            ..ServeConfig::default()
        };
        let report = layer().run(&mut rt, &cfg).unwrap();
        assert_eq!(report.spans.len(), report.admitted, "one span per admitted request");
        for s in &report.spans {
            // The span agrees exactly with the task-derived record.
            let rec = &report.requests[s.request as usize];
            assert_eq!(rec.tenant as u64, s.tenant);
            assert_eq!(rec.latency, Some(s.latency()), "span vs record for req {}", s.request);
            // Conservative and complete: the five components sum to the
            // end-to-end latency with no remainder.
            assert_eq!(s.attribution.total(), s.latency(), "req {}", s.request);
        }
        // Tail attribution covers every tenant that got work through.
        let served = report.tenants.iter().filter(|t| t.admitted > 0).count();
        assert_eq!(report.tail_attribution.len(), served);
        for ta in &report.tail_attribution {
            assert!(!ta.exemplars.is_empty());
        }
        // Burn curves: every admitted request lands in exactly one
        // window of its tenant's curve.
        assert_eq!(report.burn.len(), served);
        let counted: u64 = report
            .burn
            .iter()
            .flat_map(|b| b.windows.iter())
            .map(|w| w.good + w.bad)
            .sum();
        assert_eq!(counted, report.admitted as u64);
    }

    #[test]
    fn untraced_runtime_reports_no_spans() {
        let (topo, _ids) = single_server();
        let mut rt = Runtime::new(topo, RuntimeConfig::default());
        let cfg = ServeConfig { requests: 8, tenants: 2, ..ServeConfig::default() };
        let report = layer().run(&mut rt, &cfg).unwrap();
        assert!(report.spans.is_empty());
        assert!(report.tail_attribution.is_empty());
        assert!(report.burn.is_empty());
    }
}
