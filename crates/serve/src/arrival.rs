//! Arrival processes in virtual time.
//!
//! Open-loop serving needs *when* requests arrive, independent of how
//! fast the rack drains them. Two processes cover the classic shapes:
//! memoryless [`ArrivalProcess::Poisson`] traffic and a two-phase
//! Markov-modulated Poisson process ([`ArrivalProcess::Mmpp`]) whose
//! calm/burst phases model diurnal or flash-crowd traffic. Every sample
//! comes from a [`SimRng`] fork, so a seeded process yields the same
//! arrival sequence on every run and at every shard count.

use disagg_hwsim::rng::SimRng;
use disagg_hwsim::time::SimDuration;

/// How request inter-arrival gaps are drawn, all in virtual time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless arrivals: gaps are exponential around `mean_gap`
    /// (offered load = 1/`mean_gap` requests per virtual second).
    Poisson {
        /// Mean inter-arrival gap.
        mean_gap: SimDuration,
    },
    /// A two-phase Markov-modulated Poisson process: the source
    /// alternates between a calm phase (exponential gaps around
    /// `calm_gap`) and a burst phase (around `burst_gap`), dwelling in
    /// each phase for an exponential stretch of virtual time.
    Mmpp {
        /// Mean gap while calm.
        calm_gap: SimDuration,
        /// Mean gap while bursting (smaller = denser bursts).
        burst_gap: SimDuration,
        /// Mean dwell time in the calm phase.
        calm_dwell: SimDuration,
        /// Mean dwell time in the burst phase.
        burst_dwell: SimDuration,
    },
}

/// One exponential draw with the given mean, via inverse-CDF over a
/// `[0, 1)` uniform. `-ln(1-u)` keeps the draw finite for `u == 0`.
fn exp_draw(mean: SimDuration, rng: &mut SimRng) -> SimDuration {
    let u = rng.next_f64();
    SimDuration::from_nanos_f64(-mean.as_nanos_f64() * (1.0 - u).ln())
}

impl ArrivalProcess {
    /// Mean offered gap of the process — for MMPP the dwell-weighted
    /// average of the two phase gaps.
    pub fn mean_gap(&self) -> SimDuration {
        match *self {
            ArrivalProcess::Poisson { mean_gap } => mean_gap,
            ArrivalProcess::Mmpp { calm_gap, burst_gap, calm_dwell, burst_dwell } => {
                let total = calm_dwell.as_nanos_f64() + burst_dwell.as_nanos_f64();
                if total == 0.0 {
                    return calm_gap;
                }
                // Requests per phase cycle, then cycle length / requests.
                let calm_n = calm_dwell.as_nanos_f64() / calm_gap.as_nanos_f64().max(1.0);
                let burst_n = burst_dwell.as_nanos_f64() / burst_gap.as_nanos_f64().max(1.0);
                SimDuration::from_nanos_f64(total / (calm_n + burst_n).max(1e-12))
            }
        }
    }

    /// Draws `n` arrival offsets (relative to the submission instant),
    /// in nondecreasing order.
    pub fn sample_offsets(&self, n: usize, rng: &mut SimRng) -> Vec<SimDuration> {
        let mut offsets = Vec::with_capacity(n);
        let mut t = SimDuration::ZERO;
        match *self {
            ArrivalProcess::Poisson { mean_gap } => {
                for _ in 0..n {
                    t += exp_draw(mean_gap, rng);
                    offsets.push(t);
                }
            }
            ArrivalProcess::Mmpp { calm_gap, burst_gap, calm_dwell, burst_dwell } => {
                let mut bursting = false;
                let mut phase_end = exp_draw(calm_dwell, rng);
                for _ in 0..n {
                    // Advance phases the arrival clock has run past.
                    while t >= phase_end {
                        bursting = !bursting;
                        let dwell = if bursting { burst_dwell } else { calm_dwell };
                        phase_end += exp_draw(dwell, rng);
                    }
                    let gap = if bursting { burst_gap } else { calm_gap };
                    t += exp_draw(gap, rng);
                    offsets.push(t);
                }
            }
        }
        offsets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_offsets_are_seeded_and_monotone() {
        let p = ArrivalProcess::Poisson { mean_gap: SimDuration::from_micros(10) };
        let a = p.sample_offsets(100, &mut SimRng::new(7));
        let b = p.sample_offsets(100, &mut SimRng::new(7));
        assert_eq!(a, b, "same seed, same arrivals");
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "offsets nondecreasing");
        let mean = a.last().unwrap().as_nanos_f64() / 100.0;
        assert!(
            (5_000.0..20_000.0).contains(&mean),
            "empirical mean gap {mean} ns should be near 10_000 ns"
        );
    }

    #[test]
    fn mmpp_bursts_are_denser_than_calm() {
        let p = ArrivalProcess::Mmpp {
            calm_gap: SimDuration::from_micros(50),
            burst_gap: SimDuration::from_micros(2),
            calm_dwell: SimDuration::from_millis(1),
            burst_dwell: SimDuration::from_millis(1),
        };
        let a = p.sample_offsets(500, &mut SimRng::new(11));
        assert_eq!(a, p.sample_offsets(500, &mut SimRng::new(11)));
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
        // The dwell-weighted mean gap sits between the two phase gaps.
        let mean = p.mean_gap();
        assert!(mean > SimDuration::from_micros(2) && mean < SimDuration::from_micros(50));
    }
}
