//! What a serving run reports.
//!
//! Everything here is measured in *virtual* time and derived from the
//! executor's deterministic output, so a seeded serving run produces a
//! bit-for-bit identical [`ServeReport`] on every execution and at
//! every shard count — latency SLOs included.

use disagg_core::breaker::BreakerTransition;
use disagg_core::report::RunReport;
use disagg_hwsim::time::SimDuration;
use disagg_obs::{Histogram, RequestSpan, TenantAttribution, TenantBurn};

/// A per-tenant latency SLO in virtual time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Slo {
    /// Target median sojourn (arrival → last task finish).
    pub p50: SimDuration,
    /// Target tail sojourn.
    pub p99: SimDuration,
}

/// How the serving control plane disposed of one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Admitted and ran to completion.
    Completed,
    /// Rejected by quota admission (the tenant was over budget).
    Rejected,
    /// Shed at admission: the deadline check predicted the request
    /// could not meet its SLO, so it never entered the system.
    Shed,
    /// Admitted, but failed fast during execution — its tenant's retry
    /// budget emptied or its retries ran out under failure isolation.
    FastFailed,
}

/// One request's fate.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestRecord {
    /// Position in the arrival sequence.
    pub index: usize,
    /// The tenant that issued it.
    pub tenant: usize,
    /// Arrival offset relative to the serving run's start.
    pub arrival: SimDuration,
    /// Whether admission let it through.
    pub admitted: bool,
    /// Sojourn time (arrival → last task finish); `None` unless the
    /// request completed.
    pub latency: Option<SimDuration>,
    /// How the control plane disposed of it. Always `Completed` or
    /// `Rejected` when the run has no [`crate::ControlPlane`].
    pub verdict: Verdict,
    /// Whether a brownout served this request from its tenant's
    /// degraded template.
    pub degraded: bool,
}

/// Per-tenant serving outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantStats {
    /// Tenant index (Zipf rank: tenant 0 is the hottest).
    pub tenant: usize,
    /// Requests the tenant offered.
    pub offered: usize,
    /// Requests admitted.
    pub admitted: usize,
    /// Requests rejected by quota admission.
    pub rejected: usize,
    /// Requests shed by the deadline check (zero without a control
    /// plane).
    pub shed: usize,
    /// Admitted requests that failed fast during execution.
    pub fast_failed: usize,
    /// Admitted requests served from the tenant's degraded template.
    pub degraded: usize,
    /// Sojourn-time distribution (log2 buckets over virtual ns).
    pub sojourn: Histogram,
    /// Median sojourn bound from the histogram.
    pub p50: SimDuration,
    /// Tail sojourn bound from the histogram.
    pub p99: SimDuration,
    /// The SLO this tenant was held to, if any.
    pub slo: Option<Slo>,
    /// Whether both p50 and p99 stayed within the SLO (vacuously true
    /// without an SLO or without admitted requests).
    pub slo_met: bool,
}

/// One sample of pooled-memory utilization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UtilSample {
    /// Offset from the serving run's start.
    pub at: SimDuration,
    /// Allocated fraction of total pooled capacity, `0.0..=1.0`.
    pub frac: f64,
}

/// The outcome of one open-loop serving run.
#[derive(Debug)]
pub struct ServeReport {
    /// Requests offered (arrival process length).
    pub offered: usize,
    /// Requests admitted.
    pub admitted: usize,
    /// Requests rejected by quota admission.
    pub rejected: usize,
    /// Requests shed by the deadline check (zero without a control
    /// plane).
    pub shed: usize,
    /// Admitted requests that failed fast during execution (retry
    /// budget emptied or retries exhausted under failure isolation).
    pub fast_failed: usize,
    /// Admitted requests served from a degraded template (brownout).
    pub degraded: usize,
    /// Virtual time from run start to the last task finish.
    pub makespan: SimDuration,
    /// Sojourn-time distribution across all admitted requests.
    pub sojourn: Histogram,
    /// Per-tenant outcomes, indexed by tenant.
    pub tenants: Vec<TenantStats>,
    /// Every request in arrival order.
    pub requests: Vec<RequestRecord>,
    /// Pooled-memory utilization over the run (empty when the runtime
    /// was built without tracing). Fractions are measured against the
    /// admission-managed pool: the sum of finite per-tenant quotas when
    /// any are configured, the rack's total memory capacity otherwise.
    pub util_curve: Vec<UtilSample>,
    /// Exact peak utilization over the run — computed from the full
    /// Alloc/Free event walk, so it catches allocations too short-lived
    /// for the sampled curve. `0.0` without a trace.
    pub peak_util: f64,
    /// One causal span per admitted request (arrival → last task
    /// finish, tiled into admission / queue / compute / transfer /
    /// recovery segments whose durations sum exactly to the sojourn).
    /// Empty when the runtime was built without tracing.
    pub spans: Vec<RequestSpan>,
    /// Per-tenant tail-latency attribution: exact p99, the exemplar
    /// requests behind it, and the dominant latency component. Empty
    /// without a trace.
    pub tail_attribution: Vec<TenantAttribution>,
    /// Per-tenant SLO burn curves (rolling virtual-time windows of
    /// good/bad counts against each tenant's p99 SLO). Empty without a
    /// trace or when no tenant carries an SLO.
    pub burn: Vec<TenantBurn>,
    /// Every circuit-breaker transition the runtime committed during
    /// the run, in commit order. Empty when the runtime has no breaker
    /// policy configured.
    pub breaker_transitions: Vec<BreakerTransition>,
    /// The underlying executor report for the admitted batch.
    pub run: RunReport,
}

impl ServeReport {
    /// p50 sojourn bound across all admitted requests.
    pub fn p50(&self) -> SimDuration {
        SimDuration::from_nanos(self.sojourn.quantile_bound(0.50))
    }

    /// p99 sojourn bound across all admitted requests.
    pub fn p99(&self) -> SimDuration {
        SimDuration::from_nanos(self.sojourn.quantile_bound(0.99))
    }

    /// Admitted fraction of offered load.
    pub fn admit_rate(&self) -> f64 {
        if self.offered == 0 {
            return 1.0;
        }
        self.admitted as f64 / self.offered as f64
    }

    /// Requests that completed successfully (admitted minus fast-fails).
    pub fn goodput(&self) -> usize {
        self.admitted - self.fast_failed
    }
}
