//! An object heap over erasure-coded spans, with compaction.
//!
//! Carbink's full design stores *objects* inside erasure-coded spans;
//! deleting an object leaves dead bytes that still occupy (and still get
//! re-encoded into) the stripes, so the system periodically **compacts**:
//! live objects are rewritten densely at the front and the tail is
//! reclaimed. The paper points exactly here: "a combination of
//! erasure-coding, one-sided remote memory accesses and compaction".
//!
//! [`StripedHeap`] is a bump allocator over a [`StripedRegion`]: `put`
//! appends, `delete` tombstones, `compact` rewrites the live set (paying
//! real read+write+parity costs) and makes the freed tail allocatable
//! again.

use std::collections::BTreeMap;

use disagg_hwsim::contention::BandwidthLedger;
use disagg_hwsim::fault::FaultInjector;
use disagg_hwsim::ids::MemDeviceId;
use disagg_hwsim::time::{SimDuration, SimTime};
use disagg_hwsim::topology::Topology;
use disagg_region::region::{OwnerId, RegionManager};

use crate::stripe::StripedRegion;
use crate::FtolError;

/// Identifies one object in the heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjId(pub u64);

#[derive(Debug, Clone, Copy)]
struct Slot {
    offset: u64,
    len: u64,
}

/// An object heap over erasure-coded far memory.
#[derive(Debug)]
pub struct StripedHeap {
    store: StripedRegion,
    live: BTreeMap<ObjId, Slot>,
    cursor: u64,
    dead_bytes: u64,
    next_id: u64,
}

impl StripedHeap {
    /// Creates a heap of `capacity` logical bytes striped `k + m` ways
    /// over `devices` (distinct failure domains).
    #[allow(clippy::too_many_arguments)]
    pub fn create(
        mgr: &mut RegionManager,
        topo: &Topology,
        devices: &[MemDeviceId],
        capacity: u64,
        k: usize,
        m: usize,
        owner: OwnerId,
        now: SimTime,
    ) -> Result<StripedHeap, FtolError> {
        Ok(StripedHeap {
            store: StripedRegion::create(mgr, topo, devices, capacity, k, m, owner, now)?,
            live: BTreeMap::new(),
            cursor: 0,
            dead_bytes: 0,
            next_id: 0,
        })
    }

    /// Logical capacity.
    pub fn capacity(&self) -> u64 {
        self.store.size
    }

    /// Bytes occupied by live objects.
    pub fn live_bytes(&self) -> u64 {
        self.live.values().map(|s| s.len).sum()
    }

    /// Bytes occupied by tombstoned objects (reclaimable by compaction).
    pub fn dead_bytes(&self) -> u64 {
        self.dead_bytes
    }

    /// Fraction of the *used* prefix that is dead.
    pub fn dead_fraction(&self) -> f64 {
        if self.cursor == 0 {
            0.0
        } else {
            self.dead_bytes as f64 / self.cursor as f64
        }
    }

    /// Bytes still appendable without compaction.
    pub fn free_tail(&self) -> u64 {
        self.capacity() - self.cursor
    }

    /// Number of live objects.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// True if no objects are live.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Appends an object; fails with `OutOfBounds` when the tail is
    /// exhausted (compact first).
    pub fn put(
        &mut self,
        mgr: &mut RegionManager,
        topo: &Topology,
        ledger: &mut BandwidthLedger,
        data: &[u8],
        now: SimTime,
    ) -> Result<(ObjId, SimDuration), FtolError> {
        let len = data.len() as u64;
        if self.cursor + len > self.capacity() {
            return Err(FtolError::OutOfBounds {
                offset: self.cursor,
                len,
                size: self.capacity(),
            });
        }
        let took = self.store.write(mgr, topo, ledger, self.cursor, data, now)?;
        let id = ObjId(self.next_id);
        self.next_id += 1;
        self.live.insert(
            id,
            Slot {
                offset: self.cursor,
                len,
            },
        );
        self.cursor += len;
        Ok((id, took))
    }

    /// Reads an object (degraded reads reconstruct through parity).
    pub fn get(
        &self,
        mgr: &RegionManager,
        topo: &Topology,
        ledger: &mut BandwidthLedger,
        faults: &FaultInjector,
        id: ObjId,
        now: SimTime,
    ) -> Result<(Vec<u8>, SimDuration, bool), FtolError> {
        let slot = self.live.get(&id).ok_or(FtolError::UnknownObject(id.0))?;
        let mut buf = vec![0u8; slot.len as usize];
        let (took, degraded) =
            self.store
                .read(mgr, topo, ledger, faults, slot.offset, &mut buf, now)?;
        Ok((buf, took, degraded))
    }

    /// Tombstones an object; its bytes stay in the spans until
    /// [`StripedHeap::compact`] runs.
    pub fn delete(&mut self, id: ObjId) -> Result<u64, FtolError> {
        let slot = self.live.remove(&id).ok_or(FtolError::UnknownObject(id.0))?;
        self.dead_bytes += slot.len;
        Ok(slot.len)
    }

    /// Compacts: reads every live object, rewrites them densely from the
    /// front, resets the cursor, and zeroes the dead count. Pays the full
    /// read + write (+ parity) cost of the live set. Returns the bytes
    /// reclaimed and how long the pass took.
    pub fn compact(
        &mut self,
        mgr: &mut RegionManager,
        topo: &Topology,
        ledger: &mut BandwidthLedger,
        now: SimTime,
    ) -> Result<(u64, SimDuration), FtolError> {
        let calm = FaultInjector::none();
        // Gather the live set in offset order (stable, moves everything
        // at most one slot leftward logically).
        let mut order: Vec<(ObjId, Slot)> = self.live.iter().map(|(&i, &s)| (i, s)).collect();
        order.sort_by_key(|&(_, s)| s.offset);

        let mut total = SimDuration::ZERO;
        let mut write_at = 0u64;
        for (id, slot) in order {
            let mut buf = vec![0u8; slot.len as usize];
            let (r, _) = self
                .store
                .read(mgr, topo, ledger, &calm, slot.offset, &mut buf, now)?;
            total += r;
            if slot.offset != write_at {
                let w = self.store.write(mgr, topo, ledger, write_at, &buf, now)?;
                total += w;
            }
            self.live.insert(id, Slot { offset: write_at, len: slot.len });
            write_at += slot.len;
        }
        let reclaimed = self.cursor - write_at;
        self.cursor = write_at;
        self.dead_bytes = 0;
        Ok((reclaimed, total))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disagg_hwsim::presets::disaggregated_rack;

    const OWNER: OwnerId = OwnerId::App;

    fn fixture() -> (Topology, RegionManager, BandwidthLedger, StripedHeap) {
        let (topo, rack) = disaggregated_rack(2, 32, 4, 64);
        let mut mgr = RegionManager::new(&topo);
        let mut ledger = BandwidthLedger::default_buckets();
        let heap = StripedHeap::create(
            &mut mgr,
            &topo,
            &rack.pool[..4],
            4_000,
            3,
            1,
            OWNER,
            SimTime::ZERO,
        )
        .expect("heap");
        let _ = &mut ledger;
        (topo, mgr, ledger, heap)
    }

    fn obj(n: usize, tag: u8) -> Vec<u8> {
        (0..n).map(|i| tag.wrapping_add(i as u8)).collect()
    }

    #[test]
    fn put_get_round_trips() {
        let (topo, mut mgr, mut ledger, mut heap) = fixture();
        let calm = FaultInjector::none();
        let (a, took) = heap
            .put(&mut mgr, &topo, &mut ledger, &obj(500, 1), SimTime::ZERO)
            .unwrap();
        assert!(took > SimDuration::ZERO);
        let (data, _, degraded) = heap
            .get(&mgr, &topo, &mut ledger, &calm, a, SimTime(1))
            .unwrap();
        assert!(!degraded);
        assert_eq!(data, obj(500, 1));
        assert_eq!(heap.live_bytes(), 500);
    }

    #[test]
    fn delete_tombstones_and_blocks_get() {
        let (topo, mut mgr, mut ledger, mut heap) = fixture();
        let calm = FaultInjector::none();
        let (a, _) = heap
            .put(&mut mgr, &topo, &mut ledger, &obj(300, 2), SimTime::ZERO)
            .unwrap();
        assert_eq!(heap.delete(a).unwrap(), 300);
        assert_eq!(heap.dead_bytes(), 300);
        assert!(matches!(
            heap.get(&mgr, &topo, &mut ledger, &calm, a, SimTime(1)),
            Err(FtolError::UnknownObject(_))
        ));
        assert!(matches!(heap.delete(a), Err(FtolError::UnknownObject(_))));
    }

    #[test]
    fn compaction_reclaims_dead_space_and_preserves_live_objects() {
        let (topo, mut mgr, mut ledger, mut heap) = fixture();
        let calm = FaultInjector::none();
        // Fill: A(1500) B(1500) C(900) → cursor 3900 of 4000.
        let (a, _) = heap.put(&mut mgr, &topo, &mut ledger, &obj(1500, 1), SimTime::ZERO).unwrap();
        let (b, _) = heap.put(&mut mgr, &topo, &mut ledger, &obj(1500, 2), SimTime::ZERO).unwrap();
        let (c, _) = heap.put(&mut mgr, &topo, &mut ledger, &obj(900, 3), SimTime::ZERO).unwrap();
        // Another 1500-byte put cannot fit.
        assert!(matches!(
            heap.put(&mut mgr, &topo, &mut ledger, &obj(1500, 4), SimTime(1)),
            Err(FtolError::OutOfBounds { .. })
        ));
        // Kill the middle object and compact.
        heap.delete(b).unwrap();
        assert!(heap.dead_fraction() > 0.3);
        let (reclaimed, took) = heap.compact(&mut mgr, &topo, &mut ledger, SimTime(2)).unwrap();
        assert_eq!(reclaimed, 1500);
        assert!(took > SimDuration::ZERO);
        assert_eq!(heap.dead_bytes(), 0);
        // Survivors intact at their new homes.
        let (da, _, _) = heap.get(&mgr, &topo, &mut ledger, &calm, a, SimTime(3)).unwrap();
        let (dc, _, _) = heap.get(&mgr, &topo, &mut ledger, &calm, c, SimTime(3)).unwrap();
        assert_eq!(da, obj(1500, 1));
        assert_eq!(dc, obj(900, 3));
        // And the blocked put now fits.
        let (d, _) = heap.put(&mut mgr, &topo, &mut ledger, &obj(1500, 4), SimTime(4)).unwrap();
        let (dd, _, _) = heap.get(&mgr, &topo, &mut ledger, &calm, d, SimTime(5)).unwrap();
        assert_eq!(dd, obj(1500, 4));
    }

    #[test]
    fn compaction_of_a_clean_heap_is_a_cheap_no_op() {
        let (topo, mut mgr, mut ledger, mut heap) = fixture();
        heap.put(&mut mgr, &topo, &mut ledger, &obj(100, 7), SimTime::ZERO).unwrap();
        let before = heap.live_bytes();
        let (reclaimed, _) = heap.compact(&mut mgr, &topo, &mut ledger, SimTime(1)).unwrap();
        assert_eq!(reclaimed, 0);
        assert_eq!(heap.live_bytes(), before);
    }

    #[test]
    fn objects_survive_a_node_crash_via_degraded_reads() {
        let (topo, mut mgr, mut ledger, mut heap) = fixture();
        let (a, _) = heap.put(&mut mgr, &topo, &mut ledger, &obj(2_000, 9), SimTime::ZERO).unwrap();
        let crash = FaultInjector::with_events(vec![disagg_hwsim::fault::FaultEvent {
            at: SimTime(1),
            kind: disagg_hwsim::fault::FaultKind::NodeCrash(
                topo.node_of_mem(heap.store.devs[0]),
            ),
        }]);
        let (data, _, degraded) = heap
            .get(&mgr, &topo, &mut ledger, &crash, a, SimTime(2))
            .unwrap();
        assert!(degraded);
        assert_eq!(data, obj(2_000, 9));
    }

    #[test]
    fn heap_stats_track_usage() {
        let (topo, mut mgr, mut ledger, mut heap) = fixture();
        assert!(heap.is_empty());
        assert_eq!(heap.free_tail(), 4_000);
        heap.put(&mut mgr, &topo, &mut ledger, &obj(1_000, 1), SimTime::ZERO).unwrap();
        assert_eq!(heap.len(), 1);
        assert_eq!(heap.free_tail(), 3_000);
        assert_eq!(heap.dead_fraction(), 0.0);
    }
}
