//! Fault tolerance for disaggregated far memory.
//!
//! Challenge 8(3) of the paper: node faults, network errors, and memory
//! corruption are routine at rack scale, and the runtime "must implement
//! suitable mechanisms that guarantee fault tolerance and are compute-
//! and storage-efficient". This crate provides both families the paper
//! cites and experiment E12 compares:
//!
//! - [`replicate`]: N-way replication — simple, fast recovery, N× storage.
//! - [`stripe`] + [`reedsolomon`] + [`gf256`]: Carbink-style erasure-coded
//!   spans — `(k+m)/k` storage, degraded reads and reconstruction cost.

pub mod gf256;
pub mod heap;
pub mod reedsolomon;
pub mod replicate;
pub mod stripe;

pub use heap::{ObjId, StripedHeap};
pub use reedsolomon::{ReedSolomon, RsError};
pub use replicate::ReplicatedRegion;
pub use stripe::{ParityEngine, StripedRegion};

use disagg_hwsim::ids::MemDeviceId;
use disagg_region::region::RegionError;

/// Errors from the fault-tolerance layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FtolError {
    /// Fewer devices supplied than the scheme needs.
    NotEnoughDevices {
        /// Devices supplied.
        have: usize,
        /// Devices required.
        need: usize,
    },
    /// Two shards/replicas would share a failure domain (same node).
    SharedFailureDomain(MemDeviceId, MemDeviceId),
    /// Every replica is down.
    AllReplicasDown,
    /// Too few spans survive to reconstruct.
    Unrecoverable {
        /// Live spans.
        alive: usize,
        /// Spans needed.
        needed: usize,
    },
    /// The index given to recover() is still alive.
    ReplicaNotLost(usize),
    /// Unknown or deleted heap object.
    UnknownObject(u64),
    /// No route between the given devices.
    Unreachable(MemDeviceId, MemDeviceId),
    /// Access outside the logical region.
    OutOfBounds {
        /// Requested offset.
        offset: u64,
        /// Requested length.
        len: u64,
        /// Logical size.
        size: u64,
    },
    /// Underlying region error.
    Region(RegionError),
    /// Underlying Reed-Solomon error.
    Rs(RsError),
}

impl From<RegionError> for FtolError {
    fn from(e: RegionError) -> Self {
        FtolError::Region(e)
    }
}

impl From<RsError> for FtolError {
    fn from(e: RsError) -> Self {
        FtolError::Rs(e)
    }
}

impl std::fmt::Display for FtolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FtolError::NotEnoughDevices { have, need } => {
                write!(f, "need {need} devices, have {have}")
            }
            FtolError::SharedFailureDomain(a, b) => {
                write!(f, "devices {a} and {b} share a failure domain")
            }
            FtolError::AllReplicasDown => write!(f, "all replicas down"),
            FtolError::Unrecoverable { alive, needed } => {
                write!(f, "unrecoverable: {alive} spans alive, {needed} needed")
            }
            FtolError::ReplicaNotLost(i) => write!(f, "replica {i} is still alive"),
            FtolError::UnknownObject(i) => write!(f, "unknown or deleted object o{i}"),
            FtolError::Unreachable(a, b) => write!(f, "no route from {a} to {b}"),
            FtolError::OutOfBounds { offset, len, size } => {
                write!(f, "access [{offset}, {offset}+{len}) outside {size}-byte region")
            }
            FtolError::Region(e) => write!(f, "region error: {e}"),
            FtolError::Rs(e) => write!(f, "erasure coding error: {e}"),
        }
    }
}

impl std::error::Error for FtolError {}
